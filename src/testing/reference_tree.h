// The reference oracle's backtracing-tree implementation.
//
// Deliberately independent of core/backtrace_tree.h: nodes live in a
// key-ordered std::map (the engine keeps insertion-ordered vectors), and
// every rewrite primitive is re-derived here from the paper's semantics
// (Tab. 5/6, Alg. 2-4) rather than shared. The two implementations must
// agree on OBSERVABLE semantics — the differential harness compares their
// canonical renders — including the subtle corners:
//
//  - detaching a subtree prunes ancestors left childless and folds their
//    access/manipulation marks into the detached root (the tree root folds
//    its marks too but is never removed and keeps its own copies);
//  - Ensure() creates missing nodes with the given contributing flag but
//    never changes existing nodes' flags;
//  - AccessPath() marks only the terminal node, creating intermediates as
//    influencing-only;
//  - ApplyManipulations() detaches ALL matched subtrees against the
//    pre-transformation tree before grafting any of them.
//
// The canonical render grammar is documented in
// src/core/provenance_export.h and duplicated here on purpose (change both
// or neither).

#ifndef PEBBLE_TESTING_REFERENCE_TREE_H_
#define PEBBLE_TESTING_REFERENCE_TREE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "nested/path.h"
#include "nested/type.h"

namespace pebble {
namespace difftest {

/// One edge label: an attribute or a 1-based position (0 = the [pos]
/// placeholder). Mirrors BtNodeKey without sharing it.
struct RefKey {
  std::string attr;        // empty <=> positional key
  int32_t pos = kNoPos;

  bool is_position() const { return attr.empty(); }
  bool operator<(const RefKey& other) const {
    if (is_position() != other.is_position()) {
      return !is_position();  // attribute keys order before positional ones
    }
    if (attr != other.attr) return attr < other.attr;
    return pos < other.pos;
  }
  bool operator==(const RefKey& other) const {
    return attr == other.attr && pos == other.pos;
  }
};

struct RefNode {
  bool contributing = false;
  std::set<int> accessed_by;
  std::set<int> manipulated_by;
  std::map<RefKey, RefNode> children;
};

/// A path mapping as the trace rules consume it (mirrors PathMapping).
struct RefMapping {
  Path in;
  Path out;
  bool from_grouping = false;
};

/// The oracle's backtracing tree with the full rewrite-primitive set.
class RefTree {
 public:
  /// The root represents the whole item and always contributes (the engine's
  /// BacktraceTree constructor pins the same flag).
  RefTree() { root_.contributing = true; }

  RefNode& root() { return root_; }
  const RefNode& root() const { return root_; }
  bool empty() const { return root_.children.empty(); }

  /// Path -> edge-label sequence: one attribute key per named step plus one
  /// positional key per step carrying a position.
  static std::vector<RefKey> KeysOf(const Path& path);

  RefNode* Find(const Path& path);
  const RefNode* Find(const Path& path) const;
  bool Contains(const Path& path) const { return Find(path) != nullptr; }

  /// Walks to `path`, creating missing nodes with `contributing`; existing
  /// nodes keep their flags.
  RefNode* Ensure(const Path& path, bool contributing);

  /// Records an access: terminal node marked, intermediates created
  /// influencing-only.
  void AccessPath(const Path& path, int oid);

  /// Moves the subtree at `out` to `in` (detach + graft + mark). No-op when
  /// `out` names nothing.
  void ManipulatePath(const Path& in, const Path& out, int oid);

  /// Applies all mappings at once: every detach observes the
  /// pre-transformation tree.
  void ApplyManipulations(const std::vector<RefMapping>& mappings, int oid);

  /// Removes the subtree at `path` (no ancestor pruning, no mark folding).
  void RemoveSubtree(const Path& path);

  /// Drops root children that are positional or name no field of `schema`.
  void RestrictToSchema(const DataType& schema);

  /// Marks every node below the root (not the root) as manipulated by oid.
  void MarkAllManipulated(int oid);

  void MergeFrom(const RefTree& other);

  /// Canonical render; grammar in core/provenance_export.h.
  std::string Canonical() const;

 private:
  RefNode root_;
};

/// Merges node contents (marks, contributing, children by key).
void MergeRefNode(RefNode* dest, const RefNode& src);

/// Schema tree: one contributing node per struct attribute, descending
/// through collection elements without positional nodes (mirrors
/// BuildSchemaTree).
RefTree BuildRefSchemaTree(const TypePtr& schema);

/// Expands an accessed path to the leaf attributes beneath it, in schema
/// field order; unresolvable paths expand to themselves (mirrors
/// ExpandAccessPath).
std::vector<Path> ExpandRefAccessPath(const TypePtr& schema,
                                      const Path& path);

}  // namespace difftest
}  // namespace pebble

#endif  // PEBBLE_TESTING_REFERENCE_TREE_H_
