// Differential fuzz driver (CI nightly + local debugging).
//
//   pebble_diff --seeds 500                    fuzz seeds [0, 500)
//   pebble_diff --seeds 200 --start 1000       fuzz seeds [1000, 1200)
//   pebble_diff --replay case.diffcase         replay one serialized case
//   pebble_diff --out-dir repros ...           write shrunk repros there
//   pebble_diff --scratch /tmp/scratch ...     enable the snapshot stage
//
// PEBBLE_FUZZ_ITERS overrides --seeds (how the nightly job deepens the
// run without touching the command line). Exit code: 0 = no mismatches,
// 1 = at least one differential finding, 2 = usage/setup error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "testing/diff.h"
#include "testing/shrinker.h"

namespace {

using pebble::Status;
using pebble::difftest::DiffCase;
using pebble::difftest::DiffOptions;
using pebble::difftest::IsDiffMismatch;
using pebble::difftest::RunDiffCase;
using pebble::difftest::ShrinkCase;
using pebble::difftest::ShrinkStats;

int Usage() {
  std::fprintf(stderr,
               "usage: pebble_diff [--seeds N] [--start S] "
               "[--replay FILE] [--out-dir DIR] [--scratch DIR]\n");
  return 2;
}

int ReplayFile(const std::string& path, const DiffOptions& options) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  pebble::Result<DiffCase> c = DiffCase::Parse(text.str());
  if (!c.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 c.status().ToString().c_str());
    return 2;
  }
  const Status status = RunDiffCase(c.value(), options);
  if (status.ok()) {
    std::printf("%s: ok\n", path.c_str());
    return 0;
  }
  std::fprintf(stderr, "%s: %s\n", path.c_str(),
               status.ToString().c_str());
  return IsDiffMismatch(status) ? 1 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  long long seeds = 500;
  long long start = 0;
  std::string replay;
  std::string out_dir;
  DiffOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds") {
      const char* v = next();
      if (v == nullptr) return Usage();
      seeds = std::atoll(v);
    } else if (arg == "--start") {
      const char* v = next();
      if (v == nullptr) return Usage();
      start = std::atoll(v);
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return Usage();
      replay = v;
    } else if (arg == "--out-dir") {
      const char* v = next();
      if (v == nullptr) return Usage();
      out_dir = v;
    } else if (arg == "--scratch") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.scratch_dir = v;
    } else {
      return Usage();
    }
  }
  if (const char* env = std::getenv("PEBBLE_FUZZ_ITERS")) {
    seeds = std::atoll(env);
  }

  if (!replay.empty()) {
    return ReplayFile(replay, options);
  }

  int findings = 0;
  for (long long seed = start; seed < start + seeds; ++seed) {
    const DiffCase c =
        pebble::difftest::GenerateCase(static_cast<uint64_t>(seed));
    const Status status = RunDiffCase(c, options);
    if (status.ok()) continue;
    if (!IsDiffMismatch(status)) {
      // The generator produced an invalid case: a harness bug, worth
      // failing loudly on.
      std::fprintf(stderr, "seed %lld: invalid case: %s\n", seed,
                   status.ToString().c_str());
      ++findings;
      continue;
    }
    ++findings;
    std::fprintf(stderr, "seed %lld: %s\n", seed,
                 status.ToString().c_str());
    ShrinkStats stats;
    const DiffCase shrunk = ShrinkCase(
        c,
        [&options](const DiffCase& cand) {
          return IsDiffMismatch(RunDiffCase(cand, options));
        },
        &stats);
    std::fprintf(stderr,
                 "seed %lld: shrunk to %d op(s) "
                 "(%d attempts, %d accepted)\n",
                 seed, shrunk.NumOperators(), stats.attempts,
                 stats.successes);
    const std::string repro = shrunk.Serialize();
    std::fputs(repro.c_str(), stderr);
    if (!out_dir.empty()) {
      const std::string path =
          out_dir + "/repro_seed" + std::to_string(seed) + ".diffcase";
      std::ofstream out(path);
      out << repro;
      std::fprintf(stderr, "seed %lld: repro written to %s\n", seed,
                   path.c_str());
    }
  }
  std::printf("pebble_diff: %lld seed(s), %d finding(s)\n", seeds, findings);
  return findings == 0 ? 0 : 1;
}
