// Delta-debugging shrinker for failing differential cases.
//
// Given a case for which `still_fails` holds, greedily searches for a
// smaller case where it still holds, iterating to a fixpoint: individual
// operators are removed (consumers rewired to the removed operator's
// primary input, then the DAG pruned to the sink's ancestor closure so no
// dangling nodes remain), source row counts are halved, and the pattern is
// reduced to single conjuncts. Every structural edit is also retried with
// the pattern re-anchored to a bare field of the new sink schema, so a
// shrink step is never rejected merely because the old pattern no longer
// parses against the new sink.
//
// The predicate is typically RunDiffCase + IsDiffMismatch (diff.h): shrink
// only into cases that fail with a *mismatch*, never into cases that fail
// to build or execute.

#ifndef PEBBLE_TESTING_SHRINKER_H_
#define PEBBLE_TESTING_SHRINKER_H_

#include <functional>

#include "testing/generator.h"

namespace pebble {
namespace difftest {

using FailPredicate = std::function<bool(const DiffCase&)>;

struct ShrinkStats {
  int attempts = 0;   // candidate evaluations
  int successes = 0;  // accepted shrink steps
};

/// Returns the smallest case found (== the input when nothing shrinks).
/// `still_fails(start)` is assumed true and is not re-checked. Candidate
/// evaluations are capped (~300) so a pathological predicate terminates.
DiffCase ShrinkCase(const DiffCase& start, const FailPredicate& still_fails,
                    ShrinkStats* stats = nullptr);

}  // namespace difftest
}  // namespace pebble

#endif  // PEBBLE_TESTING_SHRINKER_H_
