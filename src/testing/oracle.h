// The reference oracle: a deliberately naive, single-threaded interpreter
// of the full operator algebra that computes eager attribute-level
// provenance forward alongside each result item.
//
// Independence contract: the oracle shares the nested value/type/path model
// (src/nested) and the PUBLIC descriptions of pipelines, expressions and
// tree patterns (the query ASTs), but none of the engine's execution or
// provenance machinery — no partitions, no staging, no id counters, no
// ProvenanceStore, no BacktraceIndex, no BacktraceTree. Every semantic rule
// (operator evaluation order, null handling, the capture rules of Tab. 5,
// the trace rules of Alg. 2-4, tree-pattern matching of Sec. 6.1) is
// re-derived here over plain row vectors and the oracle's own RefTree.
//
// "Eager" means: the per-item provenance links (which input rows produced
// each output row, at which flatten position, as which group members) and
// the schema-level access/manipulation sets are fully materialized while
// each operator's result is computed — there is nothing left to
// reconstruct at query time except the (query-dependent) tree rewriting,
// which a naive recursive walk performs directly on those links.
//
// Items are identified by DATA ORDINALS (0-based position in an operator's
// output), never by engine provenance ids; the harness compares the two
// sides through the canonical form of src/core/provenance_export.h.

#ifndef PEBBLE_TESTING_ORACLE_H_
#define PEBBLE_TESTING_ORACLE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/provenance_export.h"
#include "core/tree_pattern.h"
#include "engine/pipeline.h"
#include "testing/reference_tree.h"

namespace pebble {
namespace difftest {

/// Deliberate bugs injectable into the oracle's capture rules. The harness
/// flags any differential case whose provenance flows through an affected
/// rule, which is exactly what the shrinker demo needs: a known-bad oracle
/// must shrink to a minimal pipeline still exercising the broken rule.
struct OracleQuirks {
  /// Drops the select rule's manipulation mappings (access marks are kept):
  /// backtraced trees stay keyed by OUTPUT paths instead of being rewritten
  /// to source paths.
  bool drop_select_manipulations = false;
  /// Skips the +1 on flatten positions (records 0-based positions).
  bool flatten_positions_off_by_one = false;
};

/// Eager per-row provenance link of one oracle output row: ordinals into
/// the producing operator's input row vectors.
struct OracleLink {
  int64_t in1 = -1;                // unary/flatten input, join left, union
  int64_t in2 = -1;                // join right / union side-2 ordinal
  int32_t pos = 0;                 // flatten: 1-based element position
  std::vector<int64_t> members;    // aggregation: group members, collect order
};

class Oracle {
 public:
  explicit Oracle(const Pipeline* pipeline, OracleQuirks quirks = {});

  /// Interprets the whole DAG bottom-up, one operator at a time, rows in
  /// order, no partitions, no threads. Fails with the same Status codes the
  /// engine's evaluation would produce (path/expression errors).
  Status Run();

  /// The sink's output values, in order. Valid after Run().
  const std::vector<ValuePtr>& Output() const;

  /// Output values of any operator (for tests poking intermediates).
  const std::vector<ValuePtr>& RowsOf(int oid) const;
  const std::vector<OracleLink>& LinksOf(int oid) const;

  /// Matches `pattern` against the sink output and traces every match back
  /// to the scans with the naive recursive tracer. Returns the canonical
  /// form directly (ordinals + canonical tree strings).
  Result<CanonicalProvenance> Query(const TreePattern& pattern) const;

 private:
  /// Everything the oracle knows about one interpreted operator.
  struct OpState {
    OpType type = OpType::kScan;
    std::vector<int> inputs;             // producer oids
    TypePtr out_schema;                  // runtime output schema
    std::vector<TypePtr> in_schemas;     // runtime input schemas
    std::vector<ValuePtr> rows;          // output values in order
    std::vector<OracleLink> links;       // parallel to rows

    // Schema-level capture (Def. 5.1), re-derived per operator.
    std::vector<std::vector<Path>> accessed;  // per input
    bool accessed_undefined = false;
    std::vector<RefMapping> manipulations;
    bool manip_undefined = false;
  };

  /// One level of the naive tracer: merged trees per input-row ordinal.
  using RefStructure = std::map<int64_t, RefTree>;

  Status RunOp(const Operator& op);
  Status RunScan(const ScanOp& op, OpState* state);
  Status RunFilter(const FilterOp& op, OpState* state);
  Status RunSelect(const SelectOp& op, OpState* state);
  Status RunMap(const MapOp& op, OpState* state);
  Status RunJoin(const JoinOp& op, OpState* state);
  Status RunUnion(OpState* state);
  Status RunFlatten(const FlattenOp& op, OpState* state);
  Status RunGroupAggregate(const GroupAggregateOp& op, OpState* state);

  /// Accessed paths of one input expanded to leaf attributes (empty when
  /// the access set is undefined or the schema is unknown).
  std::vector<Path> ExpandedAccessed(const OpState& state,
                                     size_t input_index) const;

  void TraceFrom(int oid, const RefStructure& structure,
                 std::map<int, RefStructure>* at_sources) const;

  const Pipeline* pipeline_;
  OracleQuirks quirks_;
  std::map<int, OpState> states_;
  bool ran_ = false;
};

/// The oracle's independent tree-pattern matcher (mirrors Sec. 6.1
/// semantics over RefTree). Exposed for direct unit testing against the
/// engine's TreePattern::MatchItem.
struct RefItemMatch {
  bool matched = false;
  RefTree tree;
};
Result<RefItemMatch> RefMatchItem(const TreePattern& pattern,
                                  const Value& item);

}  // namespace difftest
}  // namespace pebble

#endif  // PEBBLE_TESTING_ORACLE_H_
