#include "testing/diff.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/failpoint.h"
#include "core/compactor.h"
#include "core/provenance_io.h"
#include "core/provenance_wal.h"
#include "core/query.h"
#include "core/query_cache.h"
#include "engine/executor.h"

namespace pebble {
namespace difftest {

namespace {

std::string Clip(std::string text, size_t max = 1500) {
  if (text.size() > max) {
    text.resize(max);
    text += "...";
  }
  return text;
}

Status Mismatch(const std::string& stage, const std::string& detail) {
  return Status::Internal("diff:" + stage + ": " + Clip(detail, 3200));
}

/// Clips each side separately so a long `got` cannot truncate `want` out of
/// the message entirely.
std::string TwoSided(const std::string& got, const std::string& want) {
  return Clip(got) + "\n-- vs --\n" + Clip(want);
}

std::vector<std::string> SortedRenders(const std::vector<ValuePtr>& values) {
  std::vector<std::string> out;
  out.reserve(values.size());
  for (const ValuePtr& v : values) {
    out.push_back(v != nullptr ? v->ToString() : "<null>");
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status CompareOrderedRows(const std::string& stage,
                          const std::vector<ValuePtr>& got,
                          const std::vector<ValuePtr>& want) {
  if (got.size() != want.size()) {
    return Mismatch(stage, "row count " + std::to_string(got.size()) +
                               " vs " + std::to_string(want.size()));
  }
  for (size_t i = 0; i < got.size(); ++i) {
    const bool got_null = got[i] == nullptr;
    const bool want_null = want[i] == nullptr;
    if (got_null != want_null ||
        (!got_null && !got[i]->Equals(*want[i]))) {
      return Mismatch(stage,
                      "row " + std::to_string(i) + ": " +
                          (got_null ? "<null>" : got[i]->ToString()) +
                          " vs " +
                          (want_null ? "<null>" : want[i]->ToString()));
    }
  }
  return Status::OK();
}

Result<CanonicalProvenance> EngineCanonical(const ExecutionResult& run,
                                            const TreePattern& pattern) {
  PEBBLE_ASSIGN_OR_RETURN(
      ProvenanceQueryResult q,
      QueryStructuralProvenance(run, pattern, /*num_threads=*/1));
  return ExportCanonicalProvenance(q, run.output, run.source_datasets);
}

/// Order-insensitive comparison for exchange DAGs, where multi-partition
/// output order (and hence match ordinals) is a permutation: source trees
/// must agree exactly (tree merging is commutative, so they are
/// permutation-invariant), matched trees as multisets.
bool LooselyEqual(const CanonicalProvenance& a,
                  const CanonicalProvenance& b) {
  if (a.sources != b.sources) return false;
  if (a.matched.size() != b.matched.size()) return false;
  std::vector<std::string> ta, tb;
  ta.reserve(a.matched.size());
  tb.reserve(b.matched.size());
  for (const auto& [ord, tree] : a.matched) ta.push_back(tree);
  for (const auto& [ord, tree] : b.matched) tb.push_back(tree);
  std::sort(ta.begin(), ta.end());
  std::sort(tb.begin(), tb.end());
  return ta == tb;
}

struct FailpointGuard {
  ~FailpointGuard() { FailpointRegistry::Global().DisableAll(); }
};

Status RunMetamorphicStages(const DiffCase& c, const DiffOptions& options,
                            const BuiltCase& built,
                            const ExecutionResult& exact,
                            const CanonicalProvenance& canonical) {
  const std::vector<ValuePtr> exact_values = exact.output.CollectValues();

  // --- Partition-count invariance -----------------------------------------
  {
    const int parts = std::max(2, c.partitions);
    Executor alt_exec(ExecOptions(CaptureMode::kStructural, parts, 2));
    Result<ExecutionResult> alt = alt_exec.Run(built.pipeline);
    if (!alt.ok()) {
      return Mismatch("partitions", alt.status().message());
    }
    const std::vector<ValuePtr> alt_values = alt.value().output.CollectValues();
    const std::vector<std::string> alt_sorted = SortedRenders(alt_values);
    const std::vector<std::string> exact_sorted = SortedRenders(exact_values);
    if (alt_sorted != exact_sorted) {
      std::string detail = std::to_string(alt_values.size()) + " rows vs " +
                           std::to_string(exact_values.size());
      for (size_t i = 0; i < alt_sorted.size() && i < exact_sorted.size();
           ++i) {
        if (alt_sorted[i] != exact_sorted[i]) {
          detail += "; first diff: " + alt_sorted[i] + " vs " +
                    exact_sorted[i];
          break;
        }
      }
      return Mismatch("partitions-result", detail);
    }
    PEBBLE_ASSIGN_OR_RETURN(CanonicalProvenance alt_canonical,
                            EngineCanonical(alt.value(), built.pattern));
    const bool exchange = c.HasExchange();
    const bool equal = exchange ? LooselyEqual(alt_canonical, canonical)
                                : alt_canonical == canonical;
    if (!equal) {
      return Mismatch("partitions-provenance",
                      TwoSided(alt_canonical.ToString(),
                               canonical.ToString()));
    }
    if (!exchange) {
      // Exchange-free DAGs assign ids in data order regardless of the
      // partition count, so the stores must serialize byte-identically.
      if (SerializeProvenanceStore(*alt.value().provenance) !=
          SerializeProvenanceStore(*exact.provenance)) {
        return Mismatch("partition-fingerprint",
                        "serialized stores differ between 1 and " +
                            std::to_string(parts) + " partitions");
      }
    }
  }

  // --- Capture on/off result equality -------------------------------------
  {
    Executor off_exec(ExecOptions(CaptureMode::kOff, 1, 1));
    Result<ExecutionResult> off = off_exec.Run(built.pipeline);
    if (!off.ok()) {
      return Mismatch("capture-off", off.status().message());
    }
    PEBBLE_RETURN_NOT_OK(CompareOrderedRows(
        "capture-off", off.value().output.CollectValues(), exact_values));
  }

  // --- Allocation-strategy invariance (arena vs legacy heap) ---------------
  // The bump-pointer value arena must be a pure allocation strategy:
  // re-running the case with per-value heap allocation must reproduce the
  // exact rows, canonical provenance, and serialized store bytes.
  {
    ExecOptions heap_options(CaptureMode::kStructural, 1, 1);
    heap_options.legacy_heap_alloc = true;
    Executor heap_exec(heap_options);
    Result<ExecutionResult> heap = heap_exec.Run(built.pipeline);
    if (!heap.ok()) {
      return Mismatch("arena-vs-heap", heap.status().message());
    }
    PEBBLE_RETURN_NOT_OK(CompareOrderedRows(
        "arena-vs-heap", heap.value().output.CollectValues(), exact_values));
    if (SerializeProvenanceStore(*heap.value().provenance) !=
        SerializeProvenanceStore(*exact.provenance)) {
      return Mismatch("arena-vs-heap",
                      "serialized stores differ between arena and legacy "
                      "heap allocation");
    }
    PEBBLE_ASSIGN_OR_RETURN(CanonicalProvenance heap_canonical,
                            EngineCanonical(heap.value(), built.pattern));
    if (heap_canonical != canonical) {
      return Mismatch(
          "arena-vs-heap",
          TwoSided(heap_canonical.ToString(), canonical.ToString()));
    }
  }

  // --- Serializer stability ------------------------------------------------
  {
    const std::string bytes = SerializeProvenanceStore(*exact.provenance);
    PEBBLE_ASSIGN_OR_RETURN(std::unique_ptr<ProvenanceStore> reloaded,
                            DeserializeProvenanceStore(bytes));
    if (SerializeProvenanceStore(*reloaded) != bytes) {
      return Mismatch("serialize-roundtrip",
                      "re-serialization is not byte-stable");
    }
  }

  // --- Durable snapshot round-trip -----------------------------------------
  if (!options.scratch_dir.empty()) {
    const std::string path = options.scratch_dir + "/diffcase_snapshot.bin";
    PEBBLE_RETURN_NOT_OK(SaveProvenanceStore(*exact.provenance, path));
    PEBBLE_ASSIGN_OR_RETURN(std::unique_ptr<ProvenanceStore> loaded,
                            LoadProvenanceStore(path));
    Result<ProvenanceQueryResult> offline = QueryStructuralProvenanceOffline(
        exact.output, *loaded, built.pattern, /*num_threads=*/1);
    if (!offline.ok()) {
      return Mismatch("snapshot", offline.status().message());
    }
    PEBBLE_ASSIGN_OR_RETURN(
        CanonicalProvenance snap_canonical,
        ExportCanonicalProvenance(offline.value(), exact.output,
                                  exact.source_datasets));
    if (snap_canonical != canonical) {
      return Mismatch("snapshot", TwoSided(snap_canonical.ToString(),
                                           canonical.ToString()));
    }
  }

  // --- WAL capture replay ---------------------------------------------------
  // Re-running the case with a WAL commit sink, then recovering the log,
  // must reproduce the exact serialized store of the direct run; folding
  // the log into a snapshot (compaction) must commute with recovery.
  if (!options.scratch_dir.empty()) {
    const std::string wal_dir = options.scratch_dir + "/diffcase_wal";
    std::error_code ec;
    std::filesystem::remove_all(wal_dir, ec);
    WalOptions wal;
    wal.sync = false;  // no power-loss simulation here; keeps the sweep fast
    Result<std::unique_ptr<WalWriter>> opened = WalWriter::Open(wal_dir, wal);
    if (!opened.ok()) {
      return Mismatch("wal-replay", opened.status().message());
    }
    std::shared_ptr<WalWriter> writer = std::move(opened).value();
    ExecOptions wal_options(CaptureMode::kStructural, 1, 1);
    wal_options.commit_sink = writer;
    Executor wal_exec(wal_options);
    Result<ExecutionResult> captured = wal_exec.Run(built.pipeline);
    if (!captured.ok()) {
      return Mismatch("wal-replay", captured.status().message());
    }
    Status closed = writer->Close();
    if (!closed.ok()) {
      return Mismatch("wal-replay", closed.message());
    }
    const std::string direct =
        SerializeProvenanceStore(*captured.value().provenance);
    Result<RecoveredStore> replayed = RecoverStore(wal_dir);
    if (!replayed.ok()) {
      return Mismatch("wal-replay", replayed.status().message());
    }
    if (SerializeProvenanceStore(*replayed.value().store) != direct) {
      return Mismatch("wal-replay",
                      "recovered store differs from the captured run");
    }
    Result<WalCompactionStats> folded = CompactWal(wal_dir);
    if (!folded.ok()) {
      return Mismatch("wal-replay", folded.status().message());
    }
    Result<RecoveredStore> compacted = RecoverStore(wal_dir);
    if (!compacted.ok()) {
      return Mismatch("wal-replay", compacted.status().message());
    }
    if (SerializeProvenanceStore(*compacted.value().store) != direct) {
      return Mismatch("wal-replay",
                      "compaction changed the recovered store");
    }
  }

  // --- Governance: Unlimited() must equal the legacy path ------------------
  {
    Result<ProvenanceQueryResult> governed = QueryStructuralProvenance(
        exact, built.pattern, BacktraceOptions{}, /*num_threads=*/1);
    if (!governed.ok()) {
      return Mismatch("governed-unlimited", governed.status().message());
    }
    if (governed.value().truncation.truncated) {
      return Mismatch("governed-unlimited",
                      "unlimited options reported truncation");
    }
    PEBBLE_ASSIGN_OR_RETURN(
        CanonicalProvenance governed_canonical,
        ExportCanonicalProvenance(governed.value(), exact.output,
                                  exact.source_datasets));
    if (governed_canonical != canonical) {
      return Mismatch("governed-unlimited",
                      TwoSided(governed_canonical.ToString(),
                               canonical.ToString()));
    }
  }

  // --- Governance: huge (non-binding) caps must not degrade ----------------
  // Finite caps route the query through the chunked tracer, which merges
  // seed entries per chunk rather than all at once before replaying the
  // trace rules. Mark folding during subtree detachment is sensitive to
  // that merge order (backtrace.cc documents per-chunk derivations as
  // independently sound, "possibly with more merged paths"), so access and
  // manipulation marks may legitimately differ from the legacy whole-seed
  // path. What the engine does promise — and this stage checks — is: no
  // truncation reported, identical matched output entries, and identical
  // source item sets at every scan.
  {
    BacktraceOptions caps;
    caps.max_visited_nodes = 1000000000;
    caps.max_results = 1000000000;
    Result<ProvenanceQueryResult> governed = QueryStructuralProvenance(
        exact, built.pattern, caps, /*num_threads=*/1);
    if (!governed.ok()) {
      return Mismatch("governed-large", governed.status().message());
    }
    if (governed.value().truncation.truncated) {
      return Mismatch("governed-large",
                      "non-binding caps reported truncation");
    }
    PEBBLE_ASSIGN_OR_RETURN(
        CanonicalProvenance governed_canonical,
        ExportCanonicalProvenance(governed.value(), exact.output,
                                  exact.source_datasets));
    if (governed_canonical.matched != canonical.matched) {
      return Mismatch("governed-large",
                      TwoSided(governed_canonical.ToString(),
                               canonical.ToString()));
    }
    auto item_sets = [](const CanonicalProvenance& p) {
      std::map<int, std::vector<int64_t>> out;
      for (const auto& [oid, items] : p.sources) {
        std::vector<int64_t>& ords = out[oid];
        for (const auto& [ordinal, tree] : items) ords.push_back(ordinal);
      }
      return out;
    };
    if (item_sets(governed_canonical) != item_sets(canonical)) {
      return Mismatch("governed-large",
                      "source item sets diverge under finite caps:\n" +
                          TwoSided(governed_canonical.ToString(),
                                   canonical.ToString()));
    }
  }

  // --- Retry-schedule invariance -------------------------------------------
  {
    FailpointGuard guard;
    FailpointSpec append_spec;
    append_spec.every_nth = 3;
    FailpointSpec task_spec;
    task_spec.every_nth = 5;
    FailpointRegistry::Global().Enable(failpoints::kProvenanceAppend,
                                       append_spec);
    FailpointRegistry::Global().Enable(failpoints::kTaskPartition, task_spec);

    ExecOptions retry_options(CaptureMode::kStructural, 1, 1);
    retry_options.retry = RetryPolicy::WithRetries(6);
    Executor retry_exec(retry_options);
    Result<ExecutionResult> faulted = retry_exec.Run(built.pipeline);
    FailpointRegistry::Global().DisableAll();
    if (!faulted.ok()) {
      // Exhausting the retry budget is a legitimate outcome of injected
      // faults; anything else leaking out is a harness finding.
      if (faulted.status().code() == StatusCode::kUnavailable) {
        return Status::OK();
      }
      return Mismatch("retry", faulted.status().message());
    }
    PEBBLE_RETURN_NOT_OK(CompareOrderedRows(
        "retry", faulted.value().output.CollectValues(), exact_values));
    if (SerializeProvenanceStore(*faulted.value().provenance) !=
        SerializeProvenanceStore(*exact.provenance)) {
      return Mismatch("retry",
                      "provenance store bytes differ after retried faults");
    }
  }

  return Status::OK();
}

/// Warm-path stages: answers served from the query cache and backtraces
/// over a snapshot's persisted index must render byte-identically to cold
/// recomputation. These run OUTSIDE the harness's cache suppression — the
/// query-cache stage is the one place the sweep exercises the cache on
/// purpose.
Status RunWarmPathStages(const DiffOptions& options, const BuiltCase& built,
                         const ExecutionResult& exact,
                         const CanonicalProvenance& canonical) {
  // --- query-cache: cached answer == recomputed answer ---------------------
  {
    // First query fills the cache (or recomputes if the cache is globally
    // off), second is served from it; both must render exactly like the
    // cache-suppressed baseline `canonical`.
    for (int leg = 0; leg < 2; ++leg) {
      Result<ProvenanceQueryResult> q = QueryStructuralProvenance(
          exact, built.pattern, /*num_threads=*/1);
      if (!q.ok()) return Mismatch("query-cache", q.status().message());
      PEBBLE_ASSIGN_OR_RETURN(
          CanonicalProvenance leg_canonical,
          ExportCanonicalProvenance(q.value(), exact.output,
                                    exact.source_datasets));
      if (leg_canonical != canonical) {
        return Mismatch("query-cache",
                        std::string(leg == 0 ? "cold" : "warm") +
                            " leg diverges from the cache-suppressed "
                            "baseline:\n" +
                            TwoSided(leg_canonical.ToString(),
                                     canonical.ToString()));
      }
    }
  }

  // --- index-segment: persisted index == rebuilt index ---------------------
  if (!options.scratch_dir.empty()) {
    const std::string path = options.scratch_dir + "/diffcase_indexed.bin";
    PEBBLE_RETURN_NOT_OK(SaveProvenanceStore(*exact.provenance, path));
    auto loaded = LoadProvenanceStoreWithIndex(path);
    if (!loaded.ok()) {
      return Mismatch("index-segment", loaded.status().message());
    }
    if (loaded->index == nullptr) {
      return Mismatch("index-segment",
                      "saved snapshot carries no persisted index segment");
    }
    // Both legs query the same store with the same pattern; suppress the
    // cache so the second leg genuinely traces through the rebuilt index.
    QueryAnswerCache::ScopedDisable cache_off;
    const BacktraceIndex rebuilt(*loaded->store);
    const BacktraceIndex* indexes[2] = {loaded->index.get(), &rebuilt};
    for (int leg = 0; leg < 2; ++leg) {
      Result<ProvenanceQueryResult> q = QueryStructuralProvenanceOffline(
          exact.output, *loaded->store, built.pattern, BacktraceOptions(),
          /*num_threads=*/1, indexes[leg]);
      if (!q.ok()) return Mismatch("index-segment", q.status().message());
      PEBBLE_ASSIGN_OR_RETURN(
          CanonicalProvenance leg_canonical,
          ExportCanonicalProvenance(q.value(), exact.output,
                                    exact.source_datasets));
      if (leg_canonical != canonical) {
        return Mismatch("index-segment",
                        std::string(leg == 0 ? "persisted" : "rebuilt") +
                            "-index answer diverges:\n" +
                            TwoSided(leg_canonical.ToString(),
                                     canonical.ToString()));
      }
    }
  }

  return Status::OK();
}

}  // namespace

Status RunDiffCase(const DiffCase& c, const DiffOptions& options) {
  // Per-case arena: generated inputs, oracle values, and any ambient
  // construction live here and are freed wholesale when the case ends, so
  // multi-thousand-seed sweeps don't accumulate in the thread-default
  // arena. Declared first: every local below may reference its values.
  ValueArena case_arena;
  ValueArenaScope case_scope(&case_arena);
  PEBBLE_ASSIGN_OR_RETURN(BuiltCase built, BuildCase(c));

  // Engine exact leg: one partition, one thread — output order is the
  // oracle's data order, so rows and ordinals compare positionally.
  Executor exact_exec(ExecOptions(CaptureMode::kStructural, 1, 1));
  Result<ExecutionResult> exact = exact_exec.Run(built.pipeline);

  Oracle oracle(&built.pipeline, options.quirks);
  const Status oracle_status = oracle.Run();

  if (!exact.ok() || !oracle_status.ok()) {
    if (!exact.ok() && !oracle_status.ok()) {
      return Status::OK();  // agreeing failure (e.g. a type error both saw)
    }
    return Mismatch("engine-run",
                    "engine: " +
                        (exact.ok() ? std::string("ok")
                                    : exact.status().message()) +
                        " oracle: " +
                        (oracle_status.ok() ? std::string("ok")
                                            : oracle_status.message()));
  }

  PEBBLE_RETURN_NOT_OK(CompareOrderedRows(
      "result", exact.value().output.CollectValues(), oracle.Output()));

  // The harness exists to recompute: with the process-wide answer cache
  // live, repeated identical queries (the governed-unlimited stage in
  // particular) would compare a cached answer against itself. Suppress the
  // cache on this thread for the classic stages; RunWarmPathStages then
  // exercises the cache and the persisted index deliberately.
  CanonicalProvenance got;
  {
    QueryAnswerCache::ScopedDisable cache_off;
    PEBBLE_ASSIGN_OR_RETURN(CanonicalProvenance computed,
                            EngineCanonical(exact.value(), built.pattern));
    got = std::move(computed);
  }
  PEBBLE_ASSIGN_OR_RETURN(CanonicalProvenance want,
                          oracle.Query(built.pattern));
  if (got != want) {
    return Mismatch("provenance", "engine:\n" + Clip(got.ToString()) +
                                      "\n-- oracle --\n" +
                                      Clip(want.ToString()));
  }

  if (!options.metamorphic) return Status::OK();
  {
    QueryAnswerCache::ScopedDisable cache_off;
    PEBBLE_RETURN_NOT_OK(
        RunMetamorphicStages(c, options, built, exact.value(), got));
  }
  return RunWarmPathStages(options, built, exact.value(), got);
}

bool IsDiffMismatch(const Status& status) {
  return !status.ok() && status.code() == StatusCode::kInternal &&
         status.message().rfind("diff:", 0) == 0;
}

}  // namespace difftest
}  // namespace pebble
