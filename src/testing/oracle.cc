#include "testing/oracle.h"

#include <algorithm>
#include <utility>

namespace pebble {
namespace difftest {

// ---------------------------------------------------------------------------
// Independent tree-pattern matcher (Sec. 6.1 semantics over RefTree).
// ---------------------------------------------------------------------------

namespace {

bool RefMatchValue(const PatternNode& node, const Value& value,
                   const Path& path, RefTree* tree);

bool RefMatchStructChildren(const std::vector<PatternNode>& patterns,
                            const Value& context, const Path& base,
                            RefTree* tree);

/// Every occurrence of attribute `name` at any depth below `context`,
/// descending through structs and collection elements; 1-based positions
/// fold into the last attribute step of the base path when it has none,
/// otherwise a fresh positional step is appended.
void RefFindDescendants(const std::string& name, const Value& context,
                        const Path& base,
                        std::vector<std::pair<ValuePtr, Path>>* out) {
  if (context.is_struct()) {
    for (const FieldRef& f : context.fields()) {
      Path p = base.Child(PathStep{f.name, kNoPos});
      if (f.name == name) {
        out->push_back({f.value, p});
      }
      RefFindDescendants(name, *f.value, p, out);
    }
  } else if (context.is_collection()) {
    for (size_t i = 0; i < context.num_elements(); ++i) {
      std::vector<PathStep> steps = base.steps();
      if (!steps.empty() && !steps.back().has_pos()) {
        steps.back().pos = static_cast<int32_t>(i + 1);
      } else {
        steps.push_back(PathStep{"", static_cast<int32_t>(i + 1)});
      }
      RefFindDescendants(name, *context.elements()[i], Path(steps), out);
    }
  }
}

bool RefMatchValue(const PatternNode& node, const Value& value,
                   const Path& path, RefTree* tree) {
  if (value.is_collection()) {
    // Each child pattern is counted over the elements; the node's own
    // predicate applies per element. Leaf nodes count satisfying constants.
    RefTree local;
    if (node.children().empty()) {
      int count = 0;
      std::vector<int32_t> matched;
      for (size_t i = 0; i < value.num_elements(); ++i) {
        if (node.SatisfiesPredicate(*value.elements()[i])) {
          ++count;
          matched.push_back(static_cast<int32_t>(i + 1));
        }
      }
      if (count < node.min_count() || count > node.max_count()) return false;
      if (count == 0) return false;
      for (int32_t pos : matched) {
        std::vector<PathStep> steps = path.steps();
        steps.back().pos = pos;
        local.Ensure(Path(std::move(steps)), /*contributing=*/true);
      }
      tree->MergeFrom(local);
      return true;
    }
    for (const PatternNode& child : node.children()) {
      int count = 0;
      std::vector<std::pair<int32_t, RefTree>> matches;
      for (size_t i = 0; i < value.num_elements(); ++i) {
        const Value& elem = *value.elements()[i];
        if (!node.SatisfiesPredicate(elem)) {
          continue;
        }
        RefTree elem_tree;
        if (elem.is_struct() &&
            RefMatchStructChildren({child}, elem, Path(), &elem_tree)) {
          ++count;
          matches.push_back(
              {static_cast<int32_t>(i + 1), std::move(elem_tree)});
        }
      }
      if (count < child.min_count() || count > child.max_count()) {
        return false;
      }
      if (count == 0) return false;
      for (auto& [pos, elem_tree] : matches) {
        std::vector<PathStep> steps = path.steps();
        steps.back().pos = pos;
        Path elem_path(std::move(steps));
        RefNode* anchor = local.Ensure(elem_path, /*contributing=*/true);
        MergeRefNode(anchor, elem_tree.root());
        anchor->contributing = true;
      }
    }
    tree->MergeFrom(local);
    return true;
  }

  if (value.is_struct()) {
    if (!node.SatisfiesPredicate(value)) {
      return false;
    }
    RefTree local;
    if (!RefMatchStructChildren(node.children(), value, Path(), &local)) {
      return false;
    }
    RefNode* anchor = tree->Ensure(path, /*contributing=*/true);
    MergeRefNode(anchor, local.root());
    anchor->contributing = true;
    return true;
  }

  // Constant value.
  if (!node.children().empty()) return false;
  if (!node.SatisfiesPredicate(value)) {
    return false;
  }
  tree->Ensure(path, /*contributing=*/true);
  return true;
}

bool RefMatchStructChildren(const std::vector<PatternNode>& patterns,
                            const Value& context, const Path& base,
                            RefTree* tree) {
  RefTree local;
  for (const PatternNode& node : patterns) {
    if (node.is_descendant()) {
      std::vector<std::pair<ValuePtr, Path>> occurrences;
      RefFindDescendants(node.name(), context, base, &occurrences);
      int count = 0;
      RefTree node_tree;
      for (const auto& [v, p] : occurrences) {
        RefTree occ_tree;
        if (RefMatchValue(node, *v, p, &occ_tree)) {
          ++count;
          node_tree.MergeFrom(occ_tree);
        }
      }
      if (count == 0 || count < node.min_count() ||
          count > node.max_count()) {
        return false;
      }
      local.MergeFrom(node_tree);
    } else {
      ValuePtr v = context.FindField(node.name());
      if (v == nullptr) return false;
      Path p = base.Child(PathStep{node.name(), kNoPos});
      if (!RefMatchValue(node, *v, p, &local)) return false;
    }
  }
  tree->MergeFrom(local);
  return true;
}

}  // namespace

Result<RefItemMatch> RefMatchItem(const TreePattern& pattern,
                                  const Value& item) {
  RefItemMatch result;
  if (!item.is_struct()) {
    return Status::TypeError("tree patterns match data items (structs)");
  }
  RefTree tree;
  if (RefMatchStructChildren(pattern.roots(), item, Path(), &tree)) {
    result.matched = true;
    result.tree = std::move(tree);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Interpreter.
// ---------------------------------------------------------------------------

namespace {

/// One projected value (select rule): leaves copy the source path's value,
/// inner nodes construct a fresh struct from their children.
Result<ValuePtr> RefProjectionValue(const Projection& proj,
                                    const Value& item) {
  if (proj.is_leaf()) {
    return proj.source.Evaluate(item);
  }
  std::vector<Field> fields;
  fields.reserve(proj.children.size());
  for (const Projection& child : proj.children) {
    PEBBLE_ASSIGN_OR_RETURN(ValuePtr v, RefProjectionValue(child, item));
    fields.push_back(Field{child.name, std::move(v)});
  }
  return Value::Struct(std::move(fields));
}

/// Schema-level capture of one projection subtree (Tab. 5 select rule):
/// every leaf contributes its placeholdered source to A and a
/// (source -> output path) mapping to M, in depth-first projection order.
void RefCollectProjectionCapture(const Projection& proj,
                                 const Path& out_prefix,
                                 std::vector<Path>* accessed,
                                 std::vector<RefMapping>* manipulations) {
  Path out = out_prefix.Child(PathStep{proj.name, kNoPos});
  if (proj.is_leaf()) {
    Path src = proj.source.WithPosPlaceholders();
    accessed->push_back(src);
    manipulations->push_back(RefMapping{src, out, false});
    return;
  }
  for (const Projection& child : proj.children) {
    RefCollectProjectionCapture(child, out, accessed, manipulations);
  }
}

bool RefKeyTupleEquals(const std::vector<ValuePtr>& a,
                       const std::vector<ValuePtr>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i]->Equals(*b[i])) return false;
  }
  return true;
}

/// The aggregation functions, re-derived (null-skipping, int/double sum
/// promotion, first-wins min/max, bag/set nesting).
Result<ValuePtr> RefComputeAgg(const AggSpec& spec,
                               const std::vector<ValuePtr>& values) {
  switch (spec.kind) {
    case AggKind::kCount:
      return Value::Int(static_cast<int64_t>(values.size()));
    case AggKind::kSum: {
      bool any_double = false;
      int64_t isum = 0;
      double dsum = 0;
      for (const ValuePtr& v : values) {
        if (v->is_null()) continue;
        if (!v->is_numeric()) {
          return Status::TypeError("sum over non-numeric value");
        }
        if (v->kind() == ValueKind::kDouble) any_double = true;
        isum += v->kind() == ValueKind::kInt ? v->int_value() : 0;
        dsum += v->AsDouble();
      }
      return any_double ? Value::Double(dsum) : Value::Int(isum);
    }
    case AggKind::kMin:
    case AggKind::kMax: {
      ValuePtr best = nullptr;
      for (const ValuePtr& v : values) {
        if (v->is_null()) continue;
        if (best == nullptr) {
          best = v;
          continue;
        }
        int c = v->Compare(*best);
        if ((spec.kind == AggKind::kMin && c < 0) ||
            (spec.kind == AggKind::kMax && c > 0)) {
          best = v;
        }
      }
      return best != nullptr ? best : Value::Null();
    }
    case AggKind::kAvg: {
      double sum = 0;
      int64_t n = 0;
      for (const ValuePtr& v : values) {
        if (v->is_null()) continue;
        if (!v->is_numeric()) {
          return Status::TypeError("avg over non-numeric value");
        }
        sum += v->AsDouble();
        ++n;
      }
      return n == 0 ? Value::Null() : Value::Double(sum / n);
    }
    case AggKind::kCollectList:
      return Value::Bag(values);
    case AggKind::kCollectSet:
      return Value::Set(values);
  }
  return Status::Internal("unreachable aggregate kind");
}

}  // namespace

Oracle::Oracle(const Pipeline* pipeline, OracleQuirks quirks)
    : pipeline_(pipeline), quirks_(quirks) {}

Status Oracle::Run() {
  states_.clear();
  for (const std::unique_ptr<Operator>& op : pipeline_->operators()) {
    PEBBLE_RETURN_NOT_OK(RunOp(*op));
  }
  ran_ = true;
  return Status::OK();
}

Status Oracle::RunOp(const Operator& op) {
  OpState state;
  state.type = op.type();
  state.inputs = op.input_oids();
  state.out_schema = op.output_schema();
  for (int in : state.inputs) {
    state.in_schemas.push_back(states_.at(in).out_schema);
  }
  state.accessed.resize(state.inputs.size());

  Status st;
  switch (op.type()) {
    case OpType::kScan:
      st = RunScan(static_cast<const ScanOp&>(op), &state);
      break;
    case OpType::kFilter:
      st = RunFilter(static_cast<const FilterOp&>(op), &state);
      break;
    case OpType::kSelect:
      st = RunSelect(static_cast<const SelectOp&>(op), &state);
      break;
    case OpType::kMap:
      st = RunMap(static_cast<const MapOp&>(op), &state);
      break;
    case OpType::kJoin:
      st = RunJoin(static_cast<const JoinOp&>(op), &state);
      break;
    case OpType::kUnion:
      st = RunUnion(&state);
      break;
    case OpType::kFlatten:
      st = RunFlatten(static_cast<const FlattenOp&>(op), &state);
      break;
    case OpType::kGroupAggregate:
      st = RunGroupAggregate(static_cast<const GroupAggregateOp&>(op),
                             &state);
      break;
  }
  PEBBLE_RETURN_NOT_OK(st);
  states_.emplace(op.oid(), std::move(state));
  return Status::OK();
}

Status Oracle::RunScan(const ScanOp& op, OpState* state) {
  state->out_schema = op.schema();
  state->rows = *op.data();
  state->links.resize(state->rows.size());
  return Status::OK();
}

Status Oracle::RunFilter(const FilterOp& op, OpState* state) {
  const OpState& in = states_.at(state->inputs[0]);
  for (size_t i = 0; i < in.rows.size(); ++i) {
    PEBBLE_ASSIGN_OR_RETURN(bool keep,
                            op.predicate()->EvaluateBool(*in.rows[i]));
    if (!keep) continue;
    state->rows.push_back(in.rows[i]);
    OracleLink link;
    link.in1 = static_cast<int64_t>(i);
    state->links.push_back(link);
  }
  std::vector<Path> raw;
  op.predicate()->CollectAccessedPaths(&raw);
  for (const Path& p : raw) {
    state->accessed[0].push_back(p.WithPosPlaceholders());
  }
  return Status::OK();
}

Status Oracle::RunSelect(const SelectOp& op, OpState* state) {
  const OpState& in = states_.at(state->inputs[0]);
  for (size_t i = 0; i < in.rows.size(); ++i) {
    std::vector<Field> fields;
    fields.reserve(op.projections().size());
    for (const Projection& proj : op.projections()) {
      PEBBLE_ASSIGN_OR_RETURN(ValuePtr v,
                              RefProjectionValue(proj, *in.rows[i]));
      fields.push_back(Field{proj.name, std::move(v)});
    }
    state->rows.push_back(Value::Struct(std::move(fields)));
    OracleLink link;
    link.in1 = static_cast<int64_t>(i);
    state->links.push_back(link);
  }
  for (const Projection& proj : op.projections()) {
    RefCollectProjectionCapture(proj, Path(), &state->accessed[0],
                                &state->manipulations);
  }
  if (quirks_.drop_select_manipulations) {
    state->manipulations.clear();
  }
  return Status::OK();
}

Status Oracle::RunMap(const MapOp& op, OpState* state) {
  const OpState& in = states_.at(state->inputs[0]);
  for (size_t i = 0; i < in.rows.size(); ++i) {
    PEBBLE_ASSIGN_OR_RETURN(ValuePtr v, op.fn()(*in.rows[i]));
    if (!v->is_struct()) {
      return Status::TypeError("map function must return a data item");
    }
    state->rows.push_back(std::move(v));
    OracleLink link;
    link.in1 = static_cast<int64_t>(i);
    state->links.push_back(link);
  }
  if (op.declared_schema() != nullptr) {
    state->out_schema = op.declared_schema();
  } else {
    state->out_schema = state->rows.empty() ? DataType::Struct({})
                                            : state->rows[0]->InferType();
  }
  state->accessed_undefined = true;
  state->manip_undefined = true;
  return Status::OK();
}

Status Oracle::RunJoin(const JoinOp& op, OpState* state) {
  const OpState& left = states_.at(state->inputs[0]);
  const OpState& right = states_.at(state->inputs[1]);
  const bool equi = !op.left_keys().empty();

  auto eval_keys = [](const std::vector<Path>& keys,
                      const Value& item) -> Result<std::vector<ValuePtr>> {
    std::vector<ValuePtr> out;
    out.reserve(keys.size());
    for (const Path& k : keys) {
      PEBBLE_ASSIGN_OR_RETURN(ValuePtr v, k.Evaluate(item));
      out.push_back(std::move(v));
    }
    return out;
  };

  std::vector<std::vector<ValuePtr>> right_keys;
  if (equi) {
    right_keys.reserve(right.rows.size());
    for (const ValuePtr& r : right.rows) {
      PEBBLE_ASSIGN_OR_RETURN(std::vector<ValuePtr> key,
                              eval_keys(op.right_keys(), *r));
      right_keys.push_back(std::move(key));
    }
  }

  for (size_t l = 0; l < left.rows.size(); ++l) {
    std::vector<ValuePtr> lkey;
    if (equi) {
      PEBBLE_ASSIGN_OR_RETURN(lkey, eval_keys(op.left_keys(), *left.rows[l]));
    }
    for (size_t r = 0; r < right.rows.size(); ++r) {
      if (equi && !RefKeyTupleEquals(lkey, right_keys[r])) continue;
      std::vector<Field> fields;
      fields.reserve(left.rows[l]->num_fields() +
                     right.rows[r]->num_fields());
      for (const FieldRef& f : left.rows[l]->fields()) {
        fields.push_back(Field{std::string(f.name), f.value});
      }
      for (const FieldRef& f : right.rows[r]->fields()) {
        fields.push_back(Field{std::string(f.name), f.value});
      }
      ValuePtr combined = Value::Struct(std::move(fields));
      if (op.theta() != nullptr) {
        PEBBLE_ASSIGN_OR_RETURN(bool keep,
                                op.theta()->EvaluateBool(*combined));
        if (!keep) continue;
      }
      state->rows.push_back(std::move(combined));
      OracleLink link;
      link.in1 = static_cast<int64_t>(l);
      link.in2 = static_cast<int64_t>(r);
      state->links.push_back(link);
    }
  }

  // Capture (Tab. 5 join rule): per-side key paths plus the side each theta
  // path belongs to; M maps every output attribute to itself.
  for (const Path& k : op.left_keys()) {
    state->accessed[0].push_back(k.WithPosPlaceholders());
  }
  for (const Path& k : op.right_keys()) {
    state->accessed[1].push_back(k.WithPosPlaceholders());
  }
  if (op.theta() != nullptr) {
    std::vector<Path> raw;
    op.theta()->CollectAccessedPaths(&raw);
    for (const Path& p : raw) {
      size_t side = 1;
      if (!p.empty() && left.out_schema != nullptr &&
          left.out_schema->FindField(p.step(0).attr()) != nullptr) {
        side = 0;
      }
      state->accessed[side].push_back(p.WithPosPlaceholders());
    }
  }
  if (state->out_schema != nullptr) {
    for (const FieldType& f : state->out_schema->fields()) {
      state->manipulations.push_back(
          RefMapping{Path::Attr(f.name), Path::Attr(f.name), false});
    }
  }
  return Status::OK();
}

Status Oracle::RunUnion(OpState* state) {
  for (size_t side = 0; side < 2; ++side) {
    const OpState& in = states_.at(state->inputs[side]);
    for (size_t i = 0; i < in.rows.size(); ++i) {
      state->rows.push_back(in.rows[i]);
      OracleLink link;
      if (side == 0) {
        link.in1 = static_cast<int64_t>(i);
      } else {
        link.in2 = static_cast<int64_t>(i);
      }
      state->links.push_back(link);
    }
  }
  return Status::OK();
}

Status Oracle::RunFlatten(const FlattenOp& op, OpState* state) {
  const OpState& in = states_.at(state->inputs[0]);
  for (size_t i = 0; i < in.rows.size(); ++i) {
    PEBBLE_ASSIGN_OR_RETURN(ValuePtr col, op.column().Evaluate(*in.rows[i]));
    if (col->is_null()) continue;
    if (!col->is_collection()) {
      return Status::TypeError("flatten over a non-collection value");
    }
    for (size_t x = 0; x < col->num_elements(); ++x) {
      // Deliberately rebuilt field-by-field (not via the engine's fused
      // StructWith): the oracle stays an independent implementation.
      std::vector<Field> fields;
      fields.reserve(in.rows[i]->num_fields() + 1);
      for (const FieldRef& f : in.rows[i]->fields()) {
        fields.push_back(Field{std::string(f.name), f.value});
      }
      fields.push_back(Field{op.new_attr(), col->elements()[x]});
      state->rows.push_back(Value::Struct(std::move(fields)));
      OracleLink link;
      link.in1 = static_cast<int64_t>(i);
      link.pos = static_cast<int32_t>(x + 1);
      if (quirks_.flatten_positions_off_by_one) {
        link.pos = static_cast<int32_t>(x);
      }
      state->links.push_back(link);
    }
  }
  Path col_pos = op.column().Parent().Child(
      PathStep{op.column().back().attr(), kPosPlaceholder});
  state->accessed[0].push_back(col_pos);
  state->manipulations.push_back(
      RefMapping{col_pos, Path::Attr(op.new_attr()), false});
  return Status::OK();
}

Status Oracle::RunGroupAggregate(const GroupAggregateOp& op, OpState* state) {
  const OpState& in = states_.at(state->inputs[0]);

  struct Group {
    std::vector<ValuePtr> key;
    std::vector<int64_t> members;
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < in.rows.size(); ++i) {
    std::vector<ValuePtr> key;
    key.reserve(op.keys().size());
    for (const GroupKey& k : op.keys()) {
      PEBBLE_ASSIGN_OR_RETURN(ValuePtr v, k.path.Evaluate(*in.rows[i]));
      key.push_back(std::move(v));
    }
    size_t gidx = SIZE_MAX;
    for (size_t g = 0; g < groups.size(); ++g) {
      if (RefKeyTupleEquals(groups[g].key, key)) {
        gidx = g;
        break;
      }
    }
    if (gidx == SIZE_MAX) {
      gidx = groups.size();
      groups.push_back(Group{std::move(key), {}});
    }
    groups[gidx].members.push_back(static_cast<int64_t>(i));
  }

  for (Group& g : groups) {
    std::vector<Field> fields;
    fields.reserve(op.keys().size() + op.aggs().size());
    for (size_t k = 0; k < op.keys().size(); ++k) {
      fields.push_back(Field{op.keys()[k].name, g.key[k]});
    }
    for (const AggSpec& a : op.aggs()) {
      std::vector<ValuePtr> values;
      if (a.kind != AggKind::kCount) {
        values.reserve(g.members.size());
        for (int64_t m : g.members) {
          PEBBLE_ASSIGN_OR_RETURN(
              ValuePtr v, a.input.Evaluate(*in.rows[static_cast<size_t>(m)]));
          values.push_back(std::move(v));
        }
      } else {
        values.resize(g.members.size());
      }
      PEBBLE_ASSIGN_OR_RETURN(ValuePtr out, RefComputeAgg(a, values));
      fields.push_back(Field{a.output, std::move(out)});
    }
    state->rows.push_back(Value::Struct(std::move(fields)));
    OracleLink link;
    link.members = std::move(g.members);
    state->links.push_back(std::move(link));
  }

  // Capture (Tab. 5 grouping/aggregation rules).
  for (const GroupKey& k : op.keys()) {
    Path p = k.path.WithPosPlaceholders();
    state->accessed[0].push_back(p);
    state->manipulations.push_back(
        RefMapping{p, Path::Attr(k.name), /*from_grouping=*/true});
  }
  for (const AggSpec& a : op.aggs()) {
    if (a.kind != AggKind::kCount) {
      state->accessed[0].push_back(a.input.WithPosPlaceholders());
    }
    if (a.kind == AggKind::kCollectList) {
      state->manipulations.push_back(
          RefMapping{a.input.WithPosPlaceholders(),
                     Path({PathStep{a.output, kPosPlaceholder}}), false});
    } else {
      state->manipulations.push_back(RefMapping{
          a.input.WithPosPlaceholders(), Path::Attr(a.output), false});
    }
  }
  return Status::OK();
}

const std::vector<ValuePtr>& Oracle::Output() const {
  return states_.at(pipeline_->sink_oid()).rows;
}

const std::vector<ValuePtr>& Oracle::RowsOf(int oid) const {
  return states_.at(oid).rows;
}

const std::vector<OracleLink>& Oracle::LinksOf(int oid) const {
  return states_.at(oid).links;
}

// ---------------------------------------------------------------------------
// Naive recursive tracer (Alg. 1-4 semantics over ordinals).
// ---------------------------------------------------------------------------

std::vector<Path> Oracle::ExpandedAccessed(const OpState& state,
                                           size_t input_index) const {
  std::vector<Path> out;
  if (state.accessed_undefined) return out;
  const TypePtr& schema = state.in_schemas[input_index];
  if (schema == nullptr) return out;
  for (const Path& a : state.accessed[input_index]) {
    for (Path& e : ExpandRefAccessPath(schema, a)) {
      out.push_back(std::move(e));
    }
  }
  return out;
}

void Oracle::TraceFrom(int oid, const RefStructure& structure,
                       std::map<int, RefStructure>* at_sources) const {
  // Empty structures never reach a scan: a source appears in the result
  // only when at least one entry arrived (mirrors Alg. 1's early exit).
  if (structure.empty()) return;
  const OpState& state = states_.at(oid);

  if (state.type == OpType::kScan) {
    RefStructure& dest = (*at_sources)[oid];
    for (const auto& [ordinal, tree] : structure) {
      dest[ordinal].MergeFrom(tree);
    }
    return;
  }

  switch (state.type) {
    case OpType::kFilter:
    case OpType::kSelect: {
      std::vector<Path> expanded = ExpandedAccessed(state, 0);
      RefStructure next;
      for (const auto& [ordinal, tree] : structure) {
        const OracleLink& link = state.links[static_cast<size_t>(ordinal)];
        RefTree out = tree;
        out.ApplyManipulations(state.manipulations, oid);
        for (const Path& a : expanded) {
          out.AccessPath(a, oid);
        }
        next[link.in1].MergeFrom(out);
      }
      TraceFrom(state.inputs[0], next, at_sources);
      return;
    }
    case OpType::kMap: {
      // A = M = bottom: the whole input item is conservatively reported as
      // manipulated; the incoming tree is discarded.
      RefStructure next;
      for (const auto& [ordinal, tree] : structure) {
        const OracleLink& link = state.links[static_cast<size_t>(ordinal)];
        RefTree out = BuildRefSchemaTree(state.in_schemas[0]);
        out.MarkAllManipulated(oid);
        next[link.in1].MergeFrom(out);
      }
      TraceFrom(state.inputs[0], next, at_sources);
      return;
    }
    case OpType::kFlatten: {
      RefStructure next;
      for (const auto& [ordinal, tree] : structure) {
        const OracleLink& link = state.links[static_cast<size_t>(ordinal)];
        RefTree out = tree;
        std::vector<RefMapping> concrete;
        concrete.reserve(state.manipulations.size());
        for (const RefMapping& m : state.manipulations) {
          concrete.push_back(RefMapping{
              m.in.WithPlaceholderReplaced(link.pos), m.out, m.from_grouping});
        }
        out.ApplyManipulations(concrete, oid);
        if (state.in_schemas[0] != nullptr) {
          for (const Path& a : state.accessed[0]) {
            Path c = a.WithPlaceholderReplaced(link.pos);
            for (const Path& e : ExpandRefAccessPath(state.in_schemas[0], c)) {
              out.AccessPath(e, oid);
            }
          }
        }
        next[link.in1].MergeFrom(out);
      }
      TraceFrom(state.inputs[0], next, at_sources);
      return;
    }
    case OpType::kJoin:
    case OpType::kUnion: {
      for (size_t side = 0; side < 2; ++side) {
        const TypePtr& side_schema = state.in_schemas[side];
        std::vector<RefMapping> side_mappings;
        if (state.type == OpType::kJoin && side_schema != nullptr) {
          for (const RefMapping& m : state.manipulations) {
            if (!m.in.empty() &&
                side_schema->FindField(m.in.step(0).attr()) != nullptr) {
              side_mappings.push_back(m);
            }
          }
        }
        std::vector<Path> expanded = ExpandedAccessed(state, side);
        RefStructure next;
        for (const auto& [ordinal, tree] : structure) {
          const OracleLink& link = state.links[static_cast<size_t>(ordinal)];
          int64_t in_ord = side == 0 ? link.in1 : link.in2;
          if (in_ord < 0) continue;
          RefTree out = tree;
          if (state.type == OpType::kJoin) {
            out.ApplyManipulations(side_mappings, oid);
            if (side_schema != nullptr) out.RestrictToSchema(*side_schema);
          }
          for (const Path& a : expanded) {
            out.AccessPath(a, oid);
          }
          next[in_ord].MergeFrom(out);
        }
        TraceFrom(state.inputs[side], next, at_sources);
      }
      return;
    }
    case OpType::kGroupAggregate: {
      std::vector<Path> expanded = ExpandedAccessed(state, 0);
      RefStructure next;
      for (const auto& [ordinal, tree] : structure) {
        const OracleLink& link = state.links[static_cast<size_t>(ordinal)];
        for (size_t k = 0; k < link.members.size(); ++k) {
          int32_t pos = static_cast<int32_t>(k + 1);
          RefTree out = tree;
          bool in_prov = false;
          for (const RefMapping& m : state.manipulations) {
            bool nesting = m.out.HasPositions();
            Path out_path =
                nesting ? m.out.WithPlaceholderReplaced(pos) : m.out;
            if (out.Contains(out_path)) {
              if (!m.from_grouping) in_prov = true;
              out.ManipulatePath(m.in, out_path, oid);
            }
            if (nesting) {
              out.RemoveSubtree(Path::Attr(m.out.step(0).attr()));
            }
          }
          if (!in_prov) continue;
          for (const Path& a : expanded) {
            out.AccessPath(a, oid);
          }
          next[link.members[k]].MergeFrom(out);
        }
      }
      TraceFrom(state.inputs[0], next, at_sources);
      return;
    }
    case OpType::kScan:
      return;  // handled above
  }
}

Result<CanonicalProvenance> Oracle::Query(const TreePattern& pattern) const {
  if (!ran_) {
    return Status::Internal("Oracle::Query before Run");
  }
  const OpState& sink = states_.at(pipeline_->sink_oid());
  CanonicalProvenance out;
  RefStructure seed;
  for (size_t i = 0; i < sink.rows.size(); ++i) {
    PEBBLE_ASSIGN_OR_RETURN(RefItemMatch m,
                            RefMatchItem(pattern, *sink.rows[i]));
    if (!m.matched) continue;
    int64_t ordinal = static_cast<int64_t>(i);
    out.matched.push_back({ordinal, m.tree.Canonical()});
    seed.emplace(ordinal, std::move(m.tree));
  }
  std::map<int, RefStructure> at_sources;
  if (!seed.empty()) {
    TraceFrom(pipeline_->sink_oid(), seed, &at_sources);
  }
  for (const auto& [scan_oid, items] : at_sources) {
    std::map<int64_t, std::string>& dest = out.sources[scan_oid];
    for (const auto& [ordinal, tree] : items) {
      dest.emplace(ordinal, tree.Canonical());
    }
  }
  return out;
}

}  // namespace difftest
}  // namespace pebble
