// The differential harness: one DiffCase run end to end through the engine
// and the reference oracle, with every disagreement reported as a
// machine-recognizable mismatch status.
//
// Stage layout (each failing stage produces Status::Internal with message
// "diff:<stage>: ..."; IsDiffMismatch recognizes the prefix, which is what
// lets the shrinker distinguish "still reproduces the mismatch" from
// "became invalid while shrinking"):
//
//   engine-run            engine and oracle disagree on run success
//   result                1-partition/1-thread output rows != oracle rows
//   provenance            backtraced canonical provenance != eager oracle
//   partitions            the N-partition/2-thread leg failed to run
//   partitions-result     N-partition result multiset != 1-partition
//   partitions-provenance N-partition canonical provenance mismatch
//                         (ordinal-exact for exchange-free DAGs, order-
//                         insensitive on matched trees otherwise)
//   partition-fingerprint exchange-free only: the serialized provenance
//                         store of the 1- and N-partition runs must be
//                         byte-identical
//   capture-off           CaptureMode::kOff changes the query result
//   arena-vs-heap         legacy per-value heap allocation
//                         (ExecOptions::legacy_heap_alloc) changes the
//                         rows, the canonical provenance, or the
//                         serialized store bytes — the arena must be a
//                         pure allocation strategy
//   serialize-roundtrip   serialize -> deserialize -> serialize not stable
//   snapshot              save/load round-trip changes offline query answer
//   wal-replay            WAL-captured run does not recover to the exact
//                         serialized store, or compaction changes it
//   governed-unlimited    BacktraceOptions{} differs from ungoverned path
//   governed-large        huge (non-binding) caps truncate, change matched
//                         entries, or change source item sets (tree marks
//                         may differ: the chunked tracer folds marks per
//                         chunk — see backtrace.cc)
//   retry                 injected provenance.append/task.partition faults
//                         with retries change results or provenance bytes
//   query-cache           answer served by the query cache (or the cold
//                         fill before it) differs from the cache-suppressed
//                         baseline (all other stages run cache-suppressed)
//   index-segment         querying via the snapshot's persisted backtrace
//                         index differs from a rebuilt index or the
//                         baseline, or the saved snapshot lacks the segment

#ifndef PEBBLE_TESTING_DIFF_H_
#define PEBBLE_TESTING_DIFF_H_

#include <string>

#include "testing/generator.h"
#include "testing/oracle.h"

namespace pebble {
namespace difftest {

struct DiffOptions {
  /// Bugs injected into the ORACLE (shrinker demos / self-tests).
  OracleQuirks quirks;
  /// Run the metamorphic stages after the core engine-vs-oracle diff.
  bool metamorphic = true;
  /// Directory for the snapshot round-trip stage; empty skips that stage
  /// (callers own uniqueness — parallel tests must not share a file).
  std::string scratch_dir;
};

/// Runs one case through every stage. OK = no disagreement anywhere;
/// "diff:..." Internal = a differential finding; anything else = the case
/// itself is invalid (build/validation failure).
Status RunDiffCase(const DiffCase& c, const DiffOptions& options = {});

/// True iff `status` is a differential finding (any stage mismatch).
bool IsDiffMismatch(const Status& status);

}  // namespace difftest
}  // namespace pebble

#endif  // PEBBLE_TESTING_DIFF_H_
