// Seeded, schema-aware differential-case generation.
//
// A DiffCase is a fully serializable description of one differential run:
// random sources (named by (seed, schema, rows) — random_data.h makes that
// triple deterministic), an operator DAG over them, the partition count for
// the engine's multi-partition leg, and a tree-pattern query over the sink.
// The textual form round-trips (Serialize/Parse), which is what makes
// shrunk repros replayable: the shrinker writes a file, a test replays it.
//
// Node indexing: sources come first (0..S-1), then ops in vector order
// (node S+j for ops[j]); OpSpec inputs are node indexes. BuildCase turns a
// case into a runnable Pipeline + TreePattern, recomputing every schema
// from scratch so that a shrunk case (ops dropped, rewired) stays
// internally consistent without any serialized schema state.

#ifndef PEBBLE_TESTING_GENERATOR_H_
#define PEBBLE_TESTING_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/tree_pattern.h"
#include "engine/pipeline.h"

namespace pebble {
namespace difftest {

/// One random in-memory source: `seed`+`schema`+`rows` name the dataset.
struct SourceSpec {
  std::string name;
  uint64_t seed = 0;
  int rows = 0;
  TypePtr schema;
};

/// One operator over earlier nodes. Parameters are kept in their textual
/// encodings (the same strings Serialize writes) so specs stay trivially
/// copyable and the shrinker can splice them without re-encoding.
struct OpSpec {
  enum class Kind {
    kFilter,
    kSelect,
    kMap,
    kJoin,       // equi-join: keys/rkeys are comma-joined path lists
    kThetaJoin,  // path cmp rpath over the concatenated item
    kUnion,
    kFlatten,
    kGroup,
  };

  Kind kind = Kind::kFilter;
  int in1 = -1;  // node index
  int in2 = -1;  // node index (join/theta-join/union only)

  std::string path;         // filter column, flatten column, theta left path
  std::string cmp;          // eq|ne|lt|le|gt|ge
  std::string literal;      // i:<int> | d:<decimal> | s:<text> | b:<0|1>
  std::string rpath;        // theta right path
  std::string projections;  // select: name=path;wrap{inner=path;...};...
  std::string variant;      // map: identity | tag
  std::string attr;         // flatten new attribute / map tag attribute
  std::string keys;         // join: csv paths; group: path=name,...
  std::string rkeys;        // join right csv paths
  std::string aggs;         // group: kind:input:output,... (count: empty input)
};

/// A complete replayable differential case.
struct DiffCase {
  int partitions = 2;  // the multi-partition leg's partition count
  std::vector<SourceSpec> sources;
  std::vector<OpSpec> ops;
  std::string pattern_text;

  int NumNodes() const {
    return static_cast<int>(sources.size() + ops.size());
  }
  int NumOperators() const { return static_cast<int>(ops.size()); }

  /// True when the DAG contains an exchange (join/union/group): engine ids
  /// then depend on partitioning and the bit-identical-fingerprint
  /// metamorphic check does not apply.
  bool HasExchange() const;

  /// Line-oriented textual form ("pebble-diffcase v1"). Round-trips through
  /// Parse. Schemas serialize via DataType::ToString (no spaces).
  std::string Serialize() const;
  static Result<DiffCase> Parse(const std::string& text);
};

/// A case lowered to runnable form.
struct BuiltCase {
  Pipeline pipeline;
  TreePattern pattern;
};

/// Validates node wiring, materializes the random sources, recomputes every
/// operator schema (via the engine's own InferSchema) and builds the
/// pipeline + parsed pattern.
Result<BuiltCase> BuildCase(const DiffCase& c);

/// Output schema of every node (sources then ops), recomputed from scratch.
/// The shrinker uses this to re-anchor the pattern after structural edits.
Result<std::vector<TypePtr>> NodeSchemas(const DiffCase& c);

/// Deterministically generates a valid random case from `seed`: random
/// nested schemas, a 1-8 operator DAG weighted over the full algebra
/// (including a union diamond and forced consumption of a second source via
/// join), and a random tree-pattern query over the sink schema.
DiffCase GenerateCase(uint64_t seed);

}  // namespace difftest
}  // namespace pebble

#endif  // PEBBLE_TESTING_GENERATOR_H_
