#include "testing/shrinker.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace pebble {
namespace difftest {

namespace {

bool IsBinaryKind(OpSpec::Kind kind) {
  return kind == OpSpec::Kind::kJoin || kind == OpSpec::Kind::kThetaJoin ||
         kind == OpSpec::Kind::kUnion;
}

/// Restricts the case to the sink's ancestor closure (the sink is always
/// the last node), remapping node indexes. False when the wiring is broken.
bool PruneToSink(DiffCase* c) {
  const int num_sources = static_cast<int>(c->sources.size());
  const int n = c->NumNodes();
  if (n == 0) return false;
  std::vector<bool> keep(n, false);
  std::vector<int> stack = {n - 1};
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    if (node < 0 || node >= n) return false;
    if (keep[node]) continue;
    keep[node] = true;
    if (node >= num_sources) {
      const OpSpec& op = c->ops[node - num_sources];
      stack.push_back(op.in1);
      if (IsBinaryKind(op.kind)) stack.push_back(op.in2);
    }
  }
  // Sources precede ops in both the old and new numbering and inputs only
  // point backwards, so position-in-kept-sequence is a valid remap.
  std::vector<int> remap(n, -1);
  int next = 0;
  DiffCase out;
  out.partitions = c->partitions;
  out.pattern_text = c->pattern_text;
  for (int i = 0; i < num_sources; ++i) {
    if (!keep[i]) continue;
    remap[i] = next++;
    out.sources.push_back(c->sources[i]);
  }
  for (int i = num_sources; i < n; ++i) {
    if (!keep[i]) continue;
    remap[i] = next++;
    OpSpec op = c->ops[i - num_sources];
    op.in1 = remap[op.in1];
    if (IsBinaryKind(op.kind)) op.in2 = remap[op.in2];
    if (op.in1 < 0 || (IsBinaryKind(op.kind) && op.in2 < 0)) return false;
    out.ops.push_back(std::move(op));
  }
  if (out.sources.empty()) return false;
  *c = std::move(out);
  return true;
}

/// Removes op `j`, rewiring its consumers to its primary input, then prunes
/// nodes that no longer feed the sink.
bool RemoveOp(const DiffCase& in, size_t j, DiffCase* out) {
  const int num_sources = static_cast<int>(in.sources.size());
  const int removed = num_sources + static_cast<int>(j);
  const int target = in.ops[j].in1;
  out->partitions = in.partitions;
  out->pattern_text = in.pattern_text;
  out->sources = in.sources;
  out->ops.clear();
  const auto remap = [removed, target](int node) {
    if (node == removed) node = target;
    return node > removed ? node - 1 : node;
  };
  for (size_t i = 0; i < in.ops.size(); ++i) {
    if (i == j) continue;
    OpSpec op = in.ops[i];
    op.in1 = remap(op.in1);
    if (IsBinaryKind(op.kind)) op.in2 = remap(op.in2);
    out->ops.push_back(std::move(op));
  }
  return PruneToSink(out);
}

std::string Trim(const std::string& text) {
  size_t b = text.find_first_not_of(' ');
  if (b == std::string::npos) return "";
  size_t e = text.find_last_not_of(' ');
  return text.substr(b, e - b + 1);
}

/// Top-level conjuncts of a pattern text (commas inside children '()' and
/// count '[]' brackets do not split).
std::vector<std::string> SplitConjuncts(const std::string& text) {
  std::vector<std::string> out;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || (text[i] == ',' && depth == 0)) {
      std::string item = Trim(text.substr(start, i - start));
      if (!item.empty()) out.push_back(std::move(item));
      start = i + 1;
    } else if (text[i] == '(' || text[i] == '[') {
      ++depth;
    } else if (text[i] == ')' || text[i] == ']') {
      --depth;
    }
  }
  return out;
}

/// Bare-name pattern over the first field of the sink schema — the simplest
/// query that still traces every sink row.
bool FallbackPattern(const DiffCase& c, std::string* out) {
  Result<std::vector<TypePtr>> schemas = NodeSchemas(c);
  if (!schemas.ok() || schemas.value().empty()) return false;
  const TypePtr& sink = schemas.value().back();
  if (sink == nullptr || sink->kind() != TypeKind::kStruct ||
      sink->fields().empty()) {
    return false;
  }
  *out = sink->fields()[0].name;
  return true;
}

}  // namespace

DiffCase ShrinkCase(const DiffCase& start, const FailPredicate& still_fails,
                    ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats* st = stats != nullptr ? stats : &local;
  constexpr int kMaxAttempts = 300;

  const auto accept = [&](const DiffCase& cand) {
    if (st->attempts >= kMaxAttempts) return false;
    ++st->attempts;
    if (!still_fails(cand)) return false;
    ++st->successes;
    return true;
  };

  DiffCase best = start;
  bool progress = true;
  while (progress && st->attempts < kMaxAttempts) {
    progress = false;

    // Drop one operator (last to first — trailing ops are the cheapest to
    // lose since the pattern usually survives unchanged).
    for (int j = static_cast<int>(best.ops.size()) - 1;
         j >= 0 && !progress; --j) {
      DiffCase cand;
      if (!RemoveOp(best, static_cast<size_t>(j), &cand)) continue;
      if (accept(cand)) {
        best = std::move(cand);
        progress = true;
        break;
      }
      std::string fb;
      if (FallbackPattern(cand, &fb) && fb != cand.pattern_text) {
        DiffCase cand2 = cand;
        cand2.pattern_text = fb;
        if (accept(cand2)) {
          best = std::move(cand2);
          progress = true;
        }
      }
    }
    if (progress) continue;

    // Halve a source's rows.
    for (size_t i = 0; i < best.sources.size() && !progress; ++i) {
      if (best.sources[i].rows <= 1) continue;
      DiffCase cand = best;
      cand.sources[i].rows = std::max(1, best.sources[i].rows / 2);
      if (accept(cand)) {
        best = std::move(cand);
        progress = true;
      }
    }
    if (progress) continue;

    // Reduce the pattern to a single conjunct.
    const std::vector<std::string> conjuncts =
        SplitConjuncts(best.pattern_text);
    if (conjuncts.size() > 1) {
      for (const std::string& conjunct : conjuncts) {
        DiffCase cand = best;
        cand.pattern_text = conjunct;
        if (accept(cand)) {
          best = std::move(cand);
          progress = true;
          break;
        }
      }
    }
    if (progress) continue;

    // Last resort: the bare-field fallback pattern, when strictly shorter.
    std::string fb;
    if (FallbackPattern(best, &fb) && fb != best.pattern_text &&
        fb.size() < best.pattern_text.size()) {
      DiffCase cand = best;
      cand.pattern_text = fb;
      if (accept(cand)) {
        best = std::move(cand);
        progress = true;
      }
    }
  }
  return best;
}

}  // namespace difftest
}  // namespace pebble
