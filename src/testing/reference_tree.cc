#include "testing/reference_tree.h"

#include <algorithm>

namespace pebble {
namespace difftest {

std::vector<RefKey> RefTree::KeysOf(const Path& path) {
  std::vector<RefKey> keys;
  for (const PathStep& step : path.steps()) {
    if (!step.attr().empty()) {
      keys.push_back(RefKey{step.attr(), kNoPos});
    }
    if (step.has_pos()) {
      keys.push_back(RefKey{"", step.pos});
    }
  }
  return keys;
}

RefNode* RefTree::Find(const Path& path) {
  RefNode* cur = &root_;
  for (const RefKey& k : KeysOf(path)) {
    auto it = cur->children.find(k);
    if (it == cur->children.end()) return nullptr;
    cur = &it->second;
  }
  return cur;
}

const RefNode* RefTree::Find(const Path& path) const {
  return const_cast<RefTree*>(this)->Find(path);
}

RefNode* RefTree::Ensure(const Path& path, bool contributing) {
  RefNode* cur = &root_;
  for (const RefKey& k : KeysOf(path)) {
    auto it = cur->children.find(k);
    if (it == cur->children.end()) {
      RefNode node;
      node.contributing = contributing;
      it = cur->children.emplace(k, std::move(node)).first;
    }
    cur = &it->second;
  }
  return cur;
}

void RefTree::AccessPath(const Path& path, int oid) {
  RefNode* terminal = Ensure(path, /*contributing=*/false);
  terminal->accessed_by.insert(oid);
}

namespace {

/// Detaches the subtree at keys[depth...]; childless ancestors are pruned
/// and fold their marks into the detached root. The caller's root is never
/// pruned (its fold is applied, the returned "remove me" is ignored).
bool DetachRec(RefNode* node, const std::vector<RefKey>& keys, size_t depth,
               bool* found, RefNode* out) {
  auto it = node->children.find(keys[depth]);
  if (it == node->children.end()) return false;
  if (depth + 1 == keys.size()) {
    *out = std::move(it->second);
    node->children.erase(it);
    *found = true;
  } else {
    if (DetachRec(&it->second, keys, depth + 1, found, out)) {
      node->children.erase(it);
    }
  }
  if (!*found || !node->children.empty()) return false;
  out->accessed_by.insert(node->accessed_by.begin(), node->accessed_by.end());
  out->manipulated_by.insert(node->manipulated_by.begin(),
                             node->manipulated_by.end());
  return true;
}

}  // namespace

void MergeRefNode(RefNode* dest, const RefNode& src) {
  dest->accessed_by.insert(src.accessed_by.begin(), src.accessed_by.end());
  dest->manipulated_by.insert(src.manipulated_by.begin(),
                              src.manipulated_by.end());
  dest->contributing = dest->contributing || src.contributing;
  for (const auto& [key, child] : src.children) {
    auto it = dest->children.find(key);
    if (it == dest->children.end()) {
      dest->children.emplace(key, child);
    } else {
      MergeRefNode(&it->second, child);
    }
  }
}

void RefTree::ManipulatePath(const Path& in, const Path& out, int oid) {
  std::vector<RefKey> keys = KeysOf(out);
  if (keys.empty()) return;
  bool found = false;
  RefNode detached;
  DetachRec(&root_, keys, 0, &found, &detached);
  if (!found) return;
  RefNode* target = Ensure(in, detached.contributing);
  MergeRefNode(target, detached);
  target->manipulated_by.insert(oid);
}

void RefTree::ApplyManipulations(const std::vector<RefMapping>& mappings,
                                 int oid) {
  struct Detached {
    const Path* in;
    RefNode subtree;
  };
  std::vector<Detached> detached;
  for (const RefMapping& m : mappings) {
    std::vector<RefKey> keys = KeysOf(m.out);
    if (keys.empty()) continue;
    bool found = false;
    RefNode node;
    DetachRec(&root_, keys, 0, &found, &node);
    if (found) detached.push_back(Detached{&m.in, std::move(node)});
  }
  for (Detached& d : detached) {
    RefNode* target = Ensure(*d.in, d.subtree.contributing);
    MergeRefNode(target, d.subtree);
    target->manipulated_by.insert(oid);
  }
}

void RefTree::RemoveSubtree(const Path& path) {
  std::vector<RefKey> keys = KeysOf(path);
  if (keys.empty()) return;
  RefNode* parent = &root_;
  for (size_t i = 0; i + 1 < keys.size(); ++i) {
    auto it = parent->children.find(keys[i]);
    if (it == parent->children.end()) return;
    parent = &it->second;
  }
  parent->children.erase(keys.back());
}

void RefTree::RestrictToSchema(const DataType& schema) {
  for (auto it = root_.children.begin(); it != root_.children.end();) {
    if (it->first.is_position() ||
        schema.FindField(it->first.attr) == nullptr) {
      it = root_.children.erase(it);
    } else {
      ++it;
    }
  }
}

namespace {

void MarkAllRec(RefNode* node, int oid) {
  node->manipulated_by.insert(oid);
  for (auto& [key, child] : node->children) {
    MarkAllRec(&child, oid);
  }
}

std::string JoinOids(const std::set<int>& oids) {
  std::string out;
  bool first = true;
  for (int oid : oids) {
    if (!first) out += ",";
    out += std::to_string(oid);
    first = false;
  }
  return out;
}

// Same canonical grammar as core/provenance_export.cc — duplicated on
// purpose, so the render itself is part of the differential surface.
std::string RenderNode(const RefNode& node, const std::string& key_label) {
  std::string out = key_label;
  out += node.contributing ? "|c|A{" : "|i|A{";
  out += JoinOids(node.accessed_by);
  out += "}|M{";
  out += JoinOids(node.manipulated_by);
  out += "}[";
  std::vector<std::string> children;
  children.reserve(node.children.size());
  for (const auto& [key, child] : node.children) {
    std::string label = key.is_position() ? "p:" + std::to_string(key.pos)
                                          : "a:" + key.attr;
    children.push_back(RenderNode(child, label));
  }
  std::sort(children.begin(), children.end());
  for (size_t i = 0; i < children.size(); ++i) {
    if (i > 0) out += ",";
    out += children[i];
  }
  out += "]";
  return out;
}

void AddSchemaNodesRec(RefNode* node, const DataType& type) {
  switch (type.kind()) {
    case TypeKind::kStruct:
      for (const FieldType& f : type.fields()) {
        RefKey key{f.name, kNoPos};
        auto it = node->children.find(key);
        if (it == node->children.end()) {
          RefNode child;
          child.contributing = true;
          it = node->children.emplace(key, std::move(child)).first;
        }
        AddSchemaNodesRec(&it->second, *f.type);
      }
      break;
    case TypeKind::kBag:
    case TypeKind::kSet:
      AddSchemaNodesRec(node, *type.element());
      break;
    default:
      break;
  }
}

/// Independent re-derivation of path type resolution (nullptr on any
/// failure, mirroring how ExpandAccessPath treats unresolvable paths).
TypePtr ResolveRefType(const TypePtr& root, const Path& path) {
  TypePtr cur = root;
  for (const PathStep& step : path.steps()) {
    if (cur == nullptr || cur->kind() != TypeKind::kStruct) return nullptr;
    const FieldType* f = cur->FindField(step.attr());
    if (f == nullptr) return nullptr;
    cur = f->type;
    if (step.has_pos()) {
      if (!cur->is_collection()) return nullptr;
      cur = cur->element();
    }
  }
  return cur;
}

void ExpandRec(const TypePtr& type, const Path& path, std::vector<Path>* out) {
  if (type->kind() == TypeKind::kStruct && !type->fields().empty()) {
    for (const FieldType& f : type->fields()) {
      ExpandRec(f.type, path.Child(PathStep{f.name, kNoPos}), out);
    }
    return;
  }
  out->push_back(path);
}

}  // namespace

void RefTree::MarkAllManipulated(int oid) {
  for (auto& [key, child] : root_.children) {
    MarkAllRec(&child, oid);
  }
}

void RefTree::MergeFrom(const RefTree& other) {
  MergeRefNode(&root_, other.root_);
}

std::string RefTree::Canonical() const { return RenderNode(root_, "$"); }

RefTree BuildRefSchemaTree(const TypePtr& schema) {
  RefTree tree;
  if (schema != nullptr) {
    AddSchemaNodesRec(&tree.root(), *schema);
  }
  return tree;
}

std::vector<Path> ExpandRefAccessPath(const TypePtr& schema,
                                      const Path& path) {
  std::vector<Path> out;
  TypePtr type = ResolveRefType(schema, path);
  if (type == nullptr) {
    out.push_back(path);
    return out;
  }
  ExpandRec(type, path, &out);
  return out;
}

}  // namespace difftest
}  // namespace pebble
