#include "testing/generator.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <utility>

#include "common/rng.h"
#include "workload/random_data.h"

namespace pebble {
namespace difftest {

namespace {

// ---------------------------------------------------------------------------
// Textual encodings
// ---------------------------------------------------------------------------

const char* KindName(OpSpec::Kind kind) {
  switch (kind) {
    case OpSpec::Kind::kFilter:
      return "filter";
    case OpSpec::Kind::kSelect:
      return "select";
    case OpSpec::Kind::kMap:
      return "map";
    case OpSpec::Kind::kJoin:
      return "join";
    case OpSpec::Kind::kThetaJoin:
      return "thetajoin";
    case OpSpec::Kind::kUnion:
      return "union";
    case OpSpec::Kind::kFlatten:
      return "flatten";
    case OpSpec::Kind::kGroup:
      return "group";
  }
  return "?";
}

Result<OpSpec::Kind> ParseKind(const std::string& name) {
  if (name == "filter") return OpSpec::Kind::kFilter;
  if (name == "select") return OpSpec::Kind::kSelect;
  if (name == "map") return OpSpec::Kind::kMap;
  if (name == "join") return OpSpec::Kind::kJoin;
  if (name == "thetajoin") return OpSpec::Kind::kThetaJoin;
  if (name == "union") return OpSpec::Kind::kUnion;
  if (name == "flatten") return OpSpec::Kind::kFlatten;
  if (name == "group") return OpSpec::Kind::kGroup;
  return Status::InvalidArgument("diffcase: unknown op kind '" + name + "'");
}

bool IsBinary(OpSpec::Kind kind) {
  return kind == OpSpec::Kind::kJoin || kind == OpSpec::Kind::kThetaJoin ||
         kind == OpSpec::Kind::kUnion;
}

Result<CompareOp> ParseCmp(const std::string& name) {
  if (name == "eq") return CompareOp::kEq;
  if (name == "ne") return CompareOp::kNe;
  if (name == "lt") return CompareOp::kLt;
  if (name == "le") return CompareOp::kLe;
  if (name == "gt") return CompareOp::kGt;
  if (name == "ge") return CompareOp::kGe;
  return Status::InvalidArgument("diffcase: unknown comparison '" + name +
                                 "'");
}

Result<ExprPtr> ParseLiteralExpr(const std::string& text) {
  if (text.size() < 2 || text[1] != ':') {
    return Status::InvalidArgument("diffcase: bad literal '" + text + "'");
  }
  const std::string body = text.substr(2);
  switch (text[0]) {
    case 'i':
      return Expr::LitInt(std::strtoll(body.c_str(), nullptr, 10));
    case 'd':
      return Expr::Lit(Value::Double(std::strtod(body.c_str(), nullptr)));
    case 's':
      return Expr::LitString(body);
    case 'b':
      return Expr::LitBool(body == "1" || body == "true");
    default:
      return Status::InvalidArgument("diffcase: bad literal '" + text + "'");
  }
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      if (i > start) out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

/// Splits on top-level ';' only (braces nest for wrapped projections).
std::vector<std::string> SplitProjectionItems(const std::string& text) {
  std::vector<std::string> out;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || (text[i] == ';' && depth == 0)) {
      if (i > start) out.push_back(text.substr(start, i - start));
      start = i + 1;
    } else if (text[i] == '{') {
      ++depth;
    } else if (text[i] == '}') {
      --depth;
    }
  }
  return out;
}

Result<std::vector<Projection>> ParseProjectionList(const std::string& text) {
  std::vector<Projection> out;
  for (const std::string& item : SplitProjectionItems(text)) {
    const size_t eq = item.find('=');
    const size_t brace = item.find('{');
    if (brace != std::string::npos &&
        (eq == std::string::npos || brace < eq)) {
      if (item.empty() || item.back() != '}') {
        return Status::InvalidArgument("diffcase: bad projection '" + item +
                                       "'");
      }
      PEBBLE_ASSIGN_OR_RETURN(
          std::vector<Projection> children,
          ParseProjectionList(item.substr(brace + 1,
                                          item.size() - brace - 2)));
      out.push_back(
          Projection::Nested(item.substr(0, brace), std::move(children)));
    } else if (eq != std::string::npos && eq > 0) {
      const std::string path_text = item.substr(eq + 1);
      PEBBLE_ASSIGN_OR_RETURN(Path parsed, Path::Parse(path_text));
      (void)parsed;
      out.push_back(Projection::Leaf(item.substr(0, eq), path_text));
    } else {
      return Status::InvalidArgument("diffcase: bad projection '" + item +
                                     "'");
    }
  }
  if (out.empty()) {
    return Status::InvalidArgument("diffcase: empty projection list");
  }
  return out;
}

Result<std::vector<GroupKey>> ParseGroupKeys(const std::string& text) {
  std::vector<GroupKey> keys;
  for (const std::string& item : Split(text, ',')) {
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
      return Status::InvalidArgument("diffcase: bad group key '" + item +
                                     "'");
    }
    PEBBLE_ASSIGN_OR_RETURN(Path parsed, Path::Parse(item.substr(0, eq)));
    (void)parsed;
    keys.push_back(GroupKey::As(item.substr(0, eq), item.substr(eq + 1)));
  }
  if (keys.empty()) {
    return Status::InvalidArgument("diffcase: empty group key list");
  }
  return keys;
}

Result<std::vector<AggSpec>> ParseAggSpecs(const std::string& text) {
  std::vector<AggSpec> aggs;
  for (const std::string& item : Split(text, ',')) {
    const size_t c1 = item.find(':');
    const size_t c2 = c1 == std::string::npos ? c1 : item.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      return Status::InvalidArgument("diffcase: bad aggregate '" + item +
                                     "'");
    }
    const std::string kind = item.substr(0, c1);
    const std::string input = item.substr(c1 + 1, c2 - c1 - 1);
    const std::string output = item.substr(c2 + 1);
    if (output.empty()) {
      return Status::InvalidArgument("diffcase: aggregate without output '" +
                                     item + "'");
    }
    if (kind == "count") {
      aggs.push_back(AggSpec::Count(output));
      continue;
    }
    PEBBLE_ASSIGN_OR_RETURN(Path parsed, Path::Parse(input));
    (void)parsed;
    if (kind == "sum") {
      aggs.push_back(AggSpec::Sum(input, output));
    } else if (kind == "min") {
      aggs.push_back(AggSpec::Min(input, output));
    } else if (kind == "max") {
      aggs.push_back(AggSpec::Max(input, output));
    } else if (kind == "avg") {
      aggs.push_back(AggSpec::Avg(input, output));
    } else if (kind == "collect_list") {
      aggs.push_back(AggSpec::CollectList(input, output));
    } else if (kind == "collect_set") {
      aggs.push_back(AggSpec::CollectSet(input, output));
    } else {
      return Status::InvalidArgument("diffcase: unknown aggregate kind '" +
                                     kind + "'");
    }
  }
  if (aggs.empty()) {
    return Status::InvalidArgument("diffcase: empty aggregate list");
  }
  return aggs;
}

Result<std::vector<Path>> ParsePathList(const std::string& text) {
  std::vector<Path> out;
  for (const std::string& item : Split(text, ',')) {
    PEBBLE_ASSIGN_OR_RETURN(Path path, Path::Parse(item));
    out.push_back(std::move(path));
  }
  if (out.empty()) {
    return Status::InvalidArgument("diffcase: empty path list");
  }
  return out;
}

// ---------------------------------------------------------------------------
// Lowering OpSpecs to engine artifacts
// ---------------------------------------------------------------------------

Result<ExprPtr> BuildFilterPredicate(const OpSpec& op) {
  PEBBLE_ASSIGN_OR_RETURN(CompareOp cmp, ParseCmp(op.cmp));
  PEBBLE_ASSIGN_OR_RETURN(Path col, Path::Parse(op.path));
  PEBBLE_ASSIGN_OR_RETURN(ExprPtr lit, ParseLiteralExpr(op.literal));
  return Expr::Compare(cmp, Expr::ColPath(std::move(col)), std::move(lit));
}

Result<ExprPtr> BuildThetaPredicate(const OpSpec& op) {
  PEBBLE_ASSIGN_OR_RETURN(CompareOp cmp, ParseCmp(op.cmp));
  PEBBLE_ASSIGN_OR_RETURN(Path left, Path::Parse(op.path));
  PEBBLE_ASSIGN_OR_RETURN(Path right, Path::Parse(op.rpath));
  return Expr::Compare(cmp, Expr::ColPath(std::move(left)),
                       Expr::ColPath(std::move(right)));
}

struct MapArtifacts {
  MapFn fn;
  TypePtr declared;
  std::string label;
};

Result<MapArtifacts> BuildMapArtifacts(const OpSpec& op,
                                       const TypePtr& in_schema) {
  if (in_schema == nullptr || in_schema->kind() != TypeKind::kStruct) {
    return Status::InvalidArgument("diffcase: map over a non-struct input");
  }
  MapArtifacts out;
  if (op.variant == "tag") {
    if (op.attr.empty()) {
      return Status::InvalidArgument("diffcase: map tag without attribute");
    }
    const std::string attr = op.attr;
    out.fn = [attr](const Value& item) -> Result<ValuePtr> {
      if (!item.is_struct()) {
        return Status::TypeError("map tag expects a struct item");
      }
      return Value::StructWith(item, attr, Value::Int(1));
    };
    std::vector<FieldType> fields = in_schema->fields();
    fields.push_back(FieldType{attr, DataType::Int()});
    out.declared = DataType::Struct(std::move(fields));
    out.label = "map(tag:" + attr + ")";
  } else if (op.variant == "identity") {
    out.fn = [](const Value& item) -> Result<ValuePtr> {
      if (!item.is_struct()) {
        return Status::TypeError("map identity expects a struct item");
      }
      return Value::StructFromRefs(item.fields());
    };
    out.declared = in_schema;
    out.label = "map(identity)";
  } else {
    return Status::InvalidArgument("diffcase: unknown map variant '" +
                                   op.variant + "'");
  }
  return out;
}

/// The output schema of one OpSpec, recomputed through the engine's own
/// InferSchema on a throwaway operator instance — the single source of truth
/// for schema tracking in both the generator and BuildCase, so shrunk or
/// hand-edited cases can never carry stale schema state.
Result<TypePtr> OpOutputSchema(const OpSpec& op,
                               const std::vector<TypePtr>& in_schemas) {
  switch (op.kind) {
    case OpSpec::Kind::kFilter: {
      PEBBLE_ASSIGN_OR_RETURN(ExprPtr pred, BuildFilterPredicate(op));
      return FilterOp(std::move(pred)).InferSchema(in_schemas);
    }
    case OpSpec::Kind::kSelect: {
      PEBBLE_ASSIGN_OR_RETURN(std::vector<Projection> projs,
                              ParseProjectionList(op.projections));
      return SelectOp(std::move(projs)).InferSchema(in_schemas);
    }
    case OpSpec::Kind::kMap: {
      PEBBLE_ASSIGN_OR_RETURN(MapArtifacts m,
                              BuildMapArtifacts(op, in_schemas[0]));
      return m.declared;
    }
    case OpSpec::Kind::kJoin: {
      PEBBLE_ASSIGN_OR_RETURN(std::vector<Path> lk, ParsePathList(op.keys));
      PEBBLE_ASSIGN_OR_RETURN(std::vector<Path> rk, ParsePathList(op.rkeys));
      return JoinOp(std::move(lk), std::move(rk)).InferSchema(in_schemas);
    }
    case OpSpec::Kind::kThetaJoin: {
      PEBBLE_ASSIGN_OR_RETURN(ExprPtr phi, BuildThetaPredicate(op));
      return JoinOp::Theta(std::move(phi))->InferSchema(in_schemas);
    }
    case OpSpec::Kind::kUnion:
      return UnionOp().InferSchema(in_schemas);
    case OpSpec::Kind::kFlatten: {
      PEBBLE_ASSIGN_OR_RETURN(Path col, Path::Parse(op.path));
      return FlattenOp(std::move(col), op.attr).InferSchema(in_schemas);
    }
    case OpSpec::Kind::kGroup: {
      PEBBLE_ASSIGN_OR_RETURN(std::vector<GroupKey> keys,
                              ParseGroupKeys(op.keys));
      PEBBLE_ASSIGN_OR_RETURN(std::vector<AggSpec> aggs,
                              ParseAggSpecs(op.aggs));
      return GroupAggregateOp(std::move(keys), std::move(aggs))
          .InferSchema(in_schemas);
    }
  }
  return Status::Internal("diffcase: unreachable op kind");
}

Status ValidateWiring(const DiffCase& c) {
  if (c.partitions < 1) {
    return Status::InvalidArgument("diffcase: partitions must be >= 1");
  }
  if (c.sources.empty()) {
    return Status::InvalidArgument("diffcase: no sources");
  }
  for (size_t j = 0; j < c.ops.size(); ++j) {
    const OpSpec& op = c.ops[j];
    const int node = static_cast<int>(c.sources.size() + j);
    if (op.in1 < 0 || op.in1 >= node) {
      return Status::InvalidArgument("diffcase: op " + std::to_string(j) +
                                     " input out of range");
    }
    if (IsBinary(op.kind) && (op.in2 < 0 || op.in2 >= node)) {
      return Status::InvalidArgument("diffcase: op " + std::to_string(j) +
                                     " second input out of range");
    }
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// DiffCase
// ---------------------------------------------------------------------------

bool DiffCase::HasExchange() const {
  for (const OpSpec& op : ops) {
    if (IsBinary(op.kind) || op.kind == OpSpec::Kind::kGroup) return true;
  }
  return false;
}

std::string DiffCase::Serialize() const {
  std::ostringstream out;
  out << "pebble-diffcase v1\n";
  out << "partitions " << partitions << "\n";
  for (const SourceSpec& s : sources) {
    out << "source " << s.name << " " << s.seed << " " << s.rows << " "
        << (s.schema != nullptr ? s.schema->ToString() : "?") << "\n";
  }
  for (const OpSpec& op : ops) {
    out << "op " << KindName(op.kind) << " " << op.in1;
    if (IsBinary(op.kind)) out << " " << op.in2;
    if (!op.path.empty()) out << " p=" << op.path;
    if (!op.cmp.empty()) out << " c=" << op.cmp;
    if (!op.literal.empty()) out << " l=" << op.literal;
    if (!op.rpath.empty()) out << " r=" << op.rpath;
    if (!op.projections.empty()) out << " proj=" << op.projections;
    if (!op.variant.empty()) out << " v=" << op.variant;
    if (!op.attr.empty()) out << " a=" << op.attr;
    if (!op.keys.empty()) out << " k=" << op.keys;
    if (!op.rkeys.empty()) out << " rk=" << op.rkeys;
    if (!op.aggs.empty()) out << " agg=" << op.aggs;
    out << "\n";
  }
  if (!pattern_text.empty()) out << "pattern " << pattern_text << "\n";
  return out.str();
}

Result<DiffCase> DiffCase::Parse(const std::string& text) {
  DiffCase c;
  c.partitions = 2;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      if (line != "pebble-diffcase v1") {
        return Status::InvalidArgument(
            "diffcase: missing 'pebble-diffcase v1' header");
      }
      saw_header = true;
      continue;
    }
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    const auto err = [&](const std::string& msg) {
      return Status::InvalidArgument("diffcase line " +
                                     std::to_string(lineno) + ": " + msg);
    };
    if (tag == "partitions") {
      if (!(ls >> c.partitions)) return err("bad partition count");
    } else if (tag == "source") {
      SourceSpec s;
      std::string schema_text;
      if (!(ls >> s.name >> s.seed >> s.rows >> schema_text)) {
        return err("want: source <name> <seed> <rows> <schema>");
      }
      PEBBLE_ASSIGN_OR_RETURN(s.schema, ParseDataType(schema_text));
      if (s.schema->kind() != TypeKind::kStruct) {
        return err("source schema must be a struct");
      }
      if (s.rows < 0) return err("negative row count");
      c.sources.push_back(std::move(s));
    } else if (tag == "op") {
      OpSpec op;
      std::string kind_name;
      if (!(ls >> kind_name)) return err("missing op kind");
      PEBBLE_ASSIGN_OR_RETURN(op.kind, ParseKind(kind_name));
      if (!(ls >> op.in1)) return err("missing op input");
      if (IsBinary(op.kind) && !(ls >> op.in2)) {
        return err("missing second op input");
      }
      std::string kv;
      while (ls >> kv) {
        const size_t eq = kv.find('=');
        if (eq == std::string::npos) return err("bad op argument '" + kv +
                                                "'");
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        if (key == "p") {
          op.path = value;
        } else if (key == "c") {
          op.cmp = value;
        } else if (key == "l") {
          op.literal = value;
        } else if (key == "r") {
          op.rpath = value;
        } else if (key == "proj") {
          op.projections = value;
        } else if (key == "v") {
          op.variant = value;
        } else if (key == "a") {
          op.attr = value;
        } else if (key == "k") {
          op.keys = value;
        } else if (key == "rk") {
          op.rkeys = value;
        } else if (key == "agg") {
          op.aggs = value;
        } else {
          return err("unknown op argument key '" + key + "'");
        }
      }
      c.ops.push_back(std::move(op));
    } else if (tag == "pattern") {
      std::string rest;
      std::getline(ls, rest);
      size_t start = rest.find_first_not_of(' ');
      c.pattern_text =
          start == std::string::npos ? std::string() : rest.substr(start);
    } else {
      return err("unknown line tag '" + tag + "'");
    }
  }
  if (!saw_header) {
    return Status::InvalidArgument("diffcase: empty input");
  }
  PEBBLE_RETURN_NOT_OK(ValidateWiring(c));
  return c;
}

// ---------------------------------------------------------------------------
// BuildCase
// ---------------------------------------------------------------------------

Result<std::vector<TypePtr>> NodeSchemas(const DiffCase& c) {
  PEBBLE_RETURN_NOT_OK(ValidateWiring(c));
  std::vector<TypePtr> schemas;
  schemas.reserve(c.NumNodes());
  for (const SourceSpec& s : c.sources) schemas.push_back(s.schema);
  for (const OpSpec& op : c.ops) {
    std::vector<TypePtr> ins;
    ins.push_back(schemas[op.in1]);
    if (IsBinary(op.kind)) ins.push_back(schemas[op.in2]);
    PEBBLE_ASSIGN_OR_RETURN(TypePtr out, OpOutputSchema(op, ins));
    schemas.push_back(std::move(out));
  }
  return schemas;
}

Result<BuiltCase> BuildCase(const DiffCase& c) {
  PEBBLE_RETURN_NOT_OK(ValidateWiring(c));

  PipelineBuilder builder;
  std::vector<int> oids;
  std::vector<TypePtr> schemas;
  oids.reserve(c.NumNodes());
  schemas.reserve(c.NumNodes());

  for (const SourceSpec& s : c.sources) {
    auto data = std::make_shared<const std::vector<ValuePtr>>(
        workload::RandomDataset(s.seed, s.schema, s.rows));
    oids.push_back(builder.Scan(s.name, s.schema, std::move(data)));
    schemas.push_back(s.schema);
  }

  for (const OpSpec& op : c.ops) {
    std::vector<TypePtr> in_schemas;
    in_schemas.push_back(schemas[op.in1]);
    if (IsBinary(op.kind)) in_schemas.push_back(schemas[op.in2]);
    PEBBLE_ASSIGN_OR_RETURN(TypePtr out_schema,
                            OpOutputSchema(op, in_schemas));

    int oid = -1;
    switch (op.kind) {
      case OpSpec::Kind::kFilter: {
        PEBBLE_ASSIGN_OR_RETURN(ExprPtr pred, BuildFilterPredicate(op));
        oid = builder.Filter(oids[op.in1], std::move(pred));
        break;
      }
      case OpSpec::Kind::kSelect: {
        PEBBLE_ASSIGN_OR_RETURN(std::vector<Projection> projs,
                                ParseProjectionList(op.projections));
        oid = builder.Select(oids[op.in1], std::move(projs));
        break;
      }
      case OpSpec::Kind::kMap: {
        PEBBLE_ASSIGN_OR_RETURN(MapArtifacts m,
                                BuildMapArtifacts(op, in_schemas[0]));
        oid = builder.Map(oids[op.in1], std::move(m.fn),
                          std::move(m.declared), std::move(m.label));
        break;
      }
      case OpSpec::Kind::kJoin: {
        oid = builder.Join(oids[op.in1], oids[op.in2], Split(op.keys, ','),
                           Split(op.rkeys, ','));
        break;
      }
      case OpSpec::Kind::kThetaJoin: {
        PEBBLE_ASSIGN_OR_RETURN(ExprPtr phi, BuildThetaPredicate(op));
        oid = builder.ThetaJoin(oids[op.in1], oids[op.in2], std::move(phi));
        break;
      }
      case OpSpec::Kind::kUnion: {
        oid = builder.Union(oids[op.in1], oids[op.in2]);
        break;
      }
      case OpSpec::Kind::kFlatten: {
        oid = builder.Flatten(oids[op.in1], op.path, op.attr);
        break;
      }
      case OpSpec::Kind::kGroup: {
        PEBBLE_ASSIGN_OR_RETURN(std::vector<GroupKey> keys,
                                ParseGroupKeys(op.keys));
        PEBBLE_ASSIGN_OR_RETURN(std::vector<AggSpec> aggs,
                                ParseAggSpecs(op.aggs));
        oid = builder.GroupAggregate(oids[op.in1], std::move(keys),
                                     std::move(aggs));
        break;
      }
    }
    oids.push_back(oid);
    schemas.push_back(std::move(out_schema));
  }

  if (c.pattern_text.empty()) {
    return Status::InvalidArgument("diffcase: missing pattern");
  }
  PEBBLE_ASSIGN_OR_RETURN(Pipeline pipeline, builder.Build(oids.back()));
  PEBBLE_ASSIGN_OR_RETURN(TreePattern pattern,
                          TreePattern::Parse(c.pattern_text));
  return BuiltCase{std::move(pipeline), std::move(pattern)};
}

// ---------------------------------------------------------------------------
// GenerateCase
// ---------------------------------------------------------------------------

namespace {

struct FieldInfo {
  std::string name;
  TypePtr type;
};

bool IsScalarKind(TypeKind kind) {
  return kind == TypeKind::kInt || kind == TypeKind::kDouble ||
         kind == TypeKind::kString;
}

std::vector<FieldInfo> TopFields(const TypePtr& schema) {
  std::vector<FieldInfo> out;
  if (schema != nullptr && schema->kind() == TypeKind::kStruct) {
    for (const FieldType& f : schema->fields()) {
      out.push_back(FieldInfo{f.name, f.type});
    }
  }
  return out;
}

std::vector<FieldInfo> FieldsOfKind(const std::vector<FieldInfo>& fields,
                                    TypeKind kind) {
  std::vector<FieldInfo> out;
  for (const FieldInfo& f : fields) {
    if (f.type->kind() == kind) out.push_back(f);
  }
  return out;
}

std::vector<FieldInfo> ScalarFields(const std::vector<FieldInfo>& fields) {
  std::vector<FieldInfo> out;
  for (const FieldInfo& f : fields) {
    if (IsScalarKind(f.type->kind())) out.push_back(f);
  }
  return out;
}

/// Bag fields whose elements are structs (flatten + child patterns) and bag
/// fields of scalars, separately.
std::vector<FieldInfo> StructBagFields(const std::vector<FieldInfo>& fields) {
  std::vector<FieldInfo> out;
  for (const FieldInfo& f : fields) {
    if (f.type->kind() == TypeKind::kBag &&
        f.type->element()->kind() == TypeKind::kStruct &&
        !f.type->element()->fields().empty()) {
      out.push_back(f);
    }
  }
  return out;
}

std::vector<FieldInfo> ScalarBagFields(const std::vector<FieldInfo>& fields) {
  std::vector<FieldInfo> out;
  for (const FieldInfo& f : fields) {
    if (f.type->kind() == TypeKind::kBag &&
        IsScalarKind(f.type->element()->kind())) {
      out.push_back(f);
    }
  }
  return out;
}

std::string FormatHalf(int64_t halves) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(halves) * 0.5);
  return buf;
}

/// Literal in the OpSpec encoding for a scalar of `kind`, drawn from the
/// same tiny domains random_data.h fills values from (so predicates hit).
std::string RandomLiteralFor(Rng* rng, TypeKind kind) {
  switch (kind) {
    case TypeKind::kInt:
      return "i:" + std::to_string(rng->NextInt(0, 7));
    case TypeKind::kDouble:
      return "d:" + FormatHalf(rng->NextInt(0, 14));
    case TypeKind::kString:
      return "s:s" + std::to_string(rng->NextBounded(5));
    default:
      return "i:0";
  }
}

std::string RandomCmp(Rng* rng, TypeKind kind) {
  static const std::vector<std::string> kAll = {"eq", "ne", "lt",
                                                "le", "gt", "ge"};
  static const std::vector<std::string> kEquality = {"eq", "ne"};
  return kind == TypeKind::kString ? rng->Pick(kEquality) : rng->Pick(kAll);
}

/// Pattern-syntax predicate suffix for a scalar of `kind` ("" = bare name).
std::string RandomPatternPredicate(Rng* rng, TypeKind kind) {
  static const std::vector<std::string> kOps = {"=", "!=", "<",
                                                "<=", ">", ">="};
  switch (kind) {
    case TypeKind::kInt:
      if (rng->NextBool(0.2)) return "";
      return rng->Pick(kOps) + std::to_string(rng->NextInt(0, 7));
    case TypeKind::kDouble:
      return rng->Pick(kOps) + FormatHalf(rng->NextInt(0, 14));
    case TypeKind::kString:
      if (rng->NextBool(0.2)) return "";
      return (rng->NextBool(0.5) ? "=" : "!=") + std::string("'s") +
             std::to_string(rng->NextBounded(5)) + "'";
    default:
      return "";
  }
}

/// One conjunct over a scalar field (used at top level, inside struct and
/// collection children, and behind the descendant axis).
std::string ScalarConjunct(Rng* rng, const FieldInfo& f) {
  return f.name + RandomPatternPredicate(rng, f.type->kind());
}

std::string RandomCount(Rng* rng) {
  switch (rng->NextBounded(3)) {
    case 0:
      return "[1,2]";
    case 1:
      return "[2,*]";
    default:
      return "[1,*]";
  }
}

/// One random root conjunct over the sink schema. Returns "" when the field
/// shape offers nothing (never happens with generated schemas, but be safe).
std::string RootConjunct(Rng* rng, const FieldInfo& f) {
  const TypeKind kind = f.type->kind();
  if (IsScalarKind(kind)) {
    return ScalarConjunct(rng, f);
  }
  if (kind == TypeKind::kBag || kind == TypeKind::kSet) {
    const TypePtr elem = f.type->element();
    if (elem->kind() == TypeKind::kStruct && !elem->fields().empty()) {
      std::vector<FieldInfo> inner = ScalarFields(TopFields(elem));
      if (inner.empty()) return f.name;
      std::string text = f.name;
      if (rng->NextBool(0.35)) text += RandomCount(rng);
      text += "(" + ScalarConjunct(rng, rng->Pick(inner)) + ")";
      return text;
    }
    if (IsScalarKind(elem->kind())) {
      std::string text =
          f.name + RandomPatternPredicate(rng, elem->kind());
      if (rng->NextBool(0.3)) text += RandomCount(rng);
      return text;
    }
    return f.name;
  }
  if (kind == TypeKind::kStruct) {
    std::vector<FieldInfo> inner = ScalarFields(TopFields(f.type));
    if (inner.empty()) return f.name;
    return f.name + "(" + ScalarConjunct(rng, rng->Pick(inner)) + ")";
  }
  return f.name;
}

/// Scalar leaves reachable anywhere below the sink's top level, for the
/// descendant axis (name only — that is all '//' matches on).
void CollectDescendantLeaves(const TypePtr& type,
                             std::vector<FieldInfo>* out) {
  switch (type->kind()) {
    case TypeKind::kStruct:
      for (const FieldType& f : type->fields()) {
        if (IsScalarKind(f.type->kind())) {
          out->push_back(FieldInfo{f.name, f.type});
        } else {
          CollectDescendantLeaves(f.type, out);
        }
      }
      break;
    case TypeKind::kBag:
    case TypeKind::kSet:
      CollectDescendantLeaves(type->element(), out);
      break;
    default:
      break;
  }
}

std::string GeneratePatternText(Rng* rng, const TypePtr& sink) {
  std::vector<FieldInfo> fields = TopFields(sink);
  if (fields.empty()) return "";
  std::vector<std::string> conjuncts;
  conjuncts.push_back(RootConjunct(rng, rng->Pick(fields)));
  if (rng->NextBool(0.35)) {
    conjuncts.push_back(RootConjunct(rng, rng->Pick(fields)));
  }
  if (rng->NextBool(0.25)) {
    std::vector<FieldInfo> leaves;
    CollectDescendantLeaves(sink, &leaves);
    if (!leaves.empty()) {
      conjuncts.push_back("//" + ScalarConjunct(rng, rng->Pick(leaves)));
    }
  }
  std::string out;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (i > 0) out += ", ";
    out += conjuncts[i];
  }
  return out;
}

/// Random source schema: always a top-level Int and String field (so joins,
/// filters and grouping always have material), plus 1-3 extras drawn from
/// the full nested repertoire. `counter` keeps names globally unique so the
/// two join sides never collide (JoinOp rejects shared attribute names).
TypePtr RandomSchema(Rng* rng, int* counter) {
  const auto fresh = [counter] {
    return "f" + std::to_string((*counter)++);
  };
  std::vector<FieldType> fields;
  fields.push_back(FieldType{fresh(), DataType::Int()});
  fields.push_back(FieldType{fresh(), DataType::String()});
  const int extras = 1 + static_cast<int>(rng->NextBounded(3));
  for (int i = 0; i < extras; ++i) {
    switch (rng->NextBounded(6)) {
      case 0:
        fields.push_back(FieldType{fresh(), DataType::Int()});
        break;
      case 1:
        fields.push_back(FieldType{fresh(), DataType::Double()});
        break;
      case 2:
        fields.push_back(FieldType{fresh(), DataType::String()});
        break;
      case 3: {
        std::vector<FieldType> inner;
        inner.push_back(FieldType{fresh(), DataType::Int()});
        inner.push_back(FieldType{fresh(), DataType::String()});
        fields.push_back(
            FieldType{fresh(), DataType::Bag(DataType::Struct(inner))});
        break;
      }
      case 4:
        fields.push_back(FieldType{fresh(), DataType::Bag(DataType::Int())});
        break;
      default: {
        std::vector<FieldType> inner;
        inner.push_back(FieldType{fresh(), DataType::Int()});
        inner.push_back(FieldType{fresh(), DataType::String()});
        fields.push_back(FieldType{fresh(), DataType::Struct(inner)});
        break;
      }
    }
  }
  return DataType::Struct(std::move(fields));
}

/// Common scalar kind present at the top level of both schemas, in int,
/// string, double preference order; kNull when none.
TypeKind CommonScalarKind(const TypePtr& left, const TypePtr& right) {
  const std::vector<FieldInfo> lf = TopFields(left);
  const std::vector<FieldInfo> rf = TopFields(right);
  for (TypeKind kind :
       {TypeKind::kInt, TypeKind::kString, TypeKind::kDouble}) {
    if (!FieldsOfKind(lf, kind).empty() && !FieldsOfKind(rf, kind).empty()) {
      return kind;
    }
  }
  return TypeKind::kNull;
}

/// A join (equi when the sides share a scalar kind, theta otherwise)
/// between `left_node` and `right_node`.
OpSpec MakeJoinSpec(Rng* rng, int left_node, const TypePtr& left_schema,
                    int right_node, const TypePtr& right_schema) {
  OpSpec op;
  op.in1 = left_node;
  op.in2 = right_node;
  const TypeKind kind = CommonScalarKind(left_schema, right_schema);
  if (kind != TypeKind::kNull && rng->NextBool(0.85)) {
    op.kind = OpSpec::Kind::kJoin;
    op.keys = rng->Pick(FieldsOfKind(TopFields(left_schema), kind)).name;
    op.rkeys = rng->Pick(FieldsOfKind(TopFields(right_schema), kind)).name;
    return op;
  }
  op.kind = OpSpec::Kind::kThetaJoin;
  const std::vector<FieldInfo> ls = ScalarFields(TopFields(left_schema));
  const std::vector<FieldInfo> rs = ScalarFields(TopFields(right_schema));
  const FieldInfo& lf = rng->Pick(ls);
  // Prefer a same-kind right field; cross-kind comparisons just evaluate to
  // null and produce an empty (but still well-defined) join.
  std::vector<FieldInfo> rk = FieldsOfKind(TopFields(right_schema),
                                           lf.type->kind());
  const FieldInfo& rf = rk.empty() ? rng->Pick(rs) : rng->Pick(rk);
  op.path = lf.name;
  op.rpath = rf.name;
  op.cmp = RandomCmp(rng, lf.type->kind());
  return op;
}

OpSpec MakeFilterSpec(Rng* rng, int node, const TypePtr& schema) {
  OpSpec op;
  op.kind = OpSpec::Kind::kFilter;
  op.in1 = node;
  const FieldInfo f = rng->Pick(ScalarFields(TopFields(schema)));
  op.path = f.name;
  op.cmp = RandomCmp(rng, f.type->kind());
  op.literal = RandomLiteralFor(rng, f.type->kind());
  return op;
}

OpSpec MakeSelectSpec(Rng* rng, int node, const TypePtr& schema,
                      int* counter) {
  OpSpec op;
  op.kind = OpSpec::Kind::kSelect;
  op.in1 = node;
  const std::vector<FieldInfo> fields = TopFields(schema);
  const std::vector<FieldInfo> scalars = ScalarFields(fields);

  std::vector<std::string> items;
  bool kept_scalar = false;
  for (const FieldInfo& f : fields) {
    const bool scalar = IsScalarKind(f.type->kind());
    if (rng->NextBool(0.7)) {
      items.push_back(f.name + "=" + f.name);
      kept_scalar = kept_scalar || scalar;
    }
  }
  // The chain invariant: every node keeps at least one top-level scalar
  // (filters, group keys and join keys all need one downstream).
  if (!kept_scalar && !scalars.empty()) {
    const FieldInfo& f = rng->Pick(scalars);
    items.push_back(f.name + "=" + f.name);
  }
  if (items.empty()) {
    const FieldInfo& f = fields[0];
    items.push_back(f.name + "=" + f.name);
  }
  // Occasionally regroup two scalars under a fresh struct (the select
  // restructuring rule of Tab. 5 — manipulations with nested out paths).
  if (scalars.size() >= 2 && rng->NextBool(0.3)) {
    const std::string wrap = "f" + std::to_string((*counter)++);
    const FieldInfo& a = scalars[rng->NextBounded(scalars.size())];
    const FieldInfo& b = scalars[rng->NextBounded(scalars.size())];
    items.push_back(wrap + "{" + a.name + "=" + a.name + ";" + b.name + "=" +
                    b.name + "}");
  }
  // Occasionally pull a nested-struct leaf up to the top level.
  const std::vector<FieldInfo> structs =
      FieldsOfKind(fields, TypeKind::kStruct);
  if (!structs.empty() && rng->NextBool(0.4)) {
    const FieldInfo& st = rng->Pick(structs);
    const std::vector<FieldInfo> inner = ScalarFields(TopFields(st.type));
    if (!inner.empty()) {
      const FieldInfo& leaf = rng->Pick(inner);
      items.push_back("f" + std::to_string((*counter)++) + "=" + st.name +
                      "." + leaf.name);
    }
  }
  std::string text;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) text += ";";
    text += items[i];
  }
  op.projections = text;
  return op;
}

OpSpec MakeMapSpec(Rng* rng, int node, int* counter) {
  OpSpec op;
  op.kind = OpSpec::Kind::kMap;
  op.in1 = node;
  if (rng->NextBool(0.3)) {
    op.variant = "tag";
    op.attr = "f" + std::to_string((*counter)++);
  } else {
    op.variant = "identity";
  }
  return op;
}

OpSpec MakeFlattenSpec(Rng* rng, int node, const TypePtr& schema,
                       int* counter) {
  OpSpec op;
  op.kind = OpSpec::Kind::kFlatten;
  op.in1 = node;
  std::vector<FieldInfo> bags = StructBagFields(TopFields(schema));
  for (const FieldInfo& f : ScalarBagFields(TopFields(schema))) {
    bags.push_back(f);
  }
  op.path = rng->Pick(bags).name;
  op.attr = "f" + std::to_string((*counter)++);
  return op;
}

/// `allow_collect` gates the order-sensitive nesting aggregates: downstream
/// of an exchange (join/union/group) the member order seen by collect_list
/// depends on the partitioning (Spark-like shuffle nondeterminism), so the
/// partition-invariance stages would flag a non-bug. The exact 1-partition
/// leg still exercises collect aggregates against the oracle whenever the
/// chain below is exchange-free.
OpSpec MakeGroupSpec(Rng* rng, int node, const TypePtr& schema,
                     int* counter, bool allow_collect) {
  OpSpec op;
  op.kind = OpSpec::Kind::kGroup;
  op.in1 = node;
  const std::vector<FieldInfo> scalars = ScalarFields(TopFields(schema));
  const auto fresh = [counter] {
    return "f" + std::to_string((*counter)++);
  };

  std::vector<FieldInfo> keys;
  keys.push_back(rng->Pick(scalars));
  if (scalars.size() >= 2 && rng->NextBool(0.3)) {
    const FieldInfo& second = rng->Pick(scalars);
    if (second.name != keys[0].name) keys.push_back(second);
  }
  std::string key_text;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) key_text += ",";
    key_text += keys[i].name + "=" + keys[i].name;
  }
  op.keys = key_text;

  std::vector<std::string> aggs;
  const int num_aggs = 1 + static_cast<int>(rng->NextBounded(2));
  for (int i = 0; i < num_aggs; ++i) {
    const FieldInfo& f = rng->Pick(scalars);
    const TypeKind kind = f.type->kind();
    std::vector<std::string> cands = {"count", "min", "max"};
    if (allow_collect) {
      cands.push_back("collect_list");
      cands.push_back("collect_set");
    }
    if (kind == TypeKind::kInt || kind == TypeKind::kDouble) {
      cands.push_back("sum");
      cands.push_back("avg");
    }
    const std::string agg_kind = rng->Pick(cands);
    const std::string input = agg_kind == "count" ? "" : f.name;
    aggs.push_back(agg_kind + ":" + input + ":" + fresh());
  }
  std::string agg_text;
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i > 0) agg_text += ",";
    agg_text += aggs[i];
  }
  op.aggs = agg_text;
  return op;
}

}  // namespace

DiffCase GenerateCase(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xd1ffca5eULL);
  DiffCase c;
  c.partitions = 2 + static_cast<int>(rng.NextBounded(3));

  int counter = 0;
  const int num_sources = rng.NextBool(0.5) ? 2 : 1;
  for (int i = 0; i < num_sources; ++i) {
    SourceSpec s;
    s.name = "src" + std::to_string(i);
    s.seed = seed * 31 + static_cast<uint64_t>(i) + 1;
    s.rows = 6 + static_cast<int>(rng.NextBounded(15));
    s.schema = RandomSchema(&rng, &counter);
    c.sources.push_back(std::move(s));
  }

  // Schema per node, maintained through the engine's own InferSchema, and
  // whether an exchange feeds the node (gates order-sensitive aggregates).
  std::vector<TypePtr> schemas;
  std::vector<bool> exchanged;
  for (const SourceSpec& s : c.sources) {
    schemas.push_back(s.schema);
    exchanged.push_back(false);
  }

  const auto append = [&](OpSpec op) -> bool {
    std::vector<TypePtr> ins;
    ins.push_back(schemas[op.in1]);
    if (IsBinary(op.kind)) ins.push_back(schemas[op.in2]);
    Result<TypePtr> out = OpOutputSchema(op, ins);
    if (!out.ok()) return false;  // defensive: drop the candidate
    const bool taint = IsBinary(op.kind) ||
                       op.kind == OpSpec::Kind::kGroup ||
                       exchanged[op.in1];
    c.ops.push_back(std::move(op));
    schemas.push_back(std::move(out).value());
    exchanged.push_back(taint);
    return true;
  };

  int cur = 0;  // current chain head (node index)
  bool second_used = num_sources == 1;
  bool made_diamond = false;

  const int steps = 1 + static_cast<int>(rng.NextBounded(4));
  for (int k = 0; k < steps; ++k) {
    const std::vector<FieldInfo> fields = TopFields(schemas[cur]);
    const bool has_scalar = !ScalarFields(fields).empty();
    const bool has_bag = !StructBagFields(fields).empty() ||
                         !ScalarBagFields(fields).empty();

    std::vector<int> cands;  // weighted candidate kinds
    if (has_scalar) cands.insert(cands.end(), 3, 0);   // filter
    cands.insert(cands.end(), 2, 1);                   // select
    cands.push_back(2);                                // map
    if (has_bag) cands.insert(cands.end(), 2, 3);      // flatten
    if (has_scalar) cands.insert(cands.end(), 2, 4);   // group
    if (!second_used) cands.insert(cands.end(), 2, 5); // join
    if (has_scalar && !made_diamond) cands.push_back(6);  // union diamond

    switch (rng.Pick(cands)) {
      case 0:
        if (append(MakeFilterSpec(&rng, cur, schemas[cur]))) {
          cur = c.NumNodes() - 1;
        }
        break;
      case 1:
        if (append(MakeSelectSpec(&rng, cur, schemas[cur], &counter))) {
          cur = c.NumNodes() - 1;
        }
        break;
      case 2:
        if (append(MakeMapSpec(&rng, cur, &counter))) {
          cur = c.NumNodes() - 1;
        }
        break;
      case 3:
        if (append(MakeFlattenSpec(&rng, cur, schemas[cur], &counter))) {
          cur = c.NumNodes() - 1;
        }
        break;
      case 4:
        if (append(MakeGroupSpec(&rng, cur, schemas[cur], &counter,
                                 /*allow_collect=*/!exchanged[cur]))) {
          cur = c.NumNodes() - 1;
        }
        break;
      case 5:
        if (append(MakeJoinSpec(&rng, cur, schemas[cur], 1, schemas[1]))) {
          cur = c.NumNodes() - 1;
          second_used = true;
        }
        break;
      default: {
        // Union diamond: two filters over the same node, then their union.
        if (!append(MakeFilterSpec(&rng, cur, schemas[cur]))) break;
        const int a = c.NumNodes() - 1;
        if (!append(MakeFilterSpec(&rng, cur, schemas[cur]))) {
          cur = a;
          break;
        }
        const int b = c.NumNodes() - 1;
        OpSpec u;
        u.kind = OpSpec::Kind::kUnion;
        u.in1 = a;
        u.in2 = b;
        if (append(std::move(u))) {
          cur = c.NumNodes() - 1;
          made_diamond = true;
        } else {
          cur = b;
        }
        break;
      }
    }
  }

  // Every source must feed the sink: Build() rejects dangling operators.
  if (!second_used) {
    if (append(MakeJoinSpec(&rng, cur, schemas[cur], 1, schemas[1]))) {
      cur = c.NumNodes() - 1;
    }
  }

  c.pattern_text = GeneratePatternText(&rng, schemas[cur]);
  if (c.pattern_text.empty() ||
      !TreePattern::Parse(c.pattern_text).ok()) {
    // Defensive fallback: a bare-name conjunct on the first sink field.
    c.pattern_text = TopFields(schemas[cur])[0].name;
  }
  return c;
}

}  // namespace difftest
}  // namespace pebble
