// Wire framing for the provenance query protocol (DESIGN.md §13): every
// message travels as one frame
//
//   u32 payload_len (LE) | u32 crc32(payload) (LE) | payload bytes
//
// — the same length-prefixed + CRC32 record grammar the durable snapshot
// segments and the provenance WAL use, so a frame is verifiable before a
// single payload byte is parsed. A frame whose length field exceeds
// kMaxFramePayload is a protocol violation (kInvalidArgument): the peer is
// speaking garbage or attacking, and the connection should be closed. A
// CRC mismatch is kIOError: bytes were torn or flipped in flight.
//
// The in-memory Encode/Decode pair is the ground truth the socket-level
// Read/WriteFrame build on; the protocol fuzz tests run DecodeFrame
// against an independent oracle over mutated byte streams.

#ifndef PEBBLE_NET_FRAME_H_
#define PEBBLE_NET_FRAME_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/failpoint.h"
#include "common/status.h"

namespace pebble::net {

/// Hard cap on a frame payload. Requests and responses are far smaller;
/// anything bigger is a protocol violation, not a big message.
inline constexpr uint32_t kMaxFramePayload = 16u << 20;  // 16 MiB

/// Bytes of the frame header (length + CRC).
inline constexpr size_t kFrameHeaderBytes = 8;

/// Frames `payload` (header + bytes appended to a fresh string).
std::string EncodeFrame(std::string_view payload);

/// Outcome of decoding one frame from the front of a byte buffer.
enum class FrameDecode {
  /// A complete, CRC-valid frame was consumed into `payload`.
  kOk,
  /// The buffer holds a valid prefix of a frame; more bytes are needed.
  kNeedMore,
  /// The buffer is irrecoverably bad (oversized length or CRC mismatch);
  /// the caller should drop the connection. `error` says why.
  kBad,
};

/// Decodes one frame from the front of `data`. On kOk, `*payload` holds
/// the payload and `*consumed` the total frame size. On kNeedMore,
/// `*consumed` is 0. On kBad, `*error` carries the structured reason
/// (kInvalidArgument for an oversized declared length, kIOError for a CRC
/// mismatch) including the offending offset/values.
FrameDecode DecodeFrame(std::string_view data, std::string* payload,
                        size_t* consumed, Status* error);

/// Writes one frame to `fd` (WriteFull semantics: full transfer under one
/// timeout, interruptible, net.write failpoint keyed by `fp_key`).
Status WriteFrame(int fd, std::string_view payload, int timeout_ms,
                  const std::atomic<bool>* interrupt = nullptr,
                  uint64_t fp_key = FailpointRegistry::kNoKey);

/// Reads one frame from `fd` into `*payload`. `timeout_ms` covers the
/// whole frame (header + payload), so a peer trickling one byte per poll
/// tick — the slow-loris pattern — is bounded by it. Error contract:
///   - kUnavailable: clean close before a new frame started (keep-alive
///     end) or `interrupt` tripped;
///   - kInvalidArgument: declared length exceeds kMaxFramePayload;
///   - kIOError: torn mid-frame, socket error, or CRC mismatch;
///   - kDeadlineExceeded: timeout (slow peer).
Status ReadFrame(int fd, std::string* payload, int timeout_ms,
                 const std::atomic<bool>* interrupt = nullptr,
                 uint64_t fp_key = FailpointRegistry::kNoKey);

}  // namespace pebble::net

#endif  // PEBBLE_NET_FRAME_H_
