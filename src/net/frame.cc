#include "net/frame.h"

#include <cstring>

#include "common/crc32.h"
#include "net/net.h"

namespace pebble::net {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(b, 4);
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace

std::string EncodeFrame(std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, Crc32(payload));
  out.append(payload.data(), payload.size());
  return out;
}

FrameDecode DecodeFrame(std::string_view data, std::string* payload,
                        size_t* consumed, Status* error) {
  *consumed = 0;
  if (data.size() < kFrameHeaderBytes) return FrameDecode::kNeedMore;
  const uint32_t len = GetU32(data.data());
  const uint32_t want_crc = GetU32(data.data() + 4);
  if (len > kMaxFramePayload) {
    *error = Status::InvalidArgument(
        "frame declares " + std::to_string(len) + " payload bytes, limit " +
        std::to_string(kMaxFramePayload));
    return FrameDecode::kBad;
  }
  if (data.size() < kFrameHeaderBytes + len) return FrameDecode::kNeedMore;
  std::string_view body = data.substr(kFrameHeaderBytes, len);
  const uint32_t got_crc = Crc32(body);
  if (got_crc != want_crc) {
    *error = Status::IOError(
        "frame crc mismatch: stored " + std::to_string(want_crc) +
        ", computed " + std::to_string(got_crc) + " over " +
        std::to_string(len) + " payload bytes");
    return FrameDecode::kBad;
  }
  payload->assign(body.data(), body.size());
  *consumed = kFrameHeaderBytes + len;
  return FrameDecode::kOk;
}

Status WriteFrame(int fd, std::string_view payload, int timeout_ms,
                  const std::atomic<bool>* interrupt, uint64_t fp_key) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        "refusing to send oversized frame: " +
        std::to_string(payload.size()) + " > " +
        std::to_string(kMaxFramePayload) + " bytes");
  }
  std::string frame = EncodeFrame(payload);
  return WriteFull(fd, frame.data(), frame.size(), timeout_ms, interrupt,
                   fp_key);
}

Status ReadFrame(int fd, std::string* payload, int timeout_ms,
                 const std::atomic<bool>* interrupt, uint64_t fp_key) {
  char header[kFrameHeaderBytes];
  PEBBLE_RETURN_NOT_OK(ReadFull(fd, header, sizeof(header), timeout_ms,
                                interrupt, fp_key));
  const uint32_t len = GetU32(header);
  const uint32_t want_crc = GetU32(header + 4);
  if (len > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame declares " + std::to_string(len) + " payload bytes, limit " +
        std::to_string(kMaxFramePayload));
  }
  payload->resize(len);
  if (len > 0) {
    Status body = ReadFull(fd, payload->data(), len, timeout_ms, interrupt,
                           fp_key);
    if (!body.ok()) {
      // EOF exactly between frames is a clean close; EOF inside the
      // payload is a torn frame. ReadFull already distinguishes these,
      // but a clean close *after the header landed* is still torn.
      if (body.code() == StatusCode::kUnavailable &&
          body.message() == "connection closed by peer") {
        return Status::IOError("connection closed after frame header (" +
                               std::to_string(len) + " payload bytes due)");
      }
      return body;
    }
  }
  const uint32_t got_crc = Crc32(*payload);
  if (got_crc != want_crc) {
    return Status::IOError(
        "frame crc mismatch: stored " + std::to_string(want_crc) +
        ", computed " + std::to_string(got_crc) + " over " +
        std::to_string(len) + " payload bytes");
  }
  return Status::OK();
}

}  // namespace pebble::net
