// Minimal robust socket layer for the provenance query daemon (DESIGN.md
// §13). Everything here is written for hostile conditions: every read and
// write loops over EINTR and short transfers, carries a wall-clock timeout
// implemented with poll() so a stalled peer can never wedge a thread
// forever, and can be interrupted by an external stop flag so server
// drain does not have to wait out the longest timeout. SIGPIPE is never
// raised (MSG_NOSIGNAL); a vanished peer surfaces as a Status like any
// other failure. Failpoint sites net.accept / net.read / net.write let
// chaos tests tear connections deterministically at any of these points.

#ifndef PEBBLE_NET_NET_H_
#define PEBBLE_NET_NET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/failpoint.h"
#include "common/status.h"

namespace pebble::net {

/// Owning file-descriptor handle; closes on destruction (EINTR-safe).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept;
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  ~UniqueFd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Binds and listens on 127.0.0.1:`port` (0 = ephemeral). The returned fd
/// has SO_REUSEADDR set and a backlog sized for a busy accept loop.
Result<UniqueFd> ListenTcp(uint16_t port, int backlog = 128);

/// The port a listening socket is actually bound to (resolves port 0).
Result<uint16_t> LocalPort(int listen_fd);

/// Waits up to `timeout_ms` for a connection and accepts it. Returns an
/// invalid UniqueFd on timeout (not an error: the accept loop uses short
/// ticks to poll its stop flag). EINTR and transient accept errors
/// (ECONNABORTED) are retried within the timeout. `fp_key` keys the
/// net.accept failpoint; a firing site closes the freshly accepted
/// connection and reports the injected status.
Result<UniqueFd> AcceptTimeout(int listen_fd, int timeout_ms,
                               uint64_t fp_key = FailpointRegistry::kNoKey);

/// Connects to 127.0.0.1:`port` within `timeout_ms` (non-blocking connect
/// + poll, then back to blocking mode).
Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port,
                            int timeout_ms);

/// Reads exactly `size` bytes. The timeout covers the whole transfer, not
/// each chunk. Interruptible: when `interrupt` is non-null and becomes
/// true, returns kUnavailable promptly (drain). Error contract:
///   - clean EOF before the first byte: kUnavailable ("connection closed"),
///     the normal end of a keep-alive connection between frames;
///   - EOF or socket error mid-transfer: kIOError with the byte offset;
///   - timeout: kDeadlineExceeded with offset and budget.
/// The net.read failpoint is evaluated once per call, keyed by `fp_key`.
Status ReadFull(int fd, void* buf, size_t size, int timeout_ms,
                const std::atomic<bool>* interrupt = nullptr,
                uint64_t fp_key = FailpointRegistry::kNoKey);

/// Writes exactly `size` bytes; same timeout/interrupt/error contract as
/// ReadFull (mid-transfer failures report the offset reached). Uses
/// MSG_NOSIGNAL, so a dead peer yields kIOError instead of SIGPIPE. The
/// net.write failpoint is evaluated once per call, keyed by `fp_key`.
Status WriteFull(int fd, const void* buf, size_t size, int timeout_ms,
                 const std::atomic<bool>* interrupt = nullptr,
                 uint64_t fp_key = FailpointRegistry::kNoKey);

}  // namespace pebble::net

#endif  // PEBBLE_NET_NET_H_
