#include "net/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace pebble::net {

namespace {

using Clock = std::chrono::steady_clock;

std::string ErrnoString(const char* what, int err) {
  return std::string(what) + ": " + std::strerror(err) + " (errno " +
         std::to_string(err) + ")";
}

/// Milliseconds left before `deadline`, clamped to [0, tick].
int RemainingTick(Clock::time_point deadline, int tick_ms) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  if (left < 0) left = 0;
  if (left > tick_ms) left = tick_ms;
  return static_cast<int>(left);
}

/// Polls `fd` for `events` until the deadline, waking every ~50 ms to
/// check `interrupt`. Returns 1 when ready, 0 on timeout, kUnavailable
/// via `*interrupted` when the stop flag tripped.
Result<int> PollUntil(int fd, short events, Clock::time_point deadline,
                      const std::atomic<bool>* interrupt) {
  constexpr int kTickMs = 50;
  for (;;) {
    if (interrupt != nullptr &&
        interrupt->load(std::memory_order_relaxed)) {
      return Status::Unavailable("interrupted (server stopping)");
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int tick = RemainingTick(deadline, kTickMs);
    int rc = ::poll(&pfd, 1, tick);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoString("poll", errno));
    }
    if (rc > 0) return 1;
    if (Clock::now() >= deadline) return 0;
  }
}

}  // namespace

UniqueFd& UniqueFd::operator=(UniqueFd&& other) noexcept {
  if (this != &other) reset(other.release());
  return *this;
}

int UniqueFd::release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) {
    int rc;
    do {
      rc = ::close(fd_);
    } while (rc < 0 && errno == EINTR);
  }
  fd_ = fd;
}

Result<UniqueFd> ListenTcp(uint16_t port, int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Status::IOError(ErrnoString("socket", errno));
  }
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(
        ErrnoString(("bind 127.0.0.1:" + std::to_string(port)).c_str(),
                    errno));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Status::IOError(ErrnoString("listen", errno));
  }
  return fd;
}

Result<uint16_t> LocalPort(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::IOError(ErrnoString("getsockname", errno));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<UniqueFd> AcceptTimeout(int listen_fd, int timeout_ms,
                               uint64_t fp_key) {
  auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    PEBBLE_ASSIGN_OR_RETURN(int ready,
                            PollUntil(listen_fd, POLLIN, deadline, nullptr));
    if (ready == 0) return UniqueFd();  // timeout tick, not an error
    int raw = ::accept(listen_fd, nullptr, nullptr);
    if (raw < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        if (Clock::now() >= deadline) return UniqueFd();
        continue;
      }
      return Status::IOError(ErrnoString("accept", errno));
    }
    UniqueFd fd(raw);
    // Injected accept-time fault: the connection is torn down before any
    // byte is exchanged (the UniqueFd destructor closes it).
    Status injected =
        FailpointRegistry::Global().Evaluate(failpoints::kNetAccept, fp_key);
    if (!injected.ok()) return injected;
    int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  }
}

Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port,
                            int timeout_ms) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Status::IOError(ErrnoString("socket", errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  int flags = ::fcntl(fd.get(), F_GETFL, 0);
  ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return Status::IOError(ErrnoString(
        ("connect " + host + ":" + std::to_string(port)).c_str(), errno));
  }
  if (rc != 0) {
    auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    PEBBLE_ASSIGN_OR_RETURN(int ready,
                            PollUntil(fd.get(), POLLOUT, deadline, nullptr));
    if (ready == 0) {
      return Status::DeadlineExceeded(
          "connect " + host + ":" + std::to_string(port) + " timed out after " +
          std::to_string(timeout_ms) + " ms");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      return Status::IOError(ErrnoString(
          ("connect " + host + ":" + std::to_string(port)).c_str(),
          err != 0 ? err : errno));
    }
  }
  ::fcntl(fd.get(), F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status ReadFull(int fd, void* buf, size_t size, int timeout_ms,
                const std::atomic<bool>* interrupt, uint64_t fp_key) {
  PEBBLE_RETURN_NOT_OK(
      FailpointRegistry::Global().Evaluate(failpoints::kNetRead, fp_key));
  auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  size_t done = 0;
  char* out = static_cast<char*>(buf);
  while (done < size) {
    PEBBLE_ASSIGN_OR_RETURN(int ready,
                            PollUntil(fd, POLLIN, deadline, interrupt));
    if (ready == 0) {
      return Status::DeadlineExceeded(
          "read timed out after " + std::to_string(timeout_ms) + " ms (" +
          std::to_string(done) + "/" + std::to_string(size) + " bytes)");
    }
    ssize_t n = ::recv(fd, out + done, size - done, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Status::IOError(ErrnoString("recv", errno) + " at byte " +
                             std::to_string(done) + "/" +
                             std::to_string(size));
    }
    if (n == 0) {
      if (done == 0) return Status::Unavailable("connection closed by peer");
      return Status::IOError("connection closed mid-read at byte " +
                             std::to_string(done) + "/" +
                             std::to_string(size));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteFull(int fd, const void* buf, size_t size, int timeout_ms,
                 const std::atomic<bool>* interrupt, uint64_t fp_key) {
  PEBBLE_RETURN_NOT_OK(
      FailpointRegistry::Global().Evaluate(failpoints::kNetWrite, fp_key));
  auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  size_t done = 0;
  const char* in = static_cast<const char*>(buf);
  while (done < size) {
    PEBBLE_ASSIGN_OR_RETURN(int ready,
                            PollUntil(fd, POLLOUT, deadline, interrupt));
    if (ready == 0) {
      return Status::DeadlineExceeded(
          "write timed out after " + std::to_string(timeout_ms) + " ms (" +
          std::to_string(done) + "/" + std::to_string(size) + " bytes)");
    }
    ssize_t n = ::send(fd, in + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Status::IOError(ErrnoString("send", errno) + " at byte " +
                             std::to_string(done) + "/" +
                             std::to_string(size));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace pebble::net
