// Scan, Filter, Select and Map operators (paper Tab. 5 rules filter*,
// select*, map*).

#include <utility>

#include "common/failpoint.h"
#include "engine/op_internal.h"
#include "engine/operators.h"

namespace pebble {

using internal::ItemCaptureSpec;
using internal::UnaryStage;

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

ScanOp::ScanOp(std::string name, TypePtr schema,
               std::shared_ptr<const std::vector<ValuePtr>> data)
    : Operator(OpType::kScan, "read " + name),
      source_name_(std::move(name)),
      schema_(std::move(schema)),
      data_(std::move(data)) {}

Result<TypePtr> ScanOp::InferSchema(const std::vector<TypePtr>& inputs) const {
  if (!inputs.empty()) {
    return Status::InvalidArgument("scan takes no inputs");
  }
  if (schema_ == nullptr || schema_->kind() != TypeKind::kStruct) {
    return Status::InvalidArgument("scan schema must be a struct type");
  }
  return schema_;
}

Result<Dataset> ScanOp::Execute(ExecContext* ctx,
                                const std::vector<const Dataset*>&) const {
  Dataset ds =
      Dataset::FromValues(schema_, *data_, ctx->options().num_partitions);
  // One read per source partition; each can fail independently (keyed by
  // partition index for deterministic injection). Also a cancellation point:
  // a tripped run stops before annotating ids.
  for (size_t p = 0; p < ds.partitions().size(); ++p) {
    PEBBLE_RETURN_NOT_OK(ctx->CheckInterrupt("scan"));
    PEBBLE_RETURN_NOT_OK(
        FailpointRegistry::Global().Evaluate(failpoints::kScanRead, p));
  }
  if (ctx->capture_enabled()) {
    // Annotate the top-level input items with fresh provenance ids. This is
    // the only annotation Pebble attaches to data (Sec. 5.1).
    for (Partition& part : *ds.mutable_partitions()) {
      if (part.empty()) continue;
      int64_t first = ctx->ReserveIds(static_cast<int64_t>(part.size()));
      for (size_t k = 0; k < part.size(); ++k) {
        part[k].id = first + static_cast<int64_t>(k);
      }
    }
  }
  return ds;
}

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

FilterOp::FilterOp(ExprPtr predicate)
    : Operator(OpType::kFilter, "filter " + predicate->ToString()),
      predicate_(std::move(predicate)) {}

Result<TypePtr> FilterOp::InferSchema(
    const std::vector<TypePtr>& inputs) const {
  if (inputs.size() != 1) {
    return Status::InvalidArgument("filter takes exactly one input");
  }
  std::vector<Path> accessed;
  predicate_->CollectAccessedPaths(&accessed);
  for (const Path& p : accessed) {
    if (!p.ExistsInType(*inputs[0])) {
      return Status::KeyError("filter predicate path '" + p.ToString() +
                              "' not in input schema " + inputs[0]->ToString());
    }
  }
  return inputs[0];
}

Result<Dataset> FilterOp::Execute(
    ExecContext* ctx, const std::vector<const Dataset*>& inputs) const {
  const Dataset& in = *inputs[0];
  const size_t nparts = in.partitions().size();

  if (!ctx->capture_enabled()) {
    std::vector<Partition> parts(nparts);
    std::vector<uint64_t> charged(nparts, 0);
    PEBBLE_RETURN_NOT_OK(ctx->ParallelFor(nparts, [&](size_t p) -> Status {
      internal::ReleaseStageCharge(ctx, &charged[p]);
      parts[p].clear();  // retry-idempotent: overwrite, never append
      uint32_t ticker = 0;
      for (const Row& row : in.partitions()[p]) {
        if ((++ticker & internal::kInterruptMask) == 0) {
          PEBBLE_RETURN_NOT_OK(ctx->CheckInterrupt("filter"));
        }
        PEBBLE_ASSIGN_OR_RETURN(bool pass,
                                predicate_->EvaluateBool(*row.value));
        if (pass) parts[p].push_back(Row{-1, row.value});
      }
      return internal::ChargeStage(ctx, parts[p], 0, "filter staging",
                                   &charged[p]);
    }));
    for (size_t p = 0; p < nparts; ++p) {
      internal::ReleaseStageCharge(ctx, &charged[p]);
    }
    return Dataset(output_schema(), std::move(parts));
  }

  std::vector<UnaryStage> staged(nparts);
  PEBBLE_RETURN_NOT_OK(ctx->ParallelFor(nparts, [&](size_t p) -> Status {
    internal::ReleaseStageCharge(ctx, &staged[p].charged_bytes);
    staged[p].Clear();  // retry-idempotent: overwrite, never append
    staged[p].Reserve(in.partitions()[p].size());
    uint32_t ticker = 0;
    for (const Row& row : in.partitions()[p]) {
      if ((++ticker & internal::kInterruptMask) == 0) {
        PEBBLE_RETURN_NOT_OK(ctx->CheckInterrupt("filter"));
      }
      PEBBLE_ASSIGN_OR_RETURN(bool pass, predicate_->EvaluateBool(*row.value));
      if (pass) staged[p].Push(row.value, row.id);
    }
    return internal::ChargeStage(ctx, staged[p].rows,
                                 staged[p].in_ids.size() * sizeof(int64_t),
                                 "filter staging", &staged[p].charged_bytes);
  }));

  OperatorProvenance* prov = ctx->store()->Mutable(oid());
  std::vector<Path> accessed;
  predicate_->CollectAccessedPaths(&accessed);
  for (Path& p : accessed) {
    p = p.WithPosPlaceholders();
  }
  InputProvenance ip;
  ip.producer_oid = input_oids()[0];
  ip.accessed = accessed;
  ip.input_schema = in.schema();
  internal::EmitSchemaCapture(ctx, *this, prov, {ip}, {}, false);

  ItemCaptureSpec spec;
  spec.accessed = std::move(accessed);
  return internal::FinalizeUnary(ctx, output_schema(), std::move(staged),
                                 prov, &spec);
}

// ---------------------------------------------------------------------------
// Select
// ---------------------------------------------------------------------------

namespace {

Projection MakeLeaf(std::string name, Path path) {
  Projection p;
  p.name = std::move(name);
  p.source = std::move(path);
  return p;
}

Result<TypePtr> ProjectionType(const Projection& proj, const TypePtr& input) {
  if (proj.is_leaf()) {
    return ResolveType(input, proj.source);
  }
  std::vector<FieldType> fields;
  fields.reserve(proj.children.size());
  for (const Projection& child : proj.children) {
    PEBBLE_ASSIGN_OR_RETURN(TypePtr t, ProjectionType(child, input));
    fields.push_back({child.name, std::move(t)});
  }
  return DataType::Struct(std::move(fields));
}

Result<ValuePtr> ProjectionValue(const Projection& proj, const Value& item) {
  if (proj.is_leaf()) {
    return proj.source.Evaluate(item);
  }
  std::vector<Field> fields;
  fields.reserve(proj.children.size());
  for (const Projection& child : proj.children) {
    PEBBLE_ASSIGN_OR_RETURN(ValuePtr v, ProjectionValue(child, item));
    fields.push_back(Field{child.name, std::move(v)});
  }
  return Value::Struct(std::move(fields));
}

void CollectProjectionCapture(const Projection& proj, const Path& out_prefix,
                              std::vector<Path>* accessed,
                              std::vector<PathMapping>* manipulations) {
  Path out = out_prefix.Child(PathStep{proj.name, kNoPos});
  if (proj.is_leaf()) {
    Path src = proj.source.WithPosPlaceholders();
    accessed->push_back(src);
    manipulations->push_back(PathMapping{std::move(src), std::move(out)});
    return;
  }
  for (const Projection& child : proj.children) {
    CollectProjectionCapture(child, out, accessed, manipulations);
  }
}

std::string DescribeProjections(const std::vector<Projection>& projs) {
  std::string out = "select ";
  for (size_t i = 0; i < projs.size(); ++i) {
    if (i > 0) out += ", ";
    out += projs[i].name;
  }
  return out;
}

}  // namespace

Projection Projection::Leaf(std::string name, const std::string& path) {
  return MakeLeaf(std::move(name), std::move(Path::Parse(path)).ValueOrDie());
}

Projection Projection::Keep(const std::string& attr) {
  Path p = std::move(Path::Parse(attr)).ValueOrDie();
  std::string name = p.back().attr();
  return MakeLeaf(std::move(name), std::move(p));
}

Projection Projection::Nested(std::string name,
                              std::vector<Projection> children) {
  Projection p;
  p.name = std::move(name);
  p.children = std::move(children);
  return p;
}

SelectOp::SelectOp(std::vector<Projection> projections)
    : Operator(OpType::kSelect, DescribeProjections(projections)),
      projections_(std::move(projections)) {}

Result<TypePtr> SelectOp::InferSchema(
    const std::vector<TypePtr>& inputs) const {
  if (inputs.size() != 1) {
    return Status::InvalidArgument("select takes exactly one input");
  }
  std::vector<FieldType> fields;
  fields.reserve(projections_.size());
  for (const Projection& proj : projections_) {
    for (const FieldType& existing : fields) {
      if (existing.name == proj.name) {
        return Status::InvalidArgument("duplicate output attribute '" +
                                       proj.name + "' in select");
      }
    }
    PEBBLE_ASSIGN_OR_RETURN(TypePtr t, ProjectionType(proj, inputs[0]));
    fields.push_back({proj.name, std::move(t)});
  }
  return DataType::Struct(std::move(fields));
}

Result<Dataset> SelectOp::Execute(
    ExecContext* ctx, const std::vector<const Dataset*>& inputs) const {
  const Dataset& in = *inputs[0];
  const size_t nparts = in.partitions().size();

  auto project_row = [&](const Value& item) -> Result<ValuePtr> {
    std::vector<Field> fields;
    fields.reserve(projections_.size());
    for (const Projection& proj : projections_) {
      PEBBLE_ASSIGN_OR_RETURN(ValuePtr v, ProjectionValue(proj, item));
      fields.push_back(Field{proj.name, std::move(v)});
    }
    return Value::Struct(std::move(fields));
  };

  if (!ctx->capture_enabled()) {
    std::vector<Partition> parts(nparts);
    std::vector<uint64_t> charged(nparts, 0);
    PEBBLE_RETURN_NOT_OK(ctx->ParallelFor(nparts, [&](size_t p) -> Status {
      internal::ReleaseStageCharge(ctx, &charged[p]);
      parts[p].clear();  // retry-idempotent: overwrite, never append
      parts[p].reserve(in.partitions()[p].size());
      uint32_t ticker = 0;
      for (const Row& row : in.partitions()[p]) {
        if ((++ticker & internal::kInterruptMask) == 0) {
          PEBBLE_RETURN_NOT_OK(ctx->CheckInterrupt("select"));
        }
        PEBBLE_ASSIGN_OR_RETURN(ValuePtr v, project_row(*row.value));
        parts[p].push_back(Row{-1, std::move(v)});
      }
      return internal::ChargeStage(ctx, parts[p], 0, "select staging",
                                   &charged[p]);
    }));
    for (size_t p = 0; p < nparts; ++p) {
      internal::ReleaseStageCharge(ctx, &charged[p]);
    }
    return Dataset(output_schema(), std::move(parts));
  }

  std::vector<UnaryStage> staged(nparts);
  PEBBLE_RETURN_NOT_OK(ctx->ParallelFor(nparts, [&](size_t p) -> Status {
    internal::ReleaseStageCharge(ctx, &staged[p].charged_bytes);
    staged[p].Clear();  // retry-idempotent: overwrite, never append
    staged[p].Reserve(in.partitions()[p].size());
    uint32_t ticker = 0;
    for (const Row& row : in.partitions()[p]) {
      if ((++ticker & internal::kInterruptMask) == 0) {
        PEBBLE_RETURN_NOT_OK(ctx->CheckInterrupt("select"));
      }
      PEBBLE_ASSIGN_OR_RETURN(ValuePtr v, project_row(*row.value));
      staged[p].Push(std::move(v), row.id);
    }
    return internal::ChargeStage(ctx, staged[p].rows,
                                 staged[p].in_ids.size() * sizeof(int64_t),
                                 "select staging", &staged[p].charged_bytes);
  }));

  OperatorProvenance* prov = ctx->store()->Mutable(oid());
  std::vector<Path> accessed;
  std::vector<PathMapping> manipulations;
  for (const Projection& proj : projections_) {
    CollectProjectionCapture(proj, Path(), &accessed, &manipulations);
  }
  InputProvenance ip;
  ip.producer_oid = input_oids()[0];
  ip.accessed = accessed;
  ip.input_schema = in.schema();
  internal::EmitSchemaCapture(ctx, *this, prov, {ip}, manipulations, false);

  ItemCaptureSpec spec;
  spec.accessed = std::move(accessed);
  spec.manipulations = std::move(manipulations);
  return internal::FinalizeUnary(ctx, output_schema(), std::move(staged),
                                 prov, &spec);
}

// ---------------------------------------------------------------------------
// Map
// ---------------------------------------------------------------------------

MapOp::MapOp(MapFn fn, TypePtr declared_schema, std::string label)
    : Operator(OpType::kMap, std::move(label)),
      fn_(std::move(fn)),
      declared_schema_(std::move(declared_schema)) {}

Result<TypePtr> MapOp::InferSchema(const std::vector<TypePtr>& inputs) const {
  if (inputs.size() != 1) {
    return Status::InvalidArgument("map takes exactly one input");
  }
  // An opaque lambda's output type cannot be inferred statically; without a
  // declaration the runtime type of the first produced item is used.
  return declared_schema_ != nullptr ? declared_schema_ : DataType::Null();
}

Result<Dataset> MapOp::Execute(
    ExecContext* ctx, const std::vector<const Dataset*>& inputs) const {
  const Dataset& in = *inputs[0];
  const size_t nparts = in.partitions().size();

  std::vector<UnaryStage> staged(nparts);
  PEBBLE_RETURN_NOT_OK(ctx->ParallelFor(nparts, [&](size_t p) -> Status {
    internal::ReleaseStageCharge(ctx, &staged[p].charged_bytes);
    staged[p].Clear();  // retry-idempotent: overwrite, never append
    staged[p].Reserve(in.partitions()[p].size());
    uint32_t ticker = 0;
    for (const Row& row : in.partitions()[p]) {
      if ((++ticker & internal::kInterruptMask) == 0) {
        PEBBLE_RETURN_NOT_OK(ctx->CheckInterrupt("map"));
      }
      PEBBLE_ASSIGN_OR_RETURN(ValuePtr v, fn_(*row.value));
      if (v == nullptr || !v->is_struct()) {
        return Status::TypeError(
            "map function must return a data item (struct)");
      }
      staged[p].Push(std::move(v), row.id);
    }
    return internal::ChargeStage(ctx, staged[p].rows,
                                 staged[p].in_ids.size() * sizeof(int64_t),
                                 "map staging", &staged[p].charged_bytes);
  }));

  // Runtime schema: declared, else inferred from the first produced item.
  TypePtr schema = output_schema();
  if (schema == nullptr || schema->kind() == TypeKind::kNull) {
    schema = DataType::Struct({});
    for (const UnaryStage& stage : staged) {
      if (!stage.rows.empty()) {
        schema = stage.rows[0].value->InferType();
        break;
      }
    }
  }

  if (!ctx->capture_enabled()) {
    std::vector<Partition> parts(nparts);
    for (size_t p = 0; p < nparts; ++p) {
      parts[p] = std::move(staged[p].rows);
      internal::ReleaseStageCharge(ctx, &staged[p].charged_bytes);
    }
    return Dataset(std::move(schema), std::move(parts));
  }

  OperatorProvenance* prov = ctx->store()->Mutable(oid());
  InputProvenance ip;
  ip.producer_oid = input_oids()[0];
  ip.input_schema = in.schema();
  ip.accessed_undefined = true;  // A = ⊥ (Tab. 5 map rule)
  internal::EmitSchemaCapture(ctx, *this, prov, {ip}, {},
                              /*manip_undefined=*/true);

  ItemCaptureSpec spec;
  spec.accessed_undefined = true;
  spec.manip_undefined = true;
  return internal::FinalizeUnary(ctx, std::move(schema), std::move(staged),
                                 prov, &spec);
}

}  // namespace pebble
