// Pipeline DAG (paper Def. 4.6) and its fluent builder.

#ifndef PEBBLE_ENGINE_PIPELINE_H_
#define PEBBLE_ENGINE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/operators.h"

namespace pebble {

/// A validated operator DAG with one sink. Built via PipelineBuilder; after
/// Build every operator has its output schema resolved.
class Pipeline {
 public:
  Pipeline() = default;
  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  const std::vector<std::unique_ptr<Operator>>& operators() const {
    return ops_;
  }
  int sink_oid() const { return sink_oid_; }

  const Operator* Find(int oid) const;

  /// Human-readable DAG listing, one operator per line.
  std::string ToString() const;

 private:
  friend class PipelineBuilder;

  std::vector<std::unique_ptr<Operator>> ops_;  // topological (oid) order
  int sink_oid_ = -1;
};

/// Builds pipelines operator by operator. Each method returns the new
/// operator's oid, which later calls use as an input handle. Build()
/// validates the DAG and resolves all schemas.
class PipelineBuilder {
 public:
  PipelineBuilder() = default;

  /// In-memory source with an explicit schema.
  int Scan(std::string name, TypePtr schema,
           std::shared_ptr<const std::vector<ValuePtr>> data);

  /// Source read from a newline-delimited JSON file. When `schema` is
  /// nullptr it is inferred from the first record and every record is
  /// validated against it.
  Result<int> ScanJsonFile(const std::string& path, TypePtr schema = nullptr);

  int Filter(int input, ExprPtr predicate);
  int Select(int input, std::vector<Projection> projections);
  int Map(int input, MapFn fn, TypePtr declared_schema = nullptr,
          std::string label = "map(udf)");
  /// Equi-join on pairwise equal key paths ("a.b" strings must parse).
  int Join(int left, int right, const std::vector<std::string>& left_keys,
           const std::vector<std::string>& right_keys);
  /// General theta-join: `phi` is evaluated over the concatenated item
  /// <left attributes..., right attributes...> (nested-loop execution; the
  /// paper's general join condition phi(i, j)).
  int ThetaJoin(int left, int right, ExprPtr phi);
  int Union(int left, int right);
  /// Unnests `column` (a path string) into attribute `new_attr`.
  int Flatten(int input, const std::string& column,
              const std::string& new_attr);
  int GroupAggregate(int input, std::vector<GroupKey> keys,
                     std::vector<AggSpec> aggs);

  /// Finalizes the DAG with `sink` as the single result operator. Checks
  /// that every oid is valid and infers all output schemas.
  Result<Pipeline> Build(int sink);

 private:
  int Add(std::unique_ptr<Operator> op, std::vector<int> inputs);

  std::vector<std::unique_ptr<Operator>> ops_;
};

}  // namespace pebble

#endif  // PEBBLE_ENGINE_PIPELINE_H_
