// Pipeline executor: runs the operator DAG bottom-up, materializing
// intermediate datasets, and collects provenance per the configured capture
// mode.

#ifndef PEBBLE_ENGINE_EXECUTOR_H_
#define PEBBLE_ENGINE_EXECUTOR_H_

#include <map>
#include <memory>

#include "engine/pipeline.h"

namespace pebble {

/// Result of one pipeline execution.
struct ExecutionResult {
  /// The sink operator's dataset; rows carry output item ids when capture
  /// was enabled.
  Dataset output;
  /// Captured provenance; nullptr when capture was off.
  std::shared_ptr<ProvenanceStore> provenance;
  /// Id-annotated source datasets by scan oid (ids referenced by the
  /// backtraced provenance). Values are shared with the inputs; cheap.
  std::map<int, Dataset> source_datasets;
  /// Output row count per operator (Spark-UI-style execution statistics).
  std::map<int, size_t> rows_per_operator;
  /// Partition-task statistics per operator: attempts, retries, timeouts,
  /// fail-fast skips (only operators that ran partition tasks appear).
  std::map<int, TaskStats> tasks_per_operator;
  /// Aggregate task statistics of the whole run.
  TaskStats task_stats;
  /// Wall-clock execution time.
  double elapsed_ms = 0;
  /// High-water mark of the run's memory budget: value-arena blocks
  /// (charged exactly as acquired — DESIGN.md §15) plus row-container and
  /// shuffle-buffer reservations. Tracked only when
  /// options.memory_budget_bytes > 0; otherwise 0.
  uint64_t peak_memory_bytes = 0;
  /// Exact aggregate allocation statistics over every value arena the run
  /// created: the driver arena plus one per committed or discarded task
  /// attempt. bytes_reserved/arena_blocks cover the arenas retained by the
  /// output datasets (the bytes the caller now holds); discarded attempt
  /// arenas contribute their churn counters but no reserved bytes.
  ValueArena::Stats arena_stats;
  /// Number of arenas the run created (committed + discarded).
  uint64_t arena_count = 0;
  /// Bytes the committed arenas had charged against the run's memory budget
  /// at run end, released when the run closed its budget scope. With a
  /// budget configured this equals the committed arenas' reserved bytes
  /// exactly (0-slack accounting); 0 without one.
  uint64_t arena_bytes_charged = 0;
  /// Milliseconds between an external trip (Cancel() / deadline expiry) and
  /// the first cancellation point that observed it; 0 when the run never
  /// tripped. A successful run can still report a nonzero value if a trip
  /// raced with completion.
  double cancel_latency_ms = 0;
  /// First top-level item id not allocated by this run. A follow-up run
  /// over the same id space (micro-batch ingest) passes this as
  /// ExecOptions::first_item_id to keep id ranges disjoint.
  int64_t next_item_id = 1;
};

/// Governance telemetry of a run, filled even when Run fails — the only way
/// to observe peak bytes, reaction latency and shed-task counts of a run
/// that was cancelled or ran out of budget.
struct RunTelemetry {
  Status status;                  // the run's final status
  uint64_t peak_memory_bytes = 0;
  uint64_t memory_limit_bytes = 0;
  double cancel_latency_ms = 0;
  uint64_t tasks_shed = 0;
  TaskStats task_stats;
  /// Aggregate value-arena statistics (see ExecutionResult::arena_stats);
  /// on a failed run, covers the arenas created before the abort.
  ValueArena::Stats arena_stats;
  uint64_t arena_count = 0;
  uint64_t arena_bytes_charged = 0;
  /// The run's provenance store, filled even when the run failed so aborted
  /// runs can be integrity-checked (no torn commits: Validate() must pass).
  /// nullptr when capture was off.
  std::shared_ptr<ProvenanceStore> provenance;
};

/// Executes pipelines with the given options. Stateless; safe to reuse.
class Executor {
 public:
  explicit Executor(ExecOptions options) : options_(std::move(options)) {}

  const ExecOptions& options() const { return options_; }

  Result<ExecutionResult> Run(const Pipeline& pipeline) const;

  /// As above, additionally filling `telemetry` (when non-null) on success
  /// AND failure.
  Result<ExecutionResult> Run(const Pipeline& pipeline,
                              RunTelemetry* telemetry) const;

 private:
  ExecOptions options_;
};

}  // namespace pebble

#endif  // PEBBLE_ENGINE_EXECUTOR_H_
