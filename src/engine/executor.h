// Pipeline executor: runs the operator DAG bottom-up, materializing
// intermediate datasets, and collects provenance per the configured capture
// mode.

#ifndef PEBBLE_ENGINE_EXECUTOR_H_
#define PEBBLE_ENGINE_EXECUTOR_H_

#include <map>
#include <memory>

#include "engine/pipeline.h"

namespace pebble {

/// Result of one pipeline execution.
struct ExecutionResult {
  /// The sink operator's dataset; rows carry output item ids when capture
  /// was enabled.
  Dataset output;
  /// Captured provenance; nullptr when capture was off.
  std::shared_ptr<ProvenanceStore> provenance;
  /// Id-annotated source datasets by scan oid (ids referenced by the
  /// backtraced provenance). Values are shared with the inputs; cheap.
  std::map<int, Dataset> source_datasets;
  /// Output row count per operator (Spark-UI-style execution statistics).
  std::map<int, size_t> rows_per_operator;
  /// Partition-task statistics per operator: attempts, retries, timeouts,
  /// fail-fast skips (only operators that ran partition tasks appear).
  std::map<int, TaskStats> tasks_per_operator;
  /// Aggregate task statistics of the whole run.
  TaskStats task_stats;
  /// Wall-clock execution time.
  double elapsed_ms = 0;
};

/// Executes pipelines with the given options. Stateless; safe to reuse.
class Executor {
 public:
  explicit Executor(ExecOptions options) : options_(options) {}

  const ExecOptions& options() const { return options_; }

  Result<ExecutionResult> Run(const Pipeline& pipeline) const;

 private:
  ExecOptions options_;
};

}  // namespace pebble

#endif  // PEBBLE_ENGINE_EXECUTOR_H_
