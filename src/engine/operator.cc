#include "engine/operator.h"

#include <chrono>
#include <thread>

#include "common/failpoint.h"
#include "common/stopwatch.h"

namespace pebble {

Status ValidateExecOptions(const ExecOptions& options) {
  if (options.num_partitions <= 0) {
    return Status::InvalidArgument(
        "num_partitions must be positive, got " +
        std::to_string(options.num_partitions));
  }
  if (options.num_threads <= 0) {
    return Status::InvalidArgument("num_threads must be positive, got " +
                                   std::to_string(options.num_threads));
  }
  if (options.retry.max_attempts < 1) {
    return Status::InvalidArgument(
        "retry.max_attempts must be at least 1, got " +
        std::to_string(options.retry.max_attempts));
  }
  if (options.retry.backoff_base_ms < 0) {
    return Status::InvalidArgument(
        "retry.backoff_base_ms must be non-negative, got " +
        std::to_string(options.retry.backoff_base_ms));
  }
  for (StatusCode code : options.retry.retryable_codes) {
    if (code == StatusCode::kOk) {
      return Status::InvalidArgument("kOk cannot be a retryable error code");
    }
  }
  if (options.task_timeout_ms < 0) {
    return Status::InvalidArgument(
        "task_timeout_ms must be non-negative, got " +
        std::to_string(options.task_timeout_ms));
  }
  if (options.deadline_ms < 0) {
    return Status::InvalidArgument("deadline_ms must be non-negative, got " +
                                   std::to_string(options.deadline_ms));
  }
  if (options.first_item_id < 1) {
    return Status::InvalidArgument("first_item_id must be at least 1, got " +
                                   std::to_string(options.first_item_id));
  }
  return Status::OK();
}

void ExecContext::RecordTrip(double latency_ms) {
  int64_t us = static_cast<int64_t>(latency_ms * 1000.0);
  if (us < 0) us = 0;
  int64_t expected = -1;
  trip_latency_us_.compare_exchange_strong(expected, us,
                                           std::memory_order_relaxed);
}

Status ExecContext::CheckInterrupt(const char* where) {
  if (!governed_) return Status::OK();
  if (options_.cancel.IsCancelled()) {
    RecordTrip(options_.cancel.MillisSinceCancel());
    return options_.cancel.Check(where);
  }
  if (deadline_.Expired()) {
    RecordTrip(deadline_.MillisSinceExpiry());
    return deadline_.Check(where);
  }
  if (budget_.limited()) {
    // Exact-accounting abort: arena block charges never fail an allocation
    // (factories are infallible); a failed charge parks in the arena and
    // trips here, the next cancellation point on the allocating thread.
    ValueArena* scope = ValueArena::CurrentScope();
    if (scope != nullptr && !scope->governance_status().ok()) {
      return scope->governance_status().WithContext(where);
    }
  }
  return Status::OK();
}

std::shared_ptr<ValueArena> ExecContext::MakeTaskArena() {
  ValueArena::Options o;
  o.legacy_heap = options_.legacy_heap_alloc;
  if (budget_.limited()) {
    o.budget = &budget_;
    o.budget_what = "value arena blocks";
  }
  return std::make_shared<ValueArena>(o);
}

void ExecContext::CommitTaskArena(std::shared_ptr<ValueArena> arena) {
  std::lock_guard<std::mutex> lock(arena_mu_);
  if (arena_status_.ok() && !arena->governance_status().ok()) {
    arena_status_ = arena->governance_status();
  }
  run_arenas_.push_back(std::move(arena));
}

void ExecContext::DiscardTaskArena(std::shared_ptr<ValueArena> arena) {
  std::lock_guard<std::mutex> lock(arena_mu_);
  discarded_stats_.Add(arena->stats());
  discarded_arenas_ += 1;
  // Dropping the last reference frees the attempt's memory wholesale and
  // releases its budget charges.
}

std::vector<std::shared_ptr<ValueArena>> ExecContext::run_arenas() const {
  std::lock_guard<std::mutex> lock(arena_mu_);
  return run_arenas_;
}

Status ExecContext::arena_exhausted() const {
  std::lock_guard<std::mutex> lock(arena_mu_);
  return arena_status_;
}

ExecContext::ArenaAccounting ExecContext::arena_accounting() const {
  std::lock_guard<std::mutex> lock(arena_mu_);
  ArenaAccounting acct;
  acct.stats = discarded_stats_;
  acct.arenas = discarded_arenas_;
  for (const auto& arena : run_arenas_) {
    acct.stats.Add(arena->stats());
    acct.arenas += 1;
    acct.bytes_charged += arena->budget_charged_bytes();
  }
  return acct;
}

Status ExecContext::ChargeBytes(uint64_t bytes, const char* what) {
  if (!budget_.limited() || bytes == 0) return Status::OK();
  return budget_.TryCharge(bytes, what);
}

void ExecContext::ReleaseBytes(uint64_t bytes) {
  if (!budget_.limited() || bytes == 0) return;
  budget_.Release(bytes);
}

Status ExecContext::RunTaskAttempts(size_t i,
                                    const std::function<Status(size_t)>& fn,
                                    TaskStats* stats) {
  const RetryPolicy& retry = options_.retry;
  const int max_attempts = std::max(1, retry.max_attempts);
  stats->tasks_started += 1;
  Status last;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      stats->retries += 1;
      if (retry.backoff_base_ms > 0) {
        int64_t backoff = static_cast<int64_t>(retry.backoff_base_ms)
                          << (attempt - 2);
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      }
    }
    stats->attempts += 1;
    // Cancellation point: a retry chain must not outlive a cancel or the
    // run deadline. kCancelled / kDeadlineExceeded are not retryable by any
    // sensible policy, so this ends the task.
    {
      Status g = CheckInterrupt("task attempt");
      if (!g.ok()) {
        stats->tasks_failed += 1;
        return g;
      }
    }
    // Deterministic per-(task, attempt) key: fault schedules replay exactly
    // regardless of which worker thread picks the task up when.
    uint64_t key = (static_cast<uint64_t>(i) << 8) |
                   static_cast<uint64_t>(attempt & 0xff);
    Stopwatch watch;
    Status st = FailpointRegistry::Global().Evaluate(
        failpoints::kTaskPartition, key);
    // Every attempt allocates into its own arena: a failed (or timed-out)
    // attempt's values are freed wholesale with the arena, so retries can
    // never leak or alias a previous attempt's allocations; a successful
    // attempt's arena transfers to the run pool, where it lives as long as
    // the datasets referencing its values.
    std::shared_ptr<ValueArena> arena;
    if (st.ok()) {
      arena = MakeTaskArena();
      ValueArenaScope scope(arena.get());
      st = fn(i);
    }
    if (st.ok() && options_.task_timeout_ms > 0 &&
        watch.ElapsedMillis() > options_.task_timeout_ms) {
      stats->timeouts += 1;
      st = Status::Unavailable(
          "task " + std::to_string(i) + " exceeded the " +
          std::to_string(options_.task_timeout_ms) + "ms timeout");
    }
    if (st.ok()) {
      CommitTaskArena(std::move(arena));
      stats->tasks_succeeded += 1;
      return st;
    }
    if (arena != nullptr) {
      DiscardTaskArena(std::move(arena));
    }
    last = std::move(st);
    if (!retry.IsRetryable(last.code())) break;
  }
  stats->tasks_failed += 1;
  return last;
}

Status ExecContext::ParallelFor(size_t n,
                                const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();

  // Fail-fast bound: tasks with index > bound are skipped. The bound only
  // ever moves down to the index of a terminally failed task, so every task
  // below the lowest failure still runs — the reported error is therefore
  // always the lowest-index failure, independent of thread timing.
  std::atomic<size_t> cancel_bound{n};
  std::vector<Status> terminal(n);
  TaskStats run_stats;
  std::mutex agg_mu;

  auto run_range = [&](size_t first, size_t stride) {
    TaskStats local;
    for (size_t i = first; i < n; i += stride) {
      if (i > cancel_bound.load(std::memory_order_acquire)) {
        local.tasks_skipped += 1;
        continue;
      }
      // Governance cancellation point at task granularity: a tripped run
      // sheds tasks that have not started instead of attempting them. The
      // trip is recorded like any terminal failure so fail-fast and the
      // lowest-index-failure guarantee apply unchanged.
      if (governed_) {
        Status g = CheckInterrupt("task scheduling");
        if (!g.ok()) {
          local.tasks_shed += 1;
          size_t cur = cancel_bound.load(std::memory_order_acquire);
          while (i < cur && !cancel_bound.compare_exchange_weak(
                                cur, i, std::memory_order_acq_rel)) {
          }
          terminal[i] = std::move(g);
          continue;
        }
      }
      Status st = RunTaskAttempts(i, fn, &local);
      if (!st.ok()) {
        size_t cur = cancel_bound.load(std::memory_order_acquire);
        while (i < cur && !cancel_bound.compare_exchange_weak(
                              cur, i, std::memory_order_acq_rel)) {
        }
        terminal[i] = std::move(st);
      }
    }
    std::lock_guard<std::mutex> lock(agg_mu);
    run_stats.Add(local);
  };

  size_t workers =
      std::min<size_t>(static_cast<size_t>(std::max(1, options_.num_threads)),
                       n);
  if (workers <= 1) {
    run_range(0, 1);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.emplace_back(run_range, w, workers);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.Add(run_stats);
  }
  for (size_t i = 0; i < n; ++i) {
    if (!terminal[i].ok()) return terminal[i];
  }
  return Status::OK();
}

TaskStats ExecContext::task_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace pebble
