#include "engine/operator.h"

#include <mutex>
#include <thread>

namespace pebble {

Status ExecContext::ParallelFor(size_t n,
                                const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();
  int threads = options_.num_threads;
  if (threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      PEBBLE_RETURN_NOT_OK(fn(i));
    }
    return Status::OK();
  }
  size_t workers = std::min<size_t>(static_cast<size_t>(threads), n);
  std::mutex mu;
  Status first_error;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w]() {
      for (size_t i = w; i < n; i += workers) {
        Status st = fn(i);
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          if (first_error.ok()) first_error = st;
        }
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  return first_error;
}

}  // namespace pebble
