// GroupBy + aggregation/nesting operator (paper Tab. 5 grouping* and
// aggregation rules; backtraced by Alg. 4).

#include <unordered_map>
#include <utility>

#include "common/failpoint.h"
#include "engine/op_internal.h"
#include "engine/operators.h"

namespace pebble {

namespace {

const char* AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kCollectList:
      return "collect_list";
    case AggKind::kCollectSet:
      return "collect_set";
  }
  return "?";
}

/// Computes one aggregate over the per-row evaluated input values.
Result<ValuePtr> ComputeAgg(const AggSpec& spec,
                            const std::vector<ValuePtr>& values) {
  switch (spec.kind) {
    case AggKind::kCount:
      return Value::Int(static_cast<int64_t>(values.size()));
    case AggKind::kSum: {
      bool any_double = false;
      int64_t isum = 0;
      double dsum = 0;
      for (const ValuePtr& v : values) {
        if (v->is_null()) continue;
        if (!v->is_numeric()) {
          return Status::TypeError("sum over non-numeric value");
        }
        if (v->kind() == ValueKind::kDouble) any_double = true;
        isum += v->kind() == ValueKind::kInt ? v->int_value() : 0;
        dsum += v->AsDouble();
      }
      return any_double ? Value::Double(dsum) : Value::Int(isum);
    }
    case AggKind::kMin:
    case AggKind::kMax: {
      ValuePtr best = nullptr;
      for (const ValuePtr& v : values) {
        if (v->is_null()) continue;
        if (best == nullptr) {
          best = v;
          continue;
        }
        int c = v->Compare(*best);
        if ((spec.kind == AggKind::kMin && c < 0) ||
            (spec.kind == AggKind::kMax && c > 0)) {
          best = v;
        }
      }
      return best != nullptr ? best : Value::Null();
    }
    case AggKind::kAvg: {
      double sum = 0;
      int64_t n = 0;
      for (const ValuePtr& v : values) {
        if (v->is_null()) continue;
        if (!v->is_numeric()) {
          return Status::TypeError("avg over non-numeric value");
        }
        sum += v->AsDouble();
        ++n;
      }
      return n == 0 ? Value::Null() : Value::Double(sum / n);
    }
    case AggKind::kCollectList:
      return Value::Bag(values);
    case AggKind::kCollectSet:
      return Value::Set(values);
  }
  return Status::Internal("unreachable aggregate kind");
}

Result<TypePtr> AggOutputType(const AggSpec& spec, const TypePtr& input) {
  if (spec.kind == AggKind::kCount) return DataType::Int();
  PEBBLE_ASSIGN_OR_RETURN(TypePtr in_type, ResolveType(input, spec.input));
  switch (spec.kind) {
    case AggKind::kSum:
      return in_type->kind() == TypeKind::kDouble ? DataType::Double()
                                                  : DataType::Int();
    case AggKind::kAvg:
      return DataType::Double();
    case AggKind::kMin:
    case AggKind::kMax:
      return in_type;
    case AggKind::kCollectList:
      return DataType::Bag(in_type);
    case AggKind::kCollectSet:
      return DataType::Set(in_type);
    default:
      return Status::Internal("unreachable aggregate kind");
  }
}

std::string DescribeGroupAgg(const std::vector<GroupKey>& keys,
                             const std::vector<AggSpec>& aggs) {
  std::string out = "groupBy(";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys[i].path.ToString();
  }
  out += ")";
  for (const AggSpec& a : aggs) {
    out += ", ";
    out += AggKindToString(a.kind);
    out += "(";
    out += a.input.ToString();
    out += ") -> ";
    out += a.output;
  }
  return out;
}

}  // namespace

AggSpec AggSpec::Count(std::string output) {
  return AggSpec{AggKind::kCount, Path(), std::move(output)};
}
AggSpec AggSpec::Sum(const std::string& input, std::string output) {
  return AggSpec{AggKind::kSum, std::move(Path::Parse(input)).ValueOrDie(),
                 std::move(output)};
}
AggSpec AggSpec::Min(const std::string& input, std::string output) {
  return AggSpec{AggKind::kMin, std::move(Path::Parse(input)).ValueOrDie(),
                 std::move(output)};
}
AggSpec AggSpec::Max(const std::string& input, std::string output) {
  return AggSpec{AggKind::kMax, std::move(Path::Parse(input)).ValueOrDie(),
                 std::move(output)};
}
AggSpec AggSpec::Avg(const std::string& input, std::string output) {
  return AggSpec{AggKind::kAvg, std::move(Path::Parse(input)).ValueOrDie(),
                 std::move(output)};
}
AggSpec AggSpec::CollectList(const std::string& input, std::string output) {
  return AggSpec{AggKind::kCollectList,
                 std::move(Path::Parse(input)).ValueOrDie(),
                 std::move(output)};
}
AggSpec AggSpec::CollectSet(const std::string& input, std::string output) {
  return AggSpec{AggKind::kCollectSet,
                 std::move(Path::Parse(input)).ValueOrDie(),
                 std::move(output)};
}

GroupKey GroupKey::Of(const std::string& path) {
  Path p = std::move(Path::Parse(path)).ValueOrDie();
  std::string name = p.back().attr();
  return GroupKey{std::move(p), std::move(name)};
}

GroupKey GroupKey::As(const std::string& path, std::string name) {
  return GroupKey{std::move(Path::Parse(path)).ValueOrDie(), std::move(name)};
}

GroupAggregateOp::GroupAggregateOp(std::vector<GroupKey> keys,
                                   std::vector<AggSpec> aggs)
    : Operator(OpType::kGroupAggregate, DescribeGroupAgg(keys, aggs)),
      keys_(std::move(keys)),
      aggs_(std::move(aggs)) {}

Result<TypePtr> GroupAggregateOp::InferSchema(
    const std::vector<TypePtr>& inputs) const {
  if (inputs.size() != 1) {
    return Status::InvalidArgument("groupAggregate takes exactly one input");
  }
  if (keys_.empty()) {
    return Status::InvalidArgument("groupAggregate requires group keys");
  }
  std::vector<FieldType> fields;
  auto add_field = [&](const std::string& name, TypePtr t) -> Status {
    for (const FieldType& f : fields) {
      if (f.name == name) {
        return Status::InvalidArgument("duplicate output attribute '" + name +
                                       "' in groupAggregate");
      }
    }
    fields.push_back({name, std::move(t)});
    return Status::OK();
  };
  for (const GroupKey& k : keys_) {
    PEBBLE_ASSIGN_OR_RETURN(TypePtr t, ResolveType(inputs[0], k.path));
    PEBBLE_RETURN_NOT_OK(add_field(k.name, std::move(t)));
  }
  for (const AggSpec& a : aggs_) {
    PEBBLE_ASSIGN_OR_RETURN(TypePtr t, AggOutputType(a, inputs[0]));
    PEBBLE_RETURN_NOT_OK(add_field(a.output, std::move(t)));
  }
  return DataType::Struct(std::move(fields));
}

Result<Dataset> GroupAggregateOp::Execute(
    ExecContext* ctx, const std::vector<const Dataset*>& inputs) const {
  const Dataset& in = *inputs[0];
  // num_partitions is validated positive at Executor::Run entry.
  const size_t buckets = static_cast<size_t>(ctx->options().num_partitions);
  const bool capture = ctx->capture_enabled();

  // Shuffle: hash-partition rows by key tuple, preserving global order.
  // Each input partition is one simulated exchange that can fail.
  struct KeyedRow {
    std::vector<ValuePtr> key;
    Row row;
  };
  std::vector<std::vector<KeyedRow>> keyed(buckets);
  size_t exchange = 0;
  uint64_t shuffle_charged = 0;
  uint32_t ticker = 0;
  for (const Partition& part : in.partitions()) {
    PEBBLE_RETURN_NOT_OK(ctx->CheckInterrupt("group shuffle"));
    PEBBLE_RETURN_NOT_OK(FailpointRegistry::Global().Evaluate(
        failpoints::kShuffleExchange, exchange++));
    for (const Row& row : part) {
      if ((++ticker & internal::kInterruptMask) == 0) {
        PEBBLE_RETURN_NOT_OK(ctx->CheckInterrupt("group shuffle"));
      }
      std::vector<ValuePtr> key;
      key.reserve(keys_.size());
      for (const GroupKey& k : keys_) {
        PEBBLE_ASSIGN_OR_RETURN(ValuePtr v, k.path.Evaluate(*row.value));
        key.push_back(std::move(v));
      }
      size_t b = internal::HashKeyTuple(key) % buckets;
      keyed[b].push_back(KeyedRow{std::move(key), row});
    }
    if (ctx->budget_limited()) {
      uint64_t bytes = part.size() *
                       (sizeof(KeyedRow) + keys_.size() * sizeof(ValuePtr));
      PEBBLE_RETURN_NOT_OK(ctx->ChargeBytes(bytes, "group shuffle"));
      shuffle_charged += bytes;
    }
  }

  // Per-task SoA staging: one result value per group, plus the flat
  // input-id column with an exclusive end offset per group (collect order),
  // bulk-moved into the columnar agg table at commit.
  struct AggStage {
    Partition rows;
    std::vector<int64_t> ins;
    std::vector<size_t> ends;
    uint64_t charged_bytes = 0;  // memory-budget reservation for this stage

    void Clear() {
      rows.clear();
      ins.clear();
      ends.clear();
    }
    size_t size() const { return rows.size(); }
  };
  std::vector<AggStage> staged(buckets);
  PEBBLE_RETURN_NOT_OK(ctx->ParallelFor(buckets, [&](size_t b) -> Status {
    internal::ReleaseStageCharge(ctx, &staged[b].charged_bytes);
    staged[b].Clear();  // retry-idempotent: overwrite, never append
    // Group rows of this bucket in encounter order. The shuffled input
    // (keyed[b]) is shared across attempts and must only be read, never
    // moved from: a retried attempt sees the same rows again.
    struct Group {
      std::vector<ValuePtr> key;
      std::vector<Row> rows;
    };
    std::vector<Group> groups;
    std::unordered_multimap<uint64_t, size_t> index;
    uint32_t group_ticker = 0;
    for (const KeyedRow& kr : keyed[b]) {
      if ((++group_ticker & internal::kInterruptMask) == 0) {
        PEBBLE_RETURN_NOT_OK(ctx->CheckInterrupt("group build"));
      }
      uint64_t h = internal::HashKeyTuple(kr.key);
      size_t gidx = SIZE_MAX;
      auto range = index.equal_range(h);
      for (auto it = range.first; it != range.second; ++it) {
        if (internal::KeyTupleEquals(groups[it->second].key, kr.key)) {
          gidx = it->second;
          break;
        }
      }
      if (gidx == SIZE_MAX) {
        gidx = groups.size();
        groups.push_back(Group{kr.key, {}});
        index.emplace(h, gidx);
      }
      groups[gidx].rows.push_back(kr.row);
    }
    // Reduce each group to one result item (Tab. 5 aggregation rule).
    staged[b].rows.reserve(groups.size());
    if (capture) staged[b].ends.reserve(groups.size());
    uint32_t reduce_ticker = 0;
    for (Group& g : groups) {
      if ((++reduce_ticker & internal::kInterruptMask) == 0) {
        PEBBLE_RETURN_NOT_OK(ctx->CheckInterrupt("group reduce"));
      }
      std::vector<Field> fields;
      fields.reserve(keys_.size() + aggs_.size());
      for (size_t k = 0; k < keys_.size(); ++k) {
        fields.push_back(Field{keys_[k].name, g.key[k]});
      }
      for (const AggSpec& a : aggs_) {
        std::vector<ValuePtr> values;
        if (a.kind != AggKind::kCount) {
          values.reserve(g.rows.size());
          for (const Row& row : g.rows) {
            PEBBLE_ASSIGN_OR_RETURN(ValuePtr v, a.input.Evaluate(*row.value));
            values.push_back(std::move(v));
          }
        } else {
          values.resize(g.rows.size());
        }
        PEBBLE_ASSIGN_OR_RETURN(ValuePtr out, ComputeAgg(a, values));
        fields.push_back(Field{a.output, std::move(out)});
      }
      staged[b].rows.push_back(Row{-1, Value::Struct(std::move(fields))});
      if (capture) {
        for (const Row& row : g.rows) {
          staged[b].ins.push_back(row.id);
        }
        staged[b].ends.push_back(staged[b].ins.size());
      }
    }
    return internal::ChargeStage(
        ctx, staged[b].rows,
        staged[b].ins.size() * sizeof(int64_t) +
            staged[b].ends.size() * sizeof(size_t),
        "group staging", &staged[b].charged_bytes);
  }));
  // The shuffle buckets are consumed; drop their reservation.
  ctx->ReleaseBytes(shuffle_charged);

  OperatorProvenance* prov = nullptr;
  if (capture) {
    prov = ctx->store()->Mutable(oid());
    // A: group keys plus every aggregated attribute (Tab. 5 aggregation
    // rule: union over G, A_c and A_B paths).
    std::vector<Path> accessed;
    std::vector<PathMapping> manipulations;
    for (const GroupKey& k : keys_) {
      Path p = k.path.WithPosPlaceholders();
      accessed.push_back(p);
      manipulations.push_back(
          PathMapping{p, Path::Attr(k.name), /*from_grouping=*/true});
    }
    for (const AggSpec& a : aggs_) {
      if (a.kind != AggKind::kCount) {
        accessed.push_back(a.input.WithPosPlaceholders());
      }
      if (a.kind == AggKind::kCollectList) {
        // Bag nesting: the output path carries the positional placeholder;
        // position i of the nested bag came from the input id at position i
        // of the group's id collection (Tab. 6).
        manipulations.push_back(
            PathMapping{a.input.WithPosPlaceholders(),
                        Path({PathStep{a.output, kPosPlaceholder}})});
      } else {
        manipulations.push_back(PathMapping{a.input.WithPosPlaceholders(),
                                            Path::Attr(a.output)});
      }
    }
    InputProvenance ip;
    ip.producer_oid = input_oids()[0];
    ip.accessed = std::move(accessed);
    ip.input_schema = in.schema();
    internal::EmitSchemaCapture(ctx, *this, prov, {ip},
                                std::move(manipulations), false);
  }
  PEBBLE_RETURN_NOT_OK(internal::CheckProvenanceCommit(ctx, prov));

  const bool items = ctx->capture_items();
  std::vector<Partition> parts(buckets);
  for (size_t b = 0; b < buckets; ++b) {
    AggStage& stage = staged[b];
    const size_t n = stage.size();
    int64_t first = n == 0 || !capture
                        ? 0
                        : ctx->ReserveIds(static_cast<int64_t>(n));
    if (capture) {
      for (size_t k = 0; k < n; ++k) {
        stage.rows[k].id = first + static_cast<int64_t>(k);
      }
    }
    parts[b] = std::move(stage.rows);
    if (capture) {
      if (items) {
        // Full model: one input entry per group member, with item-level
        // manipulation targets using concrete positions.
        for (size_t k = 0; k < n; ++k) {
          size_t begin = k == 0 ? 0 : stage.ends[k - 1];
          size_t count = stage.ends[k] - begin;
          ItemProvenance item;
          item.out_id = first + static_cast<int64_t>(k);
          for (size_t pos = 0; pos < count; ++pos) {
            ItemInputProvenance in_prov;
            in_prov.in_id = stage.ins[begin + pos];
            in_prov.input_index = 0;
            for (const GroupKey& key : keys_) {
              in_prov.accessed.push_back(key.path);
            }
            for (const AggSpec& a : aggs_) {
              if (a.kind != AggKind::kCount) {
                in_prov.accessed.push_back(a.input);
              }
            }
            item.inputs.push_back(std::move(in_prov));
          }
          for (const AggSpec& a : aggs_) {
            if (a.kind == AggKind::kCollectList) {
              for (size_t pos = 1; pos <= count; ++pos) {
                item.manipulations.push_back(PathMapping{
                    a.input,
                    Path({PathStep{a.output, static_cast<int32_t>(pos)}})});
              }
            }
          }
          prov->item_provenance.push_back(std::move(item));
        }
      }
      prov->agg_ids.AppendStage(std::move(stage.ins), std::move(stage.ends),
                                first);
    }
    internal::ReleaseStageCharge(ctx, &stage.charged_bytes);
  }
  return Dataset(output_schema(), std::move(parts));
}

}  // namespace pebble
