// Flatten operator (paper Tab. 5 flatten rule, Ex. 4.11 / Fig. 3).

#include <utility>

#include "engine/op_internal.h"
#include "engine/operators.h"

namespace pebble {

namespace {

struct FlattenPending {
  ValuePtr value;
  int64_t in_id;
  int32_t pos;  // 1-based position of the unnested element
};

}  // namespace

FlattenOp::FlattenOp(Path column, std::string new_attr)
    : Operator(OpType::kFlatten,
               "flatten " + column.ToString() + " -> " + new_attr),
      column_(std::move(column)),
      new_attr_(std::move(new_attr)) {}

Result<TypePtr> FlattenOp::InferSchema(
    const std::vector<TypePtr>& inputs) const {
  if (inputs.size() != 1) {
    return Status::InvalidArgument("flatten takes exactly one input");
  }
  if (column_.HasPositions()) {
    return Status::InvalidArgument(
        "flatten column must not contain positions: " + column_.ToString());
  }
  PEBBLE_ASSIGN_OR_RETURN(TypePtr col_type, ResolveType(inputs[0], column_));
  if (!col_type->is_collection()) {
    return Status::TypeError("flatten column '" + column_.ToString() +
                             "' is not a collection: " + col_type->ToString());
  }
  if (inputs[0]->FindField(new_attr_) != nullptr) {
    return Status::InvalidArgument("flatten output attribute '" + new_attr_ +
                                   "' already exists in the input schema");
  }
  std::vector<FieldType> fields = inputs[0]->fields();
  fields.push_back({new_attr_, col_type->element()});
  return DataType::Struct(std::move(fields));
}

Result<Dataset> FlattenOp::Execute(
    ExecContext* ctx, const std::vector<const Dataset*>& inputs) const {
  const Dataset& in = *inputs[0];
  const size_t nparts = in.partitions().size();

  auto explode = [&](const Row& row,
                     const std::function<void(ValuePtr, int32_t)>& emit)
      -> Status {
    PEBBLE_ASSIGN_OR_RETURN(ValuePtr col, column_.Evaluate(*row.value));
    if (col->is_null()) return Status::OK();  // nothing to unnest
    if (!col->is_collection()) {
      return Status::TypeError("flatten column '" + column_.ToString() +
                               "' is not a collection value");
    }
    for (size_t x = 0; x < col->num_elements(); ++x) {
      std::vector<Field> fields = row.value->fields();
      fields.push_back(Field{new_attr_, col->elements()[x]});
      emit(Value::Struct(std::move(fields)), static_cast<int32_t>(x + 1));
    }
    return Status::OK();
  };

  if (!ctx->capture_enabled()) {
    std::vector<Partition> parts(nparts);
    PEBBLE_RETURN_NOT_OK(ctx->ParallelFor(nparts, [&](size_t p) -> Status {
      parts[p].clear();  // retry-idempotent: overwrite, never append
      for (const Row& row : in.partitions()[p]) {
        PEBBLE_RETURN_NOT_OK(explode(row, [&](ValuePtr v, int32_t) {
          parts[p].push_back(Row{-1, std::move(v)});
        }));
      }
      return Status::OK();
    }));
    return Dataset(output_schema(), std::move(parts));
  }

  std::vector<std::vector<FlattenPending>> pending(nparts);
  PEBBLE_RETURN_NOT_OK(ctx->ParallelFor(nparts, [&](size_t p) -> Status {
    pending[p].clear();  // retry-idempotent: overwrite, never append
    for (const Row& row : in.partitions()[p]) {
      PEBBLE_RETURN_NOT_OK(explode(row, [&](ValuePtr v, int32_t pos) {
        pending[p].push_back(FlattenPending{std::move(v), row.id, pos});
      }));
    }
    return Status::OK();
  }));

  OperatorProvenance* prov = ctx->store()->Mutable(oid());
  PEBBLE_RETURN_NOT_OK(internal::CheckProvenanceCommit(prov));
  // Schema-level capture: A = {a_col[pos]}, M = {(a_col[pos], a_new)}.
  Path col_pos = column_.Parent().Child(
      PathStep{column_.back().attr, kPosPlaceholder});
  InputProvenance ip;
  ip.producer_oid = input_oids()[0];
  ip.accessed = {col_pos};
  ip.input_schema = in.schema();
  internal::EmitSchemaCapture(
      ctx, *this, prov, {ip},
      {PathMapping{col_pos, Path::Attr(new_attr_)}}, false);

  const bool items = ctx->capture_items();
  std::vector<Partition> parts(nparts);
  for (size_t p = 0; p < nparts; ++p) {
    std::vector<FlattenPending>& rows = pending[p];
    parts[p].reserve(rows.size());
    int64_t first = rows.empty()
                        ? 0
                        : ctx->ReserveIds(static_cast<int64_t>(rows.size()));
    for (size_t k = 0; k < rows.size(); ++k) {
      int64_t out_id = first + static_cast<int64_t>(k);
      parts[p].push_back(Row{out_id, std::move(rows[k].value)});
      prov->flatten_ids.push_back(
          FlattenIdRow{rows[k].in_id, rows[k].pos, out_id});
      if (items) {
        // Item-level provenance: the concrete position is materialized.
        Path concrete = column_.Parent().Child(
            PathStep{column_.back().attr, rows[k].pos});
        ItemProvenance item;
        item.out_id = out_id;
        ItemInputProvenance in_prov;
        in_prov.in_id = rows[k].in_id;
        in_prov.input_index = 0;
        in_prov.accessed = {concrete};
        item.inputs.push_back(std::move(in_prov));
        item.manipulations = {
            PathMapping{std::move(concrete), Path::Attr(new_attr_)}};
        prov->item_provenance.push_back(std::move(item));
      }
    }
  }
  return Dataset(output_schema(), std::move(parts));
}

}  // namespace pebble
