// Flatten operator (paper Tab. 5 flatten rule, Ex. 4.11 / Fig. 3).

#include <utility>

#include "engine/op_internal.h"
#include "engine/operators.h"

namespace pebble {

namespace {

/// Per-task SoA staging: produced values plus flat (in-id, pos) columns,
/// bulk-moved into the store's columnar flatten table at commit.
struct FlattenStage {
  Partition rows;
  std::vector<int64_t> in_ids;
  std::vector<int32_t> pos;
  uint64_t charged_bytes = 0;  // memory-budget reservation for this stage

  void Clear() {
    rows.clear();
    in_ids.clear();
    pos.clear();
  }
  void Reserve(size_t n) {
    rows.reserve(n);
    in_ids.reserve(n);
    pos.reserve(n);
  }
  size_t size() const { return rows.size(); }
};

}  // namespace

FlattenOp::FlattenOp(Path column, std::string new_attr)
    : Operator(OpType::kFlatten,
               "flatten " + column.ToString() + " -> " + new_attr),
      column_(std::move(column)),
      new_attr_(std::move(new_attr)) {}

Result<TypePtr> FlattenOp::InferSchema(
    const std::vector<TypePtr>& inputs) const {
  if (inputs.size() != 1) {
    return Status::InvalidArgument("flatten takes exactly one input");
  }
  if (column_.HasPositions()) {
    return Status::InvalidArgument(
        "flatten column must not contain positions: " + column_.ToString());
  }
  PEBBLE_ASSIGN_OR_RETURN(TypePtr col_type, ResolveType(inputs[0], column_));
  if (!col_type->is_collection()) {
    return Status::TypeError("flatten column '" + column_.ToString() +
                             "' is not a collection: " + col_type->ToString());
  }
  if (inputs[0]->FindField(new_attr_) != nullptr) {
    return Status::InvalidArgument("flatten output attribute '" + new_attr_ +
                                   "' already exists in the input schema");
  }
  std::vector<FieldType> fields = inputs[0]->fields();
  fields.push_back({new_attr_, col_type->element()});
  return DataType::Struct(std::move(fields));
}

Result<Dataset> FlattenOp::Execute(
    ExecContext* ctx, const std::vector<const Dataset*>& inputs) const {
  const Dataset& in = *inputs[0];
  const size_t nparts = in.partitions().size();

  auto explode = [&](const Row& row,
                     const std::function<void(ValuePtr, int32_t)>& emit)
      -> Status {
    PEBBLE_ASSIGN_OR_RETURN(ValuePtr col, column_.Evaluate(*row.value));
    if (col->is_null()) return Status::OK();  // nothing to unnest
    if (!col->is_collection()) {
      return Status::TypeError("flatten column '" + column_.ToString() +
                               "' is not a collection value");
    }
    for (size_t x = 0; x < col->num_elements(); ++x) {
      emit(Value::StructWith(*row.value, new_attr_, col->elements()[x]),
           static_cast<int32_t>(x + 1));
    }
    return Status::OK();
  };

  if (!ctx->capture_enabled()) {
    std::vector<Partition> parts(nparts);
    std::vector<uint64_t> charged(nparts, 0);
    PEBBLE_RETURN_NOT_OK(ctx->ParallelFor(nparts, [&](size_t p) -> Status {
      internal::ReleaseStageCharge(ctx, &charged[p]);
      parts[p].clear();  // retry-idempotent: overwrite, never append
      uint32_t ticker = 0;
      for (const Row& row : in.partitions()[p]) {
        if ((++ticker & internal::kInterruptMask) == 0) {
          PEBBLE_RETURN_NOT_OK(ctx->CheckInterrupt("flatten"));
        }
        PEBBLE_RETURN_NOT_OK(explode(row, [&](ValuePtr v, int32_t) {
          parts[p].push_back(Row{-1, std::move(v)});
        }));
      }
      return internal::ChargeStage(ctx, parts[p], 0, "flatten staging",
                                   &charged[p]);
    }));
    for (size_t p = 0; p < nparts; ++p) {
      internal::ReleaseStageCharge(ctx, &charged[p]);
    }
    return Dataset(output_schema(), std::move(parts));
  }

  std::vector<FlattenStage> staged(nparts);
  PEBBLE_RETURN_NOT_OK(ctx->ParallelFor(nparts, [&](size_t p) -> Status {
    internal::ReleaseStageCharge(ctx, &staged[p].charged_bytes);
    staged[p].Clear();  // retry-idempotent: overwrite, never append
    staged[p].Reserve(in.partitions()[p].size());
    uint32_t ticker = 0;
    for (const Row& row : in.partitions()[p]) {
      if ((++ticker & internal::kInterruptMask) == 0) {
        PEBBLE_RETURN_NOT_OK(ctx->CheckInterrupt("flatten"));
      }
      PEBBLE_RETURN_NOT_OK(explode(row, [&](ValuePtr v, int32_t pos) {
        staged[p].rows.push_back(Row{-1, std::move(v)});
        staged[p].in_ids.push_back(row.id);
        staged[p].pos.push_back(pos);
      }));
    }
    return internal::ChargeStage(
        ctx, staged[p].rows,
        staged[p].in_ids.size() * (sizeof(int64_t) + sizeof(int32_t)),
        "flatten staging", &staged[p].charged_bytes);
  }));

  OperatorProvenance* prov = ctx->store()->Mutable(oid());
  PEBBLE_RETURN_NOT_OK(internal::CheckProvenanceCommit(ctx, prov));
  // Schema-level capture: A = {a_col[pos]}, M = {(a_col[pos], a_new)}.
  Path col_pos = column_.Parent().Child(
      PathStep{column_.back().attr(), kPosPlaceholder});
  InputProvenance ip;
  ip.producer_oid = input_oids()[0];
  ip.accessed = {col_pos};
  ip.input_schema = in.schema();
  internal::EmitSchemaCapture(
      ctx, *this, prov, {ip},
      {PathMapping{col_pos, Path::Attr(new_attr_)}}, false);

  const bool items = ctx->capture_items();
  std::vector<Partition> parts(nparts);
  for (size_t p = 0; p < nparts; ++p) {
    FlattenStage& stage = staged[p];
    const size_t n = stage.size();
    int64_t first = n == 0 ? 0 : ctx->ReserveIds(static_cast<int64_t>(n));
    for (size_t k = 0; k < n; ++k) {
      stage.rows[k].id = first + static_cast<int64_t>(k);
    }
    parts[p] = std::move(stage.rows);
    if (items) {
      for (size_t k = 0; k < n; ++k) {
        // Item-level provenance: the concrete position is materialized.
        Path concrete = column_.Parent().Child(
            PathStep{column_.back().attr(), stage.pos[k]});
        ItemProvenance item;
        item.out_id = first + static_cast<int64_t>(k);
        ItemInputProvenance in_prov;
        in_prov.in_id = stage.in_ids[k];
        in_prov.input_index = 0;
        in_prov.accessed = {concrete};
        item.inputs.push_back(std::move(in_prov));
        item.manipulations = {
            PathMapping{std::move(concrete), Path::Attr(new_attr_)}};
        prov->item_provenance.push_back(std::move(item));
      }
    }
    prov->flatten_ids.AppendStage(std::move(stage.in_ids),
                                  std::move(stage.pos), first);
    internal::ReleaseStageCharge(ctx, &stage.charged_bytes);
  }
  return Dataset(output_schema(), std::move(parts));
}

}  // namespace pebble
