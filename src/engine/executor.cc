#include "engine/executor.h"

#include "common/stopwatch.h"

namespace pebble {

namespace {

/// Statistics delta of one operator's execution.
TaskStats StatsDelta(const TaskStats& before, const TaskStats& after) {
  TaskStats d;
  d.tasks_started = after.tasks_started - before.tasks_started;
  d.tasks_succeeded = after.tasks_succeeded - before.tasks_succeeded;
  d.tasks_failed = after.tasks_failed - before.tasks_failed;
  d.tasks_skipped = after.tasks_skipped - before.tasks_skipped;
  d.attempts = after.attempts - before.attempts;
  d.retries = after.retries - before.retries;
  d.timeouts = after.timeouts - before.timeouts;
  return d;
}

}  // namespace

Result<ExecutionResult> Executor::Run(const Pipeline& pipeline) const {
  PEBBLE_RETURN_NOT_OK(ValidateExecOptions(options_));
  Stopwatch watch;
  ExecutionResult result;
  std::shared_ptr<ProvenanceStore> store;
  if (options_.capture != CaptureMode::kOff) {
    store = std::make_shared<ProvenanceStore>();
    store->set_mode(options_.capture);
    store->set_sink_oid(pipeline.sink_oid());
    for (const auto& op : pipeline.operators()) {
      store->RegisterOperator(OperatorInfo{op->oid(), op->type(),
                                           op->input_oids(), op->label()});
    }
  }
  ExecContext ctx(options_, store.get());

  // Reference counts: an intermediate dataset can be released once its last
  // consumer has executed (bounds peak memory on deep pipelines).
  std::map<int, int> remaining_consumers;
  for (const auto& op : pipeline.operators()) {
    for (int in : op->input_oids()) {
      remaining_consumers[in] += 1;
    }
  }

  std::map<int, Dataset> materialized;
  for (const auto& op : pipeline.operators()) {
    std::vector<const Dataset*> inputs;
    inputs.reserve(op->input_oids().size());
    for (int in : op->input_oids()) {
      auto it = materialized.find(in);
      if (it == materialized.end()) {
        return Status::Internal("input dataset " + std::to_string(in) +
                                " of operator " + std::to_string(op->oid()) +
                                " not materialized");
      }
      inputs.push_back(&it->second);
    }
    TaskStats before = ctx.task_stats();
    PEBBLE_ASSIGN_OR_RETURN(Dataset out, op->Execute(&ctx, inputs));
    TaskStats delta = StatsDelta(before, ctx.task_stats());
    if (delta.attempts > 0) {
      result.tasks_per_operator[op->oid()] = delta;
    }
    if (op->type() == OpType::kScan) {
      result.source_datasets.emplace(op->oid(), out);
    }
    result.rows_per_operator[op->oid()] = out.NumRows();
    for (int in : op->input_oids()) {
      if (--remaining_consumers[in] == 0 && in != pipeline.sink_oid()) {
        materialized.erase(in);
      }
    }
    materialized.emplace(op->oid(), std::move(out));
  }

  auto sink_it = materialized.find(pipeline.sink_oid());
  if (sink_it == materialized.end()) {
    return Status::Internal("sink dataset not materialized");
  }
  result.output = std::move(sink_it->second);
  result.provenance = std::move(store);
  result.task_stats = ctx.task_stats();
  result.elapsed_ms = watch.ElapsedMillis();
  return result;
}

}  // namespace pebble
