#include "engine/executor.h"

#include "common/stopwatch.h"

namespace pebble {

Result<ExecutionResult> Executor::Run(const Pipeline& pipeline) const {
  Stopwatch watch;
  ExecutionResult result;
  std::shared_ptr<ProvenanceStore> store;
  if (options_.capture != CaptureMode::kOff) {
    store = std::make_shared<ProvenanceStore>();
    store->set_mode(options_.capture);
    store->set_sink_oid(pipeline.sink_oid());
    for (const auto& op : pipeline.operators()) {
      store->RegisterOperator(OperatorInfo{op->oid(), op->type(),
                                           op->input_oids(), op->label()});
    }
  }
  ExecContext ctx(options_, store.get());

  // Reference counts: an intermediate dataset can be released once its last
  // consumer has executed (bounds peak memory on deep pipelines).
  std::map<int, int> remaining_consumers;
  for (const auto& op : pipeline.operators()) {
    for (int in : op->input_oids()) {
      remaining_consumers[in] += 1;
    }
  }

  std::map<int, Dataset> materialized;
  for (const auto& op : pipeline.operators()) {
    std::vector<const Dataset*> inputs;
    inputs.reserve(op->input_oids().size());
    for (int in : op->input_oids()) {
      auto it = materialized.find(in);
      if (it == materialized.end()) {
        return Status::Internal("input dataset " + std::to_string(in) +
                                " of operator " + std::to_string(op->oid()) +
                                " not materialized");
      }
      inputs.push_back(&it->second);
    }
    PEBBLE_ASSIGN_OR_RETURN(Dataset out, op->Execute(&ctx, inputs));
    if (op->type() == OpType::kScan) {
      result.source_datasets.emplace(op->oid(), out);
    }
    result.rows_per_operator[op->oid()] = out.NumRows();
    for (int in : op->input_oids()) {
      if (--remaining_consumers[in] == 0 && in != pipeline.sink_oid()) {
        materialized.erase(in);
      }
    }
    materialized.emplace(op->oid(), std::move(out));
  }

  auto sink_it = materialized.find(pipeline.sink_oid());
  if (sink_it == materialized.end()) {
    return Status::Internal("sink dataset not materialized");
  }
  result.output = std::move(sink_it->second);
  result.provenance = std::move(store);
  result.elapsed_ms = watch.ElapsedMillis();
  return result;
}

}  // namespace pebble
