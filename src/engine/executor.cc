#include "engine/executor.h"

#include "common/stopwatch.h"

namespace pebble {

namespace {

/// Statistics delta of one operator's execution.
TaskStats StatsDelta(const TaskStats& before, const TaskStats& after) {
  TaskStats d;
  d.tasks_started = after.tasks_started - before.tasks_started;
  d.tasks_succeeded = after.tasks_succeeded - before.tasks_succeeded;
  d.tasks_failed = after.tasks_failed - before.tasks_failed;
  d.tasks_skipped = after.tasks_skipped - before.tasks_skipped;
  d.attempts = after.attempts - before.attempts;
  d.retries = after.retries - before.retries;
  d.timeouts = after.timeouts - before.timeouts;
  d.tasks_shed = after.tasks_shed - before.tasks_shed;
  return d;
}

/// Context string identifying an operator in error messages: makes every
/// run failure attributable to the operator it came from.
std::string OperatorContext(const Operator& op) {
  return "operator " + std::to_string(op.oid()) + " (" + op.label() + ")";
}

void FillTelemetry(RunTelemetry* telemetry, const Status& status,
                   const ExecOptions& options, ExecContext* ctx) {
  if (telemetry == nullptr) return;
  telemetry->status = status;
  telemetry->memory_limit_bytes = options.memory_budget_bytes;
  if (ctx != nullptr) {
    telemetry->peak_memory_bytes = ctx->budget().high_water();
    telemetry->cancel_latency_ms = ctx->trip_latency_ms();
    telemetry->task_stats = ctx->task_stats();
    telemetry->tasks_shed = telemetry->task_stats.tasks_shed;
    ExecContext::ArenaAccounting acct = ctx->arena_accounting();
    telemetry->arena_stats = acct.stats;
    telemetry->arena_count = acct.arenas;
    telemetry->arena_bytes_charged = acct.bytes_charged;
  }
}

}  // namespace

Result<ExecutionResult> Executor::Run(const Pipeline& pipeline) const {
  return Run(pipeline, nullptr);
}

Result<ExecutionResult> Executor::Run(const Pipeline& pipeline,
                                      RunTelemetry* telemetry) const {
  {
    Status st = ValidateExecOptions(options_);
    if (!st.ok()) {
      FillTelemetry(telemetry, st, options_, nullptr);
      return st;
    }
  }
  Stopwatch watch;
  ExecutionResult result;
  std::shared_ptr<ProvenanceStore> store;
  if (options_.capture != CaptureMode::kOff) {
    store = std::make_shared<ProvenanceStore>();
    store->set_mode(options_.capture);
    store->set_sink_oid(pipeline.sink_oid());
    for (const auto& op : pipeline.operators()) {
      store->RegisterOperator(OperatorInfo{op->oid(), op->type(),
                                           op->input_oids(), op->label()});
    }
  }
  // The deadline clock of the run starts with the context.
  ExecContext ctx(options_, store.get());
  // Driver-side value arena for the run: shuffle merges, finalization, and
  // any serial operator work allocate here; per-task attempt scopes nest
  // inside it when ParallelFor runs inline. Committed into the run pool at
  // run end so driver-allocated values survive with the outputs.
  std::shared_ptr<ValueArena> driver_arena = ctx.MakeTaskArena();
  ValueArenaScope driver_scope(driver_arena.get());
  auto fail = [&](Status st) -> Status {
    FillTelemetry(telemetry, st, options_, &ctx);
    if (telemetry != nullptr) telemetry->provenance = store;
    return st;
  };

  // Streaming capture: the commit sink observes the run at its serial
  // commit points. Only meaningful when a store is being captured.
  ProvenanceCommitSink* sink =
      store != nullptr ? options_.commit_sink.get() : nullptr;
  if (sink != nullptr) {
    Status st = sink->OnRunBegin(*store, options_.first_item_id);
    if (!st.ok()) return fail(st.WithContext("commit sink (run begin)"));
  }

  // Reference counts: an intermediate dataset can be released once its last
  // consumer has executed (bounds peak memory on deep pipelines).
  std::map<int, int> remaining_consumers;
  for (const auto& op : pipeline.operators()) {
    for (int in : op->input_oids()) {
      remaining_consumers[in] += 1;
    }
  }

  std::map<int, Dataset> materialized;
  // Budget reservations held for materialized datasets, by oid.
  std::map<int, uint64_t> charged;
  for (const auto& op : pipeline.operators()) {
    // Cancellation point between operators: a tripped run stops before
    // launching the next operator's tasks.
    {
      Status g = ctx.CheckInterrupt("executor");
      if (!g.ok()) return fail(std::move(g));
    }
    std::vector<const Dataset*> inputs;
    inputs.reserve(op->input_oids().size());
    for (int in : op->input_oids()) {
      auto it = materialized.find(in);
      if (it == materialized.end()) {
        return fail(Status::Internal(
            "input dataset " + std::to_string(in) + " of operator " +
            std::to_string(op->oid()) + " not materialized"));
      }
      inputs.push_back(&it->second);
    }
    TaskStats before = ctx.task_stats();
    Result<Dataset> executed = op->Execute(&ctx, inputs);
    TaskStats delta = StatsDelta(before, ctx.task_stats());
    if (delta.attempts > 0 || delta.tasks_shed > 0) {
      result.tasks_per_operator[op->oid()] = delta;
    }
    if (!executed.ok()) {
      return fail(executed.status().WithContext(OperatorContext(*op)));
    }
    // Exact-accounting governance: an arena block charge that failed inside
    // a task too small to reach a cancellation point parks in the arena;
    // poll here so the abort is deterministic and attributed to the
    // operator that overflowed the budget.
    {
      Status ast = ctx.arena_exhausted();
      if (ast.ok() && !driver_arena->governance_status().ok()) {
        ast = driver_arena->governance_status();
      }
      if (!ast.ok()) return fail(ast.WithContext(OperatorContext(*op)));
    }
    Dataset out = std::move(executed).value();
    // Serial commit point: the operator's staged provenance is fully in the
    // store. The sink must succeed (durability) before the run continues.
    if (sink != nullptr) {
      Status st = sink->OnOperatorCommit(*store, op->oid());
      if (!st.ok()) {
        return fail(st.WithContext("commit sink, " + OperatorContext(*op)));
      }
    }
    if (ctx.budget_limited()) {
      // Container bytes only: the values themselves were already charged,
      // exactly, by the arenas that allocated them.
      uint64_t bytes = ContainerDatasetBytes(out);
      Status st = ctx.ChargeBytes(bytes, "materialized dataset");
      if (!st.ok()) return fail(st.WithContext(OperatorContext(*op)));
      charged[op->oid()] = bytes;
    }
    if (op->type() == OpType::kScan) {
      result.source_datasets.emplace(op->oid(), out);
    }
    result.rows_per_operator[op->oid()] = out.NumRows();
    for (int in : op->input_oids()) {
      if (--remaining_consumers[in] == 0 && in != pipeline.sink_oid()) {
        materialized.erase(in);
        auto ch = charged.find(in);
        if (ch != charged.end()) {
          ctx.ReleaseBytes(ch->second);
          charged.erase(ch);
        }
      }
    }
    materialized.emplace(op->oid(), std::move(out));
  }

  auto sink_it = materialized.find(pipeline.sink_oid());
  if (sink_it == materialized.end()) {
    return fail(Status::Internal("sink dataset not materialized"));
  }
  result.output = std::move(sink_it->second);
  if (sink != nullptr) {
    Status st = sink->OnRunEnd(*store, ctx.next_item_id());
    if (!st.ok()) return fail(st.WithContext("commit sink (run end)"));
  }
  result.next_item_id = ctx.next_item_id();
  result.provenance = std::move(store);
  result.task_stats = ctx.task_stats();
  result.elapsed_ms = watch.ElapsedMillis();
  result.peak_memory_bytes = ctx.budget().high_water();
  result.cancel_latency_ms = ctx.trip_latency_ms();
  // The driver arena joins the run pool, then the pool transfers to the
  // outputs: every ValuePtr in the result stays valid as long as the
  // datasets holding it. Budget charges are snapshotted for telemetry and
  // then released — the run-scoped budget's accounting closes with the run.
  ctx.CommitTaskArena(driver_arena);
  {
    ExecContext::ArenaAccounting acct = ctx.arena_accounting();
    result.arena_stats = acct.stats;
    result.arena_count = acct.arenas;
    result.arena_bytes_charged = acct.bytes_charged;
  }
  FillTelemetry(telemetry, Status::OK(), options_, &ctx);
  if (telemetry != nullptr) telemetry->provenance = result.provenance;
  std::vector<std::shared_ptr<ValueArena>> arenas = ctx.run_arenas();
  for (const std::shared_ptr<ValueArena>& arena : arenas) {
    arena->DetachBudget();
  }
  result.output.RetainArenas(arenas);
  for (auto& [oid, ds] : result.source_datasets) {
    ds.RetainArenas(arenas);
  }
  return result;
}

}  // namespace pebble
