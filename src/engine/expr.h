// Expression trees for filter predicates, join conditions and derived
// columns. Expressions evaluate against one data item and can report which
// attribute paths they access — that report is exactly the access set A of
// the provenance capture rules (Tab. 5).

#ifndef PEBBLE_ENGINE_EXPR_H_
#define PEBBLE_ENGINE_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "nested/path.h"
#include "nested/value.h"

namespace pebble {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind {
  kLiteral,
  kColumn,
  kCompare,
  kLogical,
  kNot,
  kArith,
  kContains,  // string containment
  kSizeOf,    // number of elements of a collection
  kIsNull,
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicalOp { kAnd, kOr };
enum class ArithOp { kAdd, kSub, kMul, kDiv };

/// Immutable expression node. Build via the static factories.
class Expr {
 public:
  static ExprPtr Lit(ValuePtr v);
  static ExprPtr LitInt(int64_t v);
  static ExprPtr LitString(std::string v);
  static ExprPtr LitBool(bool v);

  /// Column reference by path string, e.g. "user.id_str". Must parse; use
  /// ColPath for pre-built paths.
  static ExprPtr Col(const std::string& path);
  static ExprPtr ColPath(Path path);

  static ExprPtr Compare(CompareOp op, ExprPtr left, ExprPtr right);
  static ExprPtr Eq(ExprPtr left, ExprPtr right);
  static ExprPtr Ne(ExprPtr left, ExprPtr right);
  static ExprPtr Lt(ExprPtr left, ExprPtr right);
  static ExprPtr Le(ExprPtr left, ExprPtr right);
  static ExprPtr Gt(ExprPtr left, ExprPtr right);
  static ExprPtr Ge(ExprPtr left, ExprPtr right);

  static ExprPtr And(ExprPtr left, ExprPtr right);
  static ExprPtr Or(ExprPtr left, ExprPtr right);
  static ExprPtr Not(ExprPtr inner);

  static ExprPtr Arith(ArithOp op, ExprPtr left, ExprPtr right);

  /// True iff the string value of `str` contains the string value of
  /// `needle`.
  static ExprPtr Contains(ExprPtr str, ExprPtr needle);

  /// Number of elements of the collection at `col`.
  static ExprPtr SizeOf(ExprPtr col);

  static ExprPtr IsNull(ExprPtr inner);

  ExprKind expr_kind() const { return kind_; }

  /// Evaluates against one data item. Missing attributes are KeyError;
  /// comparisons involving null evaluate to null.
  Result<ValuePtr> Evaluate(const Value& item) const;

  /// Evaluates to a boolean; null results count as false (SQL-ish filters).
  Result<bool> EvaluateBool(const Value& item) const;

  /// Appends every column path this expression reads to `paths`. This is the
  /// access set A contributed by the expression.
  void CollectAccessedPaths(std::vector<Path>* paths) const;

  std::string ToString() const;

 private:
  explicit Expr(ExprKind kind) : kind_(kind) {}

  ExprKind kind_;
  ValuePtr literal_ = nullptr;
  Path column_;
  CompareOp compare_op_ = CompareOp::kEq;
  LogicalOp logical_op_ = LogicalOp::kAnd;
  ArithOp arith_op_ = ArithOp::kAdd;
  ExprPtr left_;
  ExprPtr right_;
};

}  // namespace pebble

#endif  // PEBBLE_ENGINE_EXPR_H_
