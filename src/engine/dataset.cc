#include "engine/dataset.h"

namespace pebble {

Dataset Dataset::FromValues(TypePtr schema, const std::vector<ValuePtr>& values,
                            int num_partitions) {
  if (num_partitions < 1) num_partitions = 1;
  std::vector<Partition> parts(static_cast<size_t>(num_partitions));
  // Contiguous range split (like file splits), not round-robin, so that the
  // original order is recoverable by concatenating partitions.
  size_t n = values.size();
  size_t base = n / static_cast<size_t>(num_partitions);
  size_t rem = n % static_cast<size_t>(num_partitions);
  size_t idx = 0;
  for (size_t p = 0; p < parts.size(); ++p) {
    size_t count = base + (p < rem ? 1 : 0);
    parts[p].reserve(count);
    for (size_t k = 0; k < count; ++k) {
      parts[p].push_back(Row{-1, values[idx++]});
    }
  }
  return Dataset(std::move(schema), std::move(parts));
}

size_t Dataset::NumRows() const {
  size_t n = 0;
  for (const Partition& p : partitions_) {
    n += p.size();
  }
  return n;
}

std::vector<Row> Dataset::CollectRows() const {
  std::vector<Row> out;
  out.reserve(NumRows());
  for (const Partition& p : partitions_) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

std::vector<ValuePtr> Dataset::CollectValues() const {
  std::vector<ValuePtr> out;
  out.reserve(NumRows());
  for (const Partition& p : partitions_) {
    for (const Row& r : p) {
      out.push_back(r.value);
    }
  }
  return out;
}

uint64_t Dataset::ApproxBytes() const {
  uint64_t bytes = 0;
  for (const Partition& p : partitions_) {
    for (const Row& r : p) {
      bytes += r.value->ApproxBytes();
    }
  }
  return bytes;
}

uint64_t ContainerPartitionBytes(const Partition& partition) {
  return sizeof(Partition) + partition.capacity() * sizeof(Row);
}

uint64_t ContainerDatasetBytes(const Dataset& dataset) {
  uint64_t bytes = dataset.partitions().capacity() * sizeof(Partition);
  for (const Partition& p : dataset.partitions()) {
    bytes += p.capacity() * sizeof(Row);
  }
  return bytes;
}

}  // namespace pebble
