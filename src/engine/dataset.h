// Partitioned datasets of id-annotated top-level data items. This is the
// engine's stand-in for a Spark DataFrame: a nested dataset (Def. 4.1) split
// into horizontal partitions to exercise distributed-execution code paths
// (per-partition operators, hash shuffles, partition-parallel capture).

#ifndef PEBBLE_ENGINE_DATASET_H_
#define PEBBLE_ENGINE_DATASET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "nested/type.h"
#include "nested/value.h"

namespace pebble {

class ValueArena;

/// One top-level data item with its provenance identifier. Ids are unique
/// within one pipeline execution; id kNoId (-1) means "not annotated"
/// (capture off).
struct Row {
  int64_t id = -1;
  ValuePtr value = nullptr;
};

/// One horizontal partition.
using Partition = std::vector<Row>;

/// A partitioned nested dataset. The schema is the struct type of the
/// top-level items.
class Dataset {
 public:
  Dataset() = default;
  Dataset(TypePtr schema, std::vector<Partition> partitions)
      : schema_(std::move(schema)), partitions_(std::move(partitions)) {}

  /// Builds a dataset from plain values, round-robin distributed over
  /// `num_partitions` partitions, with ids left unassigned.
  static Dataset FromValues(TypePtr schema, const std::vector<ValuePtr>& values,
                            int num_partitions);

  const TypePtr& schema() const { return schema_; }
  void set_schema(TypePtr schema) { schema_ = std::move(schema); }

  const std::vector<Partition>& partitions() const { return partitions_; }
  std::vector<Partition>* mutable_partitions() { return &partitions_; }
  int num_partitions() const { return static_cast<int>(partitions_.size()); }

  size_t NumRows() const;

  /// All rows flattened in partition order (copy; for tests/examples).
  std::vector<Row> CollectRows() const;

  /// All values flattened in partition order (copy).
  std::vector<ValuePtr> CollectValues() const;

  /// Total approximate payload bytes across all rows.
  uint64_t ApproxBytes() const;

  /// Retains the value arenas that own this dataset's nodes (and the nodes
  /// they reference), keeping every ValuePtr in the rows valid for the
  /// dataset's lifetime. The executor attaches the whole run pool; arenas
  /// are shared across the datasets of one run (DESIGN.md §15).
  void RetainArenas(const std::vector<std::shared_ptr<ValueArena>>& arenas) {
    arenas_.insert(arenas_.end(), arenas.begin(), arenas.end());
  }
  const std::vector<std::shared_ptr<ValueArena>>& retained_arenas() const {
    return arenas_;
  }

 private:
  TypePtr schema_;
  std::vector<Partition> partitions_;
  std::vector<std::shared_ptr<ValueArena>> arenas_;
};

/// Exact container footprint of a partition: the row vector's reservation
/// (capacity, not size — these are the bytes actually held). Value payload
/// bytes are NOT included here: every node and payload array is charged
/// exactly, block by block, by the arena that owns it (common/arena.h), so
/// container bytes + arena charges sum to the run's working set with no
/// estimation (DESIGN.md §15).
uint64_t ContainerPartitionBytes(const Partition& partition);

/// Sum over all partitions, plus the partition vector itself.
uint64_t ContainerDatasetBytes(const Dataset& dataset);

}  // namespace pebble

#endif  // PEBBLE_ENGINE_DATASET_H_
