// Partitioned datasets of id-annotated top-level data items. This is the
// engine's stand-in for a Spark DataFrame: a nested dataset (Def. 4.1) split
// into horizontal partitions to exercise distributed-execution code paths
// (per-partition operators, hash shuffles, partition-parallel capture).

#ifndef PEBBLE_ENGINE_DATASET_H_
#define PEBBLE_ENGINE_DATASET_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "nested/type.h"
#include "nested/value.h"

namespace pebble {

/// One top-level data item with its provenance identifier. Ids are unique
/// within one pipeline execution; id kNoId (-1) means "not annotated"
/// (capture off).
struct Row {
  int64_t id = -1;
  ValuePtr value;
};

/// One horizontal partition.
using Partition = std::vector<Row>;

/// A partitioned nested dataset. The schema is the struct type of the
/// top-level items.
class Dataset {
 public:
  Dataset() = default;
  Dataset(TypePtr schema, std::vector<Partition> partitions)
      : schema_(std::move(schema)), partitions_(std::move(partitions)) {}

  /// Builds a dataset from plain values, round-robin distributed over
  /// `num_partitions` partitions, with ids left unassigned.
  static Dataset FromValues(TypePtr schema, const std::vector<ValuePtr>& values,
                            int num_partitions);

  const TypePtr& schema() const { return schema_; }
  void set_schema(TypePtr schema) { schema_ = std::move(schema); }

  const std::vector<Partition>& partitions() const { return partitions_; }
  std::vector<Partition>* mutable_partitions() { return &partitions_; }
  int num_partitions() const { return static_cast<int>(partitions_.size()); }

  size_t NumRows() const;

  /// All rows flattened in partition order (copy; for tests/examples).
  std::vector<Row> CollectRows() const;

  /// All values flattened in partition order (copy).
  std::vector<ValuePtr> CollectValues() const;

  /// Total approximate payload bytes across all rows.
  uint64_t ApproxBytes() const;

 private:
  TypePtr schema_;
  std::vector<Partition> partitions_;
};

/// O(1) shallow footprint of one value node: the node itself plus its string
/// payload and immediate child slots, NOT the (possibly shared) deep
/// substructure. This is the accounting unit of the engine memory budget
/// (DESIGN.md §9): cheap enough for hot staging loops, and proportional to
/// the bytes an operator actually adds when it shares subtrees.
uint64_t ApproxShallowValueBytes(const Value& value);

/// Shallow footprint of a row: the Row struct plus its value node.
uint64_t ApproxShallowRowBytes(const Row& row);

/// Sum of shallow row footprints plus the vector itself.
uint64_t ApproxShallowPartitionBytes(const Partition& partition);

/// Sum over all partitions.
uint64_t ApproxShallowDatasetBytes(const Dataset& dataset);

}  // namespace pebble

#endif  // PEBBLE_ENGINE_DATASET_H_
