// Operator base class and execution context (paper Def. 4.5/4.6).
//
// Operators take k input datasets and produce one result dataset. When
// provenance capture is enabled, executing an operator additionally emits
// its lightweight operator provenance P (Def. 5.1) into the run's
// ProvenanceStore: id association rows per Tab. 6 and, for structural modes,
// schema-level access/manipulation paths per Tab. 5.

#ifndef PEBBLE_ENGINE_OPERATOR_H_
#define PEBBLE_ENGINE_OPERATOR_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/resource.h"
#include "common/status.h"
#include "core/commit_sink.h"
#include "core/provenance_store.h"
#include "engine/dataset.h"

namespace pebble {

/// Retry behavior of the partition-task runner (Spark-style task-level fault
/// tolerance: failed tasks are re-attempted; their effects are staged per
/// attempt and committed only on success).
struct RetryPolicy {
  /// Total attempts per task, including the first. 1 = no retry.
  int max_attempts = 1;
  /// Sleep backoff_base_ms * 2^(attempt-1) before re-attempting. 0 = none.
  int backoff_base_ms = 0;
  /// Status codes treated as transient. Empty = default set, which is
  /// exactly {kUnavailable}. Other codes fail the run immediately.
  std::vector<StatusCode> retryable_codes;

  bool IsRetryable(StatusCode code) const {
    if (retryable_codes.empty()) return code == StatusCode::kUnavailable;
    for (StatusCode c : retryable_codes) {
      if (c == code) return true;
    }
    return false;
  }

  /// A policy with retries on: `attempts` tries, no backoff.
  static RetryPolicy WithRetries(int attempts) {
    RetryPolicy p;
    p.max_attempts = attempts;
    return p;
  }
};

/// Execution-wide knobs.
struct ExecOptions {
  ExecOptions() = default;
  ExecOptions(CaptureMode capture_mode, int partitions, int threads)
      : capture(capture_mode),
        num_partitions(partitions),
        num_threads(threads) {}

  CaptureMode capture = CaptureMode::kOff;
  /// Partition count for scans and shuffles (simulated cluster width).
  int num_partitions = 4;
  /// Worker threads for partition-parallel sections. 1 = sequential.
  int num_threads = 4;
  /// Task-level retry behavior; defaults to no retries.
  RetryPolicy retry;
  /// Cooperative per-task-attempt timeout: an attempt whose wall time
  /// exceeds this is treated as a failed (retryable) attempt and its staged
  /// output is discarded. 0 = no timeout. The attempt is not preempted
  /// mid-flight; the budget is checked when the task body returns.
  int task_timeout_ms = 0;
  /// Query-wide wall-clock deadline over the whole run, measured from
  /// Executor::Run entry. 0 = none. Expiry fails the run with
  /// kDeadlineExceeded at the next cancellation point (DESIGN.md §9).
  int64_t deadline_ms = 0;
  /// Byte budget over the run's working set: value-arena blocks (every
  /// value node and payload, charged exactly as blocks are acquired —
  /// DESIGN.md §15) plus row-container reservations and shuffle buffers.
  /// 0 = unlimited. Exceeding it fails the run with kResourceExhausted —
  /// never std::bad_alloc.
  uint64_t memory_budget_bytes = 0;
  /// Cooperative external cancellation: Cancel() on the owning source stops
  /// the run with kCancelled at the next cancellation point. A
  /// default-constructed token disables cancellation at zero cost.
  CancellationToken cancel;
  /// First top-level item id this run allocates (must be >= 1). Micro-batch
  /// ingest threads disjoint id ranges through successive runs so their
  /// stores merge cleanly (ProvenanceStore::AppendFrom); the WAL recovery
  /// info reports the next safe value after a crash.
  int64_t first_item_id = 1;
  /// Streaming capture sink invoked at the executor's serial commit points
  /// (run begin, after each operator commits, run end). A WalWriter here
  /// makes every committed chunk durable before the run is acknowledged.
  /// Ignored when capture == kOff; a sink error fails the run.
  std::shared_ptr<ProvenanceCommitSink> commit_sink;
  /// Test-only: run and task arenas allocate each value individually from
  /// the heap (pointer-chase teardown, per-allocation accounting) instead
  /// of bump-pointer blocks. The arena-vs-heap differential stage pins that
  /// results, provenance, and store fingerprints are identical under both
  /// strategies; the allocator benchmark uses it as its baseline.
  bool legacy_heap_alloc = false;
};

/// Validates user-supplied options; kInvalidArgument on nonsense values.
Status ValidateExecOptions(const ExecOptions& options);

/// Per-run partition-task statistics (Spark-UI-style), aggregated by the
/// task runner.
struct TaskStats {
  uint64_t tasks_started = 0;   // tasks that ran at least one attempt
  uint64_t tasks_succeeded = 0;
  uint64_t tasks_failed = 0;    // final status non-OK (retries exhausted or
                                // non-retryable)
  uint64_t tasks_skipped = 0;   // cancelled fail-fast before starting
  uint64_t attempts = 0;        // total attempts, including retries
  uint64_t retries = 0;         // attempts beyond each task's first
  uint64_t timeouts = 0;        // attempts failed by the cooperative timeout
  uint64_t tasks_shed = 0;      // never attempted: governance trip (cancel /
                                // deadline) observed before the first attempt

  void Add(const TaskStats& other) {
    tasks_started += other.tasks_started;
    tasks_succeeded += other.tasks_succeeded;
    tasks_failed += other.tasks_failed;
    tasks_skipped += other.tasks_skipped;
    attempts += other.attempts;
    retries += other.retries;
    timeouts += other.timeouts;
    tasks_shed += other.tasks_shed;
  }
};

/// Shared state of one pipeline execution: capture mode, provenance store,
/// id allocation and the parallel-for helper.
class ExecContext {
 public:
  /// The run's deadline clock starts here: construct the context at
  /// Executor::Run entry, not earlier.
  ExecContext(ExecOptions options, ProvenanceStore* store)
      : options_(std::move(options)),
        store_(store),
        deadline_(options_.deadline_ms > 0
                      ? Deadline::AfterMillis(options_.deadline_ms)
                      : Deadline::Infinite()),
        budget_(options_.memory_budget_bytes),
        governed_(options_.cancel.CanBeCancelled() ||
                  deadline_.has_deadline() || budget_.limited()),
        next_id_(options_.first_item_id) {}

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  const ExecOptions& options() const { return options_; }
  CaptureMode capture() const { return options_.capture; }
  bool capture_enabled() const { return capture() != CaptureMode::kOff; }
  /// Structural modes record schema-level A/M paths.
  bool capture_paths() const {
    return capture() == CaptureMode::kStructural ||
           capture() == CaptureMode::kFullModel;
  }
  /// Full-model mode additionally materializes per-item provenance.
  bool capture_items() const { return capture() == CaptureMode::kFullModel; }

  ProvenanceStore* store() const { return store_; }

  /// Reserves `count` consecutive top-level item ids; returns the first.
  int64_t ReserveIds(int64_t count) { return next_id_.fetch_add(count); }

  /// First id not yet reserved; after the run, the floor for the
  /// first_item_id of a follow-up run over the same id space.
  int64_t next_item_id() const { return next_id_.load(); }

  /// Runs partition tasks fn(i) for i in [0, n) on the configured worker
  /// threads, with task-level fault tolerance per options().retry:
  ///
  ///  - Each task is attempted up to retry.max_attempts times; attempts that
  ///    fail with a retryable code (or exceed task_timeout_ms) are retried
  ///    after exponential backoff. The `task.partition` failpoint is
  ///    evaluated before every attempt, keyed by (task, attempt), so
  ///    injected fault schedules are deterministic under any interleaving.
  ///  - fn must be retry-idempotent: an attempt must overwrite (not append
  ///    to) any task-local staging it owns, because a timed-out or failed
  ///    attempt may already have written to it.
  ///  - Fail-fast: once a task fails terminally, tasks with a higher index
  ///    that have not started are skipped. Tasks with a lower index still
  ///    run, so the returned Status is always the terminal failure of the
  ///    *lowest-index* failing task — deterministic whenever fn and the
  ///    fault schedule are.
  ///  - fn must be safe to call concurrently for distinct i.
  ///
  /// Statistics of every run accumulate into task_stats().
  Status ParallelFor(size_t n, const std::function<Status(size_t)>& fn);

  /// Cumulative task statistics across all ParallelFor calls on this
  /// context. Thread-safe.
  TaskStats task_stats() const;

  /// Governance cancellation point: OK when the run is neither cancelled
  /// nor past its deadline and the current task arena has not failed a
  /// budget charge; kCancelled / kDeadlineExceeded / kResourceExhausted
  /// (with `where` context) otherwise. O(1) and branch-free when no token,
  /// deadline, or budget was configured. Records the reaction latency of
  /// the first cancel/deadline trip observed.
  Status CheckInterrupt(const char* where);

  /// True when a cancel token, deadline, or memory budget is active
  /// (CheckInterrupt can actually trip).
  bool governed() const { return governed_; }
  /// True when the run has a memory budget that can reject charges.
  bool budget_limited() const { return budget_.limited(); }

  /// Reserves `bytes` against the run's memory budget; kResourceExhausted
  /// when the budget would be exceeded. No-op without a budget.
  Status ChargeBytes(uint64_t bytes, const char* what);
  /// Returns a reservation made by ChargeBytes.
  void ReleaseBytes(uint64_t bytes);

  MemoryBudget& budget() { return budget_; }
  const Deadline& deadline() const { return deadline_; }

  /// Creates a value arena for one task attempt (or the driver): budget-
  /// charged block-by-block when the run has a memory budget, heap-backed
  /// when options().legacy_heap_alloc is set. The caller installs it via
  /// ValueArenaScope for the attempt body, then either commits or discards
  /// it (DESIGN.md §15).
  std::shared_ptr<ValueArena> MakeTaskArena();

  /// Commits the arena of a successful attempt into the run pool: its
  /// values are reachable from staged rows, so it must live until the run's
  /// datasets do. Folds a failed block charge into the sticky run-level
  /// arena status. Thread-safe.
  void CommitTaskArena(std::shared_ptr<ValueArena> arena);

  /// Discards the arena of a failed attempt: tallies its stats (so
  /// telemetry still sees the attempt's churn) and frees its memory
  /// wholesale. A failed block charge is NOT folded into the run status —
  /// the attempt already failed and may be retried. Thread-safe.
  void DiscardTaskArena(std::shared_ptr<ValueArena> arena);

  /// Arenas committed so far (the run pool). The executor attaches these to
  /// the run's output datasets so ValuePtr rows outlive the context.
  std::vector<std::shared_ptr<ValueArena>> run_arenas() const;

  /// Sticky first failed arena block charge across committed arenas; OK
  /// while every charge succeeded. The executor polls this after each
  /// operator so exhaustion inside small tasks (too short to reach a
  /// cancellation point) still aborts the run deterministically.
  Status arena_exhausted() const;

  /// Exact run-wide arena accounting for telemetry.
  struct ArenaAccounting {
    /// Sum over every arena the run created, committed and discarded.
    ValueArena::Stats stats;
    /// Arena count (committed + discarded).
    uint64_t arenas = 0;
    /// Bytes currently charged against the run budget by committed arenas;
    /// with a budget configured this equals their reserved bytes exactly
    /// (0-slack accounting), and 0 without one.
    uint64_t bytes_charged = 0;
  };
  ArenaAccounting arena_accounting() const;

  /// Milliseconds between the external trip (Cancel() call or deadline
  /// expiry) and the first cancellation point that observed it; 0.0 when
  /// the run never tripped.
  double trip_latency_ms() const {
    int64_t us = trip_latency_us_.load(std::memory_order_relaxed);
    return us < 0 ? 0.0 : static_cast<double>(us) / 1000.0;
  }

 private:
  /// Runs all attempts of task `i`; returns its terminal status and
  /// accumulates into `stats`.
  Status RunTaskAttempts(size_t i, const std::function<Status(size_t)>& fn,
                         TaskStats* stats);

  /// Stamps the reaction latency of the first governance trip observed.
  void RecordTrip(double latency_ms);

  ExecOptions options_;
  ProvenanceStore* store_;
  Deadline deadline_;
  MemoryBudget budget_;
  bool governed_;
  std::atomic<int64_t> next_id_{1};
  std::atomic<int64_t> trip_latency_us_{-1};  // -1 = never tripped
  mutable std::mutex stats_mu_;
  TaskStats stats_;
  // Run arena pool. Declared after budget_ so committed arenas (which may
  // still hold budget charges on a failed run) are destroyed before the
  // budget they release into.
  mutable std::mutex arena_mu_;
  std::vector<std::shared_ptr<ValueArena>> run_arenas_;
  ValueArena::Stats discarded_stats_;
  uint64_t discarded_arenas_ = 0;
  Status arena_status_;
};

/// Abstract operator node. Concrete operators live in engine/operators.h.
class Operator {
 public:
  Operator(OpType type, std::string label)
      : type_(type), label_(std::move(label)) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  int oid() const { return oid_; }
  void set_oid(int oid) { oid_ = oid; }
  OpType type() const { return type_; }
  const std::string& label() const { return label_; }

  const std::vector<int>& input_oids() const { return input_oids_; }
  void set_input_oids(std::vector<int> oids) { input_oids_ = std::move(oids); }

  /// The statically inferred output schema; set during Pipeline::Build.
  const TypePtr& output_schema() const { return output_schema_; }
  void set_output_schema(TypePtr schema) {
    output_schema_ = std::move(schema);
  }

  /// Computes the output schema from the input schemas, validating operator
  /// arguments against them.
  virtual Result<TypePtr> InferSchema(
      const std::vector<TypePtr>& inputs) const = 0;

  /// Executes over the materialized inputs; emits capture into ctx->store()
  /// when capture is enabled.
  virtual Result<Dataset> Execute(
      ExecContext* ctx, const std::vector<const Dataset*>& inputs) const = 0;

 private:
  int oid_ = -1;
  OpType type_;
  std::string label_;
  std::vector<int> input_oids_;
  TypePtr output_schema_;
};

}  // namespace pebble

#endif  // PEBBLE_ENGINE_OPERATOR_H_
