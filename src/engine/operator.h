// Operator base class and execution context (paper Def. 4.5/4.6).
//
// Operators take k input datasets and produce one result dataset. When
// provenance capture is enabled, executing an operator additionally emits
// its lightweight operator provenance P (Def. 5.1) into the run's
// ProvenanceStore: id association rows per Tab. 6 and, for structural modes,
// schema-level access/manipulation paths per Tab. 5.

#ifndef PEBBLE_ENGINE_OPERATOR_H_
#define PEBBLE_ENGINE_OPERATOR_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/provenance_store.h"
#include "engine/dataset.h"

namespace pebble {

/// Execution-wide knobs.
struct ExecOptions {
  CaptureMode capture = CaptureMode::kOff;
  /// Partition count for scans and shuffles (simulated cluster width).
  int num_partitions = 4;
  /// Worker threads for partition-parallel sections. 1 = sequential.
  int num_threads = 4;
};

/// Shared state of one pipeline execution: capture mode, provenance store,
/// id allocation and the parallel-for helper.
class ExecContext {
 public:
  ExecContext(ExecOptions options, ProvenanceStore* store)
      : options_(options), store_(store) {}

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  const ExecOptions& options() const { return options_; }
  CaptureMode capture() const { return options_.capture; }
  bool capture_enabled() const { return capture() != CaptureMode::kOff; }
  /// Structural modes record schema-level A/M paths.
  bool capture_paths() const {
    return capture() == CaptureMode::kStructural ||
           capture() == CaptureMode::kFullModel;
  }
  /// Full-model mode additionally materializes per-item provenance.
  bool capture_items() const { return capture() == CaptureMode::kFullModel; }

  ProvenanceStore* store() const { return store_; }

  /// Reserves `count` consecutive top-level item ids; returns the first.
  int64_t ReserveIds(int64_t count) { return next_id_.fetch_add(count); }

  /// Runs fn(i) for i in [0, n), distributing across the configured worker
  /// threads. Returns the first non-OK status produced (remaining iterations
  /// still run). fn must be safe to call concurrently for distinct i.
  Status ParallelFor(size_t n, const std::function<Status(size_t)>& fn);

 private:
  ExecOptions options_;
  ProvenanceStore* store_;
  std::atomic<int64_t> next_id_{1};
};

/// Abstract operator node. Concrete operators live in engine/operators.h.
class Operator {
 public:
  Operator(OpType type, std::string label)
      : type_(type), label_(std::move(label)) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  int oid() const { return oid_; }
  void set_oid(int oid) { oid_ = oid; }
  OpType type() const { return type_; }
  const std::string& label() const { return label_; }

  const std::vector<int>& input_oids() const { return input_oids_; }
  void set_input_oids(std::vector<int> oids) { input_oids_ = std::move(oids); }

  /// The statically inferred output schema; set during Pipeline::Build.
  const TypePtr& output_schema() const { return output_schema_; }
  void set_output_schema(TypePtr schema) {
    output_schema_ = std::move(schema);
  }

  /// Computes the output schema from the input schemas, validating operator
  /// arguments against them.
  virtual Result<TypePtr> InferSchema(
      const std::vector<TypePtr>& inputs) const = 0;

  /// Executes over the materialized inputs; emits capture into ctx->store()
  /// when capture is enabled.
  virtual Result<Dataset> Execute(
      ExecContext* ctx, const std::vector<const Dataset*>& inputs) const = 0;

 private:
  int oid_ = -1;
  OpType type_;
  std::string label_;
  std::vector<int> input_oids_;
  TypePtr output_schema_;
};

}  // namespace pebble

#endif  // PEBBLE_ENGINE_OPERATOR_H_
