// Internal helpers shared by the operator implementation files. Not part of
// the public API.

#ifndef PEBBLE_ENGINE_OP_INTERNAL_H_
#define PEBBLE_ENGINE_OP_INTERNAL_H_

#include <functional>
#include <vector>

#include "engine/operator.h"

namespace pebble::internal {

/// Per-task SoA staging for a unary operator: the produced rows (ids
/// assigned at commit) and the input-id column, appended in row order into
/// flat buffers (reserved from the input cardinality). Cleared at the
/// start of every task attempt (retry idempotence); at commit the id
/// column is bulk-moved into the store and the row vector is moved into
/// the output dataset wholesale — the commit pass only writes ids.
struct UnaryStage {
  Partition rows;
  std::vector<int64_t> in_ids;
  /// Bytes currently reserved against the run's memory budget for this
  /// stage; released when a retry discards the attempt and when the staged
  /// rows move into the output dataset.
  uint64_t charged_bytes = 0;

  void Reserve(size_t n) {
    rows.reserve(n);
    in_ids.reserve(n);
  }
  void Clear() {
    rows.clear();
    in_ids.clear();
  }
  void Push(ValuePtr value, int64_t in_id) {
    rows.push_back(Row{-1, std::move(value)});
    in_ids.push_back(in_id);
  }
  size_t size() const { return rows.size(); }
};

/// Row-loop cancellation granularity: staging loops call CheckInterrupt
/// every (kInterruptStride) rows via `(++counter & kInterruptMask) == 0`.
inline constexpr uint32_t kInterruptMask = 0xFF;  // every 256 rows

/// Charges the run's budget for a freshly staged partition (`rows` plus
/// `extra_bytes` of side columns), recording the reservation in `*charged`.
/// No-op (and no byte-estimation cost) when the run has no budget.
Status ChargeStage(ExecContext* ctx, const Partition& rows,
                   uint64_t extra_bytes, const char* what, uint64_t* charged);

/// Releases a reservation made by ChargeStage and zeroes it. Called at
/// attempt start (retry idempotence: the previous attempt's charge must not
/// leak) and after the staged rows have moved into the output dataset.
void ReleaseStageCharge(ExecContext* ctx, uint64_t* charged);

/// Constant-per-operator item-level capture content (full-model mode). For
/// filter/select/map the item-level paths coincide with the schema-level
/// ones, so one spec serves every item.
struct ItemCaptureSpec {
  std::vector<Path> accessed;
  bool accessed_undefined = false;
  std::vector<PathMapping> manipulations;
  bool manip_undefined = false;
};

/// Commit phase of a unary operator: assigns output ids in partition order,
/// bulk-moves the staged id columns into `prov` (and, in full-model mode,
/// emits per-item provenance per `item_spec`), and returns the final
/// dataset. `prov` may be nullptr (capture off). Runs serially after every
/// partition task of the operator succeeded — a retried task therefore
/// never double-appends id rows. Evaluates the `provenance.append`
/// failpoint before committing.
Result<Dataset> FinalizeUnary(ExecContext* ctx, TypePtr schema,
                              std::vector<UnaryStage> staged,
                              OperatorProvenance* prov,
                              const ItemCaptureSpec* item_spec);

/// Gate before an operator's serial commit into the shared ProvenanceStore:
/// evaluates the `provenance.append` failpoint and the run's governance
/// state (cancel token / deadline). Runs strictly BEFORE the commit loop —
/// a trip here aborts with the store untouched, never mid-commit, so
/// aborted runs always leave the store Validate()-clean. No-op when `prov`
/// is nullptr (capture off).
Status CheckProvenanceCommit(ExecContext* ctx, const OperatorProvenance* prov);

/// Deep hash of a key tuple (used by join/group shuffles).
uint64_t HashKeyTuple(const std::vector<ValuePtr>& key);

/// Deep equality of two key tuples.
bool KeyTupleEquals(const std::vector<ValuePtr>& a,
                    const std::vector<ValuePtr>& b);

/// Fills the schema-level input/manipulation component of `prov`.
/// `accessed_per_input` uses [pos] placeholders already.
void EmitSchemaCapture(ExecContext* ctx, const Operator& op,
                       OperatorProvenance* prov,
                       std::vector<InputProvenance> inputs,
                       std::vector<PathMapping> manipulations,
                       bool manip_undefined);

}  // namespace pebble::internal

#endif  // PEBBLE_ENGINE_OP_INTERNAL_H_
