// Internal helpers shared by the operator implementation files. Not part of
// the public API.

#ifndef PEBBLE_ENGINE_OP_INTERNAL_H_
#define PEBBLE_ENGINE_OP_INTERNAL_H_

#include <functional>
#include <vector>

#include "engine/operator.h"

namespace pebble::internal {

/// A produced row whose output id is not assigned yet, with the lineage
/// information needed to emit the operator's id association rows.
struct UnaryPending {
  ValuePtr value;
  int64_t in_id;
};

/// Constant-per-operator item-level capture content (full-model mode). For
/// filter/select/map the item-level paths coincide with the schema-level
/// ones, so one spec serves every item.
struct ItemCaptureSpec {
  std::vector<Path> accessed;
  bool accessed_undefined = false;
  std::vector<PathMapping> manipulations;
  bool manip_undefined = false;
};

/// Commit phase of a unary operator: assigns output ids in partition order,
/// emits unary id rows (and, in full-model mode, per-item provenance per
/// `item_spec`) into `prov`, and returns the final dataset. `prov` may be
/// nullptr (capture off). Runs serially after every partition task of the
/// operator succeeded — a retried task therefore never double-appends id
/// rows. Evaluates the `provenance.append` failpoint before committing.
Result<Dataset> FinalizeUnary(ExecContext* ctx, TypePtr schema,
                              std::vector<std::vector<UnaryPending>> pending,
                              OperatorProvenance* prov,
                              const ItemCaptureSpec* item_spec);

/// Evaluates the `provenance.append` failpoint guarding an operator's
/// commit into the shared ProvenanceStore. No-op when `prov` is nullptr.
Status CheckProvenanceCommit(const OperatorProvenance* prov);

/// Deep hash of a key tuple (used by join/group shuffles).
uint64_t HashKeyTuple(const std::vector<ValuePtr>& key);

/// Deep equality of two key tuples.
bool KeyTupleEquals(const std::vector<ValuePtr>& a,
                    const std::vector<ValuePtr>& b);

/// Fills the schema-level input/manipulation component of `prov`.
/// `accessed_per_input` uses [pos] placeholders already.
void EmitSchemaCapture(ExecContext* ctx, const Operator& op,
                       OperatorProvenance* prov,
                       std::vector<InputProvenance> inputs,
                       std::vector<PathMapping> manipulations,
                       bool manip_undefined);

}  // namespace pebble::internal

#endif  // PEBBLE_ENGINE_OP_INTERNAL_H_
