// Internal helpers shared by the operator implementation files. Not part of
// the public API.

#ifndef PEBBLE_ENGINE_OP_INTERNAL_H_
#define PEBBLE_ENGINE_OP_INTERNAL_H_

#include <functional>
#include <vector>

#include "engine/operator.h"

namespace pebble::internal {

/// Per-task SoA staging for a unary operator: the produced rows (ids
/// assigned at commit) and the input-id column, appended in row order into
/// flat buffers (reserved from the input cardinality). Cleared at the
/// start of every task attempt (retry idempotence); at commit the id
/// column is bulk-moved into the store and the row vector is moved into
/// the output dataset wholesale — the commit pass only writes ids.
struct UnaryStage {
  Partition rows;
  std::vector<int64_t> in_ids;

  void Reserve(size_t n) {
    rows.reserve(n);
    in_ids.reserve(n);
  }
  void Clear() {
    rows.clear();
    in_ids.clear();
  }
  void Push(ValuePtr value, int64_t in_id) {
    rows.push_back(Row{-1, std::move(value)});
    in_ids.push_back(in_id);
  }
  size_t size() const { return rows.size(); }
};

/// Constant-per-operator item-level capture content (full-model mode). For
/// filter/select/map the item-level paths coincide with the schema-level
/// ones, so one spec serves every item.
struct ItemCaptureSpec {
  std::vector<Path> accessed;
  bool accessed_undefined = false;
  std::vector<PathMapping> manipulations;
  bool manip_undefined = false;
};

/// Commit phase of a unary operator: assigns output ids in partition order,
/// bulk-moves the staged id columns into `prov` (and, in full-model mode,
/// emits per-item provenance per `item_spec`), and returns the final
/// dataset. `prov` may be nullptr (capture off). Runs serially after every
/// partition task of the operator succeeded — a retried task therefore
/// never double-appends id rows. Evaluates the `provenance.append`
/// failpoint before committing.
Result<Dataset> FinalizeUnary(ExecContext* ctx, TypePtr schema,
                              std::vector<UnaryStage> staged,
                              OperatorProvenance* prov,
                              const ItemCaptureSpec* item_spec);

/// Evaluates the `provenance.append` failpoint guarding an operator's
/// commit into the shared ProvenanceStore. No-op when `prov` is nullptr.
Status CheckProvenanceCommit(const OperatorProvenance* prov);

/// Deep hash of a key tuple (used by join/group shuffles).
uint64_t HashKeyTuple(const std::vector<ValuePtr>& key);

/// Deep equality of two key tuples.
bool KeyTupleEquals(const std::vector<ValuePtr>& a,
                    const std::vector<ValuePtr>& b);

/// Fills the schema-level input/manipulation component of `prov`.
/// `accessed_per_input` uses [pos] placeholders already.
void EmitSchemaCapture(ExecContext* ctx, const Operator& op,
                       OperatorProvenance* prov,
                       std::vector<InputProvenance> inputs,
                       std::vector<PathMapping> manipulations,
                       bool manip_undefined);

}  // namespace pebble::internal

#endif  // PEBBLE_ENGINE_OP_INTERNAL_H_
