// Concrete operators of the supported algebra (paper Sec. 5, Tab. 5):
// scan, filter, select (with nested restructuring), map (opaque UDF), join,
// union, flatten, and groupBy+aggregation/nesting.

#ifndef PEBBLE_ENGINE_OPERATORS_H_
#define PEBBLE_ENGINE_OPERATORS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/expr.h"
#include "engine/operator.h"

namespace pebble {

/// One output attribute of a select. A projection is either a leaf that
/// copies the value at `source`, or an inner node that constructs a new
/// nested data item from its children (e.g. "<id_str,name> -> user" in the
/// running example, operator 8 of Fig. 1).
struct Projection {
  std::string name;
  Path source;                       // leaf only
  std::vector<Projection> children;  // non-empty => construct struct

  bool is_leaf() const { return children.empty(); }

  /// Leaf projection "path -> name". The path string must parse.
  static Projection Leaf(std::string name, const std::string& path);
  /// Leaf projection keeping the attribute's own name.
  static Projection Keep(const std::string& attr);
  /// Struct-constructing projection.
  static Projection Nested(std::string name, std::vector<Projection> children);
};

/// Aggregation functions. kCount/kSum/kMin/kMax/kAvg return constants
/// (the paper's A_c); kCollectList/kCollectSet return nested collections
/// (the paper's A_B, i.e. nesting).
enum class AggKind {
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
  kCollectList,
  kCollectSet,
};

struct AggSpec {
  AggKind kind;
  Path input;          // unused for kCount
  std::string output;  // result attribute name

  static AggSpec Count(std::string output);
  static AggSpec Sum(const std::string& input, std::string output);
  static AggSpec Min(const std::string& input, std::string output);
  static AggSpec Max(const std::string& input, std::string output);
  static AggSpec Avg(const std::string& input, std::string output);
  static AggSpec CollectList(const std::string& input, std::string output);
  static AggSpec CollectSet(const std::string& input, std::string output);

  bool is_nesting() const {
    return kind == AggKind::kCollectList || kind == AggKind::kCollectSet;
  }
};

/// One grouping attribute: the key path in the input and its name in the
/// output item.
struct GroupKey {
  Path path;
  std::string name;

  static GroupKey Of(const std::string& path);  // name = last attribute
  static GroupKey As(const std::string& path, std::string name);
};

/// User-defined map function (opaque to provenance capture: A = M = ⊥).
using MapFn = std::function<Result<ValuePtr>(const Value&)>;

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

/// Reads an in-memory source dataset, splitting it into partitions and, when
/// capture is on, annotating top-level items with fresh provenance ids.
class ScanOp final : public Operator {
 public:
  ScanOp(std::string name, TypePtr schema,
         std::shared_ptr<const std::vector<ValuePtr>> data);

  Result<TypePtr> InferSchema(
      const std::vector<TypePtr>& inputs) const override;
  Result<Dataset> Execute(
      ExecContext* ctx,
      const std::vector<const Dataset*>& inputs) const override;

  const std::string& source_name() const { return source_name_; }
  const TypePtr& schema() const { return schema_; }
  const std::shared_ptr<const std::vector<ValuePtr>>& data() const {
    return data_;
  }

 private:
  std::string source_name_;
  TypePtr schema_;
  std::shared_ptr<const std::vector<ValuePtr>> data_;
};

/// Keeps items satisfying the predicate. Capture: A = predicate columns,
/// M = {} (no restructuring).
class FilterOp final : public Operator {
 public:
  explicit FilterOp(ExprPtr predicate);

  Result<TypePtr> InferSchema(
      const std::vector<TypePtr>& inputs) const override;
  Result<Dataset> Execute(
      ExecContext* ctx,
      const std::vector<const Dataset*>& inputs) const override;

  const ExprPtr& predicate() const { return predicate_; }

 private:
  ExprPtr predicate_;
};

/// Projects / restructures each item according to the projection tree.
/// Capture: A = leaf source paths, M = {(source, output-path)} per leaf.
class SelectOp final : public Operator {
 public:
  explicit SelectOp(std::vector<Projection> projections);

  Result<TypePtr> InferSchema(
      const std::vector<TypePtr>& inputs) const override;
  Result<Dataset> Execute(
      ExecContext* ctx,
      const std::vector<const Dataset*>& inputs) const override;

  const std::vector<Projection>& projections() const { return projections_; }

 private:
  std::vector<Projection> projections_;
};

/// Applies an opaque per-item function. Capture: A = M = ⊥ (Tab. 5 map
/// rule); backtracing treats the whole input item as manipulated.
class MapOp final : public Operator {
 public:
  /// `declared_schema` may be nullptr; the output schema is then inferred
  /// from the first produced item at execution time.
  MapOp(MapFn fn, TypePtr declared_schema, std::string label);

  Result<TypePtr> InferSchema(
      const std::vector<TypePtr>& inputs) const override;
  Result<Dataset> Execute(
      ExecContext* ctx,
      const std::vector<const Dataset*>& inputs) const override;

  const MapFn& fn() const { return fn_; }
  const TypePtr& declared_schema() const { return declared_schema_; }

 private:
  MapFn fn_;
  TypePtr declared_schema_;
};

/// Join: associates items of two inputs; the result item is the
/// concatenation <i, j> of the matched items' attributes (Tab. 5 join
/// rule). Two modes:
///  - hash equi-join on pairwise equal key tuples (what the paper's
///    scenarios use), optionally with a residual theta predicate;
///  - general theta-join: an arbitrary predicate phi(i, j) evaluated over
///    the concatenated item (nested-loop execution).
/// Capture: A = key paths plus the per-side paths phi accesses; M maps
/// every top-level attribute of both sides to its (identical) output path.
class JoinOp final : public Operator {
 public:
  /// Equi-join. `theta` (optional) is a residual predicate over the
  /// concatenated item.
  JoinOp(std::vector<Path> left_keys, std::vector<Path> right_keys,
         ExprPtr theta = nullptr);

  /// Pure theta-join: phi evaluated over the concatenated item.
  static std::unique_ptr<JoinOp> Theta(ExprPtr phi);

  Result<TypePtr> InferSchema(
      const std::vector<TypePtr>& inputs) const override;
  Result<Dataset> Execute(
      ExecContext* ctx,
      const std::vector<const Dataset*>& inputs) const override;

  const std::vector<Path>& left_keys() const { return left_keys_; }
  const std::vector<Path>& right_keys() const { return right_keys_; }
  const ExprPtr& theta() const { return theta_; }

 private:
  std::vector<Path> left_keys_;
  std::vector<Path> right_keys_;
  ExprPtr theta_;  // may be nullptr
};

/// Bag union of two type-compatible inputs. Capture: A = {} (schema-level
/// comparison only), M = {}.
class UnionOp final : public Operator {
 public:
  UnionOp();

  Result<TypePtr> InferSchema(
      const std::vector<TypePtr>& inputs) const override;
  Result<Dataset> Execute(
      ExecContext* ctx,
      const std::vector<const Dataset*>& inputs) const override;
};

/// Unnests the collection at `column`: for each element j at position x the
/// result item is <i, new_attr: j>. Capture: A = {column[pos]},
/// M = {(column[pos], new_attr)}, id rows carry the concrete position
/// (Tab. 6). Items whose collection is empty produce no output (explode
/// semantics).
class FlattenOp final : public Operator {
 public:
  FlattenOp(Path column, std::string new_attr);

  Result<TypePtr> InferSchema(
      const std::vector<TypePtr>& inputs) const override;
  Result<Dataset> Execute(
      ExecContext* ctx,
      const std::vector<const Dataset*>& inputs) const override;

  const Path& column() const { return column_; }
  const std::string& new_attr() const { return new_attr_; }

 private:
  Path column_;
  std::string new_attr_;
};

/// GroupBy + aggregation/nesting (paper Tab. 5 grouping & aggregation
/// rules). Groups by the key paths, then reduces each group to one item
/// holding the key attributes and the aggregate outputs. Capture: A = key
/// paths ∪ aggregate input paths; M maps keys and aggregate inputs to their
/// output attributes — nesting aggregates (collect_list) map to
/// "output[pos]" with the positional placeholder; the id table stores the
/// ordered input-id collection per group, whose positions equal the nested
/// items' positions (Tab. 6).
class GroupAggregateOp final : public Operator {
 public:
  GroupAggregateOp(std::vector<GroupKey> keys, std::vector<AggSpec> aggs);

  Result<TypePtr> InferSchema(
      const std::vector<TypePtr>& inputs) const override;
  Result<Dataset> Execute(
      ExecContext* ctx,
      const std::vector<const Dataset*>& inputs) const override;

  const std::vector<GroupKey>& keys() const { return keys_; }
  const std::vector<AggSpec>& aggs() const { return aggs_; }

 private:
  std::vector<GroupKey> keys_;
  std::vector<AggSpec> aggs_;
};

}  // namespace pebble

#endif  // PEBBLE_ENGINE_OPERATORS_H_
