#include "engine/op_internal.h"

#include "common/failpoint.h"

namespace pebble::internal {

namespace {

void HashCombine(uint64_t* seed, uint64_t v) {
  *seed ^= v + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

}  // namespace

Status CheckProvenanceCommit(const OperatorProvenance* prov) {
  if (prov == nullptr) return Status::OK();
  return FailpointRegistry::Global().Evaluate(failpoints::kProvenanceAppend);
}

Result<Dataset> FinalizeUnary(ExecContext* ctx, TypePtr schema,
                              std::vector<std::vector<UnaryPending>> pending,
                              OperatorProvenance* prov,
                              const ItemCaptureSpec* item_spec) {
  PEBBLE_RETURN_NOT_OK(CheckProvenanceCommit(prov));
  std::vector<Partition> parts(pending.size());
  const bool items = ctx->capture_items() && item_spec != nullptr;
  for (size_t p = 0; p < pending.size(); ++p) {
    std::vector<UnaryPending>& rows = pending[p];
    Partition& out = parts[p];
    out.reserve(rows.size());
    int64_t first = rows.empty()
                        ? 0
                        : ctx->ReserveIds(static_cast<int64_t>(rows.size()));
    for (size_t k = 0; k < rows.size(); ++k) {
      int64_t out_id = first + static_cast<int64_t>(k);
      out.push_back(Row{out_id, std::move(rows[k].value)});
      if (prov != nullptr) {
        prov->unary_ids.push_back(UnaryIdRow{rows[k].in_id, out_id});
        if (items) {
          ItemProvenance ip;
          ip.out_id = out_id;
          ItemInputProvenance in;
          in.in_id = rows[k].in_id;
          in.input_index = 0;
          in.accessed = item_spec->accessed;
          in.accessed_undefined = item_spec->accessed_undefined;
          ip.inputs.push_back(std::move(in));
          ip.manipulations = item_spec->manipulations;
          ip.manip_undefined = item_spec->manip_undefined;
          prov->item_provenance.push_back(std::move(ip));
        }
      }
    }
  }
  return Dataset(std::move(schema), std::move(parts));
}

uint64_t HashKeyTuple(const std::vector<ValuePtr>& key) {
  uint64_t h = 0;
  for (const ValuePtr& v : key) {
    HashCombine(&h, v ? v->Hash() : 0);
  }
  return h;
}

bool KeyTupleEquals(const std::vector<ValuePtr>& a,
                    const std::vector<ValuePtr>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i]->Equals(*b[i])) return false;
  }
  return true;
}

void EmitSchemaCapture(ExecContext* ctx, const Operator& op,
                       OperatorProvenance* prov,
                       std::vector<InputProvenance> inputs,
                       std::vector<PathMapping> manipulations,
                       bool manip_undefined) {
  if (!ctx->capture_paths()) {
    // Lineage-only capture keeps input references (needed to walk the DAG)
    // but drops the structural component.
    for (InputProvenance& in : inputs) {
      in.accessed.clear();
      in.accessed_undefined = false;
    }
    manipulations.clear();
    manip_undefined = false;
  }
  prov->type = op.type();
  prov->label = op.label();
  prov->inputs = std::move(inputs);
  prov->manipulations = std::move(manipulations);
  prov->manip_undefined = manip_undefined;
}

}  // namespace pebble::internal
