#include "engine/op_internal.h"

#include "common/failpoint.h"

namespace pebble::internal {

namespace {

void HashCombine(uint64_t* seed, uint64_t v) {
  *seed ^= v + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

}  // namespace

Status CheckProvenanceCommit(ExecContext* ctx,
                             const OperatorProvenance* prov) {
  if (prov == nullptr) return Status::OK();
  PEBBLE_RETURN_NOT_OK(ctx->CheckInterrupt("provenance commit"));
  return FailpointRegistry::Global().Evaluate(failpoints::kProvenanceAppend);
}

Status ChargeStage(ExecContext* ctx, const Partition& rows,
                   uint64_t extra_bytes, const char* what, uint64_t* charged) {
  if (!ctx->budget_limited()) return Status::OK();
  // Container bytes only: the staged values are charged exactly by the
  // attempt's arena as it acquires blocks (DESIGN.md §15).
  uint64_t bytes = ContainerPartitionBytes(rows) + extra_bytes;
  PEBBLE_RETURN_NOT_OK(ctx->ChargeBytes(bytes, what));
  *charged = bytes;
  return Status::OK();
}

void ReleaseStageCharge(ExecContext* ctx, uint64_t* charged) {
  ctx->ReleaseBytes(*charged);
  *charged = 0;
}

Result<Dataset> FinalizeUnary(ExecContext* ctx, TypePtr schema,
                              std::vector<UnaryStage> staged,
                              OperatorProvenance* prov,
                              const ItemCaptureSpec* item_spec) {
  PEBBLE_RETURN_NOT_OK(CheckProvenanceCommit(ctx, prov));
  std::vector<Partition> parts(staged.size());
  const bool items = ctx->capture_items() && item_spec != nullptr;
  for (size_t p = 0; p < staged.size(); ++p) {
    UnaryStage& stage = staged[p];
    const size_t n = stage.size();
    int64_t first = n == 0 ? 0 : ctx->ReserveIds(static_cast<int64_t>(n));
    for (size_t k = 0; k < n; ++k) {
      stage.rows[k].id = first + static_cast<int64_t>(k);
    }
    parts[p] = std::move(stage.rows);
    if (prov != nullptr) {
      if (items) {
        for (size_t k = 0; k < n; ++k) {
          ItemProvenance ip;
          ip.out_id = first + static_cast<int64_t>(k);
          ItemInputProvenance in;
          in.in_id = stage.in_ids[k];
          in.input_index = 0;
          in.accessed = item_spec->accessed;
          in.accessed_undefined = item_spec->accessed_undefined;
          ip.inputs.push_back(std::move(in));
          ip.manipulations = item_spec->manipulations;
          ip.manip_undefined = item_spec->manip_undefined;
          prov->item_provenance.push_back(std::move(ip));
        }
      }
      prov->unary_ids.AppendStage(std::move(stage.in_ids), first);
    }
    // The staged rows now live in the output dataset (charged by the
    // executor at materialization); drop the staging reservation.
    ReleaseStageCharge(ctx, &stage.charged_bytes);
  }
  return Dataset(std::move(schema), std::move(parts));
}

uint64_t HashKeyTuple(const std::vector<ValuePtr>& key) {
  uint64_t h = 0;
  for (const ValuePtr& v : key) {
    HashCombine(&h, v ? v->Hash() : 0);
  }
  return h;
}

bool KeyTupleEquals(const std::vector<ValuePtr>& a,
                    const std::vector<ValuePtr>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i]->Equals(*b[i])) return false;
  }
  return true;
}

void EmitSchemaCapture(ExecContext* ctx, const Operator& op,
                       OperatorProvenance* prov,
                       std::vector<InputProvenance> inputs,
                       std::vector<PathMapping> manipulations,
                       bool manip_undefined) {
  if (!ctx->capture_paths()) {
    // Lineage-only capture keeps input references (needed to walk the DAG)
    // but drops the structural component.
    for (InputProvenance& in : inputs) {
      in.accessed.clear();
      in.accessed_undefined = false;
    }
    manipulations.clear();
    manip_undefined = false;
  }
  prov->type = op.type();
  prov->label = op.label();
  prov->inputs = std::move(inputs);
  prov->manipulations = std::move(manipulations);
  prov->manip_undefined = manip_undefined;
}

}  // namespace pebble::internal
