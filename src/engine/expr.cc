#include "engine/expr.h"

#include "common/string_util.h"

namespace pebble {

namespace {

Result<ValuePtr> CompareValues(CompareOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  int c;
  if (a.is_numeric() && b.is_numeric()) {
    double x = a.AsDouble();
    double y = b.AsDouble();
    c = x < y ? -1 : (x > y ? 1 : 0);
  } else if (a.kind() == b.kind()) {
    c = a.Compare(b);
  } else {
    return Status::TypeError("cannot compare " + a.ToString() + " with " +
                             b.ToString());
  }
  bool r = false;
  switch (op) {
    case CompareOp::kEq:
      r = c == 0;
      break;
    case CompareOp::kNe:
      r = c != 0;
      break;
    case CompareOp::kLt:
      r = c < 0;
      break;
    case CompareOp::kLe:
      r = c <= 0;
      break;
    case CompareOp::kGt:
      r = c > 0;
      break;
    case CompareOp::kGe:
      r = c >= 0;
      break;
  }
  return Value::Bool(r);
}

}  // namespace

ExprPtr Expr::Lit(ValuePtr v) {
  auto* e = new Expr(ExprKind::kLiteral);
  e->literal_ = std::move(v);
  return ExprPtr(e);
}
ExprPtr Expr::LitInt(int64_t v) { return Lit(Value::Int(v)); }
ExprPtr Expr::LitString(std::string v) { return Lit(Value::String(std::move(v))); }
ExprPtr Expr::LitBool(bool v) { return Lit(Value::Bool(v)); }

ExprPtr Expr::Col(const std::string& path) {
  return ColPath(std::move(Path::Parse(path)).ValueOrDie());
}

ExprPtr Expr::ColPath(Path path) {
  auto* e = new Expr(ExprKind::kColumn);
  e->column_ = std::move(path);
  return ExprPtr(e);
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr left, ExprPtr right) {
  auto* e = new Expr(ExprKind::kCompare);
  e->compare_op_ = op;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return ExprPtr(e);
}
ExprPtr Expr::Eq(ExprPtr l, ExprPtr r) { return Compare(CompareOp::kEq, std::move(l), std::move(r)); }
ExprPtr Expr::Ne(ExprPtr l, ExprPtr r) { return Compare(CompareOp::kNe, std::move(l), std::move(r)); }
ExprPtr Expr::Lt(ExprPtr l, ExprPtr r) { return Compare(CompareOp::kLt, std::move(l), std::move(r)); }
ExprPtr Expr::Le(ExprPtr l, ExprPtr r) { return Compare(CompareOp::kLe, std::move(l), std::move(r)); }
ExprPtr Expr::Gt(ExprPtr l, ExprPtr r) { return Compare(CompareOp::kGt, std::move(l), std::move(r)); }
ExprPtr Expr::Ge(ExprPtr l, ExprPtr r) { return Compare(CompareOp::kGe, std::move(l), std::move(r)); }

ExprPtr Expr::And(ExprPtr left, ExprPtr right) {
  auto* e = new Expr(ExprKind::kLogical);
  e->logical_op_ = LogicalOp::kAnd;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return ExprPtr(e);
}

ExprPtr Expr::Or(ExprPtr left, ExprPtr right) {
  auto* e = new Expr(ExprKind::kLogical);
  e->logical_op_ = LogicalOp::kOr;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return ExprPtr(e);
}

ExprPtr Expr::Not(ExprPtr inner) {
  auto* e = new Expr(ExprKind::kNot);
  e->left_ = std::move(inner);
  return ExprPtr(e);
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr left, ExprPtr right) {
  auto* e = new Expr(ExprKind::kArith);
  e->arith_op_ = op;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return ExprPtr(e);
}

ExprPtr Expr::Contains(ExprPtr str, ExprPtr needle) {
  auto* e = new Expr(ExprKind::kContains);
  e->left_ = std::move(str);
  e->right_ = std::move(needle);
  return ExprPtr(e);
}

ExprPtr Expr::SizeOf(ExprPtr col) {
  auto* e = new Expr(ExprKind::kSizeOf);
  e->left_ = std::move(col);
  return ExprPtr(e);
}

ExprPtr Expr::IsNull(ExprPtr inner) {
  auto* e = new Expr(ExprKind::kIsNull);
  e->left_ = std::move(inner);
  return ExprPtr(e);
}

Result<ValuePtr> Expr::Evaluate(const Value& item) const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kColumn:
      return column_.Evaluate(item);
    case ExprKind::kCompare: {
      PEBBLE_ASSIGN_OR_RETURN(ValuePtr a, left_->Evaluate(item));
      PEBBLE_ASSIGN_OR_RETURN(ValuePtr b, right_->Evaluate(item));
      return CompareValues(compare_op_, *a, *b);
    }
    case ExprKind::kLogical: {
      PEBBLE_ASSIGN_OR_RETURN(bool a, left_->EvaluateBool(item));
      if (logical_op_ == LogicalOp::kAnd && !a) return Value::Bool(false);
      if (logical_op_ == LogicalOp::kOr && a) return Value::Bool(true);
      PEBBLE_ASSIGN_OR_RETURN(bool b, right_->EvaluateBool(item));
      return Value::Bool(b);
    }
    case ExprKind::kNot: {
      PEBBLE_ASSIGN_OR_RETURN(bool a, left_->EvaluateBool(item));
      return Value::Bool(!a);
    }
    case ExprKind::kArith: {
      PEBBLE_ASSIGN_OR_RETURN(ValuePtr a, left_->Evaluate(item));
      PEBBLE_ASSIGN_OR_RETURN(ValuePtr b, right_->Evaluate(item));
      if (a->is_null() || b->is_null()) return Value::Null();
      if (!a->is_numeric() || !b->is_numeric()) {
        return Status::TypeError("arithmetic on non-numeric values");
      }
      if (a->kind() == ValueKind::kInt && b->kind() == ValueKind::kInt &&
          arith_op_ != ArithOp::kDiv) {
        int64_t x = a->int_value();
        int64_t y = b->int_value();
        switch (arith_op_) {
          case ArithOp::kAdd:
            return Value::Int(x + y);
          case ArithOp::kSub:
            return Value::Int(x - y);
          case ArithOp::kMul:
            return Value::Int(x * y);
          default:
            break;
        }
      }
      double x = a->AsDouble();
      double y = b->AsDouble();
      switch (arith_op_) {
        case ArithOp::kAdd:
          return Value::Double(x + y);
        case ArithOp::kSub:
          return Value::Double(x - y);
        case ArithOp::kMul:
          return Value::Double(x * y);
        case ArithOp::kDiv:
          if (y == 0) return Value::Null();
          return Value::Double(x / y);
      }
      return Status::Internal("unreachable arithmetic op");
    }
    case ExprKind::kContains: {
      PEBBLE_ASSIGN_OR_RETURN(ValuePtr a, left_->Evaluate(item));
      PEBBLE_ASSIGN_OR_RETURN(ValuePtr b, right_->Evaluate(item));
      if (a->is_null() || b->is_null()) return Value::Null();
      if (a->kind() != ValueKind::kString || b->kind() != ValueKind::kString) {
        return Status::TypeError("contains() requires string operands");
      }
      return Value::Bool(
          pebble::Contains(a->string_value(), b->string_value()));
    }
    case ExprKind::kSizeOf: {
      PEBBLE_ASSIGN_OR_RETURN(ValuePtr a, left_->Evaluate(item));
      if (a->is_null()) return Value::Null();
      if (!a->is_collection()) {
        return Status::TypeError("size() requires a collection");
      }
      return Value::Int(static_cast<int64_t>(a->num_elements()));
    }
    case ExprKind::kIsNull: {
      PEBBLE_ASSIGN_OR_RETURN(ValuePtr a, left_->Evaluate(item));
      return Value::Bool(a->is_null());
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<bool> Expr::EvaluateBool(const Value& item) const {
  PEBBLE_ASSIGN_OR_RETURN(ValuePtr v, Evaluate(item));
  if (v->is_null()) return false;
  if (v->kind() != ValueKind::kBool) {
    return Status::TypeError("expression is not boolean: " + ToString());
  }
  return v->bool_value();
}

void Expr::CollectAccessedPaths(std::vector<Path>* paths) const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return;
    case ExprKind::kColumn:
      paths->push_back(column_);
      return;
    default:
      if (left_ != nullptr) left_->CollectAccessedPaths(paths);
      if (right_ != nullptr) right_->CollectAccessedPaths(paths);
  }
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_->ToString();
    case ExprKind::kColumn:
      return column_.ToString();
    case ExprKind::kCompare: {
      const char* op = "?";
      switch (compare_op_) {
        case CompareOp::kEq:
          op = "==";
          break;
        case CompareOp::kNe:
          op = "!=";
          break;
        case CompareOp::kLt:
          op = "<";
          break;
        case CompareOp::kLe:
          op = "<=";
          break;
        case CompareOp::kGt:
          op = ">";
          break;
        case CompareOp::kGe:
          op = ">=";
          break;
      }
      return "(" + left_->ToString() + " " + op + " " + right_->ToString() +
             ")";
    }
    case ExprKind::kLogical:
      return "(" + left_->ToString() +
             (logical_op_ == LogicalOp::kAnd ? " && " : " || ") +
             right_->ToString() + ")";
    case ExprKind::kNot:
      return "!(" + left_->ToString() + ")";
    case ExprKind::kArith: {
      const char* op = "?";
      switch (arith_op_) {
        case ArithOp::kAdd:
          op = "+";
          break;
        case ArithOp::kSub:
          op = "-";
          break;
        case ArithOp::kMul:
          op = "*";
          break;
        case ArithOp::kDiv:
          op = "/";
          break;
      }
      return "(" + left_->ToString() + " " + op + " " + right_->ToString() +
             ")";
    }
    case ExprKind::kContains:
      return "contains(" + left_->ToString() + ", " + right_->ToString() + ")";
    case ExprKind::kSizeOf:
      return "size(" + left_->ToString() + ")";
    case ExprKind::kIsNull:
      return "isnull(" + left_->ToString() + ")";
  }
  return "?";
}

}  // namespace pebble
