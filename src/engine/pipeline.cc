#include "engine/pipeline.h"

#include "nested/io.h"

namespace pebble {

const Operator* Pipeline::Find(int oid) const {
  if (oid < 1 || static_cast<size_t>(oid) > ops_.size()) return nullptr;
  return ops_[static_cast<size_t>(oid) - 1].get();
}

std::string Pipeline::ToString() const {
  std::string out;
  for (const auto& op : ops_) {
    out += std::to_string(op->oid());
    out += ": ";
    out += op->label();
    if (!op->input_oids().empty()) {
      out += " <- [";
      for (size_t i = 0; i < op->input_oids().size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(op->input_oids()[i]);
      }
      out += "]";
    }
    out += "\n";
  }
  return out;
}

int PipelineBuilder::Add(std::unique_ptr<Operator> op,
                         std::vector<int> inputs) {
  int oid = static_cast<int>(ops_.size()) + 1;
  op->set_oid(oid);
  op->set_input_oids(std::move(inputs));
  ops_.push_back(std::move(op));
  return oid;
}

int PipelineBuilder::Scan(std::string name, TypePtr schema,
                          std::shared_ptr<const std::vector<ValuePtr>> data) {
  return Add(std::make_unique<ScanOp>(std::move(name), std::move(schema),
                                      std::move(data)),
             {});
}

Result<int> PipelineBuilder::ScanJsonFile(const std::string& path,
                                          TypePtr schema) {
  PEBBLE_ASSIGN_OR_RETURN(std::vector<ValuePtr> values,
                          ReadJsonLinesFile(path));
  if (schema == nullptr) {
    if (values.empty()) {
      return Status::InvalidArgument(
          "cannot infer a schema from the empty file '" + path + "'");
    }
    schema = values[0]->InferType();
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (!values[i]->InferType()->CompatibleWith(*schema)) {
      return Status::TypeError("record " + std::to_string(i + 1) + " of '" +
                               path + "' does not match the schema " +
                               schema->ToString());
    }
  }
  auto data = std::make_shared<std::vector<ValuePtr>>(std::move(values));
  return Scan(path, std::move(schema), std::move(data));
}

int PipelineBuilder::Filter(int input, ExprPtr predicate) {
  return Add(std::make_unique<FilterOp>(std::move(predicate)), {input});
}

int PipelineBuilder::Select(int input, std::vector<Projection> projections) {
  return Add(std::make_unique<SelectOp>(std::move(projections)), {input});
}

int PipelineBuilder::Map(int input, MapFn fn, TypePtr declared_schema,
                         std::string label) {
  return Add(std::make_unique<MapOp>(std::move(fn), std::move(declared_schema),
                                     std::move(label)),
             {input});
}

int PipelineBuilder::Join(int left, int right,
                          const std::vector<std::string>& left_keys,
                          const std::vector<std::string>& right_keys) {
  std::vector<Path> lk;
  std::vector<Path> rk;
  for (const std::string& k : left_keys) {
    lk.push_back(std::move(Path::Parse(k)).ValueOrDie());
  }
  for (const std::string& k : right_keys) {
    rk.push_back(std::move(Path::Parse(k)).ValueOrDie());
  }
  return Add(std::make_unique<JoinOp>(std::move(lk), std::move(rk)),
             {left, right});
}

int PipelineBuilder::ThetaJoin(int left, int right, ExprPtr phi) {
  return Add(JoinOp::Theta(std::move(phi)), {left, right});
}

int PipelineBuilder::Union(int left, int right) {
  return Add(std::make_unique<UnionOp>(), {left, right});
}

int PipelineBuilder::Flatten(int input, const std::string& column,
                             const std::string& new_attr) {
  return Add(std::make_unique<FlattenOp>(
                 std::move(Path::Parse(column)).ValueOrDie(), new_attr),
             {input});
}

int PipelineBuilder::GroupAggregate(int input, std::vector<GroupKey> keys,
                                    std::vector<AggSpec> aggs) {
  return Add(
      std::make_unique<GroupAggregateOp>(std::move(keys), std::move(aggs)),
      {input});
}

Result<Pipeline> PipelineBuilder::Build(int sink) {
  if (sink < 1 || static_cast<size_t>(sink) > ops_.size()) {
    return Status::InvalidArgument("invalid sink oid " + std::to_string(sink));
  }
  // Resolve schemas in topological (insertion) order; inputs always precede
  // their consumers because handles are only available after Add.
  std::vector<TypePtr> schemas(ops_.size() + 1);
  for (const auto& op : ops_) {
    std::vector<TypePtr> input_schemas;
    input_schemas.reserve(op->input_oids().size());
    for (int in : op->input_oids()) {
      if (in < 1 || in >= op->oid()) {
        return Status::InvalidArgument(
            "operator " + std::to_string(op->oid()) +
            " has invalid input oid " + std::to_string(in));
      }
      input_schemas.push_back(schemas[static_cast<size_t>(in)]);
    }
    PEBBLE_ASSIGN_OR_RETURN(TypePtr schema, op->InferSchema(input_schemas));
    schemas[static_cast<size_t>(op->oid())] = schema;
    op->set_output_schema(std::move(schema));
  }
  Pipeline pipeline;
  pipeline.ops_ = std::move(ops_);
  pipeline.sink_oid_ = sink;
  return pipeline;
}

}  // namespace pebble
