// Join and Union operators (paper Tab. 5 join / union* rules).

#include <unordered_map>
#include <utility>

#include "common/failpoint.h"
#include "engine/op_internal.h"
#include "engine/operators.h"

namespace pebble {

namespace {

/// Per-task SoA staging for join: produced values plus flat (in1, in2)
/// id columns, bulk-moved into the columnar binary table at commit.
struct BinaryStage {
  Partition rows;
  std::vector<int64_t> in1;
  std::vector<int64_t> in2;
  uint64_t charged_bytes = 0;  // memory-budget reservation for this stage

  void Clear() {
    rows.clear();
    in1.clear();
    in2.clear();
  }
  void Push(ValuePtr value, int64_t a, int64_t b) {
    rows.push_back(Row{-1, std::move(value)});
    in1.push_back(a);
    in2.push_back(b);
  }
  size_t size() const { return rows.size(); }
};

std::string DescribeKeys(const std::vector<Path>& left,
                         const std::vector<Path>& right) {
  std::string out = "join on ";
  // Key count mismatches are rejected later by InferSchema; describe only
  // the pairs that exist.
  size_t n = std::min(left.size(), right.size());
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) out += ", ";
    out += left[i].ToString() + "==" + right[i].ToString();
  }
  return out;
}

Result<std::vector<ValuePtr>> EvalKeys(const std::vector<Path>& keys,
                                       const Value& item) {
  std::vector<ValuePtr> out;
  out.reserve(keys.size());
  for (const Path& k : keys) {
    PEBBLE_ASSIGN_OR_RETURN(ValuePtr v, k.Evaluate(item));
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Join
// ---------------------------------------------------------------------------

JoinOp::JoinOp(std::vector<Path> left_keys, std::vector<Path> right_keys,
               ExprPtr theta)
    : Operator(OpType::kJoin,
               left_keys.empty() && theta != nullptr
                   ? "join on " + theta->ToString()
                   : DescribeKeys(left_keys, right_keys) +
                         (theta != nullptr ? " && " + theta->ToString() : "")),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      theta_(std::move(theta)) {}

std::unique_ptr<JoinOp> JoinOp::Theta(ExprPtr phi) {
  return std::make_unique<JoinOp>(std::vector<Path>{}, std::vector<Path>{},
                                  std::move(phi));
}

Result<TypePtr> JoinOp::InferSchema(const std::vector<TypePtr>& inputs) const {
  if (inputs.size() != 2) {
    return Status::InvalidArgument("join takes exactly two inputs");
  }
  if (left_keys_.empty() && theta_ == nullptr) {
    return Status::InvalidArgument(
        "join requires key columns or a theta predicate");
  }
  if (left_keys_.size() != right_keys_.size()) {
    return Status::InvalidArgument(
        "join requires the same number of keys on both sides");
  }
  for (const Path& p : left_keys_) {
    if (!p.ExistsInType(*inputs[0])) {
      return Status::KeyError("left join key '" + p.ToString() +
                              "' not in schema " + inputs[0]->ToString());
    }
  }
  for (const Path& p : right_keys_) {
    if (!p.ExistsInType(*inputs[1])) {
      return Status::KeyError("right join key '" + p.ToString() +
                              "' not in schema " + inputs[1]->ToString());
    }
  }
  std::vector<FieldType> fields = inputs[0]->fields();
  for (const FieldType& f : inputs[1]->fields()) {
    if (inputs[0]->FindField(f.name) != nullptr) {
      return Status::InvalidArgument(
          "join inputs share attribute '" + f.name +
          "'; rename via select before joining");
    }
    fields.push_back(f);
  }
  TypePtr combined = DataType::Struct(std::move(fields));
  if (theta_ != nullptr) {
    std::vector<Path> accessed;
    theta_->CollectAccessedPaths(&accessed);
    for (const Path& p : accessed) {
      if (!p.ExistsInType(*combined)) {
        return Status::KeyError("theta predicate path '" + p.ToString() +
                                "' not in the combined join schema");
      }
    }
  }
  return combined;
}

Result<Dataset> JoinOp::Execute(
    ExecContext* ctx, const std::vector<const Dataset*>& inputs) const {
  const Dataset& left = *inputs[0];
  const Dataset& right = *inputs[1];
  // num_partitions is validated positive at Executor::Run entry.
  const size_t buckets =
      left_keys_.empty()
          ? 1  // nested-loop theta-join: single bucket
          : static_cast<size_t>(ctx->options().num_partitions);

  // Shuffle phase: hash-partition both sides by key tuple, preserving the
  // global row order within each bucket (deterministic output). Each input
  // partition is one simulated exchange that can fail independently.
  struct KeyedRow {
    std::vector<ValuePtr> key;
    Row row;
  };
  FailpointRegistry& fp = FailpointRegistry::Global();
  std::vector<std::vector<KeyedRow>> left_buckets(buckets);
  std::vector<std::vector<KeyedRow>> right_buckets(buckets);
  size_t exchange = 0;
  uint64_t shuffle_charged = 0;
  uint32_t ticker = 0;
  for (const Partition& part : left.partitions()) {
    PEBBLE_RETURN_NOT_OK(ctx->CheckInterrupt("join shuffle"));
    PEBBLE_RETURN_NOT_OK(
        fp.Evaluate(failpoints::kShuffleExchange, exchange++));
    for (const Row& row : part) {
      if ((++ticker & internal::kInterruptMask) == 0) {
        PEBBLE_RETURN_NOT_OK(ctx->CheckInterrupt("join shuffle"));
      }
      PEBBLE_ASSIGN_OR_RETURN(std::vector<ValuePtr> key,
                              EvalKeys(left_keys_, *row.value));
      size_t b = internal::HashKeyTuple(key) % buckets;
      left_buckets[b].push_back(KeyedRow{std::move(key), row});
    }
    if (ctx->budget_limited()) {
      uint64_t bytes = part.size() * (sizeof(KeyedRow) +
                                      left_keys_.size() * sizeof(ValuePtr));
      PEBBLE_RETURN_NOT_OK(ctx->ChargeBytes(bytes, "join shuffle"));
      shuffle_charged += bytes;
    }
  }
  for (const Partition& part : right.partitions()) {
    PEBBLE_RETURN_NOT_OK(ctx->CheckInterrupt("join shuffle"));
    PEBBLE_RETURN_NOT_OK(
        fp.Evaluate(failpoints::kShuffleExchange, exchange++));
    for (const Row& row : part) {
      if ((++ticker & internal::kInterruptMask) == 0) {
        PEBBLE_RETURN_NOT_OK(ctx->CheckInterrupt("join shuffle"));
      }
      PEBBLE_ASSIGN_OR_RETURN(std::vector<ValuePtr> key,
                              EvalKeys(right_keys_, *row.value));
      size_t b = internal::HashKeyTuple(key) % buckets;
      right_buckets[b].push_back(KeyedRow{std::move(key), row});
    }
    if (ctx->budget_limited()) {
      uint64_t bytes = part.size() * (sizeof(KeyedRow) +
                                      right_keys_.size() * sizeof(ValuePtr));
      PEBBLE_RETURN_NOT_OK(ctx->ChargeBytes(bytes, "join shuffle"));
      shuffle_charged += bytes;
    }
  }

  const bool capture = ctx->capture_enabled();
  std::vector<BinaryStage> staged(buckets);
  PEBBLE_RETURN_NOT_OK(ctx->ParallelFor(buckets, [&](size_t b) -> Status {
    internal::ReleaseStageCharge(ctx, &staged[b].charged_bytes);
    staged[b].Clear();  // retry-idempotent: overwrite, never append
    // Build a multimap over the right side of this bucket.
    std::unordered_multimap<uint64_t, const KeyedRow*> index;
    index.reserve(right_buckets[b].size());
    for (const KeyedRow& kr : right_buckets[b]) {
      index.emplace(internal::HashKeyTuple(kr.key), &kr);
    }
    uint32_t probe_ticker = 0;
    for (const KeyedRow& lkr : left_buckets[b]) {
      if ((++probe_ticker & internal::kInterruptMask) == 0) {
        PEBBLE_RETURN_NOT_OK(ctx->CheckInterrupt("join probe"));
      }
      // Collect matches in right insertion order for determinism. With no
      // keys (pure theta-join) every right row is a candidate.
      std::vector<const KeyedRow*> matches;
      if (left_keys_.empty()) {
        matches.reserve(right_buckets[b].size());
        for (const KeyedRow& rkr : right_buckets[b]) {
          matches.push_back(&rkr);
        }
      } else {
        uint64_t h = internal::HashKeyTuple(lkr.key);
        auto range = index.equal_range(h);
        for (auto it = range.first; it != range.second; ++it) {
          if (internal::KeyTupleEquals(lkr.key, it->second->key)) {
            matches.push_back(it->second);
          }
        }
        std::sort(matches.begin(), matches.end(),
                  [&](const KeyedRow* a, const KeyedRow* c) {
                    return a - right_buckets[b].data() <
                           c - right_buckets[b].data();
                  });
      }
      for (const KeyedRow* rkr : matches) {
        ValuePtr combined =
            Value::StructConcat(*lkr.row.value, *rkr->row.value);
        if (theta_ != nullptr) {
          PEBBLE_ASSIGN_OR_RETURN(bool pass, theta_->EvaluateBool(*combined));
          if (!pass) continue;
        }
        staged[b].Push(std::move(combined), capture ? lkr.row.id : -1,
                       capture ? rkr->row.id : -1);
      }
    }
    return internal::ChargeStage(ctx, staged[b].rows,
                                 staged[b].in1.size() * 2 * sizeof(int64_t),
                                 "join staging", &staged[b].charged_bytes);
  }));
  // The shuffle buckets are consumed; drop their reservation.
  ctx->ReleaseBytes(shuffle_charged);

  std::vector<Partition> parts(buckets);
  OperatorProvenance* prov = nullptr;
  if (capture) {
    prov = ctx->store()->Mutable(oid());
    std::vector<Path> left_accessed;
    std::vector<Path> right_accessed;
    for (const Path& p : left_keys_) {
      left_accessed.push_back(p.WithPosPlaceholders());
    }
    for (const Path& p : right_keys_) {
      right_accessed.push_back(p.WithPosPlaceholders());
    }
    if (theta_ != nullptr) {
      // phi's paths reference the combined schema; attribute each to the
      // side that owns its top-level attribute.
      std::vector<Path> theta_paths;
      theta_->CollectAccessedPaths(&theta_paths);
      for (const Path& p : theta_paths) {
        if (!p.empty() &&
            left.schema()->FindField(p.step(0).attr()) != nullptr) {
          left_accessed.push_back(p.WithPosPlaceholders());
        } else {
          right_accessed.push_back(p.WithPosPlaceholders());
        }
      }
    }
    InputProvenance ip1;
    ip1.producer_oid = input_oids()[0];
    ip1.accessed = std::move(left_accessed);
    ip1.input_schema = left.schema();
    InputProvenance ip2;
    ip2.producer_oid = input_oids()[1];
    ip2.accessed = std::move(right_accessed);
    ip2.input_schema = right.schema();
    // M: every top-level attribute of either side keeps its path (Tab. 5
    // join rule: {<p_i, p_r>} ∪ {<q_j, q_r>}).
    std::vector<PathMapping> manipulations;
    for (const FieldType& f : output_schema()->fields()) {
      manipulations.push_back(
          PathMapping{Path::Attr(f.name), Path::Attr(f.name)});
    }
    internal::EmitSchemaCapture(ctx, *this, prov, {ip1, ip2},
                                std::move(manipulations), false);
  }
  PEBBLE_RETURN_NOT_OK(internal::CheckProvenanceCommit(ctx, prov));

  const bool items = ctx->capture_items();
  for (size_t b = 0; b < buckets; ++b) {
    BinaryStage& stage = staged[b];
    const size_t n = stage.size();
    int64_t first = n == 0 || !capture
                        ? 0
                        : ctx->ReserveIds(static_cast<int64_t>(n));
    if (capture) {
      for (size_t k = 0; k < n; ++k) {
        stage.rows[k].id = first + static_cast<int64_t>(k);
      }
    }
    parts[b] = std::move(stage.rows);
    if (capture) {
      if (items) {
        for (size_t k = 0; k < n; ++k) {
          ItemProvenance item;
          item.out_id = first + static_cast<int64_t>(k);
          ItemInputProvenance l;
          l.in_id = stage.in1[k];
          l.input_index = 0;
          for (const Path& p : left_keys_) l.accessed.push_back(p);
          ItemInputProvenance r;
          r.in_id = stage.in2[k];
          r.input_index = 1;
          for (const Path& p : right_keys_) r.accessed.push_back(p);
          item.inputs.push_back(std::move(l));
          item.inputs.push_back(std::move(r));
          item.manipulations = prov->manipulations;
          prov->item_provenance.push_back(std::move(item));
        }
      }
      prov->binary_ids.AppendStage(std::move(stage.in1),
                                   std::move(stage.in2), first);
    }
    internal::ReleaseStageCharge(ctx, &stage.charged_bytes);
  }
  return Dataset(output_schema(), std::move(parts));
}

// ---------------------------------------------------------------------------
// Union
// ---------------------------------------------------------------------------

UnionOp::UnionOp() : Operator(OpType::kUnion, "union") {}

Result<TypePtr> UnionOp::InferSchema(
    const std::vector<TypePtr>& inputs) const {
  if (inputs.size() != 2) {
    return Status::InvalidArgument("union takes exactly two inputs");
  }
  if (!inputs[0]->CompatibleWith(*inputs[1])) {
    return Status::TypeError("union inputs have incompatible types: " +
                             inputs[0]->ToString() + " vs " +
                             inputs[1]->ToString());
  }
  return inputs[0];
}

Result<Dataset> UnionOp::Execute(
    ExecContext* ctx, const std::vector<const Dataset*>& inputs) const {
  const bool capture = ctx->capture_enabled();
  OperatorProvenance* prov = nullptr;
  if (capture) {
    prov = ctx->store()->Mutable(oid());
    InputProvenance ip1;
    ip1.producer_oid = input_oids()[0];
    ip1.input_schema = inputs[0]->schema();
    InputProvenance ip2;
    ip2.producer_oid = input_oids()[1];
    ip2.input_schema = inputs[1]->schema();
    // A = {} (schema comparison only) and M = {} per the union* rule.
    internal::EmitSchemaCapture(ctx, *this, prov, {ip1, ip2}, {}, false);
  }
  PEBBLE_RETURN_NOT_OK(internal::CheckProvenanceCommit(ctx, prov));
  const bool items = ctx->capture_items();

  std::vector<Partition> parts;
  parts.reserve(inputs[0]->partitions().size() +
                inputs[1]->partitions().size());
  for (int side = 0; side < 2; ++side) {
    for (const Partition& part : inputs[side]->partitions()) {
      // Union shares row values (no new allocation beyond the row vectors);
      // the executor charges the materialized output. With capture on this
      // loop IS the commit (id stages append per partition), so it must not
      // be interrupted mid-way — the pre-commit gate above is the only
      // cancellation point then. Capture-off runs stay interruptible here.
      if (!capture) {
        PEBBLE_RETURN_NOT_OK(ctx->CheckInterrupt("union"));
      }
      Partition out;
      out.reserve(part.size());
      int64_t first =
          part.empty() || !capture
              ? 0
              : ctx->ReserveIds(static_cast<int64_t>(part.size()));
      for (size_t k = 0; k < part.size(); ++k) {
        int64_t out_id = capture ? first + static_cast<int64_t>(k) : -1;
        out.push_back(Row{out_id, part[k].value});
        if (capture && items) {
          ItemProvenance item;
          item.out_id = out_id;
          ItemInputProvenance in;
          in.in_id = part[k].id;
          in.input_index = side;
          item.inputs.push_back(std::move(in));
          prov->item_provenance.push_back(std::move(item));
        }
      }
      if (capture && !part.empty()) {
        // Originating side carries the ids; the other column is kNoId.
        std::vector<int64_t> ids(part.size());
        for (size_t k = 0; k < part.size(); ++k) ids[k] = part[k].id;
        std::vector<int64_t> none(part.size(), kNoId);
        if (side == 0) {
          prov->binary_ids.AppendStage(std::move(ids), std::move(none),
                                       first);
        } else {
          prov->binary_ids.AppendStage(std::move(none), std::move(ids),
                                       first);
        }
      }
      parts.push_back(std::move(out));
    }
  }
  return Dataset(output_schema(), std::move(parts));
}

}  // namespace pebble
