// Umbrella header: the public API of the Pebble structural-provenance
// library (the paper's PebbleAPI layer, Fig. 5). Include this to get the
// data model, the engine, provenance capture/querying, the baselines and
// the use-case analyses.

#ifndef PEBBLE_PEBBLE_H_
#define PEBBLE_PEBBLE_H_

// Data model (paper Sec. 4.1).
#include "nested/io.h"
#include "nested/json.h"
#include "nested/path.h"
#include "nested/type.h"
#include "nested/value.h"

// Execution engine (paper Sec. 4.2, capture rules Sec. 5).
#include "engine/executor.h"
#include "engine/expr.h"
#include "engine/operators.h"
#include "engine/pipeline.h"

// Structural provenance (paper Secs. 4.3, 5, 6).
#include "core/backtrace.h"
#include "core/backtrace_tree.h"
#include "core/provenance_io.h"
#include "core/provenance_model.h"
#include "core/provenance_store.h"
#include "core/provenance_wal.h"
#include "core/query.h"
#include "core/render.h"
#include "core/tree_pattern.h"

// Baselines (paper Secs. 3, 7).
#include "baselines/lazy.h"
#include "baselines/lipstick.h"
#include "baselines/polynomial.h"
#include "baselines/titian.h"

// Use-cases (paper Sec. 7.3.5).
#include "usecases/audit.h"
#include "usecases/usage.h"

#endif  // PEBBLE_PEBBLE_H_
