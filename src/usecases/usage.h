// Data-usage pattern analysis (paper Sec. 7.3.5, Fig. 10): merges the
// structural provenance of a query workload and derives, per top-level
// input item and per attribute, how often it contributed to or influenced
// a result. Supports hot/cold partitioning decisions (horizontal and
// vertical) and co-usage statistics.

#ifndef PEBBLE_USECASES_USAGE_H_
#define PEBBLE_USECASES_USAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/backtrace.h"

namespace pebble {

/// Accumulates provenance over a workload of queries.
class UsageAnalyzer {
 public:
  /// Adds one query's backtraced provenance (all sources). Counts are per
  /// (source, item, top-level attribute): contributing and influencing
  /// separately; the per-item (tuple) counter increments once per query the
  /// item appears in.
  void AddQueryResult(const std::vector<SourceProvenance>& sources);

  /// Counters of one top-level attribute of one item.
  struct AttrUsage {
    int contributing = 0;
    int influencing = 0;
    int total() const { return contributing + influencing; }
  };

  /// Per-item usage: the tuple counter plus per-attribute counters.
  struct ItemUsage {
    int tuple_count = 0;
    std::map<std::string, AttrUsage> attrs;
  };

  /// Usage of item `id` in source `scan_oid`; zeroed if never seen.
  const ItemUsage* Find(int scan_oid, int64_t id) const;

  /// Heatmap over the given items (Fig. 10 layout: leftmost column = tuple
  /// counter, remaining columns = top-level attributes of `schema`).
  struct Heatmap {
    std::vector<std::string> attributes;
    struct Row {
      int64_t id = 0;
      int tuple_count = 0;
      std::vector<int> counts;            // per attribute, total()
      std::vector<bool> influencing_only;  // accessed but never contributing
    };
    std::vector<Row> rows;

    /// ASCII rendering: '.' cold, digits hot, '~' influencing-only.
    std::string ToString() const;
  };
  Heatmap BuildHeatmap(int scan_oid, const std::vector<int64_t>& ids,
                       const TypePtr& schema) const;

  /// Workload-wide per-attribute statistics (vertical partitioning input).
  struct AttrStats {
    std::string attribute;
    int contributing = 0;
    int influencing = 0;
  };
  std::vector<AttrStats> AttributeStats(int scan_oid,
                                        const TypePtr& schema) const;

  /// Pairs of top-level attributes that contribute together within the same
  /// item and query (data-layout co-location hints), with their counts,
  /// sorted descending.
  std::vector<std::pair<std::pair<std::string, std::string>, int>>
  CoUsagePairs(int scan_oid) const;

 private:
  // (scan_oid, id) -> usage.
  std::map<std::pair<int, int64_t>, ItemUsage> usage_;
  // (scan_oid, attr_pair) -> count.
  std::map<std::pair<int, std::pair<std::string, std::string>>, int>
      co_usage_;
};

}  // namespace pebble

#endif  // PEBBLE_USECASES_USAGE_H_
