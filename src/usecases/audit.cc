#include "usecases/audit.h"

#include <memory>
#include <utility>

#include "core/provenance_io.h"
#include "core/provenance_wal.h"

namespace pebble {

AuditReport BuildAuditReport(const SourceProvenance& structural,
                             const SourceLineage& lineage,
                             size_t num_attributes) {
  AuditReport report;
  report.scan_oid = structural.scan_oid;
  report.lineage_reported_values =
      static_cast<uint64_t>(lineage.ids.size()) * num_attributes;

  for (const BacktraceEntry& entry : structural.items) {
    AuditItem item;
    item.id = entry.id;
    entry.tree.Visit([&](const Path& path, const BtNode& node) {
      // Report leaf-most information: a node with children is summarized by
      // its descendants.
      if (!node.children.empty()) return;
      if (node.contributing) {
        item.leaked_attributes.push_back(path.ToString());
      } else {
        item.influenced_attributes.push_back(path.ToString());
      }
    });
    report.pebble_leaked_values +=
        static_cast<uint64_t>(item.leaked_attributes.size());
    report.influencing_values +=
        static_cast<uint64_t>(item.influenced_attributes.size());
    report.items.push_back(std::move(item));
  }
  return report;
}

namespace {

/// Shared audit body over an already-loaded store. `index` is optional
/// (the persisted backtrace index of a snapshot); nullptr selects the
/// tracer's classic per-query lookup rebuild.
Result<std::vector<AuditReport>> AuditStore(
    const ProvenanceStore& store, const BacktraceIndex* index,
    const Dataset& leaked_output, const TreePattern& pattern,
    size_t num_attributes, int num_threads, const BacktraceOptions& options) {
  bool match_truncated = false;
  PEBBLE_ASSIGN_OR_RETURN(
      BacktraceStructure matched,
      pattern.Match(leaked_output, num_threads, options.deadline,
                    options.cancel, &match_truncated));
  Backtracer tracer(&store, index);
  BacktraceTruncation truncation;
  PEBBLE_ASSIGN_OR_RETURN(std::vector<SourceProvenance> sources,
                          tracer.Backtrace(matched, options, &truncation));
  if (match_truncated && !truncation.truncated) {
    truncation.truncated = true;
    truncation.reason = options.cancel.IsCancelled()
                            ? TruncationReason::kCancelled
                            : TruncationReason::kDeadline;
    truncation.detail = "tree-pattern matching stopped early";
  }

  // What a tuple-level lineage tracer would report for the same matches
  // (the over-reporting comparison of the report).
  std::vector<int64_t> matched_ids;
  matched_ids.reserve(matched.size());
  for (const BacktraceEntry& entry : matched) {
    matched_ids.push_back(entry.id);
  }
  LineageTracer lineage_tracer(&store);
  PEBBLE_ASSIGN_OR_RETURN(std::vector<SourceLineage> lineages,
                          lineage_tracer.Trace(matched_ids));

  std::vector<AuditReport> reports;
  reports.reserve(sources.size());
  for (const SourceProvenance& source : sources) {
    SourceLineage lineage;
    for (const SourceLineage& candidate : lineages) {
      if (candidate.scan_oid == source.scan_oid) {
        lineage = candidate;
        break;
      }
    }
    AuditReport report = BuildAuditReport(source, lineage, num_attributes);
    if (truncation.truncated) {
      report.truncated = true;
      report.truncation_reason =
          std::string(TruncationReasonToString(truncation.reason)) +
          (truncation.detail.empty() ? "" : ": " + truncation.detail);
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace

Result<std::vector<AuditReport>> AuditFromSnapshot(
    const std::string& snapshot_path, const Dataset& leaked_output,
    const TreePattern& pattern, size_t num_attributes, int num_threads,
    const BacktraceOptions& options) {
  PEBBLE_RETURN_NOT_OK(ValidateTreePattern(pattern));
  PEBBLE_RETURN_NOT_OK(ValidateBacktraceOptions(options));
  auto loaded = LoadProvenanceStoreWithIndex(snapshot_path);
  if (!loaded.ok()) {
    return loaded.status().WithContext("audit aborted");
  }
  LoadedProvenance provenance = std::move(loaded).value();
  return AuditStore(*provenance.store, provenance.index.get(), leaked_output,
                    pattern, num_attributes, num_threads, options);
}

Result<std::vector<AuditReport>> AuditFromWal(
    const std::string& wal_dir, uint64_t through, const Dataset& leaked_output,
    const TreePattern& pattern, size_t num_attributes, int num_threads,
    const BacktraceOptions& options) {
  PEBBLE_RETURN_NOT_OK(ValidateTreePattern(pattern));
  PEBBLE_RETURN_NOT_OK(ValidateBacktraceOptions(options));
  auto recovered = RecoverStoreThrough(wal_dir, through);
  if (!recovered.ok()) {
    return recovered.status().WithContext("audit aborted");
  }
  return AuditStore(*recovered->store, /*index=*/nullptr, leaked_output,
                    pattern, num_attributes, num_threads, options);
}

std::string AuditReport::ToString() const {
  std::string out = "audit report for source " + std::to_string(scan_oid) +
                    ": " + std::to_string(items.size()) +
                    " affected items\n";
  if (truncated) {
    out += "  TRUNCATED (" + truncation_reason +
           "): counts below are lower bounds\n";
  }
  out += "  values a lineage solution must report leaked: " +
         std::to_string(lineage_reported_values) + "\n";
  out += "  values actually leaked (Pebble):              " +
         std::to_string(pebble_leaked_values) + "\n";
  out += "  influencing-only values (reconstruction risk): " +
         std::to_string(influencing_values) + "\n";
  for (const AuditItem& item : items) {
    out += "  item " + std::to_string(item.id) + ": leaked {";
    for (size_t i = 0; i < item.leaked_attributes.size(); ++i) {
      if (i > 0) out += ", ";
      out += item.leaked_attributes[i];
    }
    out += "} influenced {";
    for (size_t i = 0; i < item.influenced_attributes.size(); ++i) {
      if (i > 0) out += ", ";
      out += item.influenced_attributes[i];
    }
    out += "}\n";
  }
  return out;
}

}  // namespace pebble
