#include "usecases/audit.h"

namespace pebble {

AuditReport BuildAuditReport(const SourceProvenance& structural,
                             const SourceLineage& lineage,
                             size_t num_attributes) {
  AuditReport report;
  report.scan_oid = structural.scan_oid;
  report.lineage_reported_values =
      static_cast<uint64_t>(lineage.ids.size()) * num_attributes;

  for (const BacktraceEntry& entry : structural.items) {
    AuditItem item;
    item.id = entry.id;
    entry.tree.Visit([&](const Path& path, const BtNode& node) {
      // Report leaf-most information: a node with children is summarized by
      // its descendants.
      if (!node.children.empty()) return;
      if (node.contributing) {
        item.leaked_attributes.push_back(path.ToString());
      } else {
        item.influenced_attributes.push_back(path.ToString());
      }
    });
    report.pebble_leaked_values +=
        static_cast<uint64_t>(item.leaked_attributes.size());
    report.influencing_values +=
        static_cast<uint64_t>(item.influenced_attributes.size());
    report.items.push_back(std::move(item));
  }
  return report;
}

std::string AuditReport::ToString() const {
  std::string out = "audit report for source " + std::to_string(scan_oid) +
                    ": " + std::to_string(items.size()) +
                    " affected items\n";
  out += "  values a lineage solution must report leaked: " +
         std::to_string(lineage_reported_values) + "\n";
  out += "  values actually leaked (Pebble):              " +
         std::to_string(pebble_leaked_values) + "\n";
  out += "  influencing-only values (reconstruction risk): " +
         std::to_string(influencing_values) + "\n";
  for (const AuditItem& item : items) {
    out += "  item " + std::to_string(item.id) + ": leaked {";
    for (size_t i = 0; i < item.leaked_attributes.size(); ++i) {
      if (i > 0) out += ", ";
      out += item.leaked_attributes[i];
    }
    out += "} influenced {";
    for (size_t i = 0; i < item.influenced_attributes.size(); ++i) {
      if (i > 0) out += ", ";
      out += item.influenced_attributes[i];
    }
    out += "}\n";
  }
  return out;
}

}  // namespace pebble
