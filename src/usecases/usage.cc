#include "usecases/usage.h"

#include <algorithm>
#include <set>

namespace pebble {

void UsageAnalyzer::AddQueryResult(
    const std::vector<SourceProvenance>& sources) {
  for (const SourceProvenance& source : sources) {
    for (const BacktraceEntry& entry : source.items) {
      ItemUsage& item = usage_[{source.scan_oid, entry.id}];
      item.tuple_count += 1;
      // Per top-level attribute: contributing if any node in its subtree
      // contributes; influencing if it is only accessed.
      std::set<std::string> contributing_attrs;
      for (const BtNode& child : entry.tree.root().children) {
        if (child.key.is_position()) continue;
        // A subtree contributes if any node in it has c = true.
        bool contributes = false;
        std::vector<const BtNode*> stack = {&child};
        while (!stack.empty()) {
          const BtNode* n = stack.back();
          stack.pop_back();
          if (n->contributing) {
            contributes = true;
            break;
          }
          for (const BtNode& c : n->children) {
            stack.push_back(&c);
          }
        }
        AttrUsage& attr = item.attrs[child.key.attr];
        if (contributes) {
          attr.contributing += 1;
          contributing_attrs.insert(child.key.attr);
        } else {
          attr.influencing += 1;
        }
      }
      // Co-usage pairs of contributing attributes.
      for (auto it1 = contributing_attrs.begin();
           it1 != contributing_attrs.end(); ++it1) {
        for (auto it2 = std::next(it1); it2 != contributing_attrs.end();
             ++it2) {
          co_usage_[{source.scan_oid, {*it1, *it2}}] += 1;
        }
      }
    }
  }
}

const UsageAnalyzer::ItemUsage* UsageAnalyzer::Find(int scan_oid,
                                                    int64_t id) const {
  auto it = usage_.find({scan_oid, id});
  return it == usage_.end() ? nullptr : &it->second;
}

UsageAnalyzer::Heatmap UsageAnalyzer::BuildHeatmap(
    int scan_oid, const std::vector<int64_t>& ids,
    const TypePtr& schema) const {
  Heatmap map;
  for (const FieldType& f : schema->fields()) {
    map.attributes.push_back(f.name);
  }
  for (int64_t id : ids) {
    Heatmap::Row row;
    row.id = id;
    row.counts.assign(map.attributes.size(), 0);
    row.influencing_only.assign(map.attributes.size(), false);
    if (const ItemUsage* item = Find(scan_oid, id)) {
      row.tuple_count = item->tuple_count;
      for (size_t a = 0; a < map.attributes.size(); ++a) {
        auto it = item->attrs.find(map.attributes[a]);
        if (it != item->attrs.end()) {
          row.counts[a] = it->second.total();
          row.influencing_only[a] =
              it->second.contributing == 0 && it->second.influencing > 0;
        }
      }
    }
    map.rows.push_back(std::move(row));
  }
  return map;
}

std::string UsageAnalyzer::Heatmap::ToString() const {
  std::string out = "item      tuple";
  for (const std::string& attr : attributes) {
    out += " " + (attr.size() > 8 ? attr.substr(0, 8) : attr);
  }
  out += "\n";
  for (const Row& row : rows) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%-9lld %5d",
                  static_cast<long long>(row.id), row.tuple_count);
    out += buf;
    for (size_t a = 0; a < row.counts.size(); ++a) {
      std::string cell;
      if (row.counts[a] == 0) {
        cell = ".";
      } else if (row.influencing_only[a]) {
        cell = "~" + std::to_string(row.counts[a]);
      } else {
        cell = std::to_string(row.counts[a]);
      }
      size_t width = std::max<size_t>(
          attributes[a].size() > 8 ? 8 : attributes[a].size(), 1);
      out += " ";
      out += cell;
      for (size_t pad = cell.size(); pad < width; ++pad) {
        out += " ";
      }
    }
    out += "\n";
  }
  return out;
}

std::vector<UsageAnalyzer::AttrStats> UsageAnalyzer::AttributeStats(
    int scan_oid, const TypePtr& schema) const {
  std::vector<AttrStats> stats;
  for (const FieldType& f : schema->fields()) {
    stats.push_back(AttrStats{f.name, 0, 0});
  }
  for (const auto& [key, item] : usage_) {
    if (key.first != scan_oid) continue;
    for (AttrStats& s : stats) {
      auto it = item.attrs.find(s.attribute);
      if (it != item.attrs.end()) {
        s.contributing += it->second.contributing;
        s.influencing += it->second.influencing;
      }
    }
  }
  return stats;
}

std::vector<std::pair<std::pair<std::string, std::string>, int>>
UsageAnalyzer::CoUsagePairs(int scan_oid) const {
  std::vector<std::pair<std::pair<std::string, std::string>, int>> out;
  for (const auto& [key, count] : co_usage_) {
    if (key.first == scan_oid) {
      out.push_back({key.second, count});
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace pebble
