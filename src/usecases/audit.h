// GDPR-style auditing (paper Secs. 1, 7.3.5): given the structural
// provenance of a leaked query workload, reports which top-level items are
// affected and, per item, which attributes were actually exposed
// (contributing) versus merely accessed (influencing — reconstruction-attack
// risk), and contrasts that with what a tuple-level lineage solution or a
// Lipstick-style solution would report.

#ifndef PEBBLE_USECASES_AUDIT_H_
#define PEBBLE_USECASES_AUDIT_H_

#include <string>
#include <vector>

#include "baselines/titian.h"
#include "core/backtrace.h"
#include "core/tree_pattern.h"

namespace pebble {

/// Audit finding for one top-level input item.
struct AuditItem {
  int64_t id = -1;
  /// Attribute paths whose values are exposed in the leaked result.
  std::vector<std::string> leaked_attributes;
  /// Attribute paths accessed during processing but not exposed; relevant
  /// for reconstruction-attack risk assessment.
  std::vector<std::string> influenced_attributes;
};

/// Audit result over one source dataset.
struct AuditReport {
  int scan_oid = -1;
  std::vector<AuditItem> items;

  /// Number of attribute values a tuple-level lineage solution (Titian,
  /// PROVision) would have to report as leaked: every attribute of every
  /// lineage item (over-reporting).
  uint64_t lineage_reported_values = 0;
  /// Attribute values Pebble reports as actually leaked.
  uint64_t pebble_leaked_values = 0;
  /// Influencing-only values that a Lipstick-style tracer misses.
  uint64_t influencing_values = 0;

  /// Set when the underlying query ran with resource limits and tripped one
  /// (DESIGN.md §9): the report is a sound lower bound — every listed item
  /// and attribute is genuinely affected, but more may exist.
  bool truncated = false;
  /// Human-readable reason + trip detail when truncated.
  std::string truncation_reason;

  std::string ToString() const;
};

/// Builds the audit report for one source from merged structural provenance
/// and, for comparison, plain lineage. `num_attributes` is the width of
/// the source schema (used for the lineage over-reporting count).
AuditReport BuildAuditReport(const SourceProvenance& structural,
                             const SourceLineage& lineage,
                             size_t num_attributes);

/// Offline audit for the decoupled workflow: the pipeline ran earlier; its
/// provenance was persisted with SaveProvenanceStore. Reloads the snapshot
/// at `snapshot_path` (checksummed + validated), matches `pattern` on the
/// leaked result dataset, backtraces, and builds one report per source.
/// When the snapshot carries a persisted backtrace index ("btindex"
/// segment) the tracer uses it directly instead of rebuilding id-table
/// lookups; index-less snapshots audit identically via the rebuild path.
/// Any failure (missing file, corrupt snapshot, bad pattern) propagates as
/// a Status with its original code and the snapshot path in the message.
/// `options` bounds the query (deadline / cancellation / visit caps); on a
/// limit trip every report carries `truncated = true` with the reason —
/// lower-bound semantics, not an error.
Result<std::vector<AuditReport>> AuditFromSnapshot(
    const std::string& snapshot_path, const Dataset& leaked_output,
    const TreePattern& pattern, size_t num_attributes, int num_threads = 2,
    const BacktraceOptions& options = BacktraceOptions());

/// Point-in-time audit against a provenance WAL directory: recovers the
/// store replaying only segments with sequence <= `through`
/// (RecoverStoreThrough), then audits `leaked_output` against that state.
/// With the writer Rotate()ing between pipeline runs, `through` selects
/// which run's provenance the audit sees — "what had leaked as of run k".
Result<std::vector<AuditReport>> AuditFromWal(
    const std::string& wal_dir, uint64_t through, const Dataset& leaked_output,
    const TreePattern& pattern, size_t num_attributes, int num_threads = 2,
    const BacktraceOptions& options = BacktraceOptions());

}  // namespace pebble

#endif  // PEBBLE_USECASES_AUDIT_H_
