// Structural provenance model (paper Sec. 4.3) and its lightweight capture
// representation (Sec. 5.1, Def. 5.1, Tab. 6).
//
// Lightweight operator provenance P = <oid, type, I, M, P> records, per
// operator:
//   - I: per input, a reference to the preceding operator and the paths it
//        *accesses* (A), once, at schema level;
//   - M: the path *manipulations* (input path -> output path), once, at
//        schema level, with concrete collection positions replaced by the
//        "[pos]" placeholder;
//   - P: an id association table whose shape depends on the operator type
//        (Tab. 6), linking top-level input item ids to output item ids.
//
// The non-lightweight, per-item model of Sec. 4.3 (result data item
// provenance rho = <r, I, M>) is also representable here (ItemProvenance);
// it is used by the capture-mode ablation and the Lipstick-style baseline.

#ifndef PEBBLE_CORE_PROVENANCE_MODEL_H_
#define PEBBLE_CORE_PROVENANCE_MODEL_H_

#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <numeric>
#include <string>
#include <vector>

#include "nested/path.h"

namespace pebble {

/// Operator types of the supported algebra (Sec. 5).
enum class OpType {
  kScan,
  kFilter,
  kSelect,
  kMap,
  kJoin,
  kUnion,
  kFlatten,
  kGroupAggregate,  // grouping + aggregation/nesting (paper Tab. 5 last rows)
};

const char* OpTypeToString(OpType type);

/// Absent id (e.g. the non-originating side of a union row).
inline constexpr int64_t kNoId = -1;

/// Id association rows (Tab. 6). One flavor per operator family.
struct UnaryIdRow {
  int64_t in;
  int64_t out;
};

struct BinaryIdRow {
  int64_t in1;  // kNoId when the row came from input 2 of a union
  int64_t in2;  // kNoId when the row came from input 1 of a union
  int64_t out;
};

struct FlattenIdRow {
  int64_t in;
  int32_t pos;  // 1-based position of the unnested element in the source
  int64_t out;
};

struct AggIdRow {
  // Input ids in collect order: the position (1-based index) of an input id
  // equals the position of any nested item the aggregation produced from it.
  std::vector<int64_t> ins;
  int64_t out;
};

/// Borrowed view of a contiguous run of ids (one agg row's inputs).
struct IdSpan {
  const int64_t* ptr = nullptr;
  size_t len = 0;

  const int64_t* begin() const { return ptr; }
  const int64_t* end() const { return ptr + len; }
  int64_t operator[](size_t i) const { return ptr[i]; }
  size_t size() const { return len; }
  bool empty() const { return len == 0; }
};

// --------------------------------------------------------------------------
// Columnar (SoA) id tables. Ids live in flat per-column vectors so capture
// bulk-moves staged per-task columns in (no per-row push_back of structs)
// and readers scan contiguous arrays. The row structs above remain the
// value types of a row-oriented compatibility API: push_back/assign/
// operator[] and value-returning iteration keep existing call sites
// working, while hot paths use the *_col() accessors and AppendStage().
// --------------------------------------------------------------------------

namespace internal {

/// Input-iterator shim over a table with `Row operator[](size_t) const`.
template <typename Table, typename Row>
class RowIterator {
 public:
  using iterator_category = std::input_iterator_tag;
  using value_type = Row;
  using difference_type = std::ptrdiff_t;
  using pointer = const Row*;
  using reference = Row;

  RowIterator(const Table* table, size_t i) : table_(table), i_(i) {}
  Row operator*() const { return (*table_)[i_]; }
  RowIterator& operator++() {
    ++i_;
    return *this;
  }
  bool operator==(const RowIterator& other) const { return i_ == other.i_; }
  bool operator!=(const RowIterator& other) const { return i_ != other.i_; }

 private:
  const Table* table_;
  size_t i_;
};

}  // namespace internal

class UnaryIdTable {
 public:
  using const_iterator = internal::RowIterator<UnaryIdTable, UnaryIdRow>;

  UnaryIdTable() = default;
  UnaryIdTable(std::initializer_list<UnaryIdRow> rows) { AssignRows(rows); }
  UnaryIdTable& operator=(std::initializer_list<UnaryIdRow> rows) {
    clear();
    AssignRows(rows);
    return *this;
  }

  size_t size() const { return out_.size(); }
  bool empty() const { return out_.empty(); }
  void clear() {
    in_.clear();
    out_.clear();
  }
  void reserve(size_t n) {
    in_.reserve(n);
    out_.reserve(n);
  }
  void push_back(const UnaryIdRow& r) {
    in_.push_back(r.in);
    out_.push_back(r.out);
  }
  void assign(size_t n, const UnaryIdRow& r) {
    in_.assign(n, r.in);
    out_.assign(n, r.out);
  }
  UnaryIdRow operator[](size_t i) const { return {in_[i], out_[i]}; }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size()}; }

  const std::vector<int64_t>& in_col() const { return in_; }
  const std::vector<int64_t>& out_col() const { return out_; }

  /// Appends another table's rows after this table's, keeping the other
  /// table's (arbitrary) out ids. Used when merging stores captured over
  /// separate micro-batch runs; AppendStage assumes dense out ids and is
  /// the capture-commit path.
  void Append(const UnaryIdTable& other) {
    in_.insert(in_.end(), other.in_.begin(), other.in_.end());
    out_.insert(out_.end(), other.out_.begin(), other.out_.end());
  }

  /// Bulk commit of one task's staged in-id column; out ids are the dense
  /// range [first_out, first_out + in.size()).
  void AppendStage(std::vector<int64_t>&& in, int64_t first_out) {
    size_t n = in.size();
    if (in_.empty()) {
      in_ = std::move(in);
    } else {
      in_.insert(in_.end(), in.begin(), in.end());
    }
    size_t start = out_.size();
    out_.resize(start + n);
    std::iota(out_.begin() + start, out_.end(), first_out);
  }

 private:
  void AssignRows(std::initializer_list<UnaryIdRow> rows) {
    reserve(rows.size());
    for (const UnaryIdRow& r : rows) push_back(r);
  }

  std::vector<int64_t> in_;
  std::vector<int64_t> out_;
};

class BinaryIdTable {
 public:
  using const_iterator = internal::RowIterator<BinaryIdTable, BinaryIdRow>;

  BinaryIdTable() = default;
  BinaryIdTable(std::initializer_list<BinaryIdRow> rows) { AssignRows(rows); }
  BinaryIdTable& operator=(std::initializer_list<BinaryIdRow> rows) {
    clear();
    AssignRows(rows);
    return *this;
  }

  size_t size() const { return out_.size(); }
  bool empty() const { return out_.empty(); }
  void clear() {
    in1_.clear();
    in2_.clear();
    out_.clear();
  }
  void reserve(size_t n) {
    in1_.reserve(n);
    in2_.reserve(n);
    out_.reserve(n);
  }
  void push_back(const BinaryIdRow& r) {
    in1_.push_back(r.in1);
    in2_.push_back(r.in2);
    out_.push_back(r.out);
  }
  void assign(size_t n, const BinaryIdRow& r) {
    in1_.assign(n, r.in1);
    in2_.assign(n, r.in2);
    out_.assign(n, r.out);
  }
  BinaryIdRow operator[](size_t i) const { return {in1_[i], in2_[i], out_[i]}; }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size()}; }

  const std::vector<int64_t>& in1_col() const { return in1_; }
  const std::vector<int64_t>& in2_col() const { return in2_; }
  const std::vector<int64_t>& out_col() const { return out_; }

  /// Appends another table's rows, keeping their out ids (see
  /// UnaryIdTable::Append).
  void Append(const BinaryIdTable& other) {
    in1_.insert(in1_.end(), other.in1_.begin(), other.in1_.end());
    in2_.insert(in2_.end(), other.in2_.begin(), other.in2_.end());
    out_.insert(out_.end(), other.out_.begin(), other.out_.end());
  }

  /// Bulk commit of one task's staged columns (equal lengths); out ids are
  /// [first_out, first_out + n).
  void AppendStage(std::vector<int64_t>&& in1, std::vector<int64_t>&& in2,
                   int64_t first_out) {
    size_t n = in1.size();
    if (in1_.empty()) {
      in1_ = std::move(in1);
      in2_ = std::move(in2);
    } else {
      in1_.insert(in1_.end(), in1.begin(), in1.end());
      in2_.insert(in2_.end(), in2.begin(), in2.end());
    }
    size_t start = out_.size();
    out_.resize(start + n);
    std::iota(out_.begin() + start, out_.end(), first_out);
  }

 private:
  void AssignRows(std::initializer_list<BinaryIdRow> rows) {
    reserve(rows.size());
    for (const BinaryIdRow& r : rows) push_back(r);
  }

  std::vector<int64_t> in1_;
  std::vector<int64_t> in2_;
  std::vector<int64_t> out_;
};

class FlattenIdTable {
 public:
  using const_iterator = internal::RowIterator<FlattenIdTable, FlattenIdRow>;

  FlattenIdTable() = default;
  FlattenIdTable(std::initializer_list<FlattenIdRow> rows) {
    AssignRows(rows);
  }
  FlattenIdTable& operator=(std::initializer_list<FlattenIdRow> rows) {
    clear();
    AssignRows(rows);
    return *this;
  }

  size_t size() const { return out_.size(); }
  bool empty() const { return out_.empty(); }
  void clear() {
    in_.clear();
    pos_.clear();
    out_.clear();
  }
  void reserve(size_t n) {
    in_.reserve(n);
    pos_.reserve(n);
    out_.reserve(n);
  }
  void push_back(const FlattenIdRow& r) {
    in_.push_back(r.in);
    pos_.push_back(r.pos);
    out_.push_back(r.out);
  }
  FlattenIdRow operator[](size_t i) const { return {in_[i], pos_[i], out_[i]}; }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size()}; }

  const std::vector<int64_t>& in_col() const { return in_; }
  const std::vector<int32_t>& pos_col() const { return pos_; }
  const std::vector<int64_t>& out_col() const { return out_; }

  /// Appends another table's rows, keeping their out ids (see
  /// UnaryIdTable::Append).
  void Append(const FlattenIdTable& other) {
    in_.insert(in_.end(), other.in_.begin(), other.in_.end());
    pos_.insert(pos_.end(), other.pos_.begin(), other.pos_.end());
    out_.insert(out_.end(), other.out_.begin(), other.out_.end());
  }

  void AppendStage(std::vector<int64_t>&& in, std::vector<int32_t>&& pos,
                   int64_t first_out) {
    size_t n = in.size();
    if (in_.empty()) {
      in_ = std::move(in);
      pos_ = std::move(pos);
    } else {
      in_.insert(in_.end(), in.begin(), in.end());
      pos_.insert(pos_.end(), pos.begin(), pos.end());
    }
    size_t start = out_.size();
    out_.resize(start + n);
    std::iota(out_.begin() + start, out_.end(), first_out);
  }

 private:
  void AssignRows(std::initializer_list<FlattenIdRow> rows) {
    reserve(rows.size());
    for (const FlattenIdRow& r : rows) push_back(r);
  }

  std::vector<int64_t> in_;
  std::vector<int32_t> pos_;
  std::vector<int64_t> out_;
};

/// Agg rows are variable length: input ids live in one flat column, with an
/// exclusive-end offset per group (group i's ids are [ends_[i-1], ends_[i])).
class AggIdTable {
 public:
  using const_iterator = internal::RowIterator<AggIdTable, AggIdRow>;

  AggIdTable() = default;
  AggIdTable(std::initializer_list<AggIdRow> rows) { AssignRows(rows); }
  AggIdTable& operator=(std::initializer_list<AggIdRow> rows) {
    clear();
    AssignRows(rows);
    return *this;
  }

  size_t size() const { return out_.size(); }
  bool empty() const { return out_.empty(); }
  void clear() {
    ins_.clear();
    ends_.clear();
    out_.clear();
  }
  void reserve(size_t groups) {
    ends_.reserve(groups);
    out_.reserve(groups);
  }
  void push_back(const AggIdRow& r) {
    ins_.insert(ins_.end(), r.ins.begin(), r.ins.end());
    ends_.push_back(ins_.size());
    out_.push_back(r.out);
  }
  /// Row copy (materializes the ins vector); hot readers use ins()/out_col().
  AggIdRow operator[](size_t i) const {
    IdSpan span = ins(i);
    return {std::vector<int64_t>(span.begin(), span.end()), out_[i]};
  }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size()}; }

  /// Group i's input ids, without copying.
  IdSpan ins(size_t i) const {
    size_t begin = i == 0 ? 0 : ends_[i - 1];
    return {ins_.data() + begin, ends_[i] - begin};
  }
  const std::vector<int64_t>& out_col() const { return out_; }
  const std::vector<int64_t>& ins_col() const { return ins_; }
  /// Total input ids across all groups.
  size_t TotalIns() const { return ins_.size(); }

  /// Appends another table's groups, keeping their out ids (see
  /// UnaryIdTable::Append). End offsets are rebased past this table's ins.
  void Append(const AggIdTable& other) {
    size_t base = ins_.size();
    ins_.insert(ins_.end(), other.ins_.begin(), other.ins_.end());
    ends_.reserve(ends_.size() + other.ends_.size());
    for (size_t e : other.ends_) ends_.push_back(base + e);
    out_.insert(out_.end(), other.out_.begin(), other.out_.end());
  }

  /// Bulk commit of one task's staged groups: a flat in-id column plus one
  /// exclusive end offset per group; out ids are [first_out, first_out + n).
  void AppendStage(std::vector<int64_t>&& ins, std::vector<size_t>&& ends,
                   int64_t first_out) {
    size_t base = ins_.size();
    size_t n = ends.size();
    if (ins_.empty()) {
      ins_ = std::move(ins);
    } else {
      ins_.insert(ins_.end(), ins.begin(), ins.end());
    }
    ends_.reserve(ends_.size() + n);
    for (size_t e : ends) ends_.push_back(base + e);
    size_t start = out_.size();
    out_.resize(start + n);
    std::iota(out_.begin() + start, out_.end(), first_out);
  }

 private:
  void AssignRows(std::initializer_list<AggIdRow> rows) {
    reserve(rows.size());
    for (const AggIdRow& r : rows) push_back(r);
  }

  std::vector<int64_t> ins_;
  std::vector<size_t> ends_;  // exclusive end of each group's run in ins_
  std::vector<int64_t> out_;
};

/// A structural manipulation: the operator copies/moves the data reachable
/// under `in` (input schema) to `out` (output schema).
struct PathMapping {
  Path in;
  Path out;
  /// True for the <g_i, g_r> mappings of grouping keys in an aggregation.
  /// Backtracing treats these as access-like (they never make an input item
  /// part of the provenance on their own, cf. Ex. 6.6 where only the items
  /// whose nested positions are traced stay inProv).
  bool from_grouping = false;

  bool operator==(const PathMapping& other) const {
    return in == other.in && out == other.out &&
           from_grouping == other.from_grouping;
  }
};

/// Per-input access provenance at schema level (the <p, A> pairs of
/// Def. 5.1).
struct InputProvenance {
  /// oid of the operator producing this input (the reference p).
  int producer_oid = -1;
  /// Accessed paths A at schema level. Empty with accessed_undefined=false
  /// means "A = {}" (e.g. union); accessed_undefined=true means "A = ⊥"
  /// (map over an opaque lambda).
  std::vector<Path> accessed;
  bool accessed_undefined = false;
  /// Schema of this input. Backtracing uses it to (i) expand accessed
  /// struct paths into their path sets PS (Ex. 4.11), (ii) restrict join
  /// provenance trees to one side's schema, and (iii) reconstruct the
  /// conservative all-manipulated tree for opaque map operators.
  TypePtr input_schema;
};

/// Per-item provenance of the full (non-lightweight) model of Sec. 4.3:
/// rho = <r, I, M> materialized for one result item.
struct ItemInputProvenance {
  int64_t in_id = kNoId;
  int input_index = 0;               // which input dataset of the operator
  std::vector<Path> accessed;        // item-level paths (concrete positions)
  bool accessed_undefined = false;
};

struct ItemProvenance {
  int64_t out_id = kNoId;
  std::vector<ItemInputProvenance> inputs;
  std::vector<PathMapping> manipulations;  // item-level (concrete positions)
  bool manip_undefined = false;
};

/// Lightweight operator provenance P (Def. 5.1) plus, optionally, the
/// materialized full model (ablation / Lipstick baseline).
class OperatorProvenance {
 public:
  int oid = -1;
  OpType type = OpType::kScan;
  std::string label;

  std::vector<InputProvenance> inputs;
  std::vector<PathMapping> manipulations;
  bool manip_undefined = false;

  // Id association table; exactly one is populated, per Tab. 6. Columnar
  // (SoA) storage; see the table classes above.
  UnaryIdTable unary_ids;
  BinaryIdTable binary_ids;
  FlattenIdTable flatten_ids;
  AggIdTable agg_ids;

  // Full per-item model (only with CaptureMode::kFullModel).
  std::vector<ItemProvenance> item_provenance;

  /// Space used by the id association table only (what a lineage-only
  /// solution like Titian stores).
  uint64_t LineageBytes() const;

  /// Space used by the schema-level paths (A and M) on top of lineage.
  uint64_t StructuralExtraBytes() const;

  /// Space used by the materialized full model, if captured.
  uint64_t FullModelBytes() const;

  /// Number of id association rows.
  size_t NumIdRows() const;
};

uint64_t ApproxPathBytes(const Path& path);

}  // namespace pebble

#endif  // PEBBLE_CORE_PROVENANCE_MODEL_H_
