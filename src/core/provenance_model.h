// Structural provenance model (paper Sec. 4.3) and its lightweight capture
// representation (Sec. 5.1, Def. 5.1, Tab. 6).
//
// Lightweight operator provenance P = <oid, type, I, M, P> records, per
// operator:
//   - I: per input, a reference to the preceding operator and the paths it
//        *accesses* (A), once, at schema level;
//   - M: the path *manipulations* (input path -> output path), once, at
//        schema level, with concrete collection positions replaced by the
//        "[pos]" placeholder;
//   - P: an id association table whose shape depends on the operator type
//        (Tab. 6), linking top-level input item ids to output item ids.
//
// The non-lightweight, per-item model of Sec. 4.3 (result data item
// provenance rho = <r, I, M>) is also representable here (ItemProvenance);
// it is used by the capture-mode ablation and the Lipstick-style baseline.

#ifndef PEBBLE_CORE_PROVENANCE_MODEL_H_
#define PEBBLE_CORE_PROVENANCE_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nested/path.h"

namespace pebble {

/// Operator types of the supported algebra (Sec. 5).
enum class OpType {
  kScan,
  kFilter,
  kSelect,
  kMap,
  kJoin,
  kUnion,
  kFlatten,
  kGroupAggregate,  // grouping + aggregation/nesting (paper Tab. 5 last rows)
};

const char* OpTypeToString(OpType type);

/// Absent id (e.g. the non-originating side of a union row).
inline constexpr int64_t kNoId = -1;

/// Id association rows (Tab. 6). One flavor per operator family.
struct UnaryIdRow {
  int64_t in;
  int64_t out;
};

struct BinaryIdRow {
  int64_t in1;  // kNoId when the row came from input 2 of a union
  int64_t in2;  // kNoId when the row came from input 1 of a union
  int64_t out;
};

struct FlattenIdRow {
  int64_t in;
  int32_t pos;  // 1-based position of the unnested element in the source
  int64_t out;
};

struct AggIdRow {
  // Input ids in collect order: the position (1-based index) of an input id
  // equals the position of any nested item the aggregation produced from it.
  std::vector<int64_t> ins;
  int64_t out;
};

/// A structural manipulation: the operator copies/moves the data reachable
/// under `in` (input schema) to `out` (output schema).
struct PathMapping {
  Path in;
  Path out;
  /// True for the <g_i, g_r> mappings of grouping keys in an aggregation.
  /// Backtracing treats these as access-like (they never make an input item
  /// part of the provenance on their own, cf. Ex. 6.6 where only the items
  /// whose nested positions are traced stay inProv).
  bool from_grouping = false;

  bool operator==(const PathMapping& other) const {
    return in == other.in && out == other.out &&
           from_grouping == other.from_grouping;
  }
};

/// Per-input access provenance at schema level (the <p, A> pairs of
/// Def. 5.1).
struct InputProvenance {
  /// oid of the operator producing this input (the reference p).
  int producer_oid = -1;
  /// Accessed paths A at schema level. Empty with accessed_undefined=false
  /// means "A = {}" (e.g. union); accessed_undefined=true means "A = ⊥"
  /// (map over an opaque lambda).
  std::vector<Path> accessed;
  bool accessed_undefined = false;
  /// Schema of this input. Backtracing uses it to (i) expand accessed
  /// struct paths into their path sets PS (Ex. 4.11), (ii) restrict join
  /// provenance trees to one side's schema, and (iii) reconstruct the
  /// conservative all-manipulated tree for opaque map operators.
  TypePtr input_schema;
};

/// Per-item provenance of the full (non-lightweight) model of Sec. 4.3:
/// rho = <r, I, M> materialized for one result item.
struct ItemInputProvenance {
  int64_t in_id = kNoId;
  int input_index = 0;               // which input dataset of the operator
  std::vector<Path> accessed;        // item-level paths (concrete positions)
  bool accessed_undefined = false;
};

struct ItemProvenance {
  int64_t out_id = kNoId;
  std::vector<ItemInputProvenance> inputs;
  std::vector<PathMapping> manipulations;  // item-level (concrete positions)
  bool manip_undefined = false;
};

/// Lightweight operator provenance P (Def. 5.1) plus, optionally, the
/// materialized full model (ablation / Lipstick baseline).
class OperatorProvenance {
 public:
  int oid = -1;
  OpType type = OpType::kScan;
  std::string label;

  std::vector<InputProvenance> inputs;
  std::vector<PathMapping> manipulations;
  bool manip_undefined = false;

  // Id association table; exactly one is populated, per Tab. 6.
  std::vector<UnaryIdRow> unary_ids;
  std::vector<BinaryIdRow> binary_ids;
  std::vector<FlattenIdRow> flatten_ids;
  std::vector<AggIdRow> agg_ids;

  // Full per-item model (only with CaptureMode::kFullModel).
  std::vector<ItemProvenance> item_provenance;

  /// Space used by the id association table only (what a lineage-only
  /// solution like Titian stores).
  uint64_t LineageBytes() const;

  /// Space used by the schema-level paths (A and M) on top of lineage.
  uint64_t StructuralExtraBytes() const;

  /// Space used by the materialized full model, if captured.
  uint64_t FullModelBytes() const;

  /// Number of id association rows.
  size_t NumIdRows() const;
};

uint64_t ApproxPathBytes(const Path& path);

}  // namespace pebble

#endif  // PEBBLE_CORE_PROVENANCE_MODEL_H_
