// Oracle-comparable canonical export of backtracing results.
//
// The differential harness (src/testing) compares the engine's lazily
// backtraced provenance against an independent eager reference oracle. The
// two sides use different tree representations (BtNode's insertion-ordered
// children vs the oracle's key-ordered map) and different item identifiers
// (engine provenance ids vs the oracle's data ordinals), so the comparison
// happens over a canonical form:
//
//  - trees render to a canonical string with children sorted by their
//    rendered form, INCLUDING the root's own access/manipulation marks
//    (BacktraceTree::ToString omits them);
//  - engine provenance ids map to data ordinals — the item's 0-based
//    position in partition-concatenation order, which is the original data
//    order because Dataset::FromValues splits contiguous ranges.
//
// The canonical grammar (kept in sync with the oracle's independent
// renderer in src/testing/reference_tree.cc — change both or neither):
//
//   node     := key "|" ("c"|"i") "|A{" oids "}|M{" oids "}[" children "]"
//   key      := "$"            root
//             | "a:" attr      attribute child
//             | "p:" pos       positional child (placeholder renders p:0)
//   oids     := comma-joined ascending operator ids
//   children := comma-joined child renders, sorted lexicographically

#ifndef PEBBLE_CORE_PROVENANCE_EXPORT_H_
#define PEBBLE_CORE_PROVENANCE_EXPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/query.h"

namespace pebble {

/// Canonical render of one backtracing tree (see grammar above).
std::string CanonicalTreeString(const BacktraceTree& tree);

/// Maps provenance id -> data ordinal (0-based position in
/// partition-concatenation order). Rows without ids (kNoId) are skipped.
/// Fails on duplicate ids (would make the comparison ambiguous).
Result<std::map<int64_t, int64_t>> IdToOrdinalMap(const Dataset& data);

/// A provenance query result in canonical, id-free form.
struct CanonicalProvenance {
  /// Matched sink items: (output ordinal, canonical match tree), sorted by
  /// ordinal.
  std::vector<std::pair<int64_t, std::string>> matched;
  /// Backtraced source items per scan oid: data ordinal -> canonical tree.
  std::map<int, std::map<int64_t, std::string>> sources;

  bool operator==(const CanonicalProvenance& other) const {
    return matched == other.matched && sources == other.sources;
  }
  bool operator!=(const CanonicalProvenance& other) const {
    return !(*this == other);
  }

  /// Human-readable dump for mismatch reports.
  std::string ToString() const;
};

/// Converts a ProvenanceQueryResult to canonical form. `output` is the
/// id-annotated sink dataset the query ran on; `source_datasets` the
/// id-annotated scans (ExecutionResult::source_datasets).
Result<CanonicalProvenance> ExportCanonicalProvenance(
    const ProvenanceQueryResult& result, const Dataset& output,
    const std::map<int, Dataset>& source_datasets);

}  // namespace pebble

#endif  // PEBBLE_CORE_PROVENANCE_EXPORT_H_
