#include "core/provenance_store.h"

namespace pebble {

const char* CaptureModeToString(CaptureMode mode) {
  switch (mode) {
    case CaptureMode::kOff:
      return "off";
    case CaptureMode::kLineage:
      return "lineage";
    case CaptureMode::kStructural:
      return "structural";
    case CaptureMode::kFullModel:
      return "full-model";
  }
  return "unknown";
}

void ProvenanceStore::RegisterOperator(OperatorInfo info) {
  infos_[info.oid] = std::move(info);
}

OperatorProvenance* ProvenanceStore::Mutable(int oid) {
  OperatorProvenance& p = ops_[oid];
  p.oid = oid;
  auto it = infos_.find(oid);
  if (it != infos_.end()) {
    p.type = it->second.type;
    p.label = it->second.label;
  }
  return &p;
}

const OperatorProvenance* ProvenanceStore::Find(int oid) const {
  auto it = ops_.find(oid);
  return it == ops_.end() ? nullptr : &it->second;
}

const OperatorInfo* ProvenanceStore::FindInfo(int oid) const {
  auto it = infos_.find(oid);
  return it == infos_.end() ? nullptr : &it->second;
}

std::vector<int> ProvenanceStore::SourceOids() const {
  std::vector<int> out;
  for (const auto& [oid, info] : infos_) {
    if (info.type == OpType::kScan) out.push_back(oid);
  }
  return out;
}

std::vector<int> ProvenanceStore::AllOids() const {
  std::vector<int> out;
  out.reserve(infos_.size());
  for (const auto& [oid, info] : infos_) {
    out.push_back(oid);
  }
  return out;
}

uint64_t ProvenanceStore::TotalLineageBytes() const {
  uint64_t bytes = 0;
  for (const auto& [oid, p] : ops_) {
    bytes += p.LineageBytes();
  }
  return bytes;
}

uint64_t ProvenanceStore::TotalStructuralExtraBytes() const {
  uint64_t bytes = 0;
  for (const auto& [oid, p] : ops_) {
    bytes += p.StructuralExtraBytes();
  }
  return bytes;
}

uint64_t ProvenanceStore::TotalFullModelBytes() const {
  uint64_t bytes = 0;
  for (const auto& [oid, p] : ops_) {
    bytes += p.FullModelBytes();
  }
  return bytes;
}

uint64_t ProvenanceStore::TotalIdRows() const {
  uint64_t rows = 0;
  for (const auto& [oid, p] : ops_) {
    rows += p.NumIdRows();
  }
  return rows;
}

}  // namespace pebble
