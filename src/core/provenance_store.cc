#include "core/provenance_store.h"

#include <unordered_set>

namespace pebble {

const char* CaptureModeToString(CaptureMode mode) {
  switch (mode) {
    case CaptureMode::kOff:
      return "off";
    case CaptureMode::kLineage:
      return "lineage";
    case CaptureMode::kStructural:
      return "structural";
    case CaptureMode::kFullModel:
      return "full-model";
  }
  return "unknown";
}

uint64_t ProvenanceStore::NextUid() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void ProvenanceStore::RegisterOperator(OperatorInfo info) {
  infos_[info.oid] = std::move(info);
  BumpGeneration();
}

OperatorProvenance* ProvenanceStore::Mutable(int oid) {
  BumpGeneration();
  OperatorProvenance& p = ops_[oid];
  p.oid = oid;
  auto it = infos_.find(oid);
  if (it != infos_.end()) {
    p.type = it->second.type;
    p.label = it->second.label;
  }
  return &p;
}

const OperatorProvenance* ProvenanceStore::Find(int oid) const {
  auto it = ops_.find(oid);
  return it == ops_.end() ? nullptr : &it->second;
}

const OperatorInfo* ProvenanceStore::FindInfo(int oid) const {
  auto it = infos_.find(oid);
  return it == infos_.end() ? nullptr : &it->second;
}

std::vector<int> ProvenanceStore::SourceOids() const {
  std::vector<int> out;
  for (const auto& [oid, info] : infos_) {
    if (info.type == OpType::kScan) out.push_back(oid);
  }
  return out;
}

std::vector<int> ProvenanceStore::AllOids() const {
  std::vector<int> out;
  out.reserve(infos_.size());
  for (const auto& [oid, info] : infos_) {
    out.push_back(oid);
  }
  return out;
}

uint64_t ProvenanceStore::TotalLineageBytes() const {
  uint64_t bytes = 0;
  for (const auto& [oid, p] : ops_) {
    bytes += p.LineageBytes();
  }
  return bytes;
}

uint64_t ProvenanceStore::TotalStructuralExtraBytes() const {
  uint64_t bytes = 0;
  for (const auto& [oid, p] : ops_) {
    bytes += p.StructuralExtraBytes();
  }
  return bytes;
}

uint64_t ProvenanceStore::TotalFullModelBytes() const {
  uint64_t bytes = 0;
  for (const auto& [oid, p] : ops_) {
    bytes += p.FullModelBytes();
  }
  return bytes;
}

namespace {

std::string Describe(int oid, const OperatorProvenance& p) {
  return "operator " + std::to_string(oid) + " (" + OpTypeToString(p.type) +
         (p.label.empty() ? "" : ", '" + p.label + "'") + ")";
}

/// Appends all output ids of `p` to `out`.
void CollectOutIds(const OperatorProvenance& p, std::vector<int64_t>* out) {
  for (const UnaryIdRow& r : p.unary_ids) out->push_back(r.out);
  for (const BinaryIdRow& r : p.binary_ids) out->push_back(r.out);
  for (const FlattenIdRow& r : p.flatten_ids) out->push_back(r.out);
  for (const AggIdRow& r : p.agg_ids) out->push_back(r.out);
}

}  // namespace

Status ProvenanceStore::Validate() const {
  // Pass 0: topology well-formedness. Loaded snapshots go through this
  // gate, so a corrupted topology segment must not survive as a store with
  // dangling operator references.
  for (const auto& [oid, info] : infos_) {
    for (int input_oid : info.input_oids) {
      if (infos_.find(input_oid) == infos_.end()) {
        return Status::Internal(
            "operator " + std::to_string(oid) +
            " references unregistered input operator " +
            std::to_string(input_oid));
      }
    }
  }
  if (sink_oid_ >= 0 && infos_.find(sink_oid_) == infos_.end()) {
    return Status::Internal("sink operator " + std::to_string(sink_oid_) +
                            " is not registered");
  }

  // Pass 1: per-operator shape — the populated id-table flavor must match
  // the operator type — and output-id collection.
  std::map<int, std::unordered_set<int64_t>> out_ids;
  std::unordered_set<int64_t> all_out_ids;
  for (const auto& [oid, p] : ops_) {
    const bool unary = !p.unary_ids.empty();
    const bool binary = !p.binary_ids.empty();
    const bool flatten = !p.flatten_ids.empty();
    const bool agg = !p.agg_ids.empty();
    if (static_cast<int>(unary) + static_cast<int>(binary) +
            static_cast<int>(flatten) + static_cast<int>(agg) >
        1) {
      return Status::Internal(Describe(oid, p) +
                              " populates more than one id-table flavor");
    }
    bool flavor_ok = true;
    switch (p.type) {
      case OpType::kScan:
        flavor_ok = !unary && !binary && !flatten && !agg;
        break;
      case OpType::kFilter:
      case OpType::kSelect:
      case OpType::kMap:
        flavor_ok = !binary && !flatten && !agg;
        break;
      case OpType::kJoin:
      case OpType::kUnion:
        flavor_ok = !unary && !flatten && !agg;
        break;
      case OpType::kFlatten:
        flavor_ok = !unary && !binary && !agg;
        break;
      case OpType::kGroupAggregate:
        flavor_ok = !unary && !binary && !flatten;
        break;
    }
    if (!flavor_ok) {
      return Status::Internal(Describe(oid, p) +
                              " has an id table of the wrong flavor");
    }

    std::vector<int64_t> outs;
    CollectOutIds(p, &outs);
    std::unordered_set<int64_t>& seen = out_ids[oid];
    seen.reserve(outs.size());
    for (int64_t id : outs) {
      if (id <= 0) {
        return Status::Internal(Describe(oid, p) +
                                " has a non-positive output id " +
                                std::to_string(id));
      }
      if (!seen.insert(id).second) {
        return Status::Internal(Describe(oid, p) + " has duplicate id rows" +
                                " for output id " + std::to_string(id) +
                                " (double-committed task?)");
      }
      if (!all_out_ids.insert(id).second) {
        return Status::Internal(
            "output id " + std::to_string(id) + " of " + Describe(oid, p) +
            " collides with another operator's output (ids are run-global)");
      }
    }
  }

  // Pass 2: sink-to-source chain resolvability. Every referenced input id
  // must be an output id of the producing operator. Scans annotate their
  // rows directly and keep no table, so edges into scans are exempt.
  for (const auto& [oid, p] : ops_) {
    const OperatorInfo* info = FindInfo(oid);
    if (info == nullptr) {
      return Status::Internal(Describe(oid, p) +
                              " captured provenance but was never registered");
    }
    auto resolvable = [&](int input_index, int64_t in_id) -> Status {
      if (in_id <= 0) {
        return Status::Internal(Describe(oid, p) +
                                " references non-positive input id " +
                                std::to_string(in_id));
      }
      if (input_index >= static_cast<int>(info->input_oids.size())) {
        return Status::Internal(Describe(oid, p) + " references input #" +
                                std::to_string(input_index) +
                                " but has only " +
                                std::to_string(info->input_oids.size()) +
                                " inputs");
      }
      int producer = info->input_oids[static_cast<size_t>(input_index)];
      const OperatorInfo* producer_info = FindInfo(producer);
      if (producer_info != nullptr && producer_info->type == OpType::kScan) {
        return Status::OK();
      }
      auto it = out_ids.find(producer);
      if (it == out_ids.end() || it->second.count(in_id) == 0) {
        return Status::Internal(
            Describe(oid, p) + " references input id " +
            std::to_string(in_id) + " which operator " +
            std::to_string(producer) + " never produced (broken id chain)");
      }
      return Status::OK();
    };
    for (const UnaryIdRow& r : p.unary_ids) {
      PEBBLE_RETURN_NOT_OK(resolvable(0, r.in));
    }
    for (const FlattenIdRow& r : p.flatten_ids) {
      PEBBLE_RETURN_NOT_OK(resolvable(0, r.in));
    }
    for (const AggIdRow& r : p.agg_ids) {
      for (int64_t in : r.ins) {
        PEBBLE_RETURN_NOT_OK(resolvable(0, in));
      }
    }
    for (const BinaryIdRow& r : p.binary_ids) {
      if (p.type == OpType::kUnion) {
        if ((r.in1 == kNoId) == (r.in2 == kNoId)) {
          return Status::Internal(
              Describe(oid, p) + " union row for output id " +
              std::to_string(r.out) +
              " must reference exactly one input side");
        }
      } else if (r.in1 == kNoId || r.in2 == kNoId) {
        return Status::Internal(Describe(oid, p) + " join row for output id " +
                                std::to_string(r.out) +
                                " must reference both input sides");
      }
      if (r.in1 != kNoId) PEBBLE_RETURN_NOT_OK(resolvable(0, r.in1));
      if (r.in2 != kNoId) PEBBLE_RETURN_NOT_OK(resolvable(1, r.in2));
    }
  }
  return Status::OK();
}

namespace {

bool SameInfo(const OperatorInfo& a, const OperatorInfo& b) {
  return a.oid == b.oid && a.type == b.type && a.input_oids == b.input_oids &&
         a.label == b.label;
}

bool SameInputs(const std::vector<InputProvenance>& a,
                const std::vector<InputProvenance>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].producer_oid != b[i].producer_oid ||
        a[i].accessed != b[i].accessed ||
        a[i].accessed_undefined != b[i].accessed_undefined) {
      return false;
    }
    const bool a_schema = a[i].input_schema != nullptr;
    const bool b_schema = b[i].input_schema != nullptr;
    if (a_schema != b_schema) return false;
    if (a_schema &&
        a[i].input_schema->ToString() != b[i].input_schema->ToString()) {
      return false;
    }
  }
  return true;
}

bool HasPaths(const OperatorProvenance& p) {
  return !p.inputs.empty() || !p.manipulations.empty() || p.manip_undefined;
}

}  // namespace

Status ProvenanceStore::AppendFrom(const ProvenanceStore& other) {
  auto mismatch = [](const std::string& what) {
    return Status::InvalidArgument(
        "ProvenanceStore::AppendFrom: stores disagree on " + what);
  };
  // Any append attempt invalidates cached answers, even one that merges an
  // empty store (Mutable below bumps too; this covers the topology-only
  // path).
  BumpGeneration();
  if (infos_.empty() && ops_.empty()) {
    infos_ = other.infos_;
    mode_ = other.mode_;
    sink_oid_ = other.sink_oid_;
  } else {
    if (mode_ != other.mode_) return mismatch("capture mode");
    if (sink_oid_ != other.sink_oid_) return mismatch("sink oid");
    if (infos_.size() != other.infos_.size()) return mismatch("topology size");
    for (const auto& [oid, info] : other.infos_) {
      auto it = infos_.find(oid);
      if (it == infos_.end() || !SameInfo(it->second, info)) {
        return mismatch("topology of operator " + std::to_string(oid));
      }
    }
  }
  for (const auto& [oid, src] : other.ops_) {
    OperatorProvenance* dst = Mutable(oid);
    if (!HasPaths(*dst)) {
      dst->inputs = src.inputs;
      dst->manipulations = src.manipulations;
      dst->manip_undefined = src.manip_undefined;
    } else if (HasPaths(src) &&
               (!SameInputs(dst->inputs, src.inputs) ||
                dst->manipulations != src.manipulations ||
                dst->manip_undefined != src.manip_undefined)) {
      return mismatch("schema-level paths of operator " + std::to_string(oid));
    }
    dst->unary_ids.Append(src.unary_ids);
    dst->binary_ids.Append(src.binary_ids);
    dst->flatten_ids.Append(src.flatten_ids);
    dst->agg_ids.Append(src.agg_ids);
    dst->item_provenance.insert(dst->item_provenance.end(),
                                src.item_provenance.begin(),
                                src.item_provenance.end());
  }
  return Status::OK();
}

uint64_t ProvenanceStore::TotalIdRows() const {
  uint64_t rows = 0;
  for (const auto& [oid, p] : ops_) {
    rows += p.NumIdRows();
  }
  return rows;
}

}  // namespace pebble
