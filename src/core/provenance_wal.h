// Crash-safe streaming provenance capture: an append-only, segment-based
// write-ahead log of committed id-table chunks (DESIGN.md §11).
//
// A WalWriter implements ProvenanceCommitSink: hooked into the executor via
// ExecOptions::commit_sink it appends, at each serial commit point, the
// delta of id rows the operator just committed — framed as
// [u32 LE payload length | u32 LE CRC32 | payload] records inside segment
// files "segment-NNNNNN.wal". Payloads reuse the line-oriented record
// grammar of the snapshot formats (core/provenance_records.h), so a WAL is
// replayable into a ProvenanceStore with the exact bytes of the in-memory
// store it mirrored.
//
// Durability contract: with group_commit_bytes == 0 every commit point is
// flushed and fsynced before the executor acknowledges the operator, so a
// crash at any instant loses at most the single uncommitted tail record.
// With group commit, up to group_commit_bytes of acknowledged-but-buffered
// records can be lost on a crash — the recovered store is still always a
// Validate()-clean prefix of the committed history, never torn.
//
// Recovery (RecoverStore) loads the manifest-named v2 snapshot, replays the
// contiguous segment tail in sequence order, tolerates a torn final record
// in the NEWEST segment only (truncate-at-first-bad-CRC), and gates the
// result through ProvenanceStore::Validate(). Recovery never writes; double
// recovery is trivially idempotent. WalWriter::Open physically truncates a
// torn tail before opening a fresh segment, so the torn segment never ends
// up in the middle of the log.

#ifndef PEBBLE_CORE_PROVENANCE_WAL_H_
#define PEBBLE_CORE_PROVENANCE_WAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/commit_sink.h"
#include "core/provenance_records.h"
#include "core/provenance_store.h"

namespace pebble {

/// Tuning knobs of a WalWriter.
struct WalOptions {
  /// Rotate (seal + start a new segment) once the active segment exceeds
  /// this many bytes.
  uint64_t segment_bytes = 4ull << 20;
  /// Group-commit threshold: records are buffered until this many payload
  /// bytes are pending, then written and fsynced together. 0 = flush and
  /// fsync at every commit point (strongest durability, default). A run
  /// boundary (OnRunEnd) always flushes regardless.
  uint64_t group_commit_bytes = 0;
  /// fsync segment data and directory entries. Disable only in tests that
  /// don't simulate power loss (process crashes keep written bytes).
  bool sync = true;
};

/// What RecoverStore found while replaying a WAL directory.
struct WalRecoveryInfo {
  bool manifest_found = false;
  bool snapshot_loaded = false;
  /// Highest segment sequence folded into the snapshot (0 = none).
  uint64_t covered_seq = 0;
  /// Highest segment sequence present on disk (file or covered), i.e. the
  /// sequence floor for a new active segment.
  uint64_t max_segment_seq = 0;
  size_t segments_replayed = 0;
  size_t records_replayed = 0;
  size_t chunk_records = 0;
  /// Completed runs (run-end records) and started runs (run-begin).
  size_t runs_started = 0;
  size_t runs_completed = 0;
  /// True when the newest segment ended in a torn/corrupt record that was
  /// logically truncated.
  bool torn_tail = false;
  uint64_t torn_segment_seq = 0;
  /// Byte offset of the first bad byte in the torn segment (replay stopped
  /// there). Less than the segment header size means the header itself was
  /// torn and the whole segment was treated as empty.
  uint64_t torn_offset = 0;
  /// First top-level item id a future run can use without colliding with
  /// any id observed in the recovered store (max of the last run-end
  /// record's next_item_id and every id in the id tables, plus one).
  int64_t next_item_id = 1;
};

/// A recovered store plus replay facts and the writer-resume state.
struct RecoveredStore {
  std::unique_ptr<ProvenanceStore> store;
  WalRecoveryInfo info;
  /// Exact payload of the WAL's meta record (empty if none was replayed)
  /// and of each operator's paths record; WalWriter::Open uses these to
  /// enforce cross-run topology/path consistency without rewriting them.
  std::string meta_payload;
  std::map<int, std::string> paths_payloads;
};

/// Replays the provenance WAL in `dir` into a fresh store: manifest-named
/// snapshot first, then every segment with sequence > covered in contiguous
/// order. A missing directory, missing manifest or zero segments are all
/// fine (smaller prefixes of the same story). Torn final records are
/// tolerated in the newest segment only; a bad CRC in any sealed (non-
/// newest) segment, a sequence gap, or a parse failure of a CRC-valid
/// record is kIOError. The result always passed ProvenanceStore::Validate().
Result<RecoveredStore> RecoverStore(const std::string& dir);

/// As RecoverStore but ignores segments with sequence > `through`
/// (compaction folds everything up to the last sealed segment while the
/// active one keeps growing).
Result<RecoveredStore> RecoverStoreThrough(const std::string& dir,
                                           uint64_t through);

/// Append-only provenance WAL writer; implements the executor's commit-sink
/// seam. Thread-safe (one internal mutex); hooks arrive serially from the
/// executor but Compact() may be driven concurrently by a
/// BackgroundCompactor. On the first failed or injected write/sync the
/// writer poisons itself: every later call returns the original error, so
/// no record can ever land after a torn tail. Recovery-then-reopen is the
/// only way to continue after poisoning, exactly as after a real crash.
class WalWriter final : public ProvenanceCommitSink {
 public:
  /// Opens (creating if needed) the WAL at `dir`: recovers existing state,
  /// physically truncates a torn tail, and starts a NEW active segment —
  /// an existing segment is never appended to. When `recovered` is non-null
  /// the recovery result (store + info) is moved into it, letting callers
  /// resume a live store and thread info.next_item_id into the next run.
  static Result<std::unique_ptr<WalWriter>> Open(
      const std::string& dir, const WalOptions& options = {},
      RecoveredStore* recovered = nullptr);

  ~WalWriter() override;

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // ProvenanceCommitSink:
  Status OnRunBegin(const ProvenanceStore& store,
                    int64_t first_item_id) override;
  Status OnOperatorCommit(const ProvenanceStore& store, int oid) override;
  Status OnRunEnd(const ProvenanceStore& store, int64_t next_item_id) override;

  /// Writes and (when options.sync) fsyncs any buffered records.
  Status Flush();

  /// Flushes, seals the active segment and opens its successor.
  Status Rotate();

  /// Folds every sealed segment (and the previous snapshot) into a fresh
  /// v2 snapshot, atomically advances the manifest, then reclaims the
  /// folded files. Rotates first when the active segment holds records.
  /// Crash-safe across the whole window: until the manifest rename lands,
  /// recovery ignores the new snapshot; after it, stale segments are
  /// ignored and reclaimed by the next compaction. A compaction failure
  /// leaves the log fully intact (the writer is NOT poisoned).
  Status Compact();

  /// Flushes and closes the active segment. Further appends fail.
  Status Close();

  const std::string& dir() const { return dir_; }
  const WalOptions& options() const { return options_; }
  /// Bytes in sealed-but-not-yet-compacted segments (compaction trigger).
  uint64_t sealed_bytes() const;
  uint64_t records_appended() const;
  /// Records known flushed+fsynced (== records_appended after Flush).
  uint64_t records_durable() const;
  uint64_t active_segment_seq() const;
  uint64_t compactions() const;

 private:
  WalWriter(std::string dir, WalOptions options);

  Status BrokenLocked() const;
  /// Frames and buffers one record; evaluates the wal.append failpoint
  /// (keyed by record ordinal) and simulates a torn write when it fires.
  Status AppendRecordLocked(const std::string& payload);
  Status FlushLocked();
  Status WriteRawLocked(const void* data, size_t size);
  Status RotateLocked();
  Status OpenSegmentLocked(uint64_t seq);
  Status CompactLocked();

  const std::string dir_;
  const WalOptions options_;

  mutable std::mutex mu_;
  Status broken_;        // first failure; non-OK poisons the writer
  bool closed_ = false;
  int fd_ = -1;
  uint64_t active_seq_ = 0;
  uint64_t active_bytes_ = 0;
  /// Whether the active segment's directory entry (and header) have been
  /// fsynced; deferred to the first record flush so an empty segment costs
  /// no barriers.
  bool segment_entry_synced_ = false;
  std::string pending_;  // framed records not yet written to fd_
  uint64_t record_ordinal_ = 0;   // wal.append failpoint key
  uint64_t flush_ordinal_ = 0;    // wal.sync failpoint key
  uint64_t records_appended_ = 0;
  uint64_t records_durable_ = 0;
  uint64_t records_pending_ = 0;
  uint64_t covered_seq_ = 0;
  struct SealedSegment {
    uint64_t seq;
    uint64_t bytes;
  };
  std::vector<SealedSegment> sealed_;
  uint64_t sealed_bytes_ = 0;
  uint64_t compactions_ = 0;

  // Cross-run consistency state: the WAL's meta record (topology) and each
  // operator's paths record are written once and verified on later runs.
  std::string meta_payload_;
  std::map<int, std::string> paths_payloads_;
  // Per-operator end-of-table cursors marking what has been logged; reset
  // to zero at OnRunBegin (each executor run starts an empty store).
  std::map<int, provio::IdTableCursor> cursors_;
  uint64_t next_run_index_ = 1;
};

/// Incremental WAL replay for replication followers (DESIGN.md §14): the
/// streaming counterpart of RecoverStore. A follower receives raw segment
/// bytes from the primary in file order and feeds them here; every
/// complete, CRC-valid record is applied to the live store immediately and
/// an incomplete tail stays buffered until its remaining bytes arrive.
///
/// Contract:
///   - The first Feed() establishes the position: any segment with
///     sequence > the recovered covered_seq, at offset 0 (fresh segment,
///     header verified incrementally) or at a record-boundary offset past
///     the header (resuming a segment whose prefix local recovery already
///     applied — the follower truncates torn tails first, exactly like
///     WalWriter::Open, so its file size IS a record boundary).
///   - Later Feeds are strictly contiguous: same segment at
///     offset == position(), or seq+1 at offset 0 once the previous
///     segment ended on a record boundary. Advancing past a buffered
///     partial record is kIOError (a sealed segment never ends
///     mid-record).
///   - A complete record frame whose CRC does not match is kIOError
///     immediately: unlike end-of-recovery torn tails, a live stream can
///     only contain garbage if the primary crashed mid-append — the caller
///     must resynchronize (the primary truncates the torn tail when it
///     restarts, then instructs a reset).
///   - There is no in-place reset: after any discontinuity the follower
///     repairs its local WAL copy, re-runs RecoverStore, and builds a
///     fresh applier — the same code path as its own crash-and-restart.
/// The applier is single-threaded (the replication session thread); the
/// stores it hands out via Snapshot() are immutable copies safe to serve
/// concurrently.
class WalTailApplier {
 public:
  /// Starts from the result of RecoverStore over the follower's local WAL
  /// copy; `recovered.info` seeds the replay counters.
  explicit WalTailApplier(RecoveredStore recovered);

  /// Seeds the resume position to the local tail segment the recovery
  /// already replayed — `offset` bytes of segment `seq` — so seq() /
  /// applied_position() name the recovered WAL position even before the
  /// first Feed (a session that only ever heartbeats still reports where
  /// it stands). `offset` must be at/after the segment header and on a
  /// record boundary; the post-repair file size is both, by construction.
  /// Only callable before the first Feed.
  Status SeedTail(uint64_t seq, uint64_t offset);

  /// The segment the applier is currently consuming (0 = none yet).
  uint64_t seq() const { return seq_; }
  /// Raw bytes of that segment consumed so far (applied + buffered tail).
  uint64_t position() const { return position_; }
  /// Bytes applied through the last complete record (<= position()).
  uint64_t applied_position() const { return position_ - buffer_.size(); }

  /// Feeds `bytes` of segment `seq` starting at file offset `offset`.
  Status Feed(uint64_t seq, uint64_t offset, std::string_view bytes);

  /// Live replay counters (records/chunks/runs applied so far, plus the
  /// recovery-time fields of the seed).
  const WalRecoveryInfo& info() const { return info_; }

  /// First item id a future run may allocate without colliding.
  int64_t next_item_id() const;

  /// The live (mutable) store; valid until the next Feed call.
  const ProvenanceStore& store() const { return *recovered_.store; }

  /// Deep-copies the live store into a fresh immutable instance (empty-
  /// store AppendFrom), for publishing into a serving catalog.
  Result<std::unique_ptr<ProvenanceStore>> Snapshot() const;

 private:
  Status ApplyBuffered();

  RecoveredStore recovered_;
  WalRecoveryInfo info_;
  uint64_t seq_ = 0;
  uint64_t position_ = 0;
  bool header_checked_ = false;
  bool meta_seen_ = false;
  std::string buffer_;  // bytes past the last applied record boundary
  int64_t last_run_next_id_ = 0;
};

/// CRC32 of the first `limit` bytes of `path` (kIOError if the file is
/// shorter or unreadable). The replication subscribe handshake uses this to
/// detect content divergence between a follower's local segment prefix and
/// the primary's file without shipping the bytes.
Result<uint32_t> Crc32FilePrefix(const std::string& path, uint64_t limit);

/// Cheap structural view of a WAL directory for the replication shipper:
/// the manifest's covered sequence and snapshot name plus the segment
/// files present. Re-read every shipping iteration, so a concurrent
/// writer/compactor is observed promptly. No record bytes are touched.
struct WalShipState {
  bool manifest_found = false;
  uint64_t covered_seq = 0;
  std::string snapshot_file;  // name inside the dir, empty = none
  std::map<uint64_t, std::string> segments;  // seq -> full path
};
Result<WalShipState> ReadWalShipState(const std::string& dir);

/// Atomically (re)writes the WAL manifest — the replica's snapshot-
/// bootstrap commit point (it installs the shipped snapshot file first,
/// then this; a crash between the two leaves an orphan snapshot that
/// recovery ignores).
Status WriteWalManifest(const std::string& dir, uint64_t covered_seq,
                        const std::string& snapshot_file, bool sync);

// WAL layout constants, shared with the recovery/compaction code and the
// chaos tests (which corrupt files at byte granularity).
inline constexpr char kWalMagic[8] = {'P', 'B', 'L', 'W', 'A', 'L', '0', '1'};
inline constexpr uint32_t kWalVersion = 1;
/// magic + u32 version + u64 seq + u32 CRC32 of the preceding 20 bytes.
inline constexpr size_t kWalSegmentHeaderBytes = 24;
/// u32 payload length + u32 payload CRC32.
inline constexpr size_t kWalRecordHeaderBytes = 8;

/// Segment files present in `dir`, keyed by sequence number (parsed from
/// the file name). Unrelated files are ignored; a missing directory is an
/// empty map. Used by recovery, compaction and the chaos tests.
Result<std::map<uint64_t, std::string>> ListWalSegments(
    const std::string& dir);

/// "segment-NNNNNN.wal" inside `dir`.
std::string WalSegmentPath(const std::string& dir, uint64_t seq);
/// "MANIFEST" inside `dir`.
std::string WalManifestPath(const std::string& dir);
/// "snapshot-NNNNNN.pprov" inside `dir`.
std::string WalSnapshotPath(const std::string& dir, uint64_t seq);

}  // namespace pebble

#endif  // PEBBLE_CORE_PROVENANCE_WAL_H_
