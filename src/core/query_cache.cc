#include "core/query_cache.h"

#include <utility>

namespace pebble {

namespace {

// Nesting depth of ScopedDisable on this thread; > 0 suppresses the cache
// for queries issued here without racing concurrent users elsewhere.
thread_local int g_scoped_disable_depth = 0;

uint64_t MixFnv(uint64_t h, uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ull;
  return h;
}

size_t ApproxNodeBytes(const BtNode& node) {
  size_t bytes = sizeof(BtNode) + node.key.attr.size() +
                 sizeof(int) * (node.accessed_by.size() +
                                node.manipulated_by.size());
  for (const BtNode& child : node.children) bytes += ApproxNodeBytes(child);
  return bytes;
}

size_t ApproxStructureBytes(const BacktraceStructure& structure) {
  size_t bytes = sizeof(BacktraceEntry) * structure.capacity();
  for (const BacktraceEntry& entry : structure) {
    bytes += ApproxNodeBytes(entry.tree.root());
  }
  return bytes;
}

size_t ApproxResultBytes(const ProvenanceQueryResult& result) {
  size_t bytes = sizeof(ProvenanceQueryResult) +
                 ApproxStructureBytes(result.matched) +
                 result.truncation.detail.size();
  for (const SourceProvenance& source : result.sources) {
    bytes += sizeof(SourceProvenance) + source.source_name.size() +
             ApproxStructureBytes(source.items);
  }
  return bytes;
}

}  // namespace

QueryAnswerCache& QueryAnswerCache::Instance() {
  static QueryAnswerCache* cache = new QueryAnswerCache();
  return *cache;
}

std::string QueryAnswerCache::MakeKey(const ProvenanceStore& store,
                                      const Dataset& output,
                                      const TreePattern& pattern) {
  return std::to_string(store.uid()) + "@" +
         std::to_string(store.generation()) + "|" +
         std::to_string(DatasetFingerprint(output)) + "|" +
         pattern.CanonicalText();
}

uint64_t QueryAnswerCache::DatasetFingerprint(const Dataset& output) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  const std::vector<Partition>& parts = output.partitions();
  h = MixFnv(h, parts.size());
  for (const Partition& part : parts) {
    h = MixFnv(h, part.size());
    size_t i = 0;
    for (const Row& row : part) {
      h = MixFnv(h, static_cast<uint64_t>(row.id));
      // Value addresses pin the physical dataset, not just its ids; a few
      // per partition suffice and keep the fingerprint O(rows).
      if (i < 8) {
        h = MixFnv(h, reinterpret_cast<uintptr_t>(row.value.get()));
      }
      ++i;
    }
  }
  return h;
}

bool QueryAnswerCache::Lookup(const std::string& key,
                              const std::string& exact_pattern,
                              ProvenanceQueryResult* result) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it == by_key_.end() || it->second->exact_pattern != exact_pattern) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  *result = it->second->result;
  return true;
}

void QueryAnswerCache::Insert(const std::string& key,
                              const std::string& exact_pattern,
                              const ProvenanceQueryResult& result) {
  if (!enabled()) return;
  Entry entry;
  entry.key = key;
  entry.exact_pattern = exact_pattern;
  entry.result = result;
  entry.bytes = ApproxResultBytes(result) + key.size() + exact_pattern.size();

  std::lock_guard<std::mutex> lock(mu_);
  if (entry.bytes > limits_.max_bytes || limits_.max_entries == 0) return;
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    by_key_.erase(it);
  }
  bytes_ += entry.bytes;
  lru_.push_front(std::move(entry));
  by_key_[key] = lru_.begin();
  ++inserts_;
  EvictLockedUntilWithinLimits();
}

void QueryAnswerCache::EvictLockedUntilWithinLimits() {
  while (!lru_.empty() &&
         (lru_.size() > limits_.max_entries || bytes_ > limits_.max_bytes)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    by_key_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

void QueryAnswerCache::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  global_enabled_ = enabled;
}

bool QueryAnswerCache::enabled() const {
  if (g_scoped_disable_depth > 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return global_enabled_;
}

void QueryAnswerCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  by_key_.clear();
  bytes_ = 0;
}

void QueryAnswerCache::SetLimits(const Limits& limits) {
  std::lock_guard<std::mutex> lock(mu_);
  limits_ = limits;
  EvictLockedUntilWithinLimits();
}

QueryCacheStats QueryAnswerCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  QueryCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.inserts = inserts_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  return s;
}

void QueryAnswerCache::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_ = 0;
  misses_ = 0;
  inserts_ = 0;
  evictions_ = 0;
}

QueryAnswerCache::ScopedDisable::ScopedDisable() { ++g_scoped_disable_depth; }
QueryAnswerCache::ScopedDisable::~ScopedDisable() { --g_scoped_disable_depth; }

}  // namespace pebble
