#include "core/query_cache.h"

#include <utility>

namespace pebble {

namespace {

// Nesting depth of ScopedDisable on this thread; > 0 suppresses the cache
// for queries issued here without racing concurrent users elsewhere.
thread_local int g_scoped_disable_depth = 0;

// Ambient tenant of the calling thread ("" = default tenant).
thread_local std::string g_current_tenant;  // NOLINT(runtime/string)

uint64_t MixFnv(uint64_t h, uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ull;
  return h;
}

size_t ApproxNodeBytes(const BtNode& node) {
  size_t bytes = sizeof(BtNode) + node.key.attr.size() +
                 sizeof(int) * (node.accessed_by.size() +
                                node.manipulated_by.size());
  for (const BtNode& child : node.children) bytes += ApproxNodeBytes(child);
  return bytes;
}

size_t ApproxStructureBytes(const BacktraceStructure& structure) {
  size_t bytes = sizeof(BacktraceEntry) * structure.capacity();
  for (const BacktraceEntry& entry : structure) {
    bytes += ApproxNodeBytes(entry.tree.root());
  }
  return bytes;
}

size_t ApproxResultBytes(const ProvenanceQueryResult& result) {
  size_t bytes = sizeof(ProvenanceQueryResult) +
                 ApproxStructureBytes(result.matched) +
                 result.truncation.detail.size();
  for (const SourceProvenance& source : result.sources) {
    bytes += sizeof(SourceProvenance) + source.source_name.size() +
             ApproxStructureBytes(source.items);
  }
  return bytes;
}

}  // namespace

QueryAnswerCache& QueryAnswerCache::Instance() {
  static QueryAnswerCache* cache = new QueryAnswerCache();
  return *cache;
}

std::string QueryAnswerCache::MakeKey(const ProvenanceStore& store,
                                      const Dataset& output,
                                      const TreePattern& pattern) {
  return std::to_string(store.uid()) + "@" +
         std::to_string(store.generation()) + "|" +
         std::to_string(DatasetFingerprint(output)) + "|" +
         pattern.CanonicalText();
}

uint64_t QueryAnswerCache::DatasetFingerprint(const Dataset& output) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  const std::vector<Partition>& parts = output.partitions();
  h = MixFnv(h, parts.size());
  for (const Partition& part : parts) {
    h = MixFnv(h, part.size());
    size_t i = 0;
    for (const Row& row : part) {
      h = MixFnv(h, static_cast<uint64_t>(row.id));
      // Value addresses pin the physical dataset, not just its ids; a few
      // per partition suffice and keep the fingerprint O(rows).
      if (i < 8) {
        h = MixFnv(h, reinterpret_cast<uintptr_t>(row.value));
      }
      ++i;
    }
  }
  return h;
}

QueryAnswerCache::Shard& QueryAnswerCache::ShardForLocked(
    const std::string& tenant) {
  return shards_[tenant];
}

QueryAnswerCache::Limits QueryAnswerCache::ShardQuotaLocked(
    const std::string& tenant, const Shard& shard) const {
  if (shard.has_quota) return shard.quota;
  // The default tenant always spans the full global budget (single-tenant
  // embedders see pre-partitioning behavior); named tenants get the
  // configured default quota when one is set.
  if (!tenant.empty() && has_default_tenant_quota_) {
    return default_tenant_quota_;
  }
  return limits_;
}

bool QueryAnswerCache::Lookup(const std::string& key,
                              const std::string& exact_pattern,
                              ProvenanceQueryResult* result) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  Shard& shard = ShardForLocked(CurrentTenant());
  auto it = shard.by_key.find(key);
  if (it == shard.by_key.end() ||
      it->second->exact_pattern != exact_pattern) {
    ++misses_;
    ++shard.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++hits_;
  ++shard.hits;
  *result = it->second->result;
  return true;
}

void QueryAnswerCache::Insert(const std::string& key,
                              const std::string& exact_pattern,
                              const ProvenanceQueryResult& result) {
  if (!enabled()) return;
  Entry entry;
  entry.key = key;
  entry.exact_pattern = exact_pattern;
  entry.result = result;
  entry.bytes = ApproxResultBytes(result) + key.size() + exact_pattern.size();

  std::lock_guard<std::mutex> lock(mu_);
  const std::string& tenant = CurrentTenant();
  Shard& shard = ShardForLocked(tenant);
  const Limits quota = ShardQuotaLocked(tenant, shard);
  if (entry.bytes > quota.max_bytes || quota.max_entries == 0 ||
      entry.bytes > limits_.max_bytes || limits_.max_entries == 0) {
    return;
  }
  auto it = shard.by_key.find(key);
  if (it != shard.by_key.end()) {
    shard.bytes -= it->second->bytes;
    bytes_ -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.by_key.erase(it);
  }
  shard.bytes += entry.bytes;
  bytes_ += entry.bytes;
  shard.lru.push_front(std::move(entry));
  shard.by_key[key] = shard.lru.begin();
  ++inserts_;
  ++shard.inserts;
  EvictShardUntilWithinQuotaLocked(tenant, &shard);
  EvictGlobalBackstopLocked();
}

void QueryAnswerCache::EvictTailLocked(Shard* shard) {
  const Entry& victim = shard->lru.back();
  shard->bytes -= victim.bytes;
  bytes_ -= victim.bytes;
  shard->by_key.erase(victim.key);
  shard->lru.pop_back();
  ++evictions_;
  ++shard->evictions;
}

void QueryAnswerCache::EvictShardUntilWithinQuotaLocked(
    const std::string& tenant, Shard* shard) {
  const Limits quota = ShardQuotaLocked(tenant, *shard);
  while (!shard->lru.empty() && (shard->lru.size() > quota.max_entries ||
                                 shard->bytes > quota.max_bytes)) {
    EvictTailLocked(shard);
  }
}

void QueryAnswerCache::EvictGlobalBackstopLocked() {
  // The aggregate across shards must respect the process-wide limits no
  // matter how many tenants exist. Evict from the shard currently holding
  // the most bytes: the tenant putting the most pressure on the budget
  // pays, never a small warm tenant.
  while (TotalEntriesLocked() > limits_.max_entries ||
         bytes_ > limits_.max_bytes) {
    Shard* largest = nullptr;
    for (auto& [tenant, shard] : shards_) {
      if (shard.lru.empty()) continue;
      if (largest == nullptr || shard.bytes > largest->bytes) {
        largest = &shard;
      }
    }
    if (largest == nullptr) return;
    EvictTailLocked(largest);
  }
}

size_t QueryAnswerCache::TotalEntriesLocked() const {
  size_t n = 0;
  for (const auto& [tenant, shard] : shards_) n += shard.lru.size();
  return n;
}

void QueryAnswerCache::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  global_enabled_ = enabled;
}

bool QueryAnswerCache::enabled() const {
  if (g_scoped_disable_depth > 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return global_enabled_;
}

void QueryAnswerCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [tenant, shard] : shards_) {
    shard.lru.clear();
    shard.by_key.clear();
    shard.bytes = 0;
  }
  bytes_ = 0;
}

void QueryAnswerCache::SetLimits(const Limits& limits) {
  std::lock_guard<std::mutex> lock(mu_);
  limits_ = limits;
  for (auto& [tenant, shard] : shards_) {
    EvictShardUntilWithinQuotaLocked(tenant, &shard);
  }
  EvictGlobalBackstopLocked();
}

void QueryAnswerCache::SetTenantQuota(const std::string& tenant,
                                      const Limits& quota) {
  std::lock_guard<std::mutex> lock(mu_);
  Shard& shard = ShardForLocked(tenant);
  shard.has_quota = true;
  shard.quota = quota;
  EvictShardUntilWithinQuotaLocked(tenant, &shard);
}

void QueryAnswerCache::SetDefaultTenantQuota(const Limits& quota) {
  std::lock_guard<std::mutex> lock(mu_);
  has_default_tenant_quota_ = true;
  default_tenant_quota_ = quota;
  for (auto& [tenant, shard] : shards_) {
    EvictShardUntilWithinQuotaLocked(tenant, &shard);
  }
}

void QueryAnswerCache::ResetTenantQuotas() {
  std::lock_guard<std::mutex> lock(mu_);
  has_default_tenant_quota_ = false;
  for (auto& [tenant, shard] : shards_) shard.has_quota = false;
}

QueryCacheStats QueryAnswerCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  QueryCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.inserts = inserts_;
  s.evictions = evictions_;
  s.entries = TotalEntriesLocked();
  s.bytes = bytes_;
  return s;
}

QueryCacheStats QueryAnswerCache::tenant_stats(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  QueryCacheStats s;
  auto it = shards_.find(tenant);
  if (it == shards_.end()) return s;
  const Shard& shard = it->second;
  s.hits = shard.hits;
  s.misses = shard.misses;
  s.inserts = shard.inserts;
  s.evictions = shard.evictions;
  s.entries = shard.lru.size();
  s.bytes = shard.bytes;
  return s;
}

std::map<std::string, QueryCacheStats> QueryAnswerCache::all_tenant_stats()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, QueryCacheStats> out;
  for (const auto& [tenant, shard] : shards_) {
    QueryCacheStats s;
    s.hits = shard.hits;
    s.misses = shard.misses;
    s.inserts = shard.inserts;
    s.evictions = shard.evictions;
    s.entries = shard.lru.size();
    s.bytes = shard.bytes;
    out[tenant] = s;
  }
  return out;
}

void QueryAnswerCache::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_ = 0;
  misses_ = 0;
  inserts_ = 0;
  evictions_ = 0;
  for (auto& [tenant, shard] : shards_) {
    shard.hits = 0;
    shard.misses = 0;
    shard.inserts = 0;
    shard.evictions = 0;
  }
}

QueryAnswerCache::ScopedDisable::ScopedDisable() { ++g_scoped_disable_depth; }
QueryAnswerCache::ScopedDisable::~ScopedDisable() { --g_scoped_disable_depth; }

QueryAnswerCache::ScopedTenant::ScopedTenant(std::string tenant)
    : previous_(std::move(g_current_tenant)) {
  g_current_tenant = std::move(tenant);
}

QueryAnswerCache::ScopedTenant::~ScopedTenant() {
  g_current_tenant = std::move(previous_);
}

const std::string& QueryAnswerCache::CurrentTenant() {
  return g_current_tenant;
}

}  // namespace pebble
