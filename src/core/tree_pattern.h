// Tree-pattern queries over nested datasets (paper Sec. 6.1, Fig. 4).
//
// A tree pattern addresses combinations of nested items that are related by
// their structure: nodes name attributes, edges are parent-child or
// ancestor-descendant, nodes may carry value-equality predicates and
// occurrence-count constraints within their enclosing collection (the
// "[2,2]" box of Fig. 4). Matching a pattern against a dataset yields the
// backtracing structure that seeds the backtracing algorithm.

#ifndef PEBBLE_CORE_TREE_PATTERN_H_
#define PEBBLE_CORE_TREE_PATTERN_H_

#include <limits>
#include <string>
#include <vector>

#include "common/resource.h"
#include "core/backtrace_tree.h"
#include "engine/dataset.h"
#include "engine/expr.h"

namespace pebble {

/// One pattern node. Build with the static factories and chain the setters:
///   PatternNode::Attr("tweets").With(
///       PatternNode::Attr("text").Equals(Value::String("Hello World"))
///           .Count(2, 2))
class PatternNode {
 public:
  /// Node connected to its parent by a parent-child edge.
  static PatternNode Attr(std::string name);
  /// Node connected to its parent by an ancestor-descendant edge: the
  /// attribute may occur at any depth below the parent context.
  static PatternNode Descendant(std::string name);

  /// Requires the matched value (or collection element) to equal `v`.
  PatternNode&& Equals(ValuePtr v) &&;
  /// General comparison predicate against a constant (e.g. year > 2014).
  /// Values of a different kind than `v` (numerics aside) never match.
  PatternNode&& Where(CompareOp op, ValuePtr v) &&;
  /// Constrains how many elements of the enclosing collection context (or
  /// descendant occurrences) match this node: min <= count <= max.
  PatternNode&& Count(int min, int max) &&;
  /// Adds child pattern nodes.
  PatternNode&& With(PatternNode child) &&;

  // Lvalue mutators (used by the pattern parser; the rvalue chainers above
  // return a reference to *this, so `node = std::move(node).With(..)` would
  // self-move-assign).
  void SetEquals(ValuePtr v) { SetPredicate(CompareOp::kEq, std::move(v)); }
  void SetPredicate(CompareOp op, ValuePtr v) {
    predicate_op_ = op;
    predicate_value_ = std::move(v);
  }
  void SetCount(int min, int max) {
    min_count_ = min;
    max_count_ = max;
  }
  void AddChild(PatternNode child) { children_.push_back(std::move(child)); }

  const std::string& name() const { return name_; }
  bool is_descendant() const { return descendant_; }
  /// The equality-predicate constant, or nullptr if the node has no
  /// predicate or a non-equality one.
  const ValuePtr& equals() const {
    static const ValuePtr kNone = nullptr;
    return predicate_op_ == CompareOp::kEq ? predicate_value_ : kNone;
  }
  CompareOp predicate_op() const { return predicate_op_; }
  const ValuePtr& predicate_value() const { return predicate_value_; }
  /// True if `v` satisfies this node's predicate (vacuously true without
  /// one).
  bool SatisfiesPredicate(const Value& v) const;
  int min_count() const { return min_count_; }
  int max_count() const { return max_count_; }
  const std::vector<PatternNode>& children() const { return children_; }

  std::string ToString() const;

 private:
  PatternNode(std::string name, bool descendant)
      : name_(std::move(name)), descendant_(descendant) {}

  std::string name_;
  bool descendant_;
  CompareOp predicate_op_ = CompareOp::kEq;
  ValuePtr predicate_value_ = nullptr;  // nullptr <=> no predicate
  int min_count_ = 1;
  int max_count_ = std::numeric_limits<int>::max();
  std::vector<PatternNode> children_;
};

/// A tree pattern whose (implicit) root matches each top-level data item.
class TreePattern {
 public:
  explicit TreePattern(std::vector<PatternNode> roots)
      : roots_(std::move(roots)) {}

  /// Parses the compact textual pattern syntax; the Fig. 4 question reads
  ///   //id_str='lp', tweets(text='Hello World'[2,2])
  /// Grammar: conjuncts separated by ','; '//' prefixes descendant edges;
  /// '=' adds a value-equality predicate ('...', "...", integers, decimals,
  /// true/false); '[min,max]' ('*' = unbounded) adds a count constraint;
  /// '(...)' nests children.
  static Result<TreePattern> Parse(const std::string& text);

  const std::vector<PatternNode>& roots() const { return roots_; }

  /// Matches one data item. On a match, returns the backtracing tree
  /// containing the matched paths (all contributing); otherwise nullopt-like
  /// `matched=false`.
  struct ItemMatch {
    bool matched = false;
    BacktraceTree tree;
  };
  Result<ItemMatch> MatchItem(const Value& item) const;

  /// Matches all items of a (partitioned) dataset, in parallel over
  /// partitions when num_threads > 1. Returns the seed backtracing
  /// structure: one entry per matched top-level item.
  Result<BacktraceStructure> Match(const Dataset& data,
                                   int num_threads = 1) const;

  /// Governed variant: checks `deadline` and `cancel` every few rows. On a
  /// trip, matching stops and the entries matched so far are returned with
  /// `*truncated` set — partial seeds are sound (every entry is a real
  /// match), the caller reports lower-bound results (DESIGN.md §9).
  Result<BacktraceStructure> Match(const Dataset& data, int num_threads,
                                   const Deadline& deadline,
                                   const CancellationToken& cancel,
                                   bool* truncated) const;

  std::string ToString() const;

  /// Canonical, order-normalized text form: sibling nodes (conjuncts and
  /// nested children) render in sorted order instead of insertion order, so
  /// patterns that differ only in conjunct order serialize identically. The
  /// rendering is a pure function of the pattern (no addresses, no
  /// iteration-order dependence), hence stable across processes, and stays
  /// inside the Parse grammar: Parse(CanonicalText()) round-trips to a
  /// pattern with the same CanonicalText. This is the answer-cache key
  /// (core/query_cache.h).
  std::string CanonicalText() const;

 private:
  std::vector<PatternNode> roots_;
};

/// Rejects degenerate patterns with kInvalidArgument (context: the pattern
/// text): no root nodes, empty attribute names, negative or inverted count
/// constraints — checked recursively over all nodes.
Status ValidateTreePattern(const TreePattern& pattern);

}  // namespace pebble

#endif  // PEBBLE_CORE_TREE_PATTERN_H_
