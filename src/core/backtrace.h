// Backtracing algorithm (paper Sec. 6.3, Algorithms 1-4): traces a
// backtracing structure obtained on the pipeline result recursively back
// through the captured operator provenance to the source datasets.

#ifndef PEBBLE_CORE_BACKTRACE_H_
#define PEBBLE_CORE_BACKTRACE_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "core/backtrace_tree.h"
#include "core/provenance_store.h"

namespace pebble {

/// Prebuilt hash indexes over the id association tables of a store. The
/// backtracing join (Alg. 3 l.1) needs an out-id -> in-id(s) lookup per
/// operator; building these maps once and reusing them across provenance
/// questions amortizes the dominant per-query setup cost (the paper's
/// "optimize provenance querying" outlook). The index references the store
/// and must not outlive it.
class BacktraceIndex {
 public:
  struct BinaryEntry {
    int64_t in1;
    int64_t in2;
  };
  struct FlattenEntry {
    int64_t in;
    int32_t pos;
  };

  explicit BacktraceIndex(const ProvenanceStore& store);

  const std::unordered_map<int64_t, int64_t>* unary(int oid) const;
  const std::unordered_map<int64_t, BinaryEntry>* binary(int oid) const;
  const std::unordered_map<int64_t, FlattenEntry>* flatten(int oid) const;
  const std::unordered_map<int64_t, IdSpan>* agg(int oid) const;

 private:
  std::map<int, std::unordered_map<int64_t, int64_t>> unary_;
  std::map<int, std::unordered_map<int64_t, BinaryEntry>> binary_;
  std::map<int, std::unordered_map<int64_t, FlattenEntry>> flatten_;
  std::map<int, std::unordered_map<int64_t, IdSpan>> agg_;
};

/// Structural provenance arriving at one source (scan) dataset: for each
/// contributing top-level input item, the tree of contributing/influencing
/// attributes with their access/manipulation operator sets.
struct SourceProvenance {
  int scan_oid = -1;
  std::string source_name;
  BacktraceStructure items;
};

/// Walks the operator provenance backwards from the sink. Requires the
/// store to have been captured in kStructural or kFullModel mode for
/// structural results; in kLineage mode trees degrade to whole-item roots.
class Backtracer {
 public:
  /// `index` is optional; when provided (and built over the same store) the
  /// id-table lookups reuse it instead of hashing the tables per query.
  explicit Backtracer(const ProvenanceStore* store,
                      const BacktraceIndex* index = nullptr)
      : store_(store), index_(index) {}

  /// Traces `seed` (ids/trees on the sink's output, e.g. from tree-pattern
  /// matching) back to every source dataset. Alg. 1.
  Result<std::vector<SourceProvenance>> Backtrace(
      const BacktraceStructure& seed) const;

 private:
  Status BacktraceFrom(int oid, BacktraceStructure structure,
                       std::map<int, BacktraceStructure>* at_sources) const;

  Status BacktraceGenericUnary(const OperatorProvenance& prov,
                               const BacktraceStructure& structure,
                               std::map<int, BacktraceStructure>* at_sources)
      const;
  Status BacktraceMap(const OperatorProvenance& prov,
                      const BacktraceStructure& structure,
                      std::map<int, BacktraceStructure>* at_sources) const;
  Status BacktraceFlatten(const OperatorProvenance& prov,
                          const BacktraceStructure& structure,
                          std::map<int, BacktraceStructure>* at_sources) const;
  Status BacktraceBinary(const OperatorProvenance& prov,
                         const BacktraceStructure& structure,
                         std::map<int, BacktraceStructure>* at_sources) const;
  Status BacktraceAggregation(const OperatorProvenance& prov,
                              const BacktraceStructure& structure,
                              std::map<int, BacktraceStructure>* at_sources)
      const;

  const ProvenanceStore* store_;
  const BacktraceIndex* index_;
};

/// Expands an accessed path to the paths of its path set PS (Ex. 4.11):
/// struct-typed paths expand to their fields recursively; collection- and
/// constant-typed paths stay as they are. Used when recording access marks
/// in backtracing trees so that untraced sibling attributes (e.g. `name`
/// accessed by grouping on `user`) surface as influencing nodes.
std::vector<Path> ExpandAccessPath(const TypePtr& schema, const Path& path);

/// Builds the conservative "everything" tree over a schema: one node per
/// attribute (collection elements contribute their fields without
/// positions), all contributing. Used by map backtracing.
BacktraceTree BuildSchemaTree(const TypePtr& schema);

}  // namespace pebble

#endif  // PEBBLE_CORE_BACKTRACE_H_
