// Backtracing algorithm (paper Sec. 6.3, Algorithms 1-4): traces a
// backtracing structure obtained on the pipeline result recursively back
// through the captured operator provenance to the source datasets.

#ifndef PEBBLE_CORE_BACKTRACE_H_
#define PEBBLE_CORE_BACKTRACE_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/resource.h"
#include "core/backtrace_tree.h"
#include "core/provenance_store.h"

namespace pebble {

/// Resource limits on one backtracing query (DESIGN.md §9). Default
/// constructed = unlimited, which selects the exact legacy code path
/// (byte-identical results). Any active limit enables chunked tracing with
/// graceful degradation: on a trip, the provenance reconstructed so far is
/// returned with an explicit truncation record instead of an error.
struct BacktraceOptions {
  /// Wall-clock deadline over matching + tracing. Infinite by default.
  Deadline deadline;
  /// Cooperative cancellation of the query.
  CancellationToken cancel;
  /// Cap on backtracing-structure entries visited across all recursion
  /// levels (a proxy for tracing work and memory). 0 = unlimited.
  int64_t max_visited_nodes = 0;
  /// Cap on source items reported; tracing stops once the merged result
  /// reaches it. 0 = unlimited.
  int64_t max_results = 0;

  bool Unlimited() const {
    return !deadline.has_deadline() && !cancel.CanBeCancelled() &&
           max_visited_nodes == 0 && max_results == 0;
  }
};

/// Rejects nonsense limits (negative caps) with kInvalidArgument.
Status ValidateBacktraceOptions(const BacktraceOptions& options);

/// Which limit cut a degraded backtrace short.
enum class TruncationReason {
  kNone,
  kDeadline,
  kCancelled,
  kVisitLimit,
  kResultLimit,
};

const char* TruncationReasonToString(TruncationReason reason);

/// Degradation record of a governed backtrace: whether the result is
/// partial, why, and how far tracing got. A truncated result is sound but
/// incomplete — every reported source item is real provenance, but seed
/// entries beyond `seed_entries_traced` were not traced (lower bound
/// semantics; DESIGN.md §9).
struct BacktraceTruncation {
  bool truncated = false;
  TruncationReason reason = TruncationReason::kNone;
  /// Human-readable trip description (the governance status message).
  std::string detail;
  /// Structure entries visited across all recursion levels.
  uint64_t visited_nodes = 0;
  size_t seed_entries_total = 0;
  /// Seed entries whose tracing fully completed and is reflected in the
  /// result.
  size_t seed_entries_traced = 0;
};

/// Sorted row permutations of a store's id tables: for each operator and
/// populated id-table flavor, the table's row indices ordered by ascending
/// out id. This is the deserialized form of the "btindex" snapshot segment
/// (provenance_io.h) — cheap to persist, cheap to validate, and directly
/// usable for out-id lookup via binary search without rebuilding hash maps.
struct BacktraceIndexPerms {
  std::map<int, std::vector<uint32_t>> unary;
  std::map<int, std::vector<uint32_t>> binary;
  std::map<int, std::vector<uint32_t>> flatten;
  std::map<int, std::vector<uint32_t>> agg;

  bool empty() const {
    return unary.empty() && binary.empty() && flatten.empty() && agg.empty();
  }
};

/// Prebuilt indexes over the id association tables of a store. The
/// backtracing join (Alg. 3 l.1) needs an out-id -> in-id(s) lookup per
/// operator; building these once and reusing them across provenance
/// questions amortizes the dominant per-query setup cost (the paper's
/// "optimize provenance querying" outlook). Two backends share one lookup
/// interface: hash maps built by scanning the tables (the classic
/// in-process index) and sorted permutations loaded straight from a
/// snapshot's persisted index segment (binary search, no per-query
/// rebuild). The index references the store and must not outlive it.
class BacktraceIndex {
 public:
  struct BinaryEntry {
    int64_t in1;
    int64_t in2;
  };
  struct FlattenEntry {
    int64_t in;
    int32_t pos;
  };

  /// Unified out-id resolver for one operator's id table, handed to the
  /// Backtracer: dispatches to a hash map (built index, or the tracer's
  /// per-query scratch map) or to binary search over a sorted permutation
  /// (index loaded from a snapshot segment). Default-constructed =
  /// not present (the tracer then builds its scratch map).
  template <typename V>
  class Lookup {
   public:
    using HashMap = std::unordered_map<int64_t, V>;
    /// Extracts row `row`'s value from the type-erased id table.
    using RowValueFn = V (*)(const void* table, uint32_t row);

    Lookup() = default;
    explicit Lookup(const HashMap* hash) : hash_(hash) {}
    Lookup(const void* table, const std::vector<int64_t>* out_col,
           const std::vector<uint32_t>* perm, RowValueFn row_value)
        : table_(table), out_col_(out_col), perm_(perm),
          row_value_(row_value) {}

    bool present() const { return hash_ != nullptr || table_ != nullptr; }

    bool Find(int64_t out, V* value) const {
      if (hash_ != nullptr) {
        auto it = hash_->find(out);
        if (it == hash_->end()) return false;
        *value = it->second;
        return true;
      }
      auto it = std::lower_bound(
          perm_->begin(), perm_->end(), out,
          [this](uint32_t row, int64_t v) { return (*out_col_)[row] < v; });
      if (it == perm_->end() || (*out_col_)[*it] != out) return false;
      *value = row_value_(table_, *it);
      return true;
    }

   private:
    const HashMap* hash_ = nullptr;
    const void* table_ = nullptr;
    const std::vector<int64_t>* out_col_ = nullptr;
    const std::vector<uint32_t>* perm_ = nullptr;
    RowValueFn row_value_ = nullptr;
  };

  /// Builds the hash-map backend by scanning `store`'s id tables.
  explicit BacktraceIndex(const ProvenanceStore& store);

  /// Adopts persisted sorted permutations (the loaded backend). The caller
  /// (the snapshot loader) must have validated `perms` against `store`:
  /// permutation sizes equal table sizes, row indices in range, out ids
  /// strictly increasing along each permutation.
  BacktraceIndex(const ProvenanceStore& store, BacktraceIndexPerms perms);

  /// The sorted permutations for `store`'s id tables — what the snapshot
  /// serializer persists as the index segment.
  static BacktraceIndexPerms BuildPerms(const ProvenanceStore& store);

  /// True for an index adopted from persisted permutations (vs hash-built).
  bool loaded() const { return store_ != nullptr; }

  // Unified per-operator resolvers (either backend); !present() when the
  // operator has no indexed table of that flavor.
  Lookup<int64_t> UnaryFor(int oid) const;
  Lookup<BinaryEntry> BinaryFor(int oid) const;
  Lookup<FlattenEntry> FlattenFor(int oid) const;
  Lookup<IdSpan> AggFor(int oid) const;

  // Direct hash-backend accessors (nullptr for absent oid/flavor, and for
  // every oid on a loaded index).
  const std::unordered_map<int64_t, int64_t>* unary(int oid) const;
  const std::unordered_map<int64_t, BinaryEntry>* binary(int oid) const;
  const std::unordered_map<int64_t, FlattenEntry>* flatten(int oid) const;
  const std::unordered_map<int64_t, IdSpan>* agg(int oid) const;

 private:
  // Hash backend (empty on a loaded index).
  std::map<int, std::unordered_map<int64_t, int64_t>> unary_;
  std::map<int, std::unordered_map<int64_t, BinaryEntry>> binary_;
  std::map<int, std::unordered_map<int64_t, FlattenEntry>> flatten_;
  std::map<int, std::unordered_map<int64_t, IdSpan>> agg_;
  // Loaded backend: permutations plus the store whose tables they order
  // (nullptr for a hash-built index).
  const ProvenanceStore* store_ = nullptr;
  BacktraceIndexPerms perms_;
};

/// Structural provenance arriving at one source (scan) dataset: for each
/// contributing top-level input item, the tree of contributing/influencing
/// attributes with their access/manipulation operator sets.
struct SourceProvenance {
  int scan_oid = -1;
  std::string source_name;
  BacktraceStructure items;
};

/// Walks the operator provenance backwards from the sink. Requires the
/// store to have been captured in kStructural or kFullModel mode for
/// structural results; in kLineage mode trees degrade to whole-item roots.
class Backtracer {
 public:
  /// `index` is optional; when provided (and built over the same store) the
  /// id-table lookups reuse it instead of hashing the tables per query.
  explicit Backtracer(const ProvenanceStore* store,
                      const BacktraceIndex* index = nullptr)
      : store_(store), index_(index) {}

  /// Traces `seed` (ids/trees on the sink's output, e.g. from tree-pattern
  /// matching) back to every source dataset. Alg. 1.
  Result<std::vector<SourceProvenance>> Backtrace(
      const BacktraceStructure& seed) const;

  /// Governed variant: traces the seed in chunks, checking `options`
  /// between chunks and at every recursion level. When a limit trips, the
  /// provenance of fully traced chunks is returned (not an error) and
  /// `truncation` (when non-null) records why and how far tracing got.
  /// With unlimited options this delegates to the legacy path above —
  /// byte-identical results. Non-governance failures still propagate.
  Result<std::vector<SourceProvenance>> Backtrace(
      const BacktraceStructure& seed, const BacktraceOptions& options,
      BacktraceTruncation* truncation) const;

 private:
  /// Per-query governance state threaded through the recursion; nullptr on
  /// the ungoverned (legacy) path.
  struct TraceState;

  Status BacktraceFrom(int oid, BacktraceStructure structure,
                       std::map<int, BacktraceStructure>* at_sources,
                       TraceState* state) const;

  Status BacktraceGenericUnary(const OperatorProvenance& prov,
                               const BacktraceStructure& structure,
                               std::map<int, BacktraceStructure>* at_sources,
                               TraceState* state) const;
  Status BacktraceMap(const OperatorProvenance& prov,
                      const BacktraceStructure& structure,
                      std::map<int, BacktraceStructure>* at_sources,
                      TraceState* state) const;
  Status BacktraceFlatten(const OperatorProvenance& prov,
                          const BacktraceStructure& structure,
                          std::map<int, BacktraceStructure>* at_sources,
                          TraceState* state) const;
  Status BacktraceBinary(const OperatorProvenance& prov,
                         const BacktraceStructure& structure,
                         std::map<int, BacktraceStructure>* at_sources,
                         TraceState* state) const;
  Status BacktraceAggregation(const OperatorProvenance& prov,
                              const BacktraceStructure& structure,
                              std::map<int, BacktraceStructure>* at_sources,
                              TraceState* state) const;

  const ProvenanceStore* store_;
  const BacktraceIndex* index_;
};

/// Expands an accessed path to the paths of its path set PS (Ex. 4.11):
/// struct-typed paths expand to their fields recursively; collection- and
/// constant-typed paths stay as they are. Used when recording access marks
/// in backtracing trees so that untraced sibling attributes (e.g. `name`
/// accessed by grouping on `user`) surface as influencing nodes.
std::vector<Path> ExpandAccessPath(const TypePtr& schema, const Path& path);

/// Builds the conservative "everything" tree over a schema: one node per
/// attribute (collection elements contribute their fields without
/// positions), all contributing. Used by map backtracing.
BacktraceTree BuildSchemaTree(const TypePtr& schema);

}  // namespace pebble

#endif  // PEBBLE_CORE_BACKTRACE_H_
