#include "core/render.h"

namespace pebble {

namespace {

std::string EscapeDot(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string OidSet(const std::set<int>& oids) {
  std::string out;
  bool first = true;
  for (int oid : oids) {
    if (!first) out += ",";
    out += std::to_string(oid);
    first = false;
  }
  return out;
}

void RenderNode(const BtNode& node, const std::string& id, std::string* out) {
  int child_index = 0;
  for (const BtNode& child : node.children) {
    std::string child_id = id + "_" + std::to_string(child_index++);
    std::string label = EscapeDot(child.key.ToString());
    if (!child.accessed_by.empty()) {
      label += "\\nA={" + OidSet(child.accessed_by) + "}";
    }
    if (!child.manipulated_by.empty()) {
      label += "\\nM={" + OidSet(child.manipulated_by) + "}";
    }
    *out += "  " + child_id + " [label=\"" + label + "\", style=filled, " +
            (child.contributing ? "fillcolor=\"#1b7837\", fontcolor=white"
                                : "fillcolor=\"#a6dba0\"") +
            "];\n";
    *out += "  " + id + " -> " + child_id + ";\n";
    RenderNode(child, child_id, out);
  }
}

}  // namespace

std::string PipelineToDot(const Pipeline& pipeline) {
  std::string out = "digraph pipeline {\n  rankdir=LR;\n  node [shape=box];\n";
  for (const auto& op : pipeline.operators()) {
    out += "  op" + std::to_string(op->oid()) + " [label=\"" +
           std::to_string(op->oid()) + ": " + EscapeDot(op->label()) +
           "\"];\n";
    for (int in : op->input_oids()) {
      out += "  op" + std::to_string(in) + " -> op" +
             std::to_string(op->oid()) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string BacktraceTreeToDot(const BacktraceTree& tree,
                               const std::string& title) {
  std::string out = "digraph backtrace {\n  label=\"" + EscapeDot(title) +
                    "\";\n  node [shape=ellipse];\n";
  out += "  root [label=\"" + EscapeDot(title) + "\", shape=box];\n";
  RenderNode(tree.root(), "root", &out);
  out += "}\n";
  return out;
}

}  // namespace pebble
