#include "core/provenance_model.h"

namespace pebble {

const char* OpTypeToString(OpType type) {
  switch (type) {
    case OpType::kScan:
      return "scan";
    case OpType::kFilter:
      return "filter";
    case OpType::kSelect:
      return "select";
    case OpType::kMap:
      return "map";
    case OpType::kJoin:
      return "join";
    case OpType::kUnion:
      return "union";
    case OpType::kFlatten:
      return "flatten";
    case OpType::kGroupAggregate:
      return "aggregate";
  }
  return "unknown";
}

uint64_t ApproxPathBytes(const Path& path) {
  uint64_t bytes = sizeof(Path);
  for (const PathStep& s : path.steps()) {
    bytes += sizeof(PathStep) + s.attr.size();
  }
  return bytes;
}

uint64_t OperatorProvenance::LineageBytes() const {
  uint64_t bytes = 0;
  bytes += unary_ids.size() * sizeof(UnaryIdRow);
  bytes += binary_ids.size() * sizeof(BinaryIdRow);
  bytes += flatten_ids.size() * (sizeof(int64_t) * 2);  // in, out (no pos)
  for (const AggIdRow& r : agg_ids) {
    bytes += r.ins.size() * sizeof(int64_t) + sizeof(int64_t);
  }
  return bytes;
}

uint64_t OperatorProvenance::StructuralExtraBytes() const {
  uint64_t bytes = 0;
  // Positions stored by flatten on top of plain lineage.
  bytes += flatten_ids.size() * sizeof(int32_t);
  // Schema-level access paths, once per operator.
  for (const InputProvenance& in : inputs) {
    for (const Path& p : in.accessed) {
      bytes += ApproxPathBytes(p);
    }
  }
  // Schema-level manipulation mappings, once per operator.
  for (const PathMapping& m : manipulations) {
    bytes += ApproxPathBytes(m.in) + ApproxPathBytes(m.out);
  }
  return bytes;
}

uint64_t OperatorProvenance::FullModelBytes() const {
  uint64_t bytes = 0;
  for (const ItemProvenance& item : item_provenance) {
    bytes += sizeof(ItemProvenance);
    for (const ItemInputProvenance& in : item.inputs) {
      bytes += sizeof(ItemInputProvenance);
      for (const Path& p : in.accessed) {
        bytes += ApproxPathBytes(p);
      }
    }
    for (const PathMapping& m : item.manipulations) {
      bytes += ApproxPathBytes(m.in) + ApproxPathBytes(m.out);
    }
  }
  return bytes;
}

size_t OperatorProvenance::NumIdRows() const {
  return unary_ids.size() + binary_ids.size() + flatten_ids.size() +
         agg_ids.size();
}

}  // namespace pebble
