#include "core/provenance_model.h"

namespace pebble {

const char* OpTypeToString(OpType type) {
  switch (type) {
    case OpType::kScan:
      return "scan";
    case OpType::kFilter:
      return "filter";
    case OpType::kSelect:
      return "select";
    case OpType::kMap:
      return "map";
    case OpType::kJoin:
      return "join";
    case OpType::kUnion:
      return "union";
    case OpType::kFlatten:
      return "flatten";
    case OpType::kGroupAggregate:
      return "aggregate";
  }
  return "unknown";
}

uint64_t ApproxPathBytes(const Path& path) {
  // Steps are packed {symbol, pos} words; the attribute bytes live once in
  // the process-wide interner and are not charged per path.
  return sizeof(Path) + path.size() * sizeof(PathStep);
}

uint64_t OperatorProvenance::LineageBytes() const {
  // Computed from the columnar layout: ids are 8-byte column entries.
  uint64_t bytes = 0;
  bytes += unary_ids.size() * (sizeof(int64_t) * 2);   // in, out
  bytes += binary_ids.size() * (sizeof(int64_t) * 3);  // in1, in2, out
  bytes += flatten_ids.size() * (sizeof(int64_t) * 2);  // in, out (no pos)
  bytes += (agg_ids.TotalIns() + agg_ids.size()) * sizeof(int64_t);
  return bytes;
}

uint64_t OperatorProvenance::StructuralExtraBytes() const {
  uint64_t bytes = 0;
  // Positions stored by flatten on top of plain lineage.
  bytes += flatten_ids.size() * sizeof(int32_t);
  // Schema-level access paths, once per operator.
  for (const InputProvenance& in : inputs) {
    for (const Path& p : in.accessed) {
      bytes += ApproxPathBytes(p);
    }
  }
  // Schema-level manipulation mappings, once per operator.
  for (const PathMapping& m : manipulations) {
    bytes += ApproxPathBytes(m.in) + ApproxPathBytes(m.out);
  }
  return bytes;
}

uint64_t OperatorProvenance::FullModelBytes() const {
  uint64_t bytes = 0;
  for (const ItemProvenance& item : item_provenance) {
    bytes += sizeof(ItemProvenance);
    for (const ItemInputProvenance& in : item.inputs) {
      bytes += sizeof(ItemInputProvenance);
      for (const Path& p : in.accessed) {
        bytes += ApproxPathBytes(p);
      }
    }
    for (const PathMapping& m : item.manipulations) {
      bytes += ApproxPathBytes(m.in) + ApproxPathBytes(m.out);
    }
  }
  return bytes;
}

size_t OperatorProvenance::NumIdRows() const {
  return unary_ids.size() + binary_ids.size() + flatten_ids.size() +
         agg_ids.size();
}

}  // namespace pebble
