// Backtracing structure and trees (paper Defs. 6.2, 6.3) plus the two tree
// manipulation methods manipulatePath and accessPath of Sec. 6.2.
//
// A backtracing tree references attributes (and positions inside nested
// collections) of one top-level data item. Every node records the operators
// that accessed it (A), the operators that manipulated it (M), and whether
// it contributes to the queried items (c) or merely influences them.

#ifndef PEBBLE_CORE_BACKTRACE_TREE_H_
#define PEBBLE_CORE_BACKTRACE_TREE_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "core/provenance_model.h"
#include "nested/path.h"

namespace pebble {

/// Key of a backtracing tree node: either an attribute name or a 1-based
/// position within the parent attribute's collection (Fig. 2 shows both
/// kinds). The kPosPlaceholder position appears transiently during
/// backtracing before concrete positions are substituted.
struct BtNodeKey {
  std::string attr;      // empty <=> positional node
  int32_t pos = kNoPos;  // kNoPos <=> attribute node

  bool is_position() const { return attr.empty(); }
  bool operator==(const BtNodeKey& other) const {
    return attr == other.attr && pos == other.pos;
  }
  bool operator<(const BtNodeKey& other) const {
    if (attr != other.attr) return attr < other.attr;
    return pos < other.pos;
  }
  std::string ToString() const;
};

/// One node of a backtracing tree (Def. 6.3).
struct BtNode {
  BtNodeKey key;
  std::vector<BtNode> children;  // insertion order
  std::set<int> accessed_by;     // operator ids in A
  std::set<int> manipulated_by;  // operator ids in M
  bool contributing = false;     // c

  BtNode* FindChild(const BtNodeKey& key);
  const BtNode* FindChild(const BtNodeKey& key) const;
  /// Finds or creates; created nodes get the given contributing flag.
  BtNode* EnsureChild(const BtNodeKey& key, bool contributing);
  /// Removes the child subtree; returns true if it existed.
  bool RemoveChild(const BtNodeKey& key);

  /// Deep merge: unions A/M sets, ORs contributing flags, merges children
  /// recursively by key.
  void MergeFrom(const BtNode& other);

  bool operator==(const BtNode& other) const;
};

/// The backtracing tree T = <root, N>. The (unnamed) root stands for the
/// top-level data item itself.
class BacktraceTree {
 public:
  BacktraceTree() { root_.contributing = true; }

  BtNode& root() { return root_; }
  const BtNode& root() const { return root_; }
  bool empty() const { return root_.children.empty(); }

  /// Expands an access path into the node-key sequence it denotes: each step
  /// contributes an attribute key plus, if present, a positional key.
  static std::vector<BtNodeKey> KeysOf(const Path& path);

  /// Node at `path`, or nullptr.
  BtNode* Find(const Path& path);
  const BtNode* Find(const Path& path) const;
  bool Contains(const Path& path) const { return Find(path) != nullptr; }

  /// Finds or creates the node at `path`; missing nodes are created with the
  /// given contributing flag. Returns the terminal node.
  BtNode* Ensure(const Path& path, bool contributing);

  /// accessPath (Sec. 6.2): if all nodes of `path` exist, adds `oid` to each
  /// node's access set; otherwise creates the missing nodes with c = false
  /// and marks the whole path accessed. Returns true if nodes were created.
  bool AccessPath(const Path& path, int oid);

  /// manipulatePath (Sec. 6.2): if a node exists at `out`, detaches its
  /// subtree (pruning now-empty unmarked ancestors), grafts it at `in`
  /// (merging with any existing subtree) and adds `oid` to the grafted
  /// node's manipulation set. Returns true if the transformation applied.
  bool ManipulatePath(const Path& in, const Path& out, int oid);

  /// Applies a whole operator's manipulation set atomically: all subtrees
  /// are detached against the pre-transformation tree first, then grafted.
  /// This keeps overlapping mappings (e.g. attribute swaps) correct.
  void ApplyManipulations(const std::vector<PathMapping>& mappings, int oid);

  /// Removes the subtree at `path` (Alg. 4 removeNodes). Returns true if it
  /// existed.
  bool RemoveSubtree(const Path& path);

  /// Keeps only root children whose attribute is a field of `schema`
  /// (join backtracing restricts trees to the traced side's schema).
  void RestrictToSchema(const DataType& schema);

  /// Marks every node (including descendants) as manipulated by `oid`
  /// (map backtracing: all nodes manipulated by default).
  void MarkAllManipulated(int oid);

  void MergeFrom(const BacktraceTree& other) { root_.MergeFrom(other.root_); }

  /// Depth-first visit; the callback receives each node (excluding the
  /// root) with its full path. Positional nodes fold into their parent
  /// attribute step, matching Path syntax (e.g. "tweets[2].text").
  void Visit(
      const std::function<void(const Path&, const BtNode&)>& fn) const;

  /// Indented multi-line rendering with A/M/c annotations (Fig. 2 style).
  std::string ToString() const;

  bool operator==(const BacktraceTree& other) const {
    return root_ == other.root_;
  }

 private:
  BtNode root_;
};

/// Backtracing structure entry: a top-level item id with its tree
/// (Def. 6.2).
struct BacktraceEntry {
  int64_t id = kNoId;
  BacktraceTree tree;
};

/// B = {{ <id, T> }}. Kept sorted/merged by id via MergeEntry.
using BacktraceStructure = std::vector<BacktraceEntry>;

/// Merges `entry` into `structure`: if an entry with the same id exists its
/// tree is merged, otherwise the entry is appended.
void MergeEntry(BacktraceStructure* structure, BacktraceEntry entry);

/// Structural hash of a node (subtree) consistent with BtNode::operator==:
/// equal nodes hash equal. Children combine commutatively because the
/// equality is order-insensitive over children. Keys the governed tracer's
/// shared-prefix transform memo (core/backtrace.cc), which verifies full
/// equality on every hit, so collisions cost time, never correctness.
uint64_t BtNodeStructuralHash(const BtNode& node);

/// BtNodeStructuralHash of the tree's root.
uint64_t BacktraceTreeStructuralHash(const BacktraceTree& tree);

}  // namespace pebble

#endif  // PEBBLE_CORE_BACKTRACE_TREE_H_
