#include "core/provenance_records.h"

#include <algorithm>
#include <cstdlib>

#include "nested/type.h"

namespace pebble {
namespace provio {

const char* ModeToToken(CaptureMode mode) { return CaptureModeToString(mode); }

Result<CaptureMode> TokenToMode(const std::string& token) {
  if (token == "off") return CaptureMode::kOff;
  if (token == "lineage") return CaptureMode::kLineage;
  if (token == "structural") return CaptureMode::kStructural;
  if (token == "full-model") return CaptureMode::kFullModel;
  return Status::InvalidArgument("unknown capture mode '" + token + "'");
}

const char* TypeToToken(OpType type) { return OpTypeToString(type); }

Result<OpType> TokenToType(const std::string& token) {
  for (OpType type :
       {OpType::kScan, OpType::kFilter, OpType::kSelect, OpType::kMap,
        OpType::kJoin, OpType::kUnion, OpType::kFlatten,
        OpType::kGroupAggregate}) {
    if (token == OpTypeToString(type)) return type;
  }
  return Status::InvalidArgument("unknown operator type '" + token + "'");
}

void AppendTopologyLine(const OperatorInfo& info, std::string* out) {
  *out += "o " + std::to_string(info.oid) + " " + TypeToToken(info.type) +
          " " + std::to_string(info.input_oids.size());
  for (int in : info.input_oids) {
    *out += " " + std::to_string(in);
  }
  *out += " " + info.label + "\n";
}

void AppendInputLine(const InputProvenance& input,
                     const std::string& schema_ref, std::string* out) {
  *out += "i " + std::to_string(input.producer_oid) + " " +
          (input.accessed_undefined ? "1" : "0") + " " + schema_ref + " " +
          std::to_string(input.accessed.size());
  for (const Path& p : input.accessed) {
    *out += " " + p.ToString();
  }
  *out += "\n";
}

void AppendManipLines(const OperatorProvenance& prov, std::string* out) {
  if (prov.manip_undefined) {
    *out += "m 0 1 - -\n";
  }
  for (const PathMapping& m : prov.manipulations) {
    // Empty paths (e.g. count()'s input) are encoded as "-".
    std::string in_text = m.in.empty() ? "-" : m.in.ToString();
    std::string out_text = m.out.empty() ? "-" : m.out.ToString();
    *out += "m " + std::string(m.from_grouping ? "1" : "0") + " 0 " +
            in_text + " " + out_text + "\n";
  }
}

IdTableCursor EndCursor(const OperatorProvenance& prov) {
  return IdTableCursor{prov.unary_ids.size(), prov.binary_ids.size(),
                       prov.flatten_ids.size(), prov.agg_ids.size()};
}

bool HasRowsAfter(const OperatorProvenance& prov,
                  const IdTableCursor& cursor) {
  return prov.unary_ids.size() > cursor.unary ||
         prov.binary_ids.size() > cursor.binary ||
         prov.flatten_ids.size() > cursor.flatten ||
         prov.agg_ids.size() > cursor.agg;
}

void AppendIdRowLinesFrom(const OperatorProvenance& prov,
                          IdTableCursor* cursor, std::string* out) {
  for (size_t i = cursor->unary; i < prov.unary_ids.size(); ++i) {
    UnaryIdRow row = prov.unary_ids[i];
    *out += "u " + std::to_string(row.in) + " " + std::to_string(row.out) +
            "\n";
  }
  for (size_t i = cursor->binary; i < prov.binary_ids.size(); ++i) {
    BinaryIdRow row = prov.binary_ids[i];
    *out += "b " + std::to_string(row.in1) + " " + std::to_string(row.in2) +
            " " + std::to_string(row.out) + "\n";
  }
  for (size_t i = cursor->flatten; i < prov.flatten_ids.size(); ++i) {
    FlattenIdRow row = prov.flatten_ids[i];
    *out += "f " + std::to_string(row.in) + " " + std::to_string(row.pos) +
            " " + std::to_string(row.out) + "\n";
  }
  for (size_t i = cursor->agg; i < prov.agg_ids.size(); ++i) {
    IdSpan ins = prov.agg_ids.ins(i);
    *out += "a " + std::to_string(prov.agg_ids.out_col()[i]) + " " +
            std::to_string(ins.size());
    for (int64_t in : ins) {
      *out += " " + std::to_string(in);
    }
    *out += "\n";
  }
  *cursor = EndCursor(prov);
}

void AppendIdRowLines(const OperatorProvenance& prov, std::string* out) {
  IdTableCursor cursor;
  AppendIdRowLinesFrom(prov, &cursor, out);
}

std::vector<uint32_t> SortedByOutPermutation(
    const std::vector<int64_t>& out_ids) {
  std::vector<uint32_t> perm(out_ids.size());
  for (uint32_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return out_ids[a] < out_ids[b];
  });
  return perm;
}

Status ParseTopologyRecord(std::istringstream& in, ProvenanceStore* store) {
  OperatorInfo info;
  std::string type_token;
  size_t n_inputs = 0;
  in >> info.oid >> type_token >> n_inputs;
  if (in.fail()) return Status::InvalidArgument("bad operator record");
  PEBBLE_ASSIGN_OR_RETURN(info.type, TokenToType(type_token));
  for (size_t k = 0; k < n_inputs; ++k) {
    int input_oid = -1;
    in >> input_oid;
    if (in.fail()) return Status::InvalidArgument("bad operator inputs");
    info.input_oids.push_back(input_oid);
  }
  std::getline(in, info.label);
  if (!info.label.empty() && info.label[0] == ' ') {
    info.label.erase(0, 1);
  }
  store->RegisterOperator(std::move(info));
  return Status::OK();
}

Status ParseInputRecord(std::istringstream& in, OperatorProvenance* current,
                        const std::vector<TypePtr>* schema_table) {
  if (current == nullptr) {
    return Status::InvalidArgument("input before provenance record");
  }
  InputProvenance input;
  int undef = 0;
  std::string schema;
  size_t n = 0;
  in >> input.producer_oid >> undef >> schema >> n;
  if (in.fail()) return Status::InvalidArgument("bad input record");
  input.accessed_undefined = undef != 0;
  if (schema != "-") {
    if (schema_table != nullptr) {
      if (schema.size() < 2 || schema[0] != '@') {
        return Status::InvalidArgument("bad schema reference '" + schema +
                                       "'");
      }
      char* end = nullptr;
      unsigned long idx = std::strtoul(schema.c_str() + 1, &end, 10);
      if (end != schema.c_str() + schema.size() ||
          idx >= schema_table->size()) {
        return Status::InvalidArgument(
            "schema reference '" + schema + "' out of range (table has " +
            std::to_string(schema_table->size()) + " entries)");
      }
      input.input_schema = (*schema_table)[idx];
    } else {
      PEBBLE_ASSIGN_OR_RETURN(input.input_schema, ParseDataType(schema));
    }
  }
  for (size_t k = 0; k < n; ++k) {
    std::string path_text;
    in >> path_text;
    if (in.fail()) return Status::InvalidArgument("bad access path");
    PEBBLE_ASSIGN_OR_RETURN(Path p, Path::Parse(path_text));
    input.accessed.push_back(std::move(p));
  }
  current->inputs.push_back(std::move(input));
  return Status::OK();
}

Status ParseManipRecord(std::istringstream& in, OperatorProvenance* current) {
  if (current == nullptr) {
    return Status::InvalidArgument("mapping before provenance record");
  }
  int from_grouping = 0;
  int undef = 0;
  std::string in_text;
  std::string out_text;
  in >> from_grouping >> undef >> in_text >> out_text;
  if (in.fail()) return Status::InvalidArgument("bad mapping record");
  if (undef != 0) {
    current->manip_undefined = true;
    return Status::OK();
  }
  Path in_path;
  Path out_path;
  if (in_text != "-") {
    PEBBLE_ASSIGN_OR_RETURN(in_path, Path::Parse(in_text));
  }
  if (out_text != "-") {
    PEBBLE_ASSIGN_OR_RETURN(out_path, Path::Parse(out_text));
  }
  current->manipulations.push_back(
      PathMapping{std::move(in_path), std::move(out_path),
                  from_grouping != 0});
  return Status::OK();
}

Status ParseIdRecord(const std::string& tag, std::istringstream& in,
                     OperatorProvenance* current) {
  if (current == nullptr) {
    return Status::InvalidArgument("ids before provenance record");
  }
  if (tag == "u") {
    UnaryIdRow row;
    in >> row.in >> row.out;
    if (in.fail()) return Status::InvalidArgument("bad unary id row");
    current->unary_ids.push_back(row);
  } else if (tag == "b") {
    BinaryIdRow row;
    in >> row.in1 >> row.in2 >> row.out;
    if (in.fail()) return Status::InvalidArgument("bad binary id row");
    current->binary_ids.push_back(row);
  } else if (tag == "f") {
    FlattenIdRow row;
    in >> row.in >> row.pos >> row.out;
    if (in.fail()) return Status::InvalidArgument("bad flatten id row");
    current->flatten_ids.push_back(row);
  } else {  // "a"
    AggIdRow row;
    size_t n = 0;
    in >> row.out >> n;
    if (in.fail()) return Status::InvalidArgument("bad aggregation id row");
    row.ins.reserve(n);
    for (size_t k = 0; k < n; ++k) {
      int64_t id = kNoId;
      in >> id;
      if (in.fail()) return Status::InvalidArgument("bad aggregation id row");
      row.ins.push_back(id);
    }
    current->agg_ids.push_back(std::move(row));
  }
  return Status::OK();
}

}  // namespace provio
}  // namespace pebble
