// Persistence for captured provenance. Pipelines run at one time;
// provenance questions are asked later (audits, usage studies), so the
// serialized ProvenanceStore is the system's only durable artifact and is
// treated as such: saves are crash-safe (temp file + fsync + atomic
// rename — a snapshot is either fully durable or invisible) and loads are
// corruption-tolerant (every segment is CRC32-verified; any corruption
// becomes a structured Status carrying file path, segment name and byte
// offset, never a crash or silently wrong data).
//
// Two formats exist:
//   - Durable snapshot (v2, default for Save): versioned binary header plus
//     length-prefixed segments (meta, topology, schemas, paths, ids), each
//     with a CRC32 footer. See DESIGN.md §8 for the byte layout.
//   - Legacy text (v1, "pebbleprov ..."): the original line-oriented format,
//     still readable behind a format sniff for backward compatibility.
//
// Both cover the lightweight capture (Def. 5.1): topology, id association
// tables, schema-level access/manipulation paths, and input schemas. The
// eager full per-item model (CaptureMode::kFullModel) is an in-memory
// ablation aid and is not serialized.

#ifndef PEBBLE_CORE_PROVENANCE_IO_H_
#define PEBBLE_CORE_PROVENANCE_IO_H_

#include <memory>
#include <string>
#include <string_view>

#include "core/provenance_store.h"

namespace pebble {

/// Serializes the store into the legacy v1 text format (kept byte-stable:
/// the golden identity tests fingerprint it).
std::string SerializeProvenanceStore(const ProvenanceStore& store);

/// Parses a legacy v1 text store. Lenient: no post-parse Validate() (the
/// file-level LoadProvenanceStore adds that gate).
Result<std::unique_ptr<ProvenanceStore>> DeserializeProvenanceStore(
    const std::string& text);

/// Serializes the store into the durable v2 snapshot blob.
std::string SerializeDurableProvenanceStore(const ProvenanceStore& store);

/// Parses a durable v2 snapshot, verifying magic, version and every
/// segment's checksum, then running ProvenanceStore::Validate() as a
/// post-load integrity gate. `origin` names the data source (file path) in
/// error messages. Truncated tails and bit flips yield clean errors with
/// segment name and byte offset.
Result<std::unique_ptr<ProvenanceStore>> DeserializeDurableProvenanceStore(
    std::string_view data, const std::string& origin);

/// What a byte buffer appears to contain.
enum class SnapshotFormat { kDurableV2, kLegacyText, kUnknown };
SnapshotFormat SniffSnapshotFormat(std::string_view data);

/// Saves the store crash-safely in the durable v2 format: the previous
/// snapshot at `path` survives byte-for-byte unless the new one is fully
/// written, fsynced and renamed into place.
Status SaveProvenanceStore(const ProvenanceStore& store,
                           const std::string& path);

/// Loads a snapshot, sniffing the format (durable v2 or legacy text). All
/// errors carry the file path; both formats pass through Validate() before
/// the store is returned.
Result<std::unique_ptr<ProvenanceStore>> LoadProvenanceStore(
    const std::string& path);

}  // namespace pebble

#endif  // PEBBLE_CORE_PROVENANCE_IO_H_
