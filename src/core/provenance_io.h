// Persistence for captured provenance. Pipelines run at one time;
// provenance questions are asked later (audits, usage studies). This module
// serializes a ProvenanceStore into a compact line-oriented text format and
// loads it back, so backtracing can run in a different process than the
// capture.
//
// The format covers the lightweight capture (Def. 5.1): topology, id
// association tables, schema-level access/manipulation paths, and input
// schemas. The eager full per-item model (CaptureMode::kFullModel) is an
// in-memory ablation aid and is not serialized.

#ifndef PEBBLE_CORE_PROVENANCE_IO_H_
#define PEBBLE_CORE_PROVENANCE_IO_H_

#include <memory>
#include <string>

#include "core/provenance_store.h"

namespace pebble {

/// Serializes the store (lightweight capture component).
std::string SerializeProvenanceStore(const ProvenanceStore& store);

/// Parses a serialized store.
Result<std::unique_ptr<ProvenanceStore>> DeserializeProvenanceStore(
    const std::string& text);

/// File convenience wrappers.
Status SaveProvenanceStore(const ProvenanceStore& store,
                           const std::string& path);
Result<std::unique_ptr<ProvenanceStore>> LoadProvenanceStore(
    const std::string& path);

}  // namespace pebble

#endif  // PEBBLE_CORE_PROVENANCE_IO_H_
