// Persistence for captured provenance. Pipelines run at one time;
// provenance questions are asked later (audits, usage studies), so the
// serialized ProvenanceStore is the system's only durable artifact and is
// treated as such: saves are crash-safe (temp file + fsync + atomic
// rename — a snapshot is either fully durable or invisible) and loads are
// corruption-tolerant (every segment is CRC32-verified; any corruption
// becomes a structured Status carrying file path, segment name and byte
// offset, never a crash or silently wrong data).
//
// Two formats exist:
//   - Durable snapshot (v2, default for Save): versioned binary header plus
//     length-prefixed segments (meta, topology, schemas, paths, ids), each
//     with a CRC32 footer, optionally followed by trailing extension
//     segments — today the persisted backtrace index ("btindex"), so
//     offline queries load a ready index instead of rebuilding one per
//     query. Readers CRC-verify and skip trailing segments they do not
//     know, so older snapshots (no index) and newer ones (with it, or with
//     future extensions) both load everywhere. See DESIGN.md §8/§12 for the
//     byte layouts.
//   - Legacy text (v1, "pebbleprov ..."): the original line-oriented format,
//     still readable behind a format sniff for backward compatibility.
//
// Both cover the lightweight capture (Def. 5.1): topology, id association
// tables, schema-level access/manipulation paths, and input schemas. The
// eager full per-item model (CaptureMode::kFullModel) is an in-memory
// ablation aid and is not serialized.

#ifndef PEBBLE_CORE_PROVENANCE_IO_H_
#define PEBBLE_CORE_PROVENANCE_IO_H_

#include <memory>
#include <string>
#include <string_view>

#include "core/backtrace.h"
#include "core/provenance_store.h"

namespace pebble {

/// Serializes the store into the legacy v1 text format (kept byte-stable:
/// the golden identity tests fingerprint it).
std::string SerializeProvenanceStore(const ProvenanceStore& store);

/// Parses a legacy v1 text store. Lenient: no post-parse Validate() (the
/// file-level LoadProvenanceStore adds that gate).
Result<std::unique_ptr<ProvenanceStore>> DeserializeProvenanceStore(
    const std::string& text);

/// Knobs of the durable v2 serializer.
struct DurableSaveOptions {
  /// Append the "btindex" segment (sorted out-id permutations per id
  /// table) after the five core segments. On by default — Save and WAL
  /// compaction persist it so offline queries skip the per-query index
  /// rebuild. Off reproduces the pre-index five-segment blob byte for
  /// byte (used by tests pinning the legacy shape).
  bool include_backtrace_index = true;
};

/// Serializes the store into the durable v2 snapshot blob (with the
/// default options, i.e. including the backtrace-index segment).
std::string SerializeDurableProvenanceStore(const ProvenanceStore& store);
std::string SerializeDurableProvenanceStore(const ProvenanceStore& store,
                                            const DurableSaveOptions& options);

/// Parses a durable v2 snapshot, verifying magic, version and every
/// segment's checksum, then running ProvenanceStore::Validate() as a
/// post-load integrity gate. `origin` names the data source (file path) in
/// error messages. Truncated tails and bit flips yield clean errors with
/// segment name and byte offset.
Result<std::unique_ptr<ProvenanceStore>> DeserializeDurableProvenanceStore(
    std::string_view data, const std::string& origin);

/// A deserialized store plus, when the snapshot carried a valid persisted
/// index segment, the ready-to-use backtrace index over it. `index`
/// references `store` and must not outlive it; nullptr when the snapshot
/// has no index segment (pre-index snapshot or legacy text) — callers fall
/// back to building the index from the id tables.
struct LoadedProvenance {
  std::unique_ptr<ProvenanceStore> store;
  std::unique_ptr<BacktraceIndex> index;
};

/// As DeserializeDurableProvenanceStore, but additionally decodes and
/// validates the "btindex" segment when present. A CRC-valid index segment
/// that is inconsistent with the store (wrong sizes, out-of-range rows,
/// unsorted ids) is corruption — kIOError, never a silent fallback.
Result<LoadedProvenance> DeserializeDurableProvenanceStoreWithIndex(
    std::string_view data, const std::string& origin);

/// Decodes just the persisted "btindex" segment of a durable snapshot
/// against a store that was already deserialized from the same bytes —
/// the step that differs between the two offline-startup paths (decode
/// the persisted permutations vs re-hash every id table), isolated so a
/// long-lived server can re-attach an index without re-parsing the store
/// and so the warm-path benchmark can measure it. Frames and CRC-verifies
/// all segments; returns a null pointer when the snapshot carries no
/// index segment, and the same kIOError as the WithIndex loader when the
/// segment is corrupt or inconsistent with `store`. The returned index
/// references `store` and must not outlive it.
Result<std::unique_ptr<BacktraceIndex>> DecodePersistedBacktraceIndex(
    std::string_view data, const ProvenanceStore& store,
    const std::string& origin);

/// What a byte buffer appears to contain.
enum class SnapshotFormat { kDurableV2, kLegacyText, kUnknown };
SnapshotFormat SniffSnapshotFormat(std::string_view data);

/// Saves the store crash-safely in the durable v2 format: the previous
/// snapshot at `path` survives byte-for-byte unless the new one is fully
/// written, fsynced and renamed into place.
Status SaveProvenanceStore(const ProvenanceStore& store,
                           const std::string& path);

/// Loads a snapshot, sniffing the format (durable v2 or legacy text). All
/// errors carry the file path; both formats pass through Validate() before
/// the store is returned.
Result<std::unique_ptr<ProvenanceStore>> LoadProvenanceStore(
    const std::string& path);

/// As LoadProvenanceStore, but also surfaces the persisted backtrace index
/// when the snapshot carries one (LoadedProvenance::index stays nullptr
/// otherwise). The warm path of offline query/audit entry points.
Result<LoadedProvenance> LoadProvenanceStoreWithIndex(const std::string& path);

}  // namespace pebble

#endif  // PEBBLE_CORE_PROVENANCE_IO_H_
