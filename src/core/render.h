// Graphviz DOT rendering for pipelines and backtracing trees — the Fig. 1 /
// Fig. 2 visuals. Feed the output to `dot -Tsvg`.

#ifndef PEBBLE_CORE_RENDER_H_
#define PEBBLE_CORE_RENDER_H_

#include <string>

#include "core/backtrace_tree.h"
#include "engine/pipeline.h"

namespace pebble {

/// Renders the operator DAG (Fig. 1 style: one node per operator labeled
/// with its id and description).
std::string PipelineToDot(const Pipeline& pipeline);

/// Renders one backtracing tree (Fig. 2 style): contributing nodes in dark
/// green, influencing nodes in light green, with A=/M= operator badges.
/// `title` labels the graph (e.g. "input item 12").
std::string BacktraceTreeToDot(const BacktraceTree& tree,
                               const std::string& title);

}  // namespace pebble

#endif  // PEBBLE_CORE_RENDER_H_
