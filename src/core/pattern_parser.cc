// Compact textual syntax for tree patterns, so provenance questions can be
// written as strings (demo front-ends, tests, CLIs):
//
//   pattern  := conjunct (',' conjunct)*
//   conjunct := axis? name predicate? count? children?
//   axis     := '//'                     ancestor-descendant edge
//   predicate:= ('='|'!='|'<'|'<='|'>'|'>=') literal
//   literal  := 'text' | "text" | integer | decimal | true | false
//   count    := '[' min ',' (max | '*') ']'
//   children := '(' pattern ')'
//
// The Fig. 4 question reads:  //id_str='lp', tweets(text='Hello World'[2,2])

#include "core/tree_pattern.h"

#include <cctype>
#include <limits>

namespace pebble {

namespace {

class PatternParser {
 public:
  explicit PatternParser(const std::string& text) : text_(text) {}

  Result<std::vector<PatternNode>> Parse() {
    PEBBLE_ASSIGN_OR_RETURN(std::vector<PatternNode> nodes, ParseList());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Err("trailing characters");
    }
    return nodes;
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("pattern parse error at offset " +
                                   std::to_string(pos_) + ": " + msg +
                                   " in '" + text_ + "'");
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::vector<PatternNode>> ParseList() {
    std::vector<PatternNode> nodes;
    do {
      PEBBLE_ASSIGN_OR_RETURN(PatternNode node, ParseNode());
      nodes.push_back(std::move(node));
    } while (Consume(','));
    return nodes;
  }

  Result<PatternNode> ParseNode() {
    SkipSpace();
    bool descendant = false;
    if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
        text_[pos_ + 1] == '/') {
      descendant = true;
      pos_ += 2;
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Err("expected attribute name");
    }
    std::string name = text_.substr(start, pos_ - start);
    PatternNode node = descendant ? PatternNode::Descendant(name)
                                  : PatternNode::Attr(name);
    SkipSpace();
    // Comparison predicate: =, !=, <, <=, >, >= followed by a literal.
    CompareOp op = CompareOp::kEq;
    bool has_predicate = false;
    if (pos_ < text_.size()) {
      char c = text_[pos_];
      char next = pos_ + 1 < text_.size() ? text_[pos_ + 1] : '\0';
      if (c == '=') {
        has_predicate = true;
        pos_ += 1;
      } else if (c == '!' && next == '=') {
        op = CompareOp::kNe;
        has_predicate = true;
        pos_ += 2;
      } else if (c == '<') {
        op = next == '=' ? CompareOp::kLe : CompareOp::kLt;
        has_predicate = true;
        pos_ += next == '=' ? 2 : 1;
      } else if (c == '>') {
        op = next == '=' ? CompareOp::kGe : CompareOp::kGt;
        has_predicate = true;
        pos_ += next == '=' ? 2 : 1;
      }
    }
    if (has_predicate) {
      PEBBLE_ASSIGN_OR_RETURN(ValuePtr literal, ParseLiteral());
      node.SetPredicate(op, std::move(literal));
    }
    if (Consume('[')) {
      PEBBLE_ASSIGN_OR_RETURN(int64_t min, ParseInt());
      if (!Consume(',')) return Err("expected ',' in count constraint");
      int64_t max = std::numeric_limits<int>::max();
      SkipSpace();
      if (Consume('*')) {
        // unbounded
      } else {
        PEBBLE_ASSIGN_OR_RETURN(max, ParseInt());
      }
      if (!Consume(']')) return Err("expected ']' in count constraint");
      node.SetCount(static_cast<int>(min), static_cast<int>(max));
    }
    if (Consume('(')) {
      PEBBLE_ASSIGN_OR_RETURN(std::vector<PatternNode> children,
                              ParseList());
      if (!Consume(')')) return Err("expected ')'");
      for (PatternNode& child : children) {
        node.AddChild(std::move(child));
      }
    }
    return node;
  }

  Result<ValuePtr> ParseLiteral() {
    SkipSpace();
    if (pos_ >= text_.size()) return Err("expected literal");
    char c = text_[pos_];
    if (c == '\'' || c == '"') {
      char quote = c;
      ++pos_;
      std::string out;
      while (pos_ < text_.size() && text_[pos_] != quote) {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
          ++pos_;
        }
        out.push_back(text_[pos_]);
        ++pos_;
      }
      if (pos_ >= text_.size()) return Err("unterminated string literal");
      ++pos_;
      return Value::String(std::move(out));
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return Value::Bool(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return Value::Bool(false);
    }
    // Number.
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.')) {
      if (text_[pos_] == '.') is_double = true;
      ++pos_;
    }
    if (pos_ == start) return Err("expected literal");
    std::string num = text_.substr(start, pos_ - start);
    // A bare sign or dot, or a second dot, would slip through to std::stod /
    // std::stoll as a throw or a silently truncated value.
    if (num.find_first_of("0123456789") == std::string::npos) {
      return Err("expected literal");
    }
    if (num.find('.') != num.rfind('.')) {
      return Err("malformed decimal literal");
    }
    if (is_double) {
      return Value::Double(std::stod(num));
    }
    if (num.size() > (num[0] == '-' ? 19u : 18u)) {
      return Err("integer literal out of range");
    }
    return Value::Int(std::stoll(num));
  }

  Result<int64_t> ParseInt() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected integer");
    if (pos_ - start > 9) return Err("count out of range");
    return std::stoll(text_.substr(start, pos_ - start));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<TreePattern> TreePattern::Parse(const std::string& text) {
  PEBBLE_ASSIGN_OR_RETURN(std::vector<PatternNode> roots,
                          PatternParser(text).Parse());
  return TreePattern(std::move(roots));
}

}  // namespace pebble
