#include "core/provenance_io.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/file_io.h"
#include "common/string_util.h"
#include "core/provenance_records.h"

namespace pebble {

// The record-line grammar shared by both formats (and the provenance WAL)
// lives in core/provenance_records.h.
using provio::AppendIdRowLines;
using provio::AppendInputLine;
using provio::AppendManipLines;
using provio::AppendTopologyLine;
using provio::ModeToToken;
using provio::ParseIdRecord;
using provio::ParseInputRecord;
using provio::ParseManipRecord;
using provio::ParseTopologyRecord;
using provio::TokenToMode;

// ---------------------------------------------------------------------------
// Legacy v1 text format. Byte-stable: the golden identity tests fingerprint
// SerializeProvenanceStore output.

std::string SerializeProvenanceStore(const ProvenanceStore& store) {
  std::string out = "pebbleprov 1 ";
  out += ModeToToken(store.mode());
  out += " " + std::to_string(store.sink_oid()) + "\n";

  for (int oid : store.AllOids()) {
    AppendTopologyLine(*store.FindInfo(oid), &out);
  }

  for (int oid : store.AllOids()) {
    const OperatorProvenance* prov = store.Find(oid);
    if (prov == nullptr) continue;
    out += "p " + std::to_string(oid) + "\n";
    for (const InputProvenance& input : prov->inputs) {
      AppendInputLine(input,
                      input.input_schema != nullptr
                          ? input.input_schema->ToString()
                          : "-",
                      &out);
    }
    AppendManipLines(*prov, &out);
    AppendIdRowLines(*prov, &out);
  }
  return out;
}

Result<std::unique_ptr<ProvenanceStore>> DeserializeProvenanceStore(
    const std::string& text) {
  auto store = std::make_unique<ProvenanceStore>();
  OperatorProvenance* current = nullptr;
  bool header_seen = false;

  size_t line_no = 0;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;

    std::istringstream in(line);
    auto wrap = [&](const Status& st) {
      return st.WithContext("provenance parse error on line " +
                            std::to_string(line_no));
    };
    auto err = [&](const std::string& msg) {
      return wrap(Status::InvalidArgument(msg));
    };

    std::string tag;
    in >> tag;
    if (!header_seen) {
      if (tag != "pebbleprov") return err("missing header");
      int version = 0;
      std::string mode_token;
      int sink = -1;
      in >> version >> mode_token >> sink;
      if (in.fail() || version != 1) return err("bad header");
      PEBBLE_ASSIGN_OR_RETURN(CaptureMode mode, TokenToMode(mode_token));
      store->set_mode(mode);
      store->set_sink_oid(sink);
      header_seen = true;
      continue;
    }

    Status st;
    if (tag == "o") {
      st = ParseTopologyRecord(in, store.get());
    } else if (tag == "p") {
      int oid = -1;
      in >> oid;
      if (in.fail()) return err("bad provenance record");
      current = store->Mutable(oid);
    } else if (tag == "i") {
      st = ParseInputRecord(in, current, /*schema_table=*/nullptr);
    } else if (tag == "m") {
      st = ParseManipRecord(in, current);
    } else if (tag == "u" || tag == "b" || tag == "f" || tag == "a") {
      st = ParseIdRecord(tag, in, current);
    } else {
      return err("unknown record tag '" + tag + "'");
    }
    if (!st.ok()) return wrap(st);
  }
  if (!header_seen) {
    return Status::InvalidArgument("empty provenance document");
  }
  return store;
}

// ---------------------------------------------------------------------------
// Durable v2 snapshot format (see DESIGN.md §8 for the byte layout):
//
//   [0,8)    magic "PBLPROV2"
//   [8,12)   u32 LE format version (2)
//   [12,16)  u32 LE segment count
//   [16,20)  u32 LE CRC32 of bytes [0,16)
//   then per segment:
//     u16 LE name length, name bytes,
//     u64 LE payload length, payload bytes,
//     u32 LE CRC32 of (name bytes || payload bytes)
//   and nothing after the last segment.
//
// Segments, in order: meta (counts cross-checked after parse), topology,
// schemas (deduplicated type renderings), paths (access/manipulation
// records referencing schemas by index), ids (id association tables).
// After these five core segments a writer may append extension segments
// (the segment count in the header says how many there are in total);
// readers CRC-verify every segment but only decode extensions they know,
// so snapshots stay loadable in both directions across versions. The one
// extension today is "btindex", the persisted backtrace index
// (DESIGN.md §12): sorted out-id permutations of the id tables that spare
// offline queries the per-query index rebuild.

namespace {

constexpr char kDurableMagic[8] = {'P', 'B', 'L', 'P', 'R', 'O', 'V', '2'};
constexpr uint32_t kDurableVersion = 2;
constexpr size_t kHeaderBytes = 20;  // magic + version + count + crc
constexpr const char* kSegmentNames[] = {"meta", "topology", "schemas",
                                         "paths", "ids"};
constexpr size_t kNumSegments = 5;
// Extension segment carrying the persisted backtrace index; appended after
// the core segments when DurableSaveOptions::include_backtrace_index.
constexpr const char* kIndexSegmentName = "btindex";

bool IsCoreSegmentName(const std::string& name) {
  for (size_t i = 0; i < kNumSegments; ++i) {
    if (name == kSegmentNames[i]) return true;
  }
  return false;
}

void AppendU16(uint16_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void AppendU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

/// Bounds-checked little-endian reader over the snapshot bytes.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  size_t offset() const { return offset_; }
  size_t remaining() const { return data_.size() - offset_; }

  bool ReadU16(uint16_t* v) {
    if (remaining() < 2) return false;
    *v = static_cast<uint16_t>(Byte(0) | (Byte(1) << 8));
    offset_ += 2;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(Byte(i)) << (8 * i);
    offset_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(Byte(i)) << (8 * i);
    offset_ += 8;
    return true;
  }
  bool ReadBytes(size_t n, std::string_view* out) {
    if (remaining() < n) return false;
    *out = data_.substr(offset_, n);
    offset_ += n;
    return true;
  }

 private:
  uint32_t Byte(int i) const {
    return static_cast<unsigned char>(data_[offset_ + static_cast<size_t>(i)]);
  }

  std::string_view data_;
  size_t offset_ = 0;
};

void AppendSegment(const std::string& name, const std::string& payload,
                   std::string* out) {
  AppendU16(static_cast<uint16_t>(name.size()), out);
  *out += name;
  AppendU64(payload.size(), out);
  *out += payload;
  uint32_t crc = Crc32Update(kCrc32Init, name.data(), name.size());
  crc = Crc32Update(crc, payload.data(), payload.size());
  AppendU32(Crc32Finalize(crc), out);
}

/// Counts used for the meta segment and re-checked after load.
struct StoreCounts {
  size_t ops = 0;
  size_t captured = 0;
  uint64_t id_rows = 0;
};

StoreCounts CountStore(const ProvenanceStore& store) {
  StoreCounts c;
  for (int oid : store.AllOids()) {
    ++c.ops;
    if (store.Find(oid) != nullptr) ++c.captured;
  }
  c.id_rows = store.TotalIdRows();
  return c;
}

/// Payload of the "btindex" segment: u32 LE entry count, then per entry a
/// u8 id-table flavor (0 unary, 1 binary, 2 flatten, 3 agg), u32 LE
/// operator id, u64 LE row count n, and n u32 LE row indices — the table's
/// rows ordered by ascending out id. Deterministic: permutation order is a
/// pure function of the id tables (out ids are distinct per Validate()),
/// and entries iterate flavors then operator ids in ascending order.
std::string BuildIndexSegmentPayload(const ProvenanceStore& store) {
  const BacktraceIndexPerms perms = BacktraceIndex::BuildPerms(store);
  std::string payload;
  const size_t entries = perms.unary.size() + perms.binary.size() +
                         perms.flatten.size() + perms.agg.size();
  AppendU32(static_cast<uint32_t>(entries), &payload);
  auto emit = [&payload](uint8_t flavor,
                         const std::map<int, std::vector<uint32_t>>& tables) {
    for (const auto& [oid, perm] : tables) {
      payload.push_back(static_cast<char>(flavor));
      AppendU32(static_cast<uint32_t>(oid), &payload);
      AppendU64(perm.size(), &payload);
      for (uint32_t row : perm) AppendU32(row, &payload);
    }
  };
  emit(0, perms.unary);
  emit(1, perms.binary);
  emit(2, perms.flatten);
  emit(3, perms.agg);
  return payload;
}

}  // namespace

std::string SerializeDurableProvenanceStore(const ProvenanceStore& store) {
  return SerializeDurableProvenanceStore(store, DurableSaveOptions());
}

std::string SerializeDurableProvenanceStore(const ProvenanceStore& store,
                                            const DurableSaveOptions& options) {
  const StoreCounts counts = CountStore(store);

  std::string meta = "mode " + std::string(ModeToToken(store.mode())) + "\n";
  meta += "sink " + std::to_string(store.sink_oid()) + "\n";
  meta += "ops " + std::to_string(counts.ops) + "\n";
  meta += "captured " + std::to_string(counts.captured) + "\n";
  meta += "idrows " + std::to_string(counts.id_rows) + "\n";

  std::string topology;
  for (int oid : store.AllOids()) {
    AppendTopologyLine(*store.FindInfo(oid), &topology);
  }

  // Deduplicate input schemas into an indexed table; `i` records reference
  // entries as "@<index>".
  std::string schemas;
  std::map<std::string, size_t> schema_index;
  std::string paths;
  std::string ids;
  for (int oid : store.AllOids()) {
    const OperatorProvenance* prov = store.Find(oid);
    if (prov == nullptr) continue;
    paths += "p " + std::to_string(oid) + "\n";
    for (const InputProvenance& input : prov->inputs) {
      std::string ref = "-";
      if (input.input_schema != nullptr) {
        std::string rendered = input.input_schema->ToString();
        auto [it, inserted] =
            schema_index.emplace(std::move(rendered), schema_index.size());
        if (inserted) {
          schemas += "s " + std::to_string(it->second) + " " + it->first +
                     "\n";
        }
        ref = "@" + std::to_string(it->second);
      }
      AppendInputLine(input, ref, &paths);
    }
    AppendManipLines(*prov, &paths);

    ids += "p " + std::to_string(oid) + "\n";
    AppendIdRowLines(*prov, &ids);
  }

  std::string btindex;
  size_t segment_count = kNumSegments;
  if (options.include_backtrace_index) {
    btindex = BuildIndexSegmentPayload(store);
    ++segment_count;
  }

  std::string out;
  out.reserve(kHeaderBytes + meta.size() + topology.size() + schemas.size() +
              paths.size() + ids.size() + btindex.size() + 256);
  out.append(kDurableMagic, sizeof(kDurableMagic));
  AppendU32(kDurableVersion, &out);
  AppendU32(static_cast<uint32_t>(segment_count), &out);
  AppendU32(Crc32(out.data(), out.size()), &out);
  const std::string* payloads[kNumSegments] = {&meta, &topology, &schemas,
                                               &paths, &ids};
  for (size_t i = 0; i < kNumSegments; ++i) {
    AppendSegment(kSegmentNames[i], *payloads[i], &out);
  }
  if (options.include_backtrace_index) {
    AppendSegment(kIndexSegmentName, btindex, &out);
  }
  return out;
}

namespace {

/// Parses one durable segment payload into the store under construction.
/// `schema_table` is filled by the schemas segment and consumed by paths.
Status ParseDurableSegment(const std::string& name, std::string_view payload,
                           ProvenanceStore* store,
                           std::vector<TypePtr>* schema_table,
                           OperatorProvenance** current) {
  size_t line_no = 0;
  size_t start = 0;
  while (start < payload.size()) {
    size_t end = payload.find('\n', start);
    if (end == std::string_view::npos) end = payload.size();
    std::string line(payload.substr(start, end - start));
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;

    std::istringstream in(line);
    std::string tag;
    in >> tag;
    auto wrap = [&](const Status& st) {
      return st.WithContext("segment '" + name + "' line " +
                            std::to_string(line_no));
    };

    Status st;
    if (name == "meta") {
      // Handled by the caller (needs the whole key/value view); nothing
      // reaches here.
      return Status::Internal("meta segment routed to line parser");
    } else if (name == "topology") {
      if (tag != "o") {
        return wrap(Status::InvalidArgument("unexpected record tag '" + tag +
                                            "'"));
      }
      st = ParseTopologyRecord(in, store);
    } else if (name == "schemas") {
      if (tag != "s") {
        return wrap(Status::InvalidArgument("unexpected record tag '" + tag +
                                            "'"));
      }
      size_t idx = 0;
      std::string rendered;
      in >> idx >> rendered;
      if (in.fail()) return wrap(Status::InvalidArgument("bad schema record"));
      if (idx != schema_table->size()) {
        return wrap(Status::InvalidArgument(
            "schema index " + std::to_string(idx) +
            " out of order (expected " +
            std::to_string(schema_table->size()) + ")"));
      }
      auto parsed = ParseDataType(rendered);
      if (!parsed.ok()) return wrap(parsed.status());
      schema_table->push_back(std::move(parsed).value());
    } else if (name == "paths") {
      if (tag == "p") {
        int oid = -1;
        in >> oid;
        if (in.fail()) {
          return wrap(Status::InvalidArgument("bad provenance record"));
        }
        *current = store->Mutable(oid);
      } else if (tag == "i") {
        st = ParseInputRecord(in, *current, schema_table);
      } else if (tag == "m") {
        st = ParseManipRecord(in, *current);
      } else {
        return wrap(Status::InvalidArgument("unexpected record tag '" + tag +
                                            "'"));
      }
    } else if (name == "ids") {
      if (tag == "p") {
        int oid = -1;
        in >> oid;
        if (in.fail()) {
          return wrap(Status::InvalidArgument("bad provenance record"));
        }
        *current = store->Mutable(oid);
      } else if (tag == "u" || tag == "b" || tag == "f" || tag == "a") {
        st = ParseIdRecord(tag, in, *current);
      } else {
        return wrap(Status::InvalidArgument("unexpected record tag '" + tag +
                                            "'"));
      }
    }
    if (!st.ok()) return wrap(st);
  }
  return Status::OK();
}

/// Parses the meta segment: "key value" lines, all keys required.
Status ParseMetaSegment(std::string_view payload, ProvenanceStore* store,
                        StoreCounts* expected) {
  std::map<std::string, std::string> kv;
  size_t start = 0;
  while (start < payload.size()) {
    size_t end = payload.find('\n', start);
    if (end == std::string_view::npos) end = payload.size();
    std::string line(payload.substr(start, end - start));
    start = end + 1;
    if (line.empty()) continue;
    size_t space = line.find(' ');
    if (space == std::string::npos) {
      return Status::InvalidArgument("segment 'meta': malformed line '" +
                                     line + "'");
    }
    kv[line.substr(0, space)] = line.substr(space + 1);
  }
  for (const char* key : {"mode", "sink", "ops", "captured", "idrows"}) {
    if (kv.count(key) == 0) {
      return Status::InvalidArgument("segment 'meta': missing key '" +
                                     std::string(key) + "'");
    }
  }
  auto meta_err = [](const std::string& what) {
    return Status::InvalidArgument("segment 'meta': " + what);
  };
  auto mode = TokenToMode(kv["mode"]);
  if (!mode.ok()) return meta_err(mode.status().message());
  store->set_mode(*mode);
  errno = 0;
  char* end = nullptr;
  long sink = std::strtol(kv["sink"].c_str(), &end, 10);
  if (end == kv["sink"].c_str() || *end != '\0' || errno == ERANGE) {
    return meta_err("bad sink oid '" + kv["sink"] + "'");
  }
  store->set_sink_oid(static_cast<int>(sink));
  auto parse_count = [&](const char* key, uint64_t* out) {
    errno = 0;
    char* e = nullptr;
    unsigned long long v = std::strtoull(kv[key].c_str(), &e, 10);
    if (e == kv[key].c_str() || *e != '\0' || errno == ERANGE) {
      return meta_err("bad count for '" + std::string(key) + "': '" +
                      kv[key] + "'");
    }
    *out = v;
    return Status::OK();
  };
  uint64_t ops = 0, captured = 0, idrows = 0;
  PEBBLE_RETURN_NOT_OK(parse_count("ops", &ops));
  PEBBLE_RETURN_NOT_OK(parse_count("captured", &captured));
  PEBBLE_RETURN_NOT_OK(parse_count("idrows", &idrows));
  expected->ops = static_cast<size_t>(ops);
  expected->captured = static_cast<size_t>(captured);
  expected->id_rows = idrows;
  return Status::OK();
}

/// Decodes and validates the "btindex" segment against the fully parsed
/// (and Validate()d) store. The CRC framing has already been verified;
/// this checks the semantics: the referenced id table exists and has
/// exactly the claimed row count, every row index is in range, out ids
/// strictly increase along each permutation (which, with Validate()'s
/// per-table-distinct out ids, proves a true permutation), and no
/// (flavor, operator) pair repeats. Any violation means the index does not
/// describe this store — corruption, never a silent fallback.
Status ParseIndexSegment(std::string_view payload,
                         const ProvenanceStore& store,
                         BacktraceIndexPerms* perms) {
  ByteReader reader(payload);
  auto bad = [](const std::string& what) {
    return Status::InvalidArgument("segment 'btindex': " + what);
  };
  uint32_t entries = 0;
  if (!reader.ReadU32(&entries)) return bad("truncated entry count");
  for (uint32_t e = 0; e < entries; ++e) {
    std::string_view flavor_byte;
    uint32_t oid_u32 = 0;
    uint64_t rows = 0;
    if (!reader.ReadBytes(1, &flavor_byte) || !reader.ReadU32(&oid_u32) ||
        !reader.ReadU64(&rows)) {
      return bad("truncated header of entry " + std::to_string(e));
    }
    const uint8_t flavor = static_cast<unsigned char>(flavor_byte[0]);
    const int oid = static_cast<int>(oid_u32);
    const OperatorProvenance* prov = store.Find(oid);
    if (prov == nullptr) {
      return bad("entry for operator " + std::to_string(oid) +
                 " which has no captured provenance");
    }
    const std::vector<int64_t>* out_col = nullptr;
    std::map<int, std::vector<uint32_t>>* dest = nullptr;
    switch (flavor) {
      case 0:
        out_col = &prov->unary_ids.out_col();
        dest = &perms->unary;
        break;
      case 1:
        out_col = &prov->binary_ids.out_col();
        dest = &perms->binary;
        break;
      case 2:
        out_col = &prov->flatten_ids.out_col();
        dest = &perms->flatten;
        break;
      case 3:
        out_col = &prov->agg_ids.out_col();
        dest = &perms->agg;
        break;
      default:
        return bad("unknown id-table flavor " + std::to_string(flavor) +
                   " for operator " + std::to_string(oid));
    }
    if (rows != out_col->size()) {
      return bad("permutation of operator " + std::to_string(oid) + " has " +
                 std::to_string(rows) + " rows but its id table has " +
                 std::to_string(out_col->size()));
    }
    // Bulk-read the whole permutation, then validate over raw bytes: one
    // bounds check up front instead of one per row (the per-row ReadU32
    // path dominated decode time on large id tables).
    std::string_view raw;
    if (rows > reader.remaining() / 4 ||
        !reader.ReadBytes(static_cast<size_t>(rows) * 4, &raw)) {
      return bad("truncated permutation of operator " + std::to_string(oid));
    }
    std::vector<uint32_t> perm(static_cast<size_t>(rows));
    const auto* q = reinterpret_cast<const unsigned char*>(raw.data());
    const size_t table_rows = out_col->size();
    int64_t prev = std::numeric_limits<int64_t>::min();
    for (uint64_t i = 0; i < rows; ++i, q += 4) {
      const uint32_t row = static_cast<uint32_t>(q[0]) |
                           (static_cast<uint32_t>(q[1]) << 8) |
                           (static_cast<uint32_t>(q[2]) << 16) |
                           (static_cast<uint32_t>(q[3]) << 24);
      if (row >= table_rows) {
        return bad("row index " + std::to_string(row) +
                   " out of range in the permutation of operator " +
                   std::to_string(oid));
      }
      const int64_t out_id = (*out_col)[row];
      if (out_id <= prev) {
        return bad("out ids not strictly increasing along the permutation "
                   "of operator " +
                   std::to_string(oid));
      }
      prev = out_id;
      perm[i] = row;
    }
    if (!dest->emplace(oid, std::move(perm)).second) {
      return bad("duplicate entry for operator " + std::to_string(oid));
    }
  }
  if (reader.remaining() != 0) {
    return bad(std::to_string(reader.remaining()) +
               " trailing bytes after last entry");
  }
  return Status::OK();
}

}  // namespace

SnapshotFormat SniffSnapshotFormat(std::string_view data) {
  if (data.size() >= sizeof(kDurableMagic) &&
      std::memcmp(data.data(), kDurableMagic, sizeof(kDurableMagic)) == 0) {
    return SnapshotFormat::kDurableV2;
  }
  constexpr std::string_view kLegacyHeader = "pebbleprov";
  if (data.substr(0, kLegacyHeader.size()) == kLegacyHeader) {
    return SnapshotFormat::kLegacyText;
  }
  return SnapshotFormat::kUnknown;
}

namespace {

/// One framed (but not yet parsed) snapshot segment.
struct Segment {
  std::string name;
  std::string_view payload;
  size_t offset;  // byte offset of the segment header in the file
};

/// Verifies the snapshot header and frames + CRC-verifies every segment —
/// core and trailing extensions alike — without parsing any payload. A
/// truncated tail or a flipped length surfaces here as a framing error
/// with an offset, never as a half-applied parse.
Status FrameDurableSegments(std::string_view data, const std::string& origin,
                            std::vector<Segment>* segments) {
  auto corrupt = [&](const std::string& what) {
    return Status::IOError("durable snapshot '" + origin + "': " + what);
  };

  // Header: magic, version, segment count, header CRC.
  if (data.size() < kHeaderBytes) {
    return corrupt("truncated header: " + std::to_string(data.size()) +
                   " bytes, need " + std::to_string(kHeaderBytes));
  }
  if (SniffSnapshotFormat(data) != SnapshotFormat::kDurableV2) {
    return corrupt("bad magic in first 8 bytes");
  }
  ByteReader reader(data);
  std::string_view magic;
  uint32_t version = 0, segment_count = 0, header_crc = 0;
  reader.ReadBytes(sizeof(kDurableMagic), &magic);
  reader.ReadU32(&version);
  reader.ReadU32(&segment_count);
  reader.ReadU32(&header_crc);
  uint32_t computed_header_crc = Crc32(data.data(), kHeaderBytes - 4);
  if (computed_header_crc != header_crc) {
    return corrupt("header checksum mismatch");
  }
  if (version != kDurableVersion) {
    return corrupt("unsupported format version " + std::to_string(version) +
                   " (supported: " + std::to_string(kDurableVersion) + ")");
  }
  if (segment_count < kNumSegments) {
    return corrupt("unexpected segment count " +
                   std::to_string(segment_count) + " (expected at least " +
                   std::to_string(kNumSegments) + ")");
  }

  for (uint32_t s = 0; s < segment_count; ++s) {
    Segment seg;
    seg.offset = reader.offset();
    auto at = [&] {
      return " (segment " + std::to_string(s) + " at byte " +
             std::to_string(seg.offset) + ")";
    };
    uint16_t name_len = 0;
    if (!reader.ReadU16(&name_len)) {
      return corrupt("truncated segment name length" + at());
    }
    if (name_len == 0 || name_len > 64) {
      return corrupt("implausible segment name length " +
                     std::to_string(name_len) + at());
    }
    std::string_view name;
    if (!reader.ReadBytes(name_len, &name)) {
      return corrupt("truncated segment name" + at());
    }
    seg.name = std::string(name);
    uint64_t payload_len = 0;
    if (!reader.ReadU64(&payload_len)) {
      return corrupt("truncated payload length of segment '" + seg.name +
                     "'" + at());
    }
    if (payload_len > reader.remaining()) {
      return corrupt("payload of segment '" + seg.name + "' (" +
                     std::to_string(payload_len) +
                     " bytes) exceeds remaining file size (" +
                     std::to_string(reader.remaining()) + ")" + at());
    }
    if (!reader.ReadBytes(static_cast<size_t>(payload_len), &seg.payload)) {
      return corrupt("truncated payload of segment '" + seg.name + "'" +
                     at());
    }
    uint32_t stored_crc = 0;
    if (!reader.ReadU32(&stored_crc)) {
      return corrupt("truncated checksum of segment '" + seg.name + "'" +
                     at());
    }
    uint32_t crc = Crc32Update(kCrc32Init, seg.name.data(), seg.name.size());
    crc = Crc32Update(crc, seg.payload.data(), seg.payload.size());
    if (Crc32Finalize(crc) != stored_crc) {
      return corrupt("checksum mismatch in segment '" + seg.name + "'" +
                     at());
    }
    if (s < kNumSegments) {
      if (seg.name != kSegmentNames[s]) {
        return corrupt("unexpected segment '" + seg.name + "' (expected '" +
                       std::string(kSegmentNames[s]) + "')" + at());
      }
    } else if (IsCoreSegmentName(seg.name)) {
      // Trailing segments are extensions ("btindex" today, future ones
      // tomorrow) — already CRC-verified above, decoded below if known,
      // skipped if not. A repeat of a core segment is never legitimate.
      return corrupt("duplicate core segment '" + seg.name +
                     "' in trailing position" + at());
    }
    segments->push_back(seg);
  }
  if (reader.remaining() != 0) {
    return corrupt(std::to_string(reader.remaining()) +
                   " trailing bytes after last segment at byte " +
                   std::to_string(reader.offset()));
  }
  return Status::OK();
}

/// Shared body of the two durable deserializers. Frames and CRC-verifies
/// every segment (core and trailing extensions alike), parses the five
/// core segments, and — only when `want_index` — decodes a trailing
/// "btindex" segment into a ready BacktraceIndex. Unknown trailing
/// segments are verified and skipped, which is the forward-compatibility
/// contract that lets pre-index readers load post-index snapshots.
Result<LoadedProvenance> DeserializeDurableInternal(std::string_view data,
                                                    const std::string& origin,
                                                    bool want_index) {
  auto corrupt = [&](const std::string& what) {
    return Status::IOError("durable snapshot '" + origin + "': " + what);
  };
  std::vector<Segment> segments;
  PEBBLE_RETURN_NOT_OK(FrameDurableSegments(data, origin, &segments));

  // Parse payloads in order.
  auto store = std::make_unique<ProvenanceStore>();
  StoreCounts expected;
  PEBBLE_RETURN_NOT_OK(ParseMetaSegment(segments[0].payload, store.get(),
                                        &expected)
                           .WithContext("durable snapshot '" + origin + "'"));
  std::vector<TypePtr> schema_table;
  OperatorProvenance* current = nullptr;
  for (size_t s = 1; s < kNumSegments; ++s) {
    current = nullptr;
    PEBBLE_RETURN_NOT_OK(
        ParseDurableSegment(segments[s].name, segments[s].payload,
                            store.get(), &schema_table, &current)
            .WithContext("durable snapshot '" + origin + "'"));
  }

  // Integrity gate: the meta counts and the store-level invariants must
  // hold before anyone trusts this data.
  const StoreCounts actual = CountStore(*store);
  if (actual.ops != expected.ops || actual.captured != expected.captured ||
      actual.id_rows != expected.id_rows) {
    return corrupt(
        "meta counts disagree with parsed content (ops " +
        std::to_string(actual.ops) + "/" + std::to_string(expected.ops) +
        ", captured " + std::to_string(actual.captured) + "/" +
        std::to_string(expected.captured) + ", idrows " +
        std::to_string(actual.id_rows) + "/" +
        std::to_string(expected.id_rows) + ")");
  }
  Status valid = store->Validate();
  if (!valid.ok()) {
    return Status::FromCode(
        StatusCode::kIOError,
        "durable snapshot '" + origin +
            "' failed post-load validation: " + valid.message());
  }

  LoadedProvenance loaded;
  loaded.store = std::move(store);
  if (want_index) {
    for (size_t s = kNumSegments; s < segments.size(); ++s) {
      if (segments[s].name != kIndexSegmentName) continue;
      BacktraceIndexPerms perms;
      Status st = ParseIndexSegment(segments[s].payload, *loaded.store,
                                    &perms);
      if (!st.ok()) return corrupt(st.message());
      loaded.index = std::make_unique<BacktraceIndex>(*loaded.store,
                                                      std::move(perms));
      break;
    }
  }
  return loaded;
}

}  // namespace

Result<std::unique_ptr<BacktraceIndex>> DecodePersistedBacktraceIndex(
    std::string_view data, const ProvenanceStore& store,
    const std::string& origin) {
  std::vector<Segment> segments;
  PEBBLE_RETURN_NOT_OK(FrameDurableSegments(data, origin, &segments));
  for (size_t s = kNumSegments; s < segments.size(); ++s) {
    if (segments[s].name != kIndexSegmentName) continue;
    BacktraceIndexPerms perms;
    Status st = ParseIndexSegment(segments[s].payload, store, &perms);
    if (!st.ok()) {
      return Status::IOError("durable snapshot '" + origin + "': " +
                             st.message());
    }
    return std::make_unique<BacktraceIndex>(store, std::move(perms));
  }
  return std::unique_ptr<BacktraceIndex>();
}

Result<std::unique_ptr<ProvenanceStore>> DeserializeDurableProvenanceStore(
    std::string_view data, const std::string& origin) {
  auto loaded = DeserializeDurableInternal(data, origin, /*want_index=*/false);
  if (!loaded.ok()) return loaded.status();
  return std::move(loaded->store);
}

Result<LoadedProvenance> DeserializeDurableProvenanceStoreWithIndex(
    std::string_view data, const std::string& origin) {
  return DeserializeDurableInternal(data, origin, /*want_index=*/true);
}

// ---------------------------------------------------------------------------
// File wrappers.

Status SaveProvenanceStore(const ProvenanceStore& store,
                           const std::string& path) {
  std::string blob = SerializeDurableProvenanceStore(store);
  return AtomicWriteFile(path, blob)
      .WithContext("saving provenance snapshot to '" + path + "'");
}

namespace {

/// Shared body of the two file loaders; `want_index` selects whether a
/// durable snapshot's persisted index segment is decoded. Legacy text has
/// no index — it always loads with a null one.
Result<LoadedProvenance> LoadProvenanceInternal(const std::string& path,
                                                bool want_index) {
  PEBBLE_FAILPOINT(failpoints::kIoLoad);
  auto data = ReadFileToString(path);
  if (!data.ok()) {
    return data.status().WithContext("loading provenance snapshot");
  }
  switch (SniffSnapshotFormat(*data)) {
    case SnapshotFormat::kDurableV2:
      return DeserializeDurableInternal(*data, path, want_index);
    case SnapshotFormat::kLegacyText: {
      auto parsed = DeserializeProvenanceStore(*data);
      if (!parsed.ok()) {
        return parsed.status().WithContext("legacy provenance text '" + path +
                                           "'");
      }
      std::unique_ptr<ProvenanceStore> store = std::move(parsed).value();
      Status valid = store->Validate();
      if (!valid.ok()) {
        return Status::FromCode(
            StatusCode::kIOError,
            "legacy provenance text '" + path +
                "' failed post-load validation: " + valid.message());
      }
      LoadedProvenance loaded;
      loaded.store = std::move(store);
      return loaded;
    }
    case SnapshotFormat::kUnknown:
      break;
  }
  return Status::IOError("'" + path +
                         "' is not a provenance snapshot (bad leading " +
                         "bytes; expected PBLPROV2 magic or legacy " +
                         "'pebbleprov' header)");
}

}  // namespace

Result<std::unique_ptr<ProvenanceStore>> LoadProvenanceStore(
    const std::string& path) {
  auto loaded = LoadProvenanceInternal(path, /*want_index=*/false);
  if (!loaded.ok()) return loaded.status();
  return std::move(loaded->store);
}

Result<LoadedProvenance> LoadProvenanceStoreWithIndex(const std::string& path) {
  return LoadProvenanceInternal(path, /*want_index=*/true);
}

}  // namespace pebble
