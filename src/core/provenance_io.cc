#include "core/provenance_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace pebble {

namespace {

// Line-oriented format, one record per line, space-separated fields. Paths
// and type renderings contain no spaces; labels go last on their line and
// may contain spaces.
//
//   pebbleprov 1 <mode> <sink_oid>
//   o <oid> <type> <n_inputs> <input_oid>... <label...>
//   p <oid>                          start of captured record for oid
//   i <producer_oid> <undef:0|1> <schema|-> <n> <path>...
//   m <from_grouping:0|1> <undef:0|1> <in_path|-> <out_path|->
//   u <in> <out>
//   b <in1> <in2> <out>
//   f <in> <pos> <out>
//   a <out> <n> <in>...

const char* ModeToToken(CaptureMode mode) { return CaptureModeToString(mode); }

Result<CaptureMode> TokenToMode(const std::string& token) {
  if (token == "off") return CaptureMode::kOff;
  if (token == "lineage") return CaptureMode::kLineage;
  if (token == "structural") return CaptureMode::kStructural;
  if (token == "full-model") return CaptureMode::kFullModel;
  return Status::InvalidArgument("unknown capture mode '" + token + "'");
}

const char* TypeToToken(OpType type) { return OpTypeToString(type); }

Result<OpType> TokenToType(const std::string& token) {
  for (OpType type :
       {OpType::kScan, OpType::kFilter, OpType::kSelect, OpType::kMap,
        OpType::kJoin, OpType::kUnion, OpType::kFlatten,
        OpType::kGroupAggregate}) {
    if (token == OpTypeToString(type)) return type;
  }
  return Status::InvalidArgument("unknown operator type '" + token + "'");
}

}  // namespace

std::string SerializeProvenanceStore(const ProvenanceStore& store) {
  std::string out = "pebbleprov 1 ";
  out += ModeToToken(store.mode());
  out += " " + std::to_string(store.sink_oid()) + "\n";

  for (int oid : store.AllOids()) {
    const OperatorInfo* info = store.FindInfo(oid);
    out += "o " + std::to_string(info->oid) + " " + TypeToToken(info->type) +
           " " + std::to_string(info->input_oids.size());
    for (int in : info->input_oids) {
      out += " " + std::to_string(in);
    }
    out += " " + info->label + "\n";
  }

  for (int oid : store.AllOids()) {
    const OperatorProvenance* prov = store.Find(oid);
    if (prov == nullptr) continue;
    out += "p " + std::to_string(oid) + "\n";
    for (const InputProvenance& input : prov->inputs) {
      out += "i " + std::to_string(input.producer_oid) + " " +
             (input.accessed_undefined ? "1" : "0") + " " +
             (input.input_schema != nullptr ? input.input_schema->ToString()
                                            : "-") +
             " " + std::to_string(input.accessed.size());
      for (const Path& p : input.accessed) {
        out += " " + p.ToString();
      }
      out += "\n";
    }
    if (prov->manip_undefined) {
      out += "m 0 1 - -\n";
    }
    for (const PathMapping& m : prov->manipulations) {
      // Empty paths (e.g. count()'s input) are encoded as "-".
      std::string in_text = m.in.empty() ? "-" : m.in.ToString();
      std::string out_text = m.out.empty() ? "-" : m.out.ToString();
      out += "m " + std::string(m.from_grouping ? "1" : "0") + " 0 " +
             in_text + " " + out_text + "\n";
    }
    for (const UnaryIdRow& row : prov->unary_ids) {
      out += "u " + std::to_string(row.in) + " " + std::to_string(row.out) +
             "\n";
    }
    for (const BinaryIdRow& row : prov->binary_ids) {
      out += "b " + std::to_string(row.in1) + " " + std::to_string(row.in2) +
             " " + std::to_string(row.out) + "\n";
    }
    for (const FlattenIdRow& row : prov->flatten_ids) {
      out += "f " + std::to_string(row.in) + " " + std::to_string(row.pos) +
             " " + std::to_string(row.out) + "\n";
    }
    for (const AggIdRow& row : prov->agg_ids) {
      out += "a " + std::to_string(row.out) + " " +
             std::to_string(row.ins.size());
      for (int64_t in : row.ins) {
        out += " " + std::to_string(in);
      }
      out += "\n";
    }
  }
  return out;
}

Result<std::unique_ptr<ProvenanceStore>> DeserializeProvenanceStore(
    const std::string& text) {
  auto store = std::make_unique<ProvenanceStore>();
  OperatorProvenance* current = nullptr;
  bool header_seen = false;

  size_t line_no = 0;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;

    std::istringstream in(line);
    auto err = [&](const std::string& msg) {
      return Status::InvalidArgument("provenance parse error on line " +
                                     std::to_string(line_no) + ": " + msg);
    };

    std::string tag;
    in >> tag;
    if (!header_seen) {
      if (tag != "pebbleprov") return err("missing header");
      int version = 0;
      std::string mode_token;
      int sink = -1;
      in >> version >> mode_token >> sink;
      if (in.fail() || version != 1) return err("bad header");
      PEBBLE_ASSIGN_OR_RETURN(CaptureMode mode, TokenToMode(mode_token));
      store->set_mode(mode);
      store->set_sink_oid(sink);
      header_seen = true;
      continue;
    }

    if (tag == "o") {
      OperatorInfo info;
      std::string type_token;
      size_t n_inputs = 0;
      in >> info.oid >> type_token >> n_inputs;
      if (in.fail()) return err("bad operator record");
      PEBBLE_ASSIGN_OR_RETURN(info.type, TokenToType(type_token));
      for (size_t k = 0; k < n_inputs; ++k) {
        int input_oid = -1;
        in >> input_oid;
        if (in.fail()) return err("bad operator inputs");
        info.input_oids.push_back(input_oid);
      }
      std::getline(in, info.label);
      if (!info.label.empty() && info.label[0] == ' ') {
        info.label.erase(0, 1);
      }
      store->RegisterOperator(std::move(info));
    } else if (tag == "p") {
      int oid = -1;
      in >> oid;
      if (in.fail()) return err("bad provenance record");
      current = store->Mutable(oid);
    } else if (tag == "i") {
      if (current == nullptr) return err("input before provenance record");
      InputProvenance input;
      int undef = 0;
      std::string schema;
      size_t n = 0;
      in >> input.producer_oid >> undef >> schema >> n;
      if (in.fail()) return err("bad input record");
      input.accessed_undefined = undef != 0;
      if (schema != "-") {
        PEBBLE_ASSIGN_OR_RETURN(input.input_schema, ParseDataType(schema));
      }
      for (size_t k = 0; k < n; ++k) {
        std::string path_text;
        in >> path_text;
        if (in.fail()) return err("bad access path");
        PEBBLE_ASSIGN_OR_RETURN(Path p, Path::Parse(path_text));
        input.accessed.push_back(std::move(p));
      }
      current->inputs.push_back(std::move(input));
    } else if (tag == "m") {
      if (current == nullptr) return err("mapping before provenance record");
      int from_grouping = 0;
      int undef = 0;
      std::string in_text;
      std::string out_text;
      in >> from_grouping >> undef >> in_text >> out_text;
      if (in.fail()) return err("bad mapping record");
      if (undef != 0) {
        current->manip_undefined = true;
      } else {
        Path in_path;
        Path out_path;
        if (in_text != "-") {
          PEBBLE_ASSIGN_OR_RETURN(in_path, Path::Parse(in_text));
        }
        if (out_text != "-") {
          PEBBLE_ASSIGN_OR_RETURN(out_path, Path::Parse(out_text));
        }
        current->manipulations.push_back(PathMapping{
            std::move(in_path), std::move(out_path), from_grouping != 0});
      }
    } else if (tag == "u") {
      if (current == nullptr) return err("ids before provenance record");
      UnaryIdRow row;
      in >> row.in >> row.out;
      if (in.fail()) return err("bad unary id row");
      current->unary_ids.push_back(row);
    } else if (tag == "b") {
      if (current == nullptr) return err("ids before provenance record");
      BinaryIdRow row;
      in >> row.in1 >> row.in2 >> row.out;
      if (in.fail()) return err("bad binary id row");
      current->binary_ids.push_back(row);
    } else if (tag == "f") {
      if (current == nullptr) return err("ids before provenance record");
      FlattenIdRow row;
      in >> row.in >> row.pos >> row.out;
      if (in.fail()) return err("bad flatten id row");
      current->flatten_ids.push_back(row);
    } else if (tag == "a") {
      if (current == nullptr) return err("ids before provenance record");
      AggIdRow row;
      size_t n = 0;
      in >> row.out >> n;
      if (in.fail()) return err("bad aggregation id row");
      row.ins.reserve(n);
      for (size_t k = 0; k < n; ++k) {
        int64_t id = kNoId;
        in >> id;
        if (in.fail()) return err("bad aggregation id row");
        row.ins.push_back(id);
      }
      current->agg_ids.push_back(std::move(row));
    } else {
      return err("unknown record tag '" + tag + "'");
    }
  }
  if (!header_seen) {
    return Status::InvalidArgument("empty provenance document");
  }
  return store;
}

Status SaveProvenanceStore(const ProvenanceStore& store,
                           const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  std::string text = SerializeProvenanceStore(store);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) {
    return Status::IOError("short write to '" + path + "'");
  }
  return Status::OK();
}

Result<std::unique_ptr<ProvenanceStore>> LoadProvenanceStore(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeProvenanceStore(buffer.str());
}

}  // namespace pebble
