#include "core/compactor.h"

#include <chrono>
#include <utility>

#include "core/provenance_wal.h"

namespace pebble {

Result<WalCompactionStats> CompactWal(const std::string& dir) {
  return internal::FoldWalSegments(dir, /*through=*/~0ull, /*sync=*/true);
}

BackgroundCompactor::BackgroundCompactor(WalWriter* writer, Options options)
    : writer_(writer), options_(options) {
  thread_ = std::thread([this] { Loop(); });
}

BackgroundCompactor::~BackgroundCompactor() { Stop(); }

void BackgroundCompactor::TriggerNow() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    triggered_ = true;
  }
  cv_.notify_all();
}

void BackgroundCompactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      if (thread_.joinable()) thread_.join();
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

uint64_t BackgroundCompactor::passes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return passes_;
}

Status BackgroundCompactor::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

void BackgroundCompactor::Loop() {
  for (;;) {
    bool run_pass = false;
    bool stopping = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_ms),
                   [this] { return stop_ || triggered_; });
      run_pass = triggered_;
      triggered_ = false;
      stopping = stop_;
    }
    // A trigger that raced with Stop still gets its pass (drain-on-stop),
    // so TriggerNow-then-Stop deterministically compacts once.
    if (!run_pass) {
      if (stopping) return;
      if (writer_->sealed_bytes() < options_.threshold_bytes) continue;
    }
    Status st = writer_->Compact();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (st.ok()) {
        ++passes_;
      } else if (last_error_.ok()) {
        last_error_ = st;
      }
    }
    if (stopping) return;
  }
}

}  // namespace pebble
