// Container for the structural provenance captured during one pipeline
// execution: one OperatorProvenance per operator plus the pipeline topology
// needed by backtracing (which operator feeds which, which are sources).

#ifndef PEBBLE_CORE_PROVENANCE_STORE_H_
#define PEBBLE_CORE_PROVENANCE_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/provenance_model.h"

namespace pebble {

/// How much provenance the engine captures while executing a pipeline.
enum class CaptureMode {
  /// No provenance at all ("plain Spark" semantics).
  kOff,
  /// Top-level id association tables only (what Titian/RAMP/Newt capture).
  kLineage,
  /// Lightweight structural provenance (Pebble, Def. 5.1): id tables plus
  /// schema-level access/manipulation paths.
  kStructural,
  /// Full per-item provenance of Sec. 4.3 materialized eagerly for every
  /// result item (Lipstick-style annotation density; ablation baseline).
  kFullModel,
};

const char* CaptureModeToString(CaptureMode mode);

/// Static description of one operator in the executed pipeline.
struct OperatorInfo {
  int oid = -1;
  OpType type = OpType::kScan;
  std::vector<int> input_oids;
  std::string label;
};

/// All provenance captured for one pipeline run.
class ProvenanceStore {
 public:
  ProvenanceStore() = default;
  ProvenanceStore(const ProvenanceStore&) = delete;
  ProvenanceStore& operator=(const ProvenanceStore&) = delete;

  /// Registers the static topology entry for an operator. Must be called
  /// once per operator, in any order.
  void RegisterOperator(OperatorInfo info);

  /// Returns the mutable provenance record for `oid`, creating it if needed.
  OperatorProvenance* Mutable(int oid);

  /// Returns the provenance record, or nullptr if none was captured (e.g.
  /// scans, or capture mode kOff).
  const OperatorProvenance* Find(int oid) const;

  const OperatorInfo* FindInfo(int oid) const;

  /// The operator producing the final result.
  int sink_oid() const { return sink_oid_; }
  void set_sink_oid(int oid) {
    sink_oid_ = oid;
    BumpGeneration();
  }

  /// Oids of all scan (source) operators, in registration order.
  std::vector<int> SourceOids() const;

  /// All registered operator oids, in ascending order.
  std::vector<int> AllOids() const;

  CaptureMode mode() const { return mode_; }
  void set_mode(CaptureMode mode) {
    mode_ = mode;
    BumpGeneration();
  }

  /// Process-unique identity of this store instance, assigned at
  /// construction and never reused within the process. Together with
  /// generation() it fingerprints an exact store state: the query answer
  /// cache (core/query_cache.h) keys on (uid, generation), so a cached
  /// answer can never be served for a different store or for this store
  /// after any mutation.
  uint64_t uid() const { return uid_; }

  /// Monotonic mutation counter: bumped by every mutating entry point
  /// (RegisterOperator, Mutable, set_sink_oid, set_mode, AppendFrom).
  /// Capture commits, WAL replay, recovery and compaction all funnel
  /// through these, so any observable store change advances it.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Aggregate size of the lineage component across all operators.
  uint64_t TotalLineageBytes() const;
  /// Aggregate size of the structural component on top of lineage.
  uint64_t TotalStructuralExtraBytes() const;
  /// Aggregate size of the materialized full model (kFullModel only).
  uint64_t TotalFullModelBytes() const;
  /// Total id association rows across all operators.
  uint64_t TotalIdRows() const;

  /// Merges provenance captured over a later run of the SAME pipeline into
  /// this store (micro-batch ingest: one live store, repeated appends).
  /// When this store is empty the topology/mode/sink are adopted from
  /// `other`; otherwise they must match exactly (kInvalidArgument if not).
  /// Schema-level paths are adopted on first sight and verified equal on
  /// later merges; id rows are appended keeping `other`'s out ids, so the
  /// runs must have been executed with non-overlapping id ranges
  /// (ExecOptions::first_item_id) for the result to pass Validate().
  Status AppendFrom(const ProvenanceStore& other);

  /// Integrity pass over the captured provenance, callable after any run
  /// and used as the post-load gate for deserialized snapshots. Verifies
  /// the invariants a correct (in particular retry-idempotent) capture must
  /// uphold:
  ///   - the topology is closed: every input oid is registered, and the
  ///     sink (when set) is registered;
  ///   - every operator populates at most the one id-table flavor matching
  ///     its type (Tab. 6);
  ///   - output ids are unique within each operator AND across the whole
  ///     store (ids come from one run-global counter, so any duplicate
  ///     means a task's rows were committed twice);
  ///   - id chains resolve sink-to-source: every input id referenced by an
  ///     operator's table appears as an output id of the producing
  ///     operator (scans carry their ids on data rows, not in tables, so
  ///     edges into scans are exempt);
  ///   - union rows reference exactly one side, join rows both.
  /// Returns kInternal describing the first violation found.
  Status Validate() const;

 private:
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }
  static uint64_t NextUid();

  std::map<int, OperatorInfo> infos_;
  std::map<int, OperatorProvenance> ops_;
  int sink_oid_ = -1;
  CaptureMode mode_ = CaptureMode::kOff;
  const uint64_t uid_ = NextUid();
  std::atomic<uint64_t> generation_{0};
};

}  // namespace pebble

#endif  // PEBBLE_CORE_PROVENANCE_STORE_H_
