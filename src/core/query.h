// High-level provenance query API: match a tree pattern on a pipeline's
// result, then backtrace the matched items to the sources. This is the
// "holistic" eager query path of the paper (capture during execution,
// backtrace at query time).

#ifndef PEBBLE_CORE_QUERY_H_
#define PEBBLE_CORE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/backtrace.h"
#include "core/tree_pattern.h"
#include "engine/executor.h"

namespace pebble {

/// Result of one structural provenance query.
struct ProvenanceQueryResult {
  /// Matched items on the pipeline output with their query trees (the
  /// right-hand tree of Fig. 2).
  BacktraceStructure matched;
  /// Backtraced provenance per source dataset (the left-hand trees of
  /// Fig. 2).
  std::vector<SourceProvenance> sources;
  /// Degradation record when the query ran with BacktraceOptions limits
  /// (DESIGN.md §9). `truncated == false` means the result is exact; when
  /// true, `matched` and `sources` are sound lower bounds.
  BacktraceTruncation truncation;
  double match_ms = 0;
  double backtrace_ms = 0;
};

/// Runs `pattern` against `run.output` and backtraces the matches using the
/// provenance captured in `run`. Requires capture mode kStructural or
/// kFullModel during execution. The pattern is validated
/// (ValidateTreePattern) before any work happens.
Result<ProvenanceQueryResult> QueryStructuralProvenance(
    const ExecutionResult& run, const TreePattern& pattern,
    int num_threads = 4);

/// Governed variant: `options` bounds the whole query — the deadline and
/// cancellation token cover both pattern matching and backtracing, the
/// visit/result caps bound the backtrace. On a limit trip the provenance
/// reconstructed so far is returned with `result.truncation` explaining why
/// (graceful degradation, not an error). Unlimited options are
/// byte-identical to the ungoverned overload.
Result<ProvenanceQueryResult> QueryStructuralProvenance(
    const ExecutionResult& run, const TreePattern& pattern,
    const BacktraceOptions& options, int num_threads = 4);

/// Offline variant of the above for the decoupled capture-then-query
/// workflow: the pipeline ran earlier (possibly in another process) and
/// `store` was reloaded from a durable snapshot (LoadProvenanceStore),
/// while `output` is the retained result dataset the question is asked on.
Result<ProvenanceQueryResult> QueryStructuralProvenanceOffline(
    const Dataset& output, const ProvenanceStore& store,
    const TreePattern& pattern, int num_threads = 4);

/// Governed offline variant; see the governed eager overload above.
/// `index` is optional: pass the persisted backtrace index surfaced by
/// LoadProvenanceStoreWithIndex (it must describe `store`) to skip the
/// tracer's per-query id-table hashing; nullptr preserves the classic
/// rebuild path.
Result<ProvenanceQueryResult> QueryStructuralProvenanceOffline(
    const Dataset& output, const ProvenanceStore& store,
    const TreePattern& pattern, const BacktraceOptions& options,
    int num_threads = 4, const BacktraceIndex* index = nullptr);

/// Point-in-time offline query (decoupled workflow against a live WAL
/// directory instead of a snapshot file): recovers the store from `wal_dir`
/// replaying only segments with sequence <= `through`
/// (RecoverStoreThrough; pass WalRecoveryInfo::max_segment_seq or anything
/// larger for "everything"), then queries `output` against it. When run
/// boundaries align with segment boundaries (the writer Rotate()s between
/// runs), `through` selects the pipeline run to audit as of.
Result<ProvenanceQueryResult> QueryStructuralProvenanceFromWal(
    const std::string& wal_dir, uint64_t through, const Dataset& output,
    const TreePattern& pattern, const BacktraceOptions& options = {},
    int num_threads = 4);

/// Renders a source provenance (ids plus trees) for human consumption.
std::string SourceProvenanceToString(const SourceProvenance& source);

/// Looks up the data item with provenance id `id` in an id-annotated
/// dataset; nullptr if absent.
ValuePtr FindItemById(const Dataset& dataset, int64_t id);

}  // namespace pebble

#endif  // PEBBLE_CORE_QUERY_H_
