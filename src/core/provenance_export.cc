#include "core/provenance_export.h"

#include <algorithm>

namespace pebble {

namespace {

std::string JoinOids(const std::set<int>& oids) {
  std::string out;
  bool first = true;
  for (int oid : oids) {
    if (!first) out += ",";
    out += std::to_string(oid);
    first = false;
  }
  return out;
}

std::string RenderNode(const BtNode& node, const std::string& key_label) {
  std::string out = key_label;
  out += node.contributing ? "|c|A{" : "|i|A{";
  out += JoinOids(node.accessed_by);
  out += "}|M{";
  out += JoinOids(node.manipulated_by);
  out += "}[";
  std::vector<std::string> children;
  children.reserve(node.children.size());
  for (const BtNode& c : node.children) {
    std::string label = c.key.is_position()
                            ? "p:" + std::to_string(c.key.pos)
                            : "a:" + c.key.attr;
    children.push_back(RenderNode(c, label));
  }
  std::sort(children.begin(), children.end());
  for (size_t i = 0; i < children.size(); ++i) {
    if (i > 0) out += ",";
    out += children[i];
  }
  out += "]";
  return out;
}

}  // namespace

std::string CanonicalTreeString(const BacktraceTree& tree) {
  return RenderNode(tree.root(), "$");
}

Result<std::map<int64_t, int64_t>> IdToOrdinalMap(const Dataset& data) {
  std::map<int64_t, int64_t> out;
  int64_t ordinal = 0;
  for (const Partition& part : data.partitions()) {
    for (const Row& row : part) {
      if (row.id != kNoId) {
        auto [it, inserted] = out.emplace(row.id, ordinal);
        if (!inserted) {
          return Status::Internal("duplicate provenance id " +
                                  std::to_string(row.id) + " in dataset");
        }
      }
      ++ordinal;
    }
  }
  return out;
}

Result<CanonicalProvenance> ExportCanonicalProvenance(
    const ProvenanceQueryResult& result, const Dataset& output,
    const std::map<int, Dataset>& source_datasets) {
  using OrdinalMap = std::map<int64_t, int64_t>;
  CanonicalProvenance out;
  PEBBLE_ASSIGN_OR_RETURN(OrdinalMap out_ids, IdToOrdinalMap(output));
  for (const BacktraceEntry& e : result.matched) {
    auto it = out_ids.find(e.id);
    if (it == out_ids.end()) {
      return Status::Internal("matched id " + std::to_string(e.id) +
                              " not present in the output dataset");
    }
    out.matched.push_back({it->second, CanonicalTreeString(e.tree)});
  }
  std::sort(out.matched.begin(), out.matched.end());
  for (const SourceProvenance& sp : result.sources) {
    auto ds = source_datasets.find(sp.scan_oid);
    if (ds == source_datasets.end()) {
      return Status::Internal("no source dataset for scan oid " +
                              std::to_string(sp.scan_oid));
    }
    PEBBLE_ASSIGN_OR_RETURN(OrdinalMap src_ids, IdToOrdinalMap(ds->second));
    std::map<int64_t, std::string>& dest = out.sources[sp.scan_oid];
    for (const BacktraceEntry& e : sp.items) {
      auto it = src_ids.find(e.id);
      if (it == src_ids.end()) {
        return Status::Internal("backtraced id " + std::to_string(e.id) +
                                " not present in source dataset of scan " +
                                std::to_string(sp.scan_oid));
      }
      auto [slot, inserted] =
          dest.emplace(it->second, CanonicalTreeString(e.tree));
      if (!inserted) {
        return Status::Internal(
            "source item traced twice (duplicate entries for ordinal " +
            std::to_string(it->second) + " at scan " +
            std::to_string(sp.scan_oid) + ")");
      }
    }
  }
  return out;
}

std::string CanonicalProvenance::ToString() const {
  std::string out;
  out += "matched (" + std::to_string(matched.size()) + "):\n";
  for (const auto& [ordinal, tree] : matched) {
    out += "  #" + std::to_string(ordinal) + " " + tree + "\n";
  }
  for (const auto& [oid, items] : sources) {
    out += "source scan " + std::to_string(oid) + " (" +
           std::to_string(items.size()) + "):\n";
    for (const auto& [ordinal, tree] : items) {
      out += "  #" + std::to_string(ordinal) + " " + tree + "\n";
    }
  }
  return out;
}

}  // namespace pebble
