// Compaction of the provenance WAL: folds sealed segments (plus the
// previous snapshot) into a fresh durable v2 snapshot, atomically advances
// the MANIFEST, then reclaims the folded files (DESIGN.md §11.4). Folded
// snapshots go through SaveProvenanceStore and therefore carry the
// persisted backtrace-index segment ("btindex", DESIGN.md §12): every
// compaction also pre-pays the index build for later offline queries.
//
// Crash safety across the whole window:
//   1. snapshot-NNNNNN.pprov is written via AtomicWriteFile — a crash here
//      leaves at most an orphan snapshot, which recovery ignores (the
//      manifest is the commit point);
//   2. MANIFEST is rewritten via AtomicWriteFile — old-or-new, never torn;
//   3. folded segments and superseded snapshots are deleted best-effort —
//      a crash here leaves stale files that recovery skips (sequence <=
//      covered) and the next compaction reclaims.

#ifndef PEBBLE_CORE_COMPACTOR_H_
#define PEBBLE_CORE_COMPACTOR_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"

namespace pebble {

class WalWriter;

/// What one compaction pass did.
struct WalCompactionStats {
  /// False when there was nothing to fold (no uncovered sealed segments).
  bool performed = false;
  /// Highest segment sequence the manifest covers after the pass.
  uint64_t covered_seq = 0;
  size_t segments_folded = 0;
  size_t segments_removed = 0;
  size_t snapshots_removed = 0;
  std::string snapshot_path;
};

/// Offline compaction of a WAL directory with no live writer: folds EVERY
/// segment present — including a torn-tail newest segment, whose torn bytes
/// are unrecoverable either way — into one snapshot and reclaims them.
/// Safe to run repeatedly; a second pass is a no-op. Not safe concurrently
/// with a live WalWriter on the same directory (use WalWriter::Compact /
/// BackgroundCompactor there, which exclude appends for the fold).
Result<WalCompactionStats> CompactWal(const std::string& dir);

namespace internal {
/// Shared fold core used by CompactWal and WalWriter::Compact: folds the
/// present segments with sequence in (manifest covered, `through`] into a
/// new snapshot + manifest, then reclaims folded/superseded files. `sync`
/// controls fsync of the manifest write. Evaluates the wal.manifest
/// failpoint (keyed by the new covered sequence) between snapshot and
/// manifest. On failure the log is untouched (old manifest still rules).
Result<WalCompactionStats> FoldWalSegments(const std::string& dir,
                                           uint64_t through, bool sync);
}  // namespace internal

/// Drives WalWriter::Compact from a background thread whenever the bytes in
/// sealed-but-uncompacted segments exceed a threshold. Compaction runs on
/// this thread while the executor keeps appending between polls; the
/// writer's mutex serializes the actual fold against appends.
struct BackgroundCompactorOptions {
  /// Compact once sealed_bytes() reaches this many bytes.
  uint64_t threshold_bytes = 8ull << 20;
  /// Poll cadence while idle.
  int poll_ms = 50;
};

class BackgroundCompactor {
 public:
  using Options = BackgroundCompactorOptions;

  /// Starts the thread immediately. `writer` must outlive this object.
  explicit BackgroundCompactor(WalWriter* writer, Options options = {});
  ~BackgroundCompactor();

  BackgroundCompactor(const BackgroundCompactor&) = delete;
  BackgroundCompactor& operator=(const BackgroundCompactor&) = delete;

  /// Wakes the thread for an immediate pass regardless of the threshold.
  void TriggerNow();

  /// Stops and joins the thread. Idempotent; also run by the destructor.
  void Stop();

  /// Number of compaction passes this thread completed successfully.
  uint64_t passes() const;

  /// First error any pass returned (compaction failures leave the log
  /// intact, so the writer itself stays healthy).
  Status last_error() const;

 private:
  void Loop();

  WalWriter* const writer_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool triggered_ = false;
  uint64_t passes_ = 0;
  Status last_error_;
  std::thread thread_;
};

}  // namespace pebble

#endif  // PEBBLE_CORE_COMPACTOR_H_
