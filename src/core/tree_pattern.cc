#include "core/tree_pattern.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

namespace pebble {

PatternNode PatternNode::Attr(std::string name) {
  return PatternNode(std::move(name), /*descendant=*/false);
}

PatternNode PatternNode::Descendant(std::string name) {
  return PatternNode(std::move(name), /*descendant=*/true);
}

PatternNode&& PatternNode::Equals(ValuePtr v) && {
  SetPredicate(CompareOp::kEq, std::move(v));
  return std::move(*this);
}

PatternNode&& PatternNode::Where(CompareOp op, ValuePtr v) && {
  SetPredicate(op, std::move(v));
  return std::move(*this);
}

bool PatternNode::SatisfiesPredicate(const Value& v) const {
  if (predicate_value_ == nullptr) return true;
  const Value& c = *predicate_value_;
  int cmp;
  if (v.is_numeric() && c.is_numeric()) {
    double a = v.AsDouble();
    double b = c.AsDouble();
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else if (v.kind() == c.kind()) {
    cmp = v.Compare(c);
  } else {
    return false;  // incomparable kinds never match
  }
  switch (predicate_op_) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

PatternNode&& PatternNode::Count(int min, int max) && {
  min_count_ = min;
  max_count_ = max;
  return std::move(*this);
}

PatternNode&& PatternNode::With(PatternNode child) && {
  children_.push_back(std::move(child));
  return std::move(*this);
}

namespace {

const char* CompareOpToken(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "=";
}

/// Head of a node rendering (name, predicate, count constraint) — shared
/// between the insertion-order ToString and the sorted CanonicalText.
std::string RenderNodeHead(const PatternNode& node) {
  std::string out =
      node.is_descendant() ? "//" + node.name() : node.name();
  if (node.predicate_value() != nullptr) {
    out += std::string(CompareOpToken(node.predicate_op())) +
           node.predicate_value()->ToString();
  }
  if (node.min_count() != 1 ||
      node.max_count() != std::numeric_limits<int>::max()) {
    out += "[" + std::to_string(node.min_count()) + "," +
           (node.max_count() == std::numeric_limits<int>::max()
                ? std::string("*")
                : std::to_string(node.max_count())) +
           "]";
  }
  return out;
}

std::string CanonicalRenderNode(const PatternNode& node) {
  std::string out = RenderNodeHead(node);
  if (!node.children().empty()) {
    std::vector<std::string> rendered;
    rendered.reserve(node.children().size());
    for (const PatternNode& child : node.children()) {
      rendered.push_back(CanonicalRenderNode(child));
    }
    std::sort(rendered.begin(), rendered.end());
    out += "(";
    for (size_t i = 0; i < rendered.size(); ++i) {
      if (i > 0) out += ",";
      out += rendered[i];
    }
    out += ")";
  }
  return out;
}

}  // namespace

std::string PatternNode::ToString() const {
  std::string out = RenderNodeHead(*this);
  if (!children_.empty()) {
    out += "(";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) out += ",";
      out += children_[i].ToString();
    }
    out += ")";
  }
  return out;
}

namespace {

bool MatchValue(const PatternNode& node, const Value& value, const Path& path,
                BacktraceTree* tree);

/// Matches all pattern nodes against one struct context. All must match.
bool MatchStructChildren(const std::vector<PatternNode>& patterns,
                         const Value& context, const Path& base,
                         BacktraceTree* tree);

/// Collects every occurrence of attribute `name` at any depth below
/// `context` (descending through structs and collection elements, recording
/// 1-based positions in the paths).
void FindDescendants(const std::string& name, const Value& context,
                     const Path& base,
                     std::vector<std::pair<ValuePtr, Path>>* out) {
  if (context.is_struct()) {
    for (const FieldRef& f : context.fields()) {
      Path p = base.Child(PathStep{f.name, kNoPos});
      if (f.name == name) {
        out->push_back({f.value, p});
      }
      FindDescendants(name, *f.value, p, out);
    }
  } else if (context.is_collection()) {
    for (size_t i = 0; i < context.num_elements(); ++i) {
      // Positions fold into the last attribute step of the base path.
      std::vector<PathStep> steps = base.steps();
      if (!steps.empty() && !steps.back().has_pos()) {
        steps.back().pos = static_cast<int32_t>(i + 1);
      } else {
        steps.push_back(PathStep{"", static_cast<int32_t>(i + 1)});
      }
      FindDescendants(name, *context.elements()[i], Path(steps), out);
    }
  }
}

/// Matches one pattern node against a resolved value.
bool MatchValue(const PatternNode& node, const Value& value, const Path& path,
                BacktraceTree* tree) {
  if (value.is_collection()) {
    // Each child pattern is counted over the elements; the node's own
    // equality predicate applies per element (collections of constants).
    // The node matches if each child's (and its own) match count lies in
    // that child's count range.
    BacktraceTree local;
    if (node.children().empty()) {
      int count = 0;
      std::vector<int32_t> matched;
      for (size_t i = 0; i < value.num_elements(); ++i) {
        const Value& elem = *value.elements()[i];
        if (node.SatisfiesPredicate(elem)) {
          ++count;
          matched.push_back(static_cast<int32_t>(i + 1));
        }
      }
      if (count < node.min_count() || count > node.max_count()) return false;
      if (count == 0) return false;
      for (int32_t pos : matched) {
        std::vector<PathStep> steps = path.steps();
        steps.back().pos = pos;
        local.Ensure(Path(std::move(steps)), /*contributing=*/true);
      }
      tree->MergeFrom(local);
      return true;
    }
    for (const PatternNode& child : node.children()) {
      int count = 0;
      std::vector<std::pair<int32_t, BacktraceTree>> matches;
      for (size_t i = 0; i < value.num_elements(); ++i) {
        const Value& elem = *value.elements()[i];
        if (!node.SatisfiesPredicate(elem)) {
          continue;
        }
        BacktraceTree elem_tree;
        if (elem.is_struct() &&
            MatchStructChildren({child}, elem, Path(), &elem_tree)) {
          ++count;
          matches.push_back({static_cast<int32_t>(i + 1),
                             std::move(elem_tree)});
        }
      }
      if (count < child.min_count() || count > child.max_count()) {
        return false;
      }
      if (count == 0) return false;
      for (auto& [pos, elem_tree] : matches) {
        std::vector<PathStep> steps = path.steps();
        steps.back().pos = pos;
        Path elem_path(std::move(steps));
        BtNode* anchor = local.Ensure(elem_path, /*contributing=*/true);
        anchor->MergeFrom(elem_tree.root());
        anchor->contributing = true;
      }
    }
    tree->MergeFrom(local);
    return true;
  }

  if (value.is_struct()) {
    if (!node.SatisfiesPredicate(value)) {
      return false;
    }
    BacktraceTree local;
    if (!MatchStructChildren(node.children(), value, Path(), &local)) {
      return false;
    }
    BtNode* anchor = tree->Ensure(path, /*contributing=*/true);
    anchor->MergeFrom(local.root());
    anchor->contributing = true;
    return true;
  }

  // Constant value.
  if (!node.children().empty()) return false;
  if (!node.SatisfiesPredicate(value)) {
    return false;
  }
  tree->Ensure(path, /*contributing=*/true);
  return true;
}

bool MatchStructChildren(const std::vector<PatternNode>& patterns,
                         const Value& context, const Path& base,
                         BacktraceTree* tree) {
  BacktraceTree local;
  for (const PatternNode& node : patterns) {
    if (node.is_descendant()) {
      std::vector<std::pair<ValuePtr, Path>> occurrences;
      FindDescendants(node.name(), context, base, &occurrences);
      int count = 0;
      BacktraceTree node_tree;
      for (const auto& [v, p] : occurrences) {
        BacktraceTree occ_tree;
        if (MatchValue(node, *v, p, &occ_tree)) {
          ++count;
          node_tree.MergeFrom(occ_tree);
        }
      }
      if (count == 0 || count < node.min_count() ||
          count > node.max_count()) {
        return false;
      }
      local.MergeFrom(node_tree);
    } else {
      ValuePtr v = context.FindField(node.name());
      if (v == nullptr) return false;
      Path p = base.Child(PathStep{node.name(), kNoPos});
      if (!MatchValue(node, *v, p, &local)) return false;
    }
  }
  tree->MergeFrom(local);
  return true;
}

}  // namespace

Result<TreePattern::ItemMatch> TreePattern::MatchItem(
    const Value& item) const {
  ItemMatch result;
  if (!item.is_struct()) {
    return Status::TypeError("tree patterns match data items (structs)");
  }
  BacktraceTree tree;
  if (MatchStructChildren(roots_, item, Path(), &tree)) {
    result.matched = true;
    result.tree = std::move(tree);
  }
  return result;
}

Result<BacktraceStructure> TreePattern::Match(const Dataset& data,
                                              int num_threads) const {
  return Match(data, num_threads, Deadline::Infinite(), CancellationToken(),
               nullptr);
}

Result<BacktraceStructure> TreePattern::Match(const Dataset& data,
                                              int num_threads,
                                              const Deadline& deadline,
                                              const CancellationToken& cancel,
                                              bool* truncated) const {
  if (truncated != nullptr) *truncated = false;
  const bool governed = deadline.has_deadline() || cancel.CanBeCancelled();
  const size_t nparts = data.partitions().size();
  std::vector<BacktraceStructure> per_part(nparts);
  std::vector<Status> statuses(nparts);
  // Shared trip flag: once one worker observes an expired deadline or a
  // cancelled token, all partitions stop at their next check. Matches
  // recorded before the trip are kept (partial seed, lower-bound result).
  std::atomic<bool> tripped{false};

  auto match_partition = [&](size_t p) {
    uint32_t ticker = 0;
    for (const Row& row : data.partitions()[p]) {
      if (governed && (++ticker & 0x3F) == 0) {
        if (tripped.load(std::memory_order_relaxed) || cancel.IsCancelled() ||
            deadline.Expired()) {
          tripped.store(true, std::memory_order_relaxed);
          return;
        }
      }
      Result<ItemMatch> m = MatchItem(*row.value);
      if (!m.ok()) {
        statuses[p] = m.status();
        return;
      }
      if (m->matched) {
        per_part[p].push_back(BacktraceEntry{row.id, std::move(m->tree)});
      }
    }
  };

  if (num_threads <= 1 || nparts <= 1) {
    for (size_t p = 0; p < nparts; ++p) {
      match_partition(p);
    }
  } else {
    size_t workers = std::min<size_t>(static_cast<size_t>(num_threads),
                                      nparts);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w]() {
        for (size_t p = w; p < nparts; p += workers) {
          match_partition(p);
        }
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  BacktraceStructure out;
  for (size_t p = 0; p < nparts; ++p) {
    PEBBLE_RETURN_NOT_OK(statuses[p]);
    for (BacktraceEntry& e : per_part[p]) {
      out.push_back(std::move(e));
    }
  }
  if (truncated != nullptr && tripped.load(std::memory_order_relaxed)) {
    *truncated = true;
  }
  return out;
}

namespace {

Status ValidatePatternNode(const PatternNode& node) {
  if (node.name().empty()) {
    return Status::InvalidArgument("pattern node has an empty attribute name");
  }
  if (node.min_count() < 0) {
    return Status::InvalidArgument(
        "pattern node '" + node.name() + "' has a negative min count (" +
        std::to_string(node.min_count()) + ")");
  }
  if (node.max_count() < node.min_count()) {
    return Status::InvalidArgument(
        "pattern node '" + node.name() + "' has max count " +
        std::to_string(node.max_count()) + " < min count " +
        std::to_string(node.min_count()));
  }
  for (const PatternNode& child : node.children()) {
    PEBBLE_RETURN_NOT_OK(ValidatePatternNode(child));
  }
  return Status::OK();
}

}  // namespace

Status ValidateTreePattern(const TreePattern& pattern) {
  if (pattern.roots().empty()) {
    return Status::InvalidArgument("tree pattern has no root nodes")
        .WithContext(pattern.ToString());
  }
  for (const PatternNode& root : pattern.roots()) {
    Status st = ValidatePatternNode(root);
    if (!st.ok()) return st.WithContext(pattern.ToString());
  }
  return Status::OK();
}

std::string TreePattern::ToString() const {
  std::string out = "root(";
  for (size_t i = 0; i < roots_.size(); ++i) {
    if (i > 0) out += ",";
    out += roots_[i].ToString();
  }
  out += ")";
  return out;
}

std::string TreePattern::CanonicalText() const {
  std::vector<std::string> rendered;
  rendered.reserve(roots_.size());
  for (const PatternNode& root : roots_) {
    rendered.push_back(CanonicalRenderNode(root));
  }
  std::sort(rendered.begin(), rendered.end());
  // Top-level conjuncts joined bare (no synthetic root(...) wrapper): this
  // is exactly the Parse conjunction grammar, so the canonical text reparses
  // to a pattern with the same canonical text.
  std::string out;
  for (size_t i = 0; i < rendered.size(); ++i) {
    if (i > 0) out += ",";
    out += rendered[i];
  }
  return out;
}

}  // namespace pebble
