#include "core/query.h"

#include "common/stopwatch.h"
#include "core/provenance_wal.h"
#include "core/query_cache.h"

namespace pebble {

namespace {

/// Shared query body: consult the answer cache, validate inputs, match
/// under the options' deadline and cancellation token, backtrace under the
/// full options, and fold a match-phase trip into the truncation record
/// when the backtrace itself finished clean. Cache eligibility
/// (core/query_cache.h): count-capped questions (max_visited_nodes /
/// max_results) bypass entirely — a cached full answer would violate "at
/// most N"; deadline/cancel-governed questions may hit, and insert only
/// when the answer finished untruncated (i.e. exact).
Result<ProvenanceQueryResult> RunQuery(const Dataset& output,
                                       const ProvenanceStore& store,
                                       const TreePattern& pattern,
                                       const BacktraceOptions& options,
                                       int num_threads,
                                       const BacktraceIndex* index) {
  PEBBLE_RETURN_NOT_OK(ValidateTreePattern(pattern));
  PEBBLE_RETURN_NOT_OK(ValidateBacktraceOptions(options));

  QueryAnswerCache& cache = QueryAnswerCache::Instance();
  const bool count_capped =
      options.max_visited_nodes != 0 || options.max_results != 0;
  const bool cacheable = !count_capped && cache.enabled();
  std::string cache_key;
  std::string exact_pattern;
  if (cacheable) {
    cache_key = QueryAnswerCache::MakeKey(store, output, pattern);
    exact_pattern = pattern.ToString();
    ProvenanceQueryResult cached;
    if (cache.Lookup(cache_key, exact_pattern, &cached)) return cached;
  }

  ProvenanceQueryResult result;
  Stopwatch watch;
  bool match_truncated = false;
  PEBBLE_ASSIGN_OR_RETURN(
      result.matched, pattern.Match(output, num_threads, options.deadline,
                                    options.cancel, &match_truncated));
  result.match_ms = watch.ElapsedMillis();

  watch.Restart();
  Backtracer tracer(&store, index);
  PEBBLE_ASSIGN_OR_RETURN(
      result.sources,
      tracer.Backtrace(result.matched, options, &result.truncation));
  result.backtrace_ms = watch.ElapsedMillis();
  if (match_truncated && !result.truncation.truncated) {
    result.truncation.truncated = true;
    result.truncation.reason = options.cancel.IsCancelled()
                                   ? TruncationReason::kCancelled
                                   : TruncationReason::kDeadline;
    result.truncation.detail = "tree-pattern matching stopped early";
  }
  if (cacheable && !result.truncation.truncated) {
    cache.Insert(cache_key, exact_pattern, result);
  }
  return result;
}

}  // namespace

Result<ProvenanceQueryResult> QueryStructuralProvenance(
    const ExecutionResult& run, const TreePattern& pattern, int num_threads) {
  return QueryStructuralProvenance(run, pattern, BacktraceOptions(),
                                   num_threads);
}

Result<ProvenanceQueryResult> QueryStructuralProvenance(
    const ExecutionResult& run, const TreePattern& pattern,
    const BacktraceOptions& options, int num_threads) {
  if (run.provenance == nullptr) {
    return Status::InvalidArgument(
        "pipeline was executed without provenance capture");
  }
  return RunQuery(run.output, *run.provenance, pattern, options, num_threads,
                  /*index=*/nullptr);
}

Result<ProvenanceQueryResult> QueryStructuralProvenanceOffline(
    const Dataset& output, const ProvenanceStore& store,
    const TreePattern& pattern, int num_threads) {
  return QueryStructuralProvenanceOffline(output, store, pattern,
                                          BacktraceOptions(), num_threads);
}

Result<ProvenanceQueryResult> QueryStructuralProvenanceOffline(
    const Dataset& output, const ProvenanceStore& store,
    const TreePattern& pattern, const BacktraceOptions& options,
    int num_threads, const BacktraceIndex* index) {
  return RunQuery(output, store, pattern, options, num_threads, index);
}

Result<ProvenanceQueryResult> QueryStructuralProvenanceFromWal(
    const std::string& wal_dir, uint64_t through, const Dataset& output,
    const TreePattern& pattern, const BacktraceOptions& options,
    int num_threads) {
  PEBBLE_ASSIGN_OR_RETURN(RecoveredStore recovered,
                          RecoverStoreThrough(wal_dir, through));
  return RunQuery(output, *recovered.store, pattern, options, num_threads,
                  /*index=*/nullptr);
}

std::string SourceProvenanceToString(const SourceProvenance& source) {
  std::string out = "source [" + std::to_string(source.scan_oid) + "] " +
                    source.source_name + ":\n";
  for (const BacktraceEntry& entry : source.items) {
    out += "  item " + std::to_string(entry.id) + ":\n";
    std::string tree = entry.tree.ToString();
    // Indent the tree rendering.
    size_t start = 0;
    while (start < tree.size()) {
      size_t end = tree.find('\n', start);
      if (end == std::string::npos) end = tree.size();
      out += "    " + tree.substr(start, end - start) + "\n";
      start = end + 1;
    }
  }
  return out;
}

ValuePtr FindItemById(const Dataset& dataset, int64_t id) {
  for (const Partition& part : dataset.partitions()) {
    for (const Row& row : part) {
      if (row.id == id) return row.value;
    }
  }
  return nullptr;
}

}  // namespace pebble
