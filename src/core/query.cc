#include "core/query.h"

#include "common/stopwatch.h"

namespace pebble {

Result<ProvenanceQueryResult> QueryStructuralProvenance(
    const ExecutionResult& run, const TreePattern& pattern, int num_threads) {
  if (run.provenance == nullptr) {
    return Status::InvalidArgument(
        "pipeline was executed without provenance capture");
  }
  ProvenanceQueryResult result;
  Stopwatch watch;
  PEBBLE_ASSIGN_OR_RETURN(result.matched,
                          pattern.Match(run.output, num_threads));
  result.match_ms = watch.ElapsedMillis();

  watch.Restart();
  Backtracer tracer(run.provenance.get());
  PEBBLE_ASSIGN_OR_RETURN(result.sources, tracer.Backtrace(result.matched));
  result.backtrace_ms = watch.ElapsedMillis();
  return result;
}

Result<ProvenanceQueryResult> QueryStructuralProvenanceOffline(
    const Dataset& output, const ProvenanceStore& store,
    const TreePattern& pattern, int num_threads) {
  ProvenanceQueryResult result;
  Stopwatch watch;
  PEBBLE_ASSIGN_OR_RETURN(result.matched, pattern.Match(output, num_threads));
  result.match_ms = watch.ElapsedMillis();

  watch.Restart();
  Backtracer tracer(&store);
  PEBBLE_ASSIGN_OR_RETURN(result.sources, tracer.Backtrace(result.matched));
  result.backtrace_ms = watch.ElapsedMillis();
  return result;
}

std::string SourceProvenanceToString(const SourceProvenance& source) {
  std::string out = "source [" + std::to_string(source.scan_oid) + "] " +
                    source.source_name + ":\n";
  for (const BacktraceEntry& entry : source.items) {
    out += "  item " + std::to_string(entry.id) + ":\n";
    std::string tree = entry.tree.ToString();
    // Indent the tree rendering.
    size_t start = 0;
    while (start < tree.size()) {
      size_t end = tree.find('\n', start);
      if (end == std::string::npos) end = tree.size();
      out += "    " + tree.substr(start, end - start) + "\n";
      start = end + 1;
    }
  }
  return out;
}

ValuePtr FindItemById(const Dataset& dataset, int64_t id) {
  for (const Partition& part : dataset.partitions()) {
    for (const Row& row : part) {
      if (row.id == id) return row.value;
    }
  }
  return nullptr;
}

}  // namespace pebble
