#include "core/query.h"

#include "common/stopwatch.h"

namespace pebble {

namespace {

/// Shared query body: validate inputs, match under the options' deadline and
/// cancellation token, backtrace under the full options, and fold a
/// match-phase trip into the truncation record when the backtrace itself
/// finished clean.
Result<ProvenanceQueryResult> RunQuery(const Dataset& output,
                                       const ProvenanceStore& store,
                                       const TreePattern& pattern,
                                       const BacktraceOptions& options,
                                       int num_threads) {
  PEBBLE_RETURN_NOT_OK(ValidateTreePattern(pattern));
  PEBBLE_RETURN_NOT_OK(ValidateBacktraceOptions(options));
  ProvenanceQueryResult result;
  Stopwatch watch;
  bool match_truncated = false;
  PEBBLE_ASSIGN_OR_RETURN(
      result.matched, pattern.Match(output, num_threads, options.deadline,
                                    options.cancel, &match_truncated));
  result.match_ms = watch.ElapsedMillis();

  watch.Restart();
  Backtracer tracer(&store);
  PEBBLE_ASSIGN_OR_RETURN(
      result.sources,
      tracer.Backtrace(result.matched, options, &result.truncation));
  result.backtrace_ms = watch.ElapsedMillis();
  if (match_truncated && !result.truncation.truncated) {
    result.truncation.truncated = true;
    result.truncation.reason = options.cancel.IsCancelled()
                                   ? TruncationReason::kCancelled
                                   : TruncationReason::kDeadline;
    result.truncation.detail = "tree-pattern matching stopped early";
  }
  return result;
}

}  // namespace

Result<ProvenanceQueryResult> QueryStructuralProvenance(
    const ExecutionResult& run, const TreePattern& pattern, int num_threads) {
  return QueryStructuralProvenance(run, pattern, BacktraceOptions(),
                                   num_threads);
}

Result<ProvenanceQueryResult> QueryStructuralProvenance(
    const ExecutionResult& run, const TreePattern& pattern,
    const BacktraceOptions& options, int num_threads) {
  if (run.provenance == nullptr) {
    return Status::InvalidArgument(
        "pipeline was executed without provenance capture");
  }
  return RunQuery(run.output, *run.provenance, pattern, options, num_threads);
}

Result<ProvenanceQueryResult> QueryStructuralProvenanceOffline(
    const Dataset& output, const ProvenanceStore& store,
    const TreePattern& pattern, int num_threads) {
  return QueryStructuralProvenanceOffline(output, store, pattern,
                                          BacktraceOptions(), num_threads);
}

Result<ProvenanceQueryResult> QueryStructuralProvenanceOffline(
    const Dataset& output, const ProvenanceStore& store,
    const TreePattern& pattern, const BacktraceOptions& options,
    int num_threads) {
  return RunQuery(output, store, pattern, options, num_threads);
}

std::string SourceProvenanceToString(const SourceProvenance& source) {
  std::string out = "source [" + std::to_string(source.scan_oid) + "] " +
                    source.source_name + ":\n";
  for (const BacktraceEntry& entry : source.items) {
    out += "  item " + std::to_string(entry.id) + ":\n";
    std::string tree = entry.tree.ToString();
    // Indent the tree rendering.
    size_t start = 0;
    while (start < tree.size()) {
      size_t end = tree.find('\n', start);
      if (end == std::string::npos) end = tree.size();
      out += "    " + tree.substr(start, end - start) + "\n";
      start = end + 1;
    }
  }
  return out;
}

ValuePtr FindItemById(const Dataset& dataset, int64_t id) {
  for (const Partition& part : dataset.partitions()) {
    for (const Row& row : part) {
      if (row.id == id) return row.value;
    }
  }
  return nullptr;
}

}  // namespace pebble
