// Streaming provenance commit hook. The executor commits each operator's
// staged id rows into the run's ProvenanceStore at one serial point
// (CheckProvenanceCommit gates the staged-column appends; the operator's
// commit is complete when Execute returns). A ProvenanceCommitSink observes
// exactly those commit points, in topological operator order, so an
// implementation can make every committed chunk durable before the run
// acknowledges the operator — this is the engine-side seam the provenance
// WAL (core/provenance_wal.h) plugs into.
//
// This header is part of the provenance-model layer (pebble_prov) so the
// engine can depend on the interface without depending on pebble_core,
// which implements WalWriter on top of it.

#ifndef PEBBLE_CORE_COMMIT_SINK_H_
#define PEBBLE_CORE_COMMIT_SINK_H_

#include <cstdint>

#include "common/status.h"

namespace pebble {

class ProvenanceStore;

/// Observer of the executor's serial provenance-commit points. Calls arrive
/// on the executor thread, strictly ordered:
///
///   OnRunBegin(store, first_item_id)        once, topology registered
///   OnOperatorCommit(store, oid)            once per operator, topo order,
///                                           after its staged rows committed
///   OnRunEnd(store, next_item_id)           once, iff every operator ran
///
/// Any non-OK return fails the run at that point (the current operator is
/// committed in memory but the run is not acknowledged). A failed run calls
/// no further hooks; the sink may be reused for a later run only if its
/// implementation allows it (WalWriter does not — it poisons itself on
/// failure so no record can land after a torn tail).
class ProvenanceCommitSink {
 public:
  virtual ~ProvenanceCommitSink() = default;

  /// The run's store exists and holds the full topology (mode, sink oid,
  /// every OperatorInfo) but no id rows yet. `first_item_id` is the first
  /// top-level item id this run will allocate.
  virtual Status OnRunBegin(const ProvenanceStore& store,
                            int64_t first_item_id) = 0;

  /// Operator `oid`'s staged rows are fully committed into `store`. For
  /// operators that capture nothing (scans, capture-mode gaps) the store
  /// has no record for `oid`; sinks must tolerate that.
  virtual Status OnOperatorCommit(const ProvenanceStore& store, int oid) = 0;

  /// The run completed; `next_item_id` is the first id a later run over the
  /// same store may use without colliding.
  virtual Status OnRunEnd(const ProvenanceStore& store,
                          int64_t next_item_id) = 0;
};

}  // namespace pebble

#endif  // PEBBLE_CORE_COMMIT_SINK_H_
