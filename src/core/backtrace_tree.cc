#include "core/backtrace_tree.h"

#include <algorithm>

namespace pebble {

std::string BtNodeKey::ToString() const {
  if (is_position()) {
    return pos == kPosPlaceholder ? "[pos]" : std::to_string(pos);
  }
  return attr;
}

BtNode* BtNode::FindChild(const BtNodeKey& k) {
  for (BtNode& c : children) {
    if (c.key == k) return &c;
  }
  return nullptr;
}

const BtNode* BtNode::FindChild(const BtNodeKey& k) const {
  for (const BtNode& c : children) {
    if (c.key == k) return &c;
  }
  return nullptr;
}

BtNode* BtNode::EnsureChild(const BtNodeKey& k, bool contributing) {
  if (BtNode* existing = FindChild(k)) return existing;
  BtNode node;
  node.key = k;
  node.contributing = contributing;
  children.push_back(std::move(node));
  return &children.back();
}

bool BtNode::RemoveChild(const BtNodeKey& k) {
  for (auto it = children.begin(); it != children.end(); ++it) {
    if (it->key == k) {
      children.erase(it);
      return true;
    }
  }
  return false;
}

void BtNode::MergeFrom(const BtNode& other) {
  accessed_by.insert(other.accessed_by.begin(), other.accessed_by.end());
  manipulated_by.insert(other.manipulated_by.begin(),
                        other.manipulated_by.end());
  contributing = contributing || other.contributing;
  for (const BtNode& oc : other.children) {
    if (BtNode* mine = FindChild(oc.key)) {
      mine->MergeFrom(oc);
    } else {
      children.push_back(oc);
    }
  }
}

bool BtNode::operator==(const BtNode& other) const {
  if (!(key == other.key) || accessed_by != other.accessed_by ||
      manipulated_by != other.manipulated_by ||
      contributing != other.contributing ||
      children.size() != other.children.size()) {
    return false;
  }
  // Order-insensitive child comparison.
  for (const BtNode& c : children) {
    const BtNode* oc = other.FindChild(c.key);
    if (oc == nullptr || !(c == *oc)) return false;
  }
  return true;
}

std::vector<BtNodeKey> BacktraceTree::KeysOf(const Path& path) {
  std::vector<BtNodeKey> keys;
  for (const PathStep& step : path.steps()) {
    if (!step.attr().empty()) {
      keys.push_back(BtNodeKey{step.attr(), kNoPos});
    }
    if (step.has_pos()) {
      keys.push_back(BtNodeKey{"", step.pos});
    }
  }
  return keys;
}

BtNode* BacktraceTree::Find(const Path& path) {
  BtNode* cur = &root_;
  for (const BtNodeKey& k : KeysOf(path)) {
    cur = cur->FindChild(k);
    if (cur == nullptr) return nullptr;
  }
  return cur;
}

const BtNode* BacktraceTree::Find(const Path& path) const {
  const BtNode* cur = &root_;
  for (const BtNodeKey& k : KeysOf(path)) {
    cur = cur->FindChild(k);
    if (cur == nullptr) return nullptr;
  }
  return cur;
}

BtNode* BacktraceTree::Ensure(const Path& path, bool contributing) {
  BtNode* cur = &root_;
  for (const BtNodeKey& k : KeysOf(path)) {
    cur = cur->EnsureChild(k, contributing);
  }
  return cur;
}

bool BacktraceTree::AccessPath(const Path& path, int oid) {
  // Missing nodes are created with c = false (influencing only); the access
  // mark goes on the terminal node, which names the accessed attribute.
  // Intermediate nodes stay unmarked so that later manipulations moving
  // their children can prune them (no phantom attributes in input trees).
  bool created = Find(path) == nullptr;
  BtNode* terminal = Ensure(path, /*contributing=*/false);
  terminal->accessed_by.insert(oid);
  return created;
}

namespace {

/// Detaches the subtree at keys[depth...] under `node`; prunes ancestors
/// that end up childless, folding their access/manipulation marks into the
/// detached subtree root so no operator history is lost. Returns true if
/// `node` itself should be removed by its parent (pruning cascade). `out`
/// receives the detached subtree.
bool DetachRec(BtNode* node, const std::vector<BtNodeKey>& keys, size_t depth,
               bool* found, BtNode* out) {
  if (depth == keys.size()) return false;  // never called this way
  BtNode* child = node->FindChild(keys[depth]);
  if (child == nullptr) return false;
  if (depth + 1 == keys.size()) {
    *out = std::move(*child);
    // Erase by position: the move above hollowed out the child's key, so a
    // key-based lookup would no longer find it.
    node->children.erase(node->children.begin() +
                         (child - node->children.data()));
    *found = true;
  } else {
    if (DetachRec(child, keys, depth + 1, found, out)) {
      node->RemoveChild(keys[depth]);
    }
  }
  if (!*found || !node->children.empty()) return false;
  // This ancestor existed only to host the moved subtree; fold its marks
  // into the subtree root and let the parent prune it.
  out->accessed_by.insert(node->accessed_by.begin(), node->accessed_by.end());
  out->manipulated_by.insert(node->manipulated_by.begin(),
                             node->manipulated_by.end());
  return true;
}

}  // namespace

bool BacktraceTree::ManipulatePath(const Path& in, const Path& out, int oid) {
  std::vector<BtNodeKey> keys = KeysOf(out);
  if (keys.empty()) return false;
  bool found = false;
  BtNode detached;
  DetachRec(&root_, keys, 0, &found, &detached);
  if (!found) return false;
  BtNode* target = Ensure(in, detached.contributing);
  detached.key = target->key;
  target->MergeFrom(detached);
  target->manipulated_by.insert(oid);
  return true;
}

void BacktraceTree::ApplyManipulations(const std::vector<PathMapping>& mappings,
                                       int oid) {
  // Detach all matched subtrees against the pre-transformation tree first,
  // then graft, so mappings never observe each other's effects.
  struct Detached {
    const Path* in;
    BtNode subtree;
  };
  std::vector<Detached> detached;
  for (const PathMapping& m : mappings) {
    std::vector<BtNodeKey> keys = KeysOf(m.out);
    if (keys.empty()) continue;
    bool found = false;
    BtNode node;
    DetachRec(&root_, keys, 0, &found, &node);
    if (found) detached.push_back(Detached{&m.in, std::move(node)});
  }
  for (Detached& d : detached) {
    BtNode* target = Ensure(*d.in, d.subtree.contributing);
    d.subtree.key = target->key;
    target->MergeFrom(d.subtree);
    target->manipulated_by.insert(oid);
  }
}

bool BacktraceTree::RemoveSubtree(const Path& path) {
  std::vector<BtNodeKey> keys = KeysOf(path);
  if (keys.empty()) return false;
  BtNode* parent = &root_;
  for (size_t i = 0; i + 1 < keys.size(); ++i) {
    parent = parent->FindChild(keys[i]);
    if (parent == nullptr) return false;
  }
  return parent->RemoveChild(keys.back());
}

void BacktraceTree::RestrictToSchema(const DataType& schema) {
  auto& children = root_.children;
  children.erase(std::remove_if(children.begin(), children.end(),
                                [&](const BtNode& c) {
                                  return c.key.is_position() ||
                                         schema.FindField(c.key.attr) ==
                                             nullptr;
                                }),
                 children.end());
}

namespace {

void MarkAllRec(BtNode* node, int oid) {
  node->manipulated_by.insert(oid);
  for (BtNode& c : node->children) {
    MarkAllRec(&c, oid);
  }
}

void VisitRec(const BtNode& node, Path path,
              const std::function<void(const Path&, const BtNode&)>& fn) {
  for (const BtNode& c : node.children) {
    Path child_path = path;
    if (c.key.is_position()) {
      // Fold the position into the last attribute step.
      std::vector<PathStep> steps = path.steps();
      if (!steps.empty() && !steps.back().has_pos()) {
        steps.back().pos = c.key.pos;
        child_path = Path(std::move(steps));
      } else {
        child_path = path.Child(PathStep{"", c.key.pos});
      }
    } else {
      child_path = path.Child(PathStep{c.key.attr, kNoPos});
    }
    fn(child_path, c);
    VisitRec(c, child_path, fn);
  }
}

void RenderRec(const BtNode& node, int indent, std::string* out) {
  for (const BtNode& c : node.children) {
    out->append(static_cast<size_t>(indent) * 2, ' ');
    out->append(c.key.ToString());
    out->append(c.contributing ? " [contributing]" : " [influencing]");
    if (!c.accessed_by.empty()) {
      out->append(" A={");
      bool first = true;
      for (int oid : c.accessed_by) {
        if (!first) out->append(",");
        out->append(std::to_string(oid));
        first = false;
      }
      out->append("}");
    }
    if (!c.manipulated_by.empty()) {
      out->append(" M={");
      bool first = true;
      for (int oid : c.manipulated_by) {
        if (!first) out->append(",");
        out->append(std::to_string(oid));
        first = false;
      }
      out->append("}");
    }
    out->append("\n");
    RenderRec(c, indent + 1, out);
  }
}

}  // namespace

void BacktraceTree::MarkAllManipulated(int oid) {
  for (BtNode& c : root_.children) {
    MarkAllRec(&c, oid);
  }
}

void BacktraceTree::Visit(
    const std::function<void(const Path&, const BtNode&)>& fn) const {
  VisitRec(root_, Path(), fn);
}

std::string BacktraceTree::ToString() const {
  std::string out;
  RenderRec(root_, 0, &out);
  return out;
}

void MergeEntry(BacktraceStructure* structure, BacktraceEntry entry) {
  for (BacktraceEntry& existing : *structure) {
    if (existing.id == entry.id) {
      existing.tree.MergeFrom(entry.tree);
      return;
    }
  }
  structure->push_back(std::move(entry));
}

namespace {

inline uint64_t MixHash(uint64_t h, uint64_t v) {
  // FNV-1a style mix; the exact constants only affect collision rates.
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

uint64_t BtNodeStructuralHash(const BtNode& node) {
  uint64_t h = 0xcbf29ce484222325ull;
  h = MixHash(h, std::hash<std::string>()(node.key.attr));
  h = MixHash(h, static_cast<uint64_t>(node.key.pos));
  h = MixHash(h, node.contributing ? 1 : 2);
  for (int oid : node.accessed_by) {
    h = MixHash(h, 0xA0000000ull + static_cast<uint64_t>(oid));
  }
  for (int oid : node.manipulated_by) {
    h = MixHash(h, 0xB0000000ull + static_cast<uint64_t>(oid));
  }
  // operator== compares children order-insensitively, so child hashes must
  // combine commutatively for "equal implies equal hash" to hold.
  uint64_t children = 0;
  for (const BtNode& child : node.children) {
    children += BtNodeStructuralHash(child);
  }
  return MixHash(h, children);
}

uint64_t BacktraceTreeStructuralHash(const BacktraceTree& tree) {
  return BtNodeStructuralHash(tree.root());
}

}  // namespace pebble
