// Line-oriented provenance record grammar, shared by the legacy v1 text
// format, the durable v2 snapshot segments (provenance_io.cc) and the
// provenance WAL payloads (provenance_wal.cc).
//
// One record per line, space-separated fields. Paths and type renderings
// contain no spaces; labels go last on their line and may contain spaces.
//
//   o <oid> <type> <n_inputs> <input_oid>... <label...>
//   p <oid>                          start of captured record for oid
//   i <producer_oid> <undef:0|1> <schema_ref|-> <n> <path>...
//   m <from_grouping:0|1> <undef:0|1> <in_path|-> <out_path|->
//   u <in> <out>
//   b <in1> <in2> <out>
//   f <in> <pos> <out>
//   a <out> <n> <in>...
//
// In the legacy v1 text format <schema_ref> is the inline type rendering;
// in durable v2 segments it is "@<index>" into the schemas segment. WAL
// payloads use the inline rendering (every record must be self-contained).
//
// The emitted bytes are frozen: the golden identity tests fingerprint
// SerializeProvenanceStore output, which is built from these helpers.

#ifndef PEBBLE_CORE_PROVENANCE_RECORDS_H_
#define PEBBLE_CORE_PROVENANCE_RECORDS_H_

#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/provenance_store.h"

namespace pebble {
namespace provio {

const char* ModeToToken(CaptureMode mode);
Result<CaptureMode> TokenToMode(const std::string& token);
const char* TypeToToken(OpType type);
Result<OpType> TokenToType(const std::string& token);

void AppendTopologyLine(const OperatorInfo& info, std::string* out);
void AppendInputLine(const InputProvenance& input,
                     const std::string& schema_ref, std::string* out);
void AppendManipLines(const OperatorProvenance& prov, std::string* out);
void AppendIdRowLines(const OperatorProvenance& prov, std::string* out);

/// Per-flavor row counts marking how much of an operator's id tables has
/// already been emitted. The WAL uses one cursor per operator to serialize
/// only the delta committed since the previous record.
struct IdTableCursor {
  size_t unary = 0;
  size_t binary = 0;
  size_t flatten = 0;
  size_t agg = 0;
};

/// Cursor positioned at the current end of `prov`'s id tables.
IdTableCursor EndCursor(const OperatorProvenance& prov);

/// True iff `prov` has id rows past `cursor`.
bool HasRowsAfter(const OperatorProvenance& prov, const IdTableCursor& cursor);

/// Serializes the id rows in [cursor, end of tables) and advances `cursor`
/// to the new end. AppendIdRowLines(prov, out) is the zero-cursor case.
void AppendIdRowLinesFrom(const OperatorProvenance& prov,
                          IdTableCursor* cursor, std::string* out);

/// Row indices of `out_ids` sorted by ascending id value. This is the
/// payload of the persisted backtrace-index segment ("btindex",
/// provenance_io.cc): a permutation per id table that turns out-id lookup
/// into binary search without rebuilding hash maps at query time. The ids
/// of one operator are distinct (ProvenanceStore::Validate()), so the
/// order — and therefore the serialized segment — is deterministic.
std::vector<uint32_t> SortedByOutPermutation(
    const std::vector<int64_t>& out_ids);

// Parsers: callers wrap failures with line/segment/file context; messages
// here describe just the defect.

Status ParseTopologyRecord(std::istringstream& in, ProvenanceStore* store);

/// Parses an `i` record. With `schema_table` != nullptr the schema field
/// must be "-" or "@<index>"; otherwise it is an inline type rendering.
Status ParseInputRecord(std::istringstream& in, OperatorProvenance* current,
                        const std::vector<TypePtr>* schema_table);

Status ParseManipRecord(std::istringstream& in, OperatorProvenance* current);

Status ParseIdRecord(const std::string& tag, std::istringstream& in,
                     OperatorProvenance* current);

}  // namespace provio
}  // namespace pebble

#endif  // PEBBLE_CORE_PROVENANCE_RECORDS_H_
