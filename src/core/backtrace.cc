#include "core/backtrace.h"

#include <algorithm>
#include <unordered_map>

namespace pebble {

namespace {

/// Seed entries traced per chunk on the governed path. Small enough that
/// several chunks finish within a tens-of-milliseconds deadline even on
/// the stress-scale scenarios (a tight deadline then yields a non-empty
/// partial answer), large enough to amortize the per-chunk bookkeeping.
constexpr size_t kSeedChunk = 4;

}  // namespace

Status ValidateBacktraceOptions(const BacktraceOptions& options) {
  if (options.max_visited_nodes < 0) {
    return Status::InvalidArgument(
        "max_visited_nodes must be non-negative, got " +
        std::to_string(options.max_visited_nodes));
  }
  if (options.max_results < 0) {
    return Status::InvalidArgument("max_results must be non-negative, got " +
                                   std::to_string(options.max_results));
  }
  return Status::OK();
}

const char* TruncationReasonToString(TruncationReason reason) {
  switch (reason) {
    case TruncationReason::kNone:
      return "none";
    case TruncationReason::kDeadline:
      return "deadline";
    case TruncationReason::kCancelled:
      return "cancelled";
    case TruncationReason::kVisitLimit:
      return "visit-limit";
    case TruncationReason::kResultLimit:
      return "result-limit";
  }
  return "?";
}

/// Per-query governance state: limits plus the running visit count,
/// checked at every recursion level of the governed path.
struct Backtracer::TraceState {
  const BacktraceOptions* options = nullptr;
  uint64_t visited = 0;
  uint32_t polls = 0;

  /// Cadence check for the per-entry mapping loops: deadline/cancel every
  /// 64 entries (one big structure at one operator can be most of a
  /// chunk's work, so per-level checks alone overshoot tight deadlines).
  /// Does not count toward the visit limit.
  Status Poll() {
    if ((++polls & 0x3F) != 0) return Status::OK();
    PEBBLE_RETURN_NOT_OK(options->cancel.Check("backtrace"));
    return options->deadline.Check("backtrace");
  }

  /// Counts `about_to_visit` structure entries, then checks every limit.
  /// Governance trips surface as kResourceExhausted / kCancelled /
  /// kDeadlineExceeded and are converted to truncation by the caller.
  Status CheckLimits(size_t about_to_visit) {
    visited += about_to_visit;
    if (options->max_visited_nodes > 0 &&
        visited > static_cast<uint64_t>(options->max_visited_nodes)) {
      return Status::ResourceExhausted(
          "backtrace visited " + std::to_string(visited) +
          " structure entries, over the limit of " +
          std::to_string(options->max_visited_nodes));
    }
    PEBBLE_RETURN_NOT_OK(options->cancel.Check("backtrace"));
    return options->deadline.Check("backtrace");
  }
};

namespace {

void ExpandAccessPathRec(const TypePtr& type, const Path& path,
                         std::vector<Path>* out) {
  if (type->kind() == TypeKind::kStruct && !type->fields().empty()) {
    for (const FieldType& f : type->fields()) {
      ExpandAccessPathRec(f.type, path.Child(PathStep{f.name, kNoPos}), out);
    }
    return;
  }
  out->push_back(path);
}

void AddSchemaNodes(BtNode* node, const DataType& type) {
  switch (type.kind()) {
    case TypeKind::kStruct:
      for (const FieldType& f : type.fields()) {
        BtNode* child = node->EnsureChild(BtNodeKey{f.name, kNoPos},
                                          /*contributing=*/true);
        AddSchemaNodes(child, *f.type);
      }
      break;
    case TypeKind::kBag:
    case TypeKind::kSet:
      // Collection elements contribute their attributes without positions.
      AddSchemaNodes(node, *type.element());
      break;
    default:
      break;
  }
}

/// Expands every path of A against the input schema; undefined A (map)
/// yields an empty list.
std::vector<Path> ExpandedAccess(const InputProvenance& input) {
  std::vector<Path> out;
  if (input.accessed_undefined || input.input_schema == nullptr) return out;
  for (const Path& p : input.accessed) {
    std::vector<Path> expanded = ExpandAccessPath(input.input_schema, p);
    out.insert(out.end(), expanded.begin(), expanded.end());
  }
  return out;
}

}  // namespace

std::vector<Path> ExpandAccessPath(const TypePtr& schema, const Path& path) {
  std::vector<Path> out;
  Result<TypePtr> type = ResolveType(schema, path);
  if (!type.ok()) {
    out.push_back(path);
    return out;
  }
  ExpandAccessPathRec(type.value(), path, &out);
  return out;
}

BacktraceTree BuildSchemaTree(const TypePtr& schema) {
  BacktraceTree tree;
  if (schema != nullptr) {
    AddSchemaNodes(&tree.root(), *schema);
  }
  return tree;
}


BacktraceIndex::BacktraceIndex(const ProvenanceStore& store) {
  for (int oid : store.AllOids()) {
    const OperatorProvenance* prov = store.Find(oid);
    if (prov == nullptr) continue;
    if (!prov->unary_ids.empty()) {
      const UnaryIdTable& t = prov->unary_ids;
      auto& map = unary_[oid];
      map.reserve(t.size());
      for (size_t i = 0; i < t.size(); ++i) {
        map.emplace(t.out_col()[i], t.in_col()[i]);
      }
    }
    if (!prov->binary_ids.empty()) {
      const BinaryIdTable& t = prov->binary_ids;
      auto& map = binary_[oid];
      map.reserve(t.size());
      for (size_t i = 0; i < t.size(); ++i) {
        map.emplace(t.out_col()[i], BinaryEntry{t.in1_col()[i], t.in2_col()[i]});
      }
    }
    if (!prov->flatten_ids.empty()) {
      const FlattenIdTable& t = prov->flatten_ids;
      auto& map = flatten_[oid];
      map.reserve(t.size());
      for (size_t i = 0; i < t.size(); ++i) {
        map.emplace(t.out_col()[i], FlattenEntry{t.in_col()[i], t.pos_col()[i]});
      }
    }
    if (!prov->agg_ids.empty()) {
      const AggIdTable& t = prov->agg_ids;
      auto& map = agg_[oid];
      map.reserve(t.size());
      for (size_t i = 0; i < t.size(); ++i) {
        // Spans borrow the table's flat in-id column; the index documents
        // that it must not outlive the store.
        map.emplace(t.out_col()[i], t.ins(i));
      }
    }
  }
}

const std::unordered_map<int64_t, int64_t>* BacktraceIndex::unary(
    int oid) const {
  auto it = unary_.find(oid);
  return it == unary_.end() ? nullptr : &it->second;
}

const std::unordered_map<int64_t, BacktraceIndex::BinaryEntry>*
BacktraceIndex::binary(int oid) const {
  auto it = binary_.find(oid);
  return it == binary_.end() ? nullptr : &it->second;
}

const std::unordered_map<int64_t, BacktraceIndex::FlattenEntry>*
BacktraceIndex::flatten(int oid) const {
  auto it = flatten_.find(oid);
  return it == flatten_.end() ? nullptr : &it->second;
}

const std::unordered_map<int64_t, IdSpan>* BacktraceIndex::agg(
    int oid) const {
  auto it = agg_.find(oid);
  return it == agg_.end() ? nullptr : &it->second;
}

Result<std::vector<SourceProvenance>> Backtracer::Backtrace(
    const BacktraceStructure& seed) const {
  if (store_ == nullptr) {
    return Status::InvalidArgument("no provenance store (capture was off?)");
  }
  std::map<int, BacktraceStructure> at_sources;
  PEBBLE_RETURN_NOT_OK(
      BacktraceFrom(store_->sink_oid(), seed, &at_sources, nullptr));
  std::vector<SourceProvenance> out;
  for (auto& [oid, structure] : at_sources) {
    SourceProvenance sp;
    sp.scan_oid = oid;
    if (const OperatorInfo* info = store_->FindInfo(oid)) {
      sp.source_name = info->label;
    }
    sp.items = std::move(structure);
    out.push_back(std::move(sp));
  }
  return out;
}

Result<std::vector<SourceProvenance>> Backtracer::Backtrace(
    const BacktraceStructure& seed, const BacktraceOptions& options,
    BacktraceTruncation* truncation) const {
  if (truncation != nullptr) {
    *truncation = BacktraceTruncation{};
    truncation->seed_entries_total = seed.size();
  }
  PEBBLE_RETURN_NOT_OK(ValidateBacktraceOptions(options));
  if (options.Unlimited()) {
    // Exact legacy code path: results are byte-identical to an ungoverned
    // query, including entry order at every source.
    Result<std::vector<SourceProvenance>> result = Backtrace(seed);
    if (result.ok() && truncation != nullptr) {
      truncation->seed_entries_traced = seed.size();
    }
    return result;
  }
  if (store_ == nullptr) {
    return Status::InvalidArgument("no provenance store (capture was off?)");
  }

  TraceState state;
  state.options = &options;
  std::map<int, BacktraceStructure> at_sources;
  auto result_count = [&at_sources]() {
    size_t n = 0;
    for (const auto& [oid, s] : at_sources) n += s.size();
    return n;
  };

  Status trip;  // first governance trip, if any
  TruncationReason reason = TruncationReason::kNone;
  size_t traced = 0;
  for (size_t begin = 0; begin < seed.size(); begin += kSeedChunk) {
    Status g = state.CheckLimits(0);
    if (!g.ok()) {
      trip = std::move(g);
      break;
    }
    if (options.max_results > 0 &&
        result_count() >= static_cast<size_t>(options.max_results)) {
      trip = Status::ResourceExhausted(
          "backtrace reached the result limit of " +
          std::to_string(options.max_results) + " source items");
      reason = TruncationReason::kResultLimit;
      break;
    }
    size_t end = std::min(begin + kSeedChunk, seed.size());
    BacktraceStructure chunk(seed.begin() + begin, seed.begin() + end);
    // Trace into a chunk-local accumulator. Every entry BacktraceFrom
    // lands at a scan is a complete, independently sound derivation (the
    // full answer contains the same item, possibly with more merged
    // paths), so a tripped chunk's partial yield is merged too — the
    // result stays a lower bound of the full answer, and a deadline
    // tighter than one chunk still returns what it managed to derive.
    // Only seed_entries_traced counts whole chunks.
    std::map<int, BacktraceStructure> chunk_sources;
    Status st = BacktraceFrom(store_->sink_oid(), std::move(chunk),
                              &chunk_sources, &state);
    if (!st.ok() && !IsResourceGovernanceError(st.code())) return st;
    for (auto& [oid, structure] : chunk_sources) {
      BacktraceStructure& dest = at_sources[oid];
      for (BacktraceEntry& e : structure) {
        MergeEntry(&dest, std::move(e));
      }
    }
    if (!st.ok()) {
      trip = std::move(st);
      break;
    }
    traced = end;
  }

  if (truncation != nullptr) {
    truncation->visited_nodes = state.visited;
    truncation->seed_entries_traced = traced;
    if (!trip.ok()) {
      truncation->truncated = true;
      truncation->detail = trip.message();
      if (reason == TruncationReason::kNone) {
        switch (trip.code()) {
          case StatusCode::kCancelled:
            reason = TruncationReason::kCancelled;
            break;
          case StatusCode::kDeadlineExceeded:
            reason = TruncationReason::kDeadline;
            break;
          default:
            reason = TruncationReason::kVisitLimit;
            break;
        }
      }
      truncation->reason = reason;
    }
  }

  std::vector<SourceProvenance> out;
  for (auto& [oid, structure] : at_sources) {
    SourceProvenance sp;
    sp.scan_oid = oid;
    if (const OperatorInfo* info = store_->FindInfo(oid)) {
      sp.source_name = info->label;
    }
    sp.items = std::move(structure);
    out.push_back(std::move(sp));
  }
  return out;
}

Status Backtracer::BacktraceFrom(
    int oid, BacktraceStructure structure,
    std::map<int, BacktraceStructure>* at_sources, TraceState* state) const {
  if (structure.empty()) return Status::OK();
  if (state != nullptr) {
    // One check per (operator, structure) recursion level: granular enough
    // to stop a blown-up trace within one level's work.
    PEBBLE_RETURN_NOT_OK(state->CheckLimits(structure.size()));
  }
  const OperatorInfo* info = store_->FindInfo(oid);
  if (info == nullptr) {
    return Status::Internal("no operator info for oid " + std::to_string(oid));
  }
  if (info->type == OpType::kScan) {
    // P' undefined: the recursion ends; accumulate at the source (Alg. 1).
    BacktraceStructure& dest = (*at_sources)[oid];
    for (BacktraceEntry& e : structure) {
      MergeEntry(&dest, std::move(e));
    }
    return Status::OK();
  }
  const OperatorProvenance* prov = store_->Find(oid);
  if (prov == nullptr) {
    return Status::Internal("no captured provenance for operator " +
                            std::to_string(oid));
  }
  switch (info->type) {
    case OpType::kFilter:
    case OpType::kSelect:
      return BacktraceGenericUnary(*prov, structure, at_sources, state);
    case OpType::kMap:
      return BacktraceMap(*prov, structure, at_sources, state);
    case OpType::kFlatten:
      return BacktraceFlatten(*prov, structure, at_sources, state);
    case OpType::kJoin:
    case OpType::kUnion:
      return BacktraceBinary(*prov, structure, at_sources, state);
    case OpType::kGroupAggregate:
      return BacktraceAggregation(*prov, structure, at_sources, state);
    case OpType::kScan:
      break;  // handled above
  }
  return Status::Internal("unhandled operator type in backtracing");
}

// Alg. 3: join B with the id table, undo manipulations, record accesses.
Status Backtracer::BacktraceGenericUnary(
    const OperatorProvenance& prov, const BacktraceStructure& structure,
    std::map<int, BacktraceStructure>* at_sources, TraceState* state) const {
  std::unordered_map<int64_t, int64_t> scratch;
  const std::unordered_map<int64_t, int64_t>* lookup =
      index_ != nullptr ? index_->unary(prov.oid) : nullptr;
  if (lookup == nullptr) {
    scratch.reserve(prov.unary_ids.size());
    for (const UnaryIdRow& row : prov.unary_ids) {
      scratch.emplace(row.out, row.in);
    }
    lookup = &scratch;
  }
  const std::unordered_map<int64_t, int64_t>& out_to_in = *lookup;
  const std::vector<Path> accessed = ExpandedAccess(prov.inputs[0]);
  BacktraceStructure next;
  for (const BacktraceEntry& entry : structure) {
    if (state != nullptr) PEBBLE_RETURN_NOT_OK(state->Poll());
    auto it = out_to_in.find(entry.id);
    if (it == out_to_in.end()) {
      return Status::Internal("item " + std::to_string(entry.id) +
                              " not found in id table of operator " +
                              std::to_string(prov.oid));
    }
    BacktraceEntry out{it->second, entry.tree};
    out.tree.ApplyManipulations(prov.manipulations, prov.oid);
    for (const Path& a : accessed) {
      out.tree.AccessPath(a, prov.oid);
    }
    MergeEntry(&next, std::move(out));
  }
  return BacktraceFrom(prov.inputs[0].producer_oid, std::move(next),
                       at_sources, state);
}

// Map: no path information was capturable (A = M = ⊥); every attribute of
// the input schema is conservatively marked as manipulated.
Status Backtracer::BacktraceMap(
    const OperatorProvenance& prov, const BacktraceStructure& structure,
    std::map<int, BacktraceStructure>* at_sources, TraceState* state) const {
  std::unordered_map<int64_t, int64_t> scratch;
  const std::unordered_map<int64_t, int64_t>* lookup =
      index_ != nullptr ? index_->unary(prov.oid) : nullptr;
  if (lookup == nullptr) {
    scratch.reserve(prov.unary_ids.size());
    for (const UnaryIdRow& row : prov.unary_ids) {
      scratch.emplace(row.out, row.in);
    }
    lookup = &scratch;
  }
  const std::unordered_map<int64_t, int64_t>& out_to_in = *lookup;
  BacktraceStructure next;
  for (const BacktraceEntry& entry : structure) {
    if (state != nullptr) PEBBLE_RETURN_NOT_OK(state->Poll());
    auto it = out_to_in.find(entry.id);
    if (it == out_to_in.end()) {
      return Status::Internal("item " + std::to_string(entry.id) +
                              " not found in id table of map operator " +
                              std::to_string(prov.oid));
    }
    BacktraceEntry out{it->second,
                       BuildSchemaTree(prov.inputs[0].input_schema)};
    out.tree.MarkAllManipulated(prov.oid);
    MergeEntry(&next, std::move(out));
  }
  return BacktraceFrom(prov.inputs[0].producer_oid, std::move(next),
                       at_sources, state);
}

// Alg. 2: undo the flatten per item, substituting the concrete position for
// the [pos] placeholder, then merge trees of the same input item.
Status Backtracer::BacktraceFlatten(
    const OperatorProvenance& prov, const BacktraceStructure& structure,
    std::map<int, BacktraceStructure>* at_sources, TraceState* state) const {
  std::unordered_map<int64_t, BacktraceIndex::FlattenEntry> scratch;
  const std::unordered_map<int64_t, BacktraceIndex::FlattenEntry>* lookup =
      index_ != nullptr ? index_->flatten(prov.oid) : nullptr;
  if (lookup == nullptr) {
    scratch.reserve(prov.flatten_ids.size());
    for (const FlattenIdRow& row : prov.flatten_ids) {
      scratch.emplace(row.out, BacktraceIndex::FlattenEntry{row.in, row.pos});
    }
    lookup = &scratch;
  }
  const std::unordered_map<int64_t, BacktraceIndex::FlattenEntry>&
      out_to_in = *lookup;
  BacktraceStructure next;
  for (const BacktraceEntry& entry : structure) {
    if (state != nullptr) PEBBLE_RETURN_NOT_OK(state->Poll());
    auto it = out_to_in.find(entry.id);
    if (it == out_to_in.end()) {
      return Status::Internal("item " + std::to_string(entry.id) +
                              " not found in id table of flatten operator " +
                              std::to_string(prov.oid));
    }
    const int32_t pos = it->second.pos;
    BacktraceEntry out{it->second.in, entry.tree};
    // Substitute the concrete position into the schema-level mappings
    // ("user_mentions[pos]" -> "user_mentions[2]") before transforming.
    std::vector<PathMapping> mappings;
    mappings.reserve(prov.manipulations.size());
    for (const PathMapping& m : prov.manipulations) {
      mappings.push_back(PathMapping{m.in.WithPlaceholderReplaced(pos), m.out,
                                     m.from_grouping});
    }
    out.tree.ApplyManipulations(mappings, prov.oid);
    if (prov.inputs[0].input_schema != nullptr) {
      for (const Path& a : prov.inputs[0].accessed) {
        Path concrete = a.WithPlaceholderReplaced(pos);
        for (const Path& e :
             ExpandAccessPath(prov.inputs[0].input_schema, concrete)) {
          out.tree.AccessPath(e, prov.oid);
        }
      }
    }
    MergeEntry(&next, std::move(out));  // merge-by-id == Alg. 2 l.2
  }
  return BacktraceFrom(prov.inputs[0].producer_oid, std::move(next),
                       at_sources, state);
}

// Join and union: trace each of the two inputs independently; join trees
// are restricted to the traced side's schema, union entries to the rows
// that originated from the traced side.
Status Backtracer::BacktraceBinary(
    const OperatorProvenance& prov, const BacktraceStructure& structure,
    std::map<int, BacktraceStructure>* at_sources, TraceState* state) const {
  std::unordered_map<int64_t, BacktraceIndex::BinaryEntry> scratch;
  const std::unordered_map<int64_t, BacktraceIndex::BinaryEntry>* lookup =
      index_ != nullptr ? index_->binary(prov.oid) : nullptr;
  if (lookup == nullptr) {
    scratch.reserve(prov.binary_ids.size());
    for (const BinaryIdRow& row : prov.binary_ids) {
      scratch.emplace(row.out, BacktraceIndex::BinaryEntry{row.in1, row.in2});
    }
    lookup = &scratch;
  }
  const std::unordered_map<int64_t, BacktraceIndex::BinaryEntry>&
      out_to_in = *lookup;
  for (int side = 0; side < 2; ++side) {
    const InputProvenance& input = prov.inputs[static_cast<size_t>(side)];
    // Side-specific manipulations: identity mappings over this side's
    // top-level attributes (join); none for union.
    std::vector<PathMapping> side_mappings;
    if (prov.type == OpType::kJoin && input.input_schema != nullptr) {
      for (const PathMapping& m : prov.manipulations) {
        if (!m.in.empty() &&
            input.input_schema->FindField(m.in.step(0).attr()) != nullptr) {
          side_mappings.push_back(m);
        }
      }
    }
    const std::vector<Path> accessed = ExpandedAccess(input);
    BacktraceStructure next;
    for (const BacktraceEntry& entry : structure) {
      if (state != nullptr) PEBBLE_RETURN_NOT_OK(state->Poll());
      auto it = out_to_in.find(entry.id);
      if (it == out_to_in.end()) {
        return Status::Internal("item " + std::to_string(entry.id) +
                                " not found in id table of operator " +
                                std::to_string(prov.oid));
      }
      int64_t in_id = side == 0 ? it->second.in1 : it->second.in2;
      if (in_id == kNoId) continue;  // union row from the other input
      BacktraceEntry out{in_id, entry.tree};
      if (prov.type == OpType::kJoin) {
        out.tree.ApplyManipulations(side_mappings, prov.oid);
        if (input.input_schema != nullptr) {
          out.tree.RestrictToSchema(*input.input_schema);
        }
      }
      for (const Path& a : accessed) {
        out.tree.AccessPath(a, prov.oid);
      }
      MergeEntry(&next, std::move(out));
    }
    PEBBLE_RETURN_NOT_OK(
        BacktraceFrom(input.producer_oid, std::move(next), at_sources, state));
  }
  return Status::OK();
}

// Alg. 4: flatten the per-group id collections into (id, position) rows,
// replay the nesting manipulations with concrete positions, and keep only
// the input items that remain in the provenance (inProv).
Status Backtracer::BacktraceAggregation(
    const OperatorProvenance& prov, const BacktraceStructure& structure,
    std::map<int, BacktraceStructure>* at_sources, TraceState* state) const {
  std::unordered_map<int64_t, IdSpan> scratch;
  const std::unordered_map<int64_t, IdSpan>* lookup =
      index_ != nullptr ? index_->agg(prov.oid) : nullptr;
  if (lookup == nullptr) {
    scratch.reserve(prov.agg_ids.size());
    for (size_t i = 0; i < prov.agg_ids.size(); ++i) {
      scratch.emplace(prov.agg_ids.out_col()[i], prov.agg_ids.ins(i));
    }
    lookup = &scratch;
  }
  const std::unordered_map<int64_t, IdSpan>& out_to_row = *lookup;
  const std::vector<Path> accessed = ExpandedAccess(prov.inputs[0]);
  BacktraceStructure next;
  for (const BacktraceEntry& entry : structure) {
    auto it = out_to_row.find(entry.id);
    if (it == out_to_row.end()) {
      return Status::Internal("item " + std::to_string(entry.id) +
                              " not found in id table of aggregation " +
                              std::to_string(prov.oid));
    }
    const IdSpan row_ins = it->second;
    for (size_t k = 0; k < row_ins.size(); ++k) {
      if (state != nullptr) PEBBLE_RETURN_NOT_OK(state->Poll());
      const int32_t pos = static_cast<int32_t>(k + 1);  // pP (Alg. 4 l.1)
      BacktraceEntry out{row_ins[k], entry.tree};
      bool in_prov = false;
      for (const PathMapping& m : prov.manipulations) {
        const bool nesting = m.out.HasPositions();
        Path out_path =
            nesting ? m.out.WithPlaceholderReplaced(pos) : m.out;  // l.6-9
        if (out.tree.Contains(out_path)) {
          // Grouping-key mappings transform the tree but do not by
          // themselves make the item part of the provenance (Ex. 6.6 drops
          // group members whose nested positions are untraced).
          if (!m.from_grouping) in_prov = true;  // l.10-11
          out.tree.ManipulatePath(m.in, out_path, prov.oid);  // l.12
        }
        if (nesting) {
          // Drop information about items at other positions (l.13).
          out.tree.RemoveSubtree(Path::Attr(m.out.step(0).attr()));
        }
      }
      if (!in_prov) continue;  // l.17: sigma_{inProv=true}
      for (const Path& a : accessed) {
        out.tree.AccessPath(a, prov.oid);  // l.14-16
      }
      MergeEntry(&next, std::move(out));
    }
  }
  return BacktraceFrom(prov.inputs[0].producer_oid, std::move(next),
                       at_sources, state);
}

}  // namespace pebble
