#include "core/backtrace.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "core/provenance_records.h"

namespace pebble {

namespace {

/// Seed entries traced per chunk on the governed path. Small enough that
/// several chunks finish within a tens-of-milliseconds deadline even on
/// the stress-scale scenarios (a tight deadline then yields a non-empty
/// partial answer), large enough to amortize the per-chunk bookkeeping.
constexpr size_t kSeedChunk = 4;

}  // namespace

Status ValidateBacktraceOptions(const BacktraceOptions& options) {
  if (options.max_visited_nodes < 0) {
    return Status::InvalidArgument(
        "max_visited_nodes must be non-negative, got " +
        std::to_string(options.max_visited_nodes));
  }
  if (options.max_results < 0) {
    return Status::InvalidArgument("max_results must be non-negative, got " +
                                   std::to_string(options.max_results));
  }
  return Status::OK();
}

const char* TruncationReasonToString(TruncationReason reason) {
  switch (reason) {
    case TruncationReason::kNone:
      return "none";
    case TruncationReason::kDeadline:
      return "deadline";
    case TruncationReason::kCancelled:
      return "cancelled";
    case TruncationReason::kVisitLimit:
      return "visit-limit";
    case TruncationReason::kResultLimit:
      return "result-limit";
  }
  return "?";
}

/// Per-query governance state: limits plus the running visit count,
/// checked at every recursion level of the governed path.
struct Backtracer::TraceState {
  const BacktraceOptions* options = nullptr;
  uint64_t visited = 0;
  uint32_t polls = 0;

  /// Cadence check for the per-entry mapping loops: deadline/cancel every
  /// 64 entries (one big structure at one operator can be most of a
  /// chunk's work, so per-level checks alone overshoot tight deadlines).
  /// Does not count toward the visit limit.
  Status Poll() {
    if ((++polls & 0x3F) != 0) return Status::OK();
    PEBBLE_RETURN_NOT_OK(options->cancel.Check("backtrace"));
    return options->deadline.Check("backtrace");
  }

  /// Counts `about_to_visit` structure entries, then checks every limit.
  /// Governance trips surface as kResourceExhausted / kCancelled /
  /// kDeadlineExceeded and are converted to truncation by the caller.
  Status CheckLimits(size_t about_to_visit) {
    visited += about_to_visit;
    if (options->max_visited_nodes > 0 &&
        visited > static_cast<uint64_t>(options->max_visited_nodes)) {
      return Status::ResourceExhausted(
          "backtrace visited " + std::to_string(visited) +
          " structure entries, over the limit of " +
          std::to_string(options->max_visited_nodes));
    }
    PEBBLE_RETURN_NOT_OK(options->cancel.Check("backtrace"));
    return options->deadline.Check("backtrace");
  }

  /// Shared-prefix transform memo (DESIGN.md §12): seeds traversing the
  /// same ancestor paths present the same (operator, input tree) pairs to
  /// the per-entry tree transform over and over across chunks; the memo
  /// returns the previously derived tree instead of re-deriving it. Scope
  /// and contract:
  ///   - per query (lives in this TraceState), governed path only — the
  ///     ungoverned legacy path stays exactly as before;
  ///   - memoizes ONLY the per-entry transform, never the MergeEntry fold
  ///     or the recursion, so chunk merge granularity — the mark
  ///     attribution contract pinned by
  ///     tests/corpus/governed_chunk_fold.diffcase — is untouched;
  ///   - every hit verifies full input-tree equality (hash collisions cost
  ///     time, never correctness).
  struct MemoEntry {
    int oid;
    uint8_t flavor;
    int32_t aux;  // flatten/agg position, binary side; 0 for unary
    BacktraceTree input;
    BacktraceTree derived;
    bool flag;  // aggregation: inProv of the derived tree
  };
  static constexpr size_t kMemoCap = 4096;
  std::unordered_map<uint64_t, std::vector<MemoEntry>> memo;
  size_t memo_entries = 0;

  /// Returns the transform of `input` under (oid, flavor, aux): a memo hit
  /// if an equal input was derived before, else `fn(input, &flag)`
  /// (recorded until the cap). `fn` must be a pure function of its input
  /// and the captured per-operator context encoded in (oid, flavor, aux).
  template <typename Fn>
  BacktraceTree Derive(int oid, uint8_t flavor, int32_t aux,
                       const BacktraceTree& input, bool* flag, Fn&& fn) {
    uint64_t h = BacktraceTreeStructuralHash(input);
    h ^= static_cast<uint64_t>(oid + 1) * 0x9e3779b97f4a7c15ull;
    h ^= static_cast<uint64_t>(flavor) << 56;
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(aux)) * 0x100000001b3ull;
    auto it = memo.find(h);
    if (it != memo.end()) {
      for (const MemoEntry& e : it->second) {
        if (e.oid == oid && e.flavor == flavor && e.aux == aux &&
            e.input == input) {
          if (flag != nullptr) *flag = e.flag;
          return e.derived;
        }
      }
    }
    bool computed = false;
    BacktraceTree derived = fn(input, &computed);
    if (flag != nullptr) *flag = computed;
    if (memo_entries < kMemoCap) {
      memo[h].push_back(MemoEntry{oid, flavor, aux, input, derived, computed});
      ++memo_entries;
    }
    return derived;
  }
};

namespace {

void ExpandAccessPathRec(const TypePtr& type, const Path& path,
                         std::vector<Path>* out) {
  if (type->kind() == TypeKind::kStruct && !type->fields().empty()) {
    for (const FieldType& f : type->fields()) {
      ExpandAccessPathRec(f.type, path.Child(PathStep{f.name, kNoPos}), out);
    }
    return;
  }
  out->push_back(path);
}

void AddSchemaNodes(BtNode* node, const DataType& type) {
  switch (type.kind()) {
    case TypeKind::kStruct:
      for (const FieldType& f : type.fields()) {
        BtNode* child = node->EnsureChild(BtNodeKey{f.name, kNoPos},
                                          /*contributing=*/true);
        AddSchemaNodes(child, *f.type);
      }
      break;
    case TypeKind::kBag:
    case TypeKind::kSet:
      // Collection elements contribute their attributes without positions.
      AddSchemaNodes(node, *type.element());
      break;
    default:
      break;
  }
}

/// Expands every path of A against the input schema; undefined A (map)
/// yields an empty list.
std::vector<Path> ExpandedAccess(const InputProvenance& input) {
  std::vector<Path> out;
  if (input.accessed_undefined || input.input_schema == nullptr) return out;
  for (const Path& p : input.accessed) {
    std::vector<Path> expanded = ExpandAccessPath(input.input_schema, p);
    out.insert(out.end(), expanded.begin(), expanded.end());
  }
  return out;
}

}  // namespace

std::vector<Path> ExpandAccessPath(const TypePtr& schema, const Path& path) {
  std::vector<Path> out;
  Result<TypePtr> type = ResolveType(schema, path);
  if (!type.ok()) {
    out.push_back(path);
    return out;
  }
  ExpandAccessPathRec(type.value(), path, &out);
  return out;
}

BacktraceTree BuildSchemaTree(const TypePtr& schema) {
  BacktraceTree tree;
  if (schema != nullptr) {
    AddSchemaNodes(&tree.root(), *schema);
  }
  return tree;
}


BacktraceIndex::BacktraceIndex(const ProvenanceStore& store) {
  for (int oid : store.AllOids()) {
    const OperatorProvenance* prov = store.Find(oid);
    if (prov == nullptr) continue;
    if (!prov->unary_ids.empty()) {
      const UnaryIdTable& t = prov->unary_ids;
      auto& map = unary_[oid];
      map.reserve(t.size());
      for (size_t i = 0; i < t.size(); ++i) {
        map.emplace(t.out_col()[i], t.in_col()[i]);
      }
    }
    if (!prov->binary_ids.empty()) {
      const BinaryIdTable& t = prov->binary_ids;
      auto& map = binary_[oid];
      map.reserve(t.size());
      for (size_t i = 0; i < t.size(); ++i) {
        map.emplace(t.out_col()[i], BinaryEntry{t.in1_col()[i], t.in2_col()[i]});
      }
    }
    if (!prov->flatten_ids.empty()) {
      const FlattenIdTable& t = prov->flatten_ids;
      auto& map = flatten_[oid];
      map.reserve(t.size());
      for (size_t i = 0; i < t.size(); ++i) {
        map.emplace(t.out_col()[i], FlattenEntry{t.in_col()[i], t.pos_col()[i]});
      }
    }
    if (!prov->agg_ids.empty()) {
      const AggIdTable& t = prov->agg_ids;
      auto& map = agg_[oid];
      map.reserve(t.size());
      for (size_t i = 0; i < t.size(); ++i) {
        // Spans borrow the table's flat in-id column; the index documents
        // that it must not outlive the store.
        map.emplace(t.out_col()[i], t.ins(i));
      }
    }
  }
}

BacktraceIndex::BacktraceIndex(const ProvenanceStore& store,
                               BacktraceIndexPerms perms)
    : store_(&store), perms_(std::move(perms)) {}

BacktraceIndexPerms BacktraceIndex::BuildPerms(const ProvenanceStore& store) {
  BacktraceIndexPerms perms;
  for (int oid : store.AllOids()) {
    const OperatorProvenance* prov = store.Find(oid);
    if (prov == nullptr) continue;
    if (!prov->unary_ids.empty()) {
      perms.unary[oid] =
          provio::SortedByOutPermutation(prov->unary_ids.out_col());
    }
    if (!prov->binary_ids.empty()) {
      perms.binary[oid] =
          provio::SortedByOutPermutation(prov->binary_ids.out_col());
    }
    if (!prov->flatten_ids.empty()) {
      perms.flatten[oid] =
          provio::SortedByOutPermutation(prov->flatten_ids.out_col());
    }
    if (!prov->agg_ids.empty()) {
      perms.agg[oid] = provio::SortedByOutPermutation(prov->agg_ids.out_col());
    }
  }
  return perms;
}

namespace {

int64_t UnaryRowValue(const void* table, uint32_t row) {
  return static_cast<const UnaryIdTable*>(table)->in_col()[row];
}

BacktraceIndex::BinaryEntry BinaryRowValue(const void* table, uint32_t row) {
  const auto* t = static_cast<const BinaryIdTable*>(table);
  return BacktraceIndex::BinaryEntry{t->in1_col()[row], t->in2_col()[row]};
}

BacktraceIndex::FlattenEntry FlattenRowValue(const void* table, uint32_t row) {
  const auto* t = static_cast<const FlattenIdTable*>(table);
  return BacktraceIndex::FlattenEntry{t->in_col()[row], t->pos_col()[row]};
}

IdSpan AggRowValue(const void* table, uint32_t row) {
  return static_cast<const AggIdTable*>(table)->ins(row);
}

}  // namespace

BacktraceIndex::Lookup<int64_t> BacktraceIndex::UnaryFor(int oid) const {
  auto it = unary_.find(oid);
  if (it != unary_.end()) return Lookup<int64_t>(&it->second);
  if (store_ != nullptr) {
    auto p = perms_.unary.find(oid);
    if (p != perms_.unary.end()) {
      const OperatorProvenance* prov = store_->Find(oid);
      if (prov != nullptr) {
        return Lookup<int64_t>(&prov->unary_ids, &prov->unary_ids.out_col(),
                               &p->second, &UnaryRowValue);
      }
    }
  }
  return {};
}

BacktraceIndex::Lookup<BacktraceIndex::BinaryEntry> BacktraceIndex::BinaryFor(
    int oid) const {
  auto it = binary_.find(oid);
  if (it != binary_.end()) return Lookup<BinaryEntry>(&it->second);
  if (store_ != nullptr) {
    auto p = perms_.binary.find(oid);
    if (p != perms_.binary.end()) {
      const OperatorProvenance* prov = store_->Find(oid);
      if (prov != nullptr) {
        return Lookup<BinaryEntry>(&prov->binary_ids,
                                   &prov->binary_ids.out_col(), &p->second,
                                   &BinaryRowValue);
      }
    }
  }
  return {};
}

BacktraceIndex::Lookup<BacktraceIndex::FlattenEntry>
BacktraceIndex::FlattenFor(int oid) const {
  auto it = flatten_.find(oid);
  if (it != flatten_.end()) return Lookup<FlattenEntry>(&it->second);
  if (store_ != nullptr) {
    auto p = perms_.flatten.find(oid);
    if (p != perms_.flatten.end()) {
      const OperatorProvenance* prov = store_->Find(oid);
      if (prov != nullptr) {
        return Lookup<FlattenEntry>(&prov->flatten_ids,
                                    &prov->flatten_ids.out_col(), &p->second,
                                    &FlattenRowValue);
      }
    }
  }
  return {};
}

BacktraceIndex::Lookup<IdSpan> BacktraceIndex::AggFor(int oid) const {
  auto it = agg_.find(oid);
  if (it != agg_.end()) return Lookup<IdSpan>(&it->second);
  if (store_ != nullptr) {
    auto p = perms_.agg.find(oid);
    if (p != perms_.agg.end()) {
      const OperatorProvenance* prov = store_->Find(oid);
      if (prov != nullptr) {
        return Lookup<IdSpan>(&prov->agg_ids, &prov->agg_ids.out_col(),
                              &p->second, &AggRowValue);
      }
    }
  }
  return {};
}

const std::unordered_map<int64_t, int64_t>* BacktraceIndex::unary(
    int oid) const {
  auto it = unary_.find(oid);
  return it == unary_.end() ? nullptr : &it->second;
}

const std::unordered_map<int64_t, BacktraceIndex::BinaryEntry>*
BacktraceIndex::binary(int oid) const {
  auto it = binary_.find(oid);
  return it == binary_.end() ? nullptr : &it->second;
}

const std::unordered_map<int64_t, BacktraceIndex::FlattenEntry>*
BacktraceIndex::flatten(int oid) const {
  auto it = flatten_.find(oid);
  return it == flatten_.end() ? nullptr : &it->second;
}

const std::unordered_map<int64_t, IdSpan>* BacktraceIndex::agg(
    int oid) const {
  auto it = agg_.find(oid);
  return it == agg_.end() ? nullptr : &it->second;
}

Result<std::vector<SourceProvenance>> Backtracer::Backtrace(
    const BacktraceStructure& seed) const {
  if (store_ == nullptr) {
    return Status::InvalidArgument("no provenance store (capture was off?)");
  }
  std::map<int, BacktraceStructure> at_sources;
  PEBBLE_RETURN_NOT_OK(
      BacktraceFrom(store_->sink_oid(), seed, &at_sources, nullptr));
  std::vector<SourceProvenance> out;
  for (auto& [oid, structure] : at_sources) {
    SourceProvenance sp;
    sp.scan_oid = oid;
    if (const OperatorInfo* info = store_->FindInfo(oid)) {
      sp.source_name = info->label;
    }
    sp.items = std::move(structure);
    out.push_back(std::move(sp));
  }
  return out;
}

Result<std::vector<SourceProvenance>> Backtracer::Backtrace(
    const BacktraceStructure& seed, const BacktraceOptions& options,
    BacktraceTruncation* truncation) const {
  if (truncation != nullptr) {
    *truncation = BacktraceTruncation{};
    truncation->seed_entries_total = seed.size();
  }
  PEBBLE_RETURN_NOT_OK(ValidateBacktraceOptions(options));
  if (options.Unlimited()) {
    // Exact legacy code path: results are byte-identical to an ungoverned
    // query, including entry order at every source.
    Result<std::vector<SourceProvenance>> result = Backtrace(seed);
    if (result.ok() && truncation != nullptr) {
      truncation->seed_entries_traced = seed.size();
    }
    return result;
  }
  if (store_ == nullptr) {
    return Status::InvalidArgument("no provenance store (capture was off?)");
  }

  TraceState state;
  state.options = &options;
  std::map<int, BacktraceStructure> at_sources;
  auto result_count = [&at_sources]() {
    size_t n = 0;
    for (const auto& [oid, s] : at_sources) n += s.size();
    return n;
  };

  Status trip;  // first governance trip, if any
  TruncationReason reason = TruncationReason::kNone;
  size_t traced = 0;
  for (size_t begin = 0; begin < seed.size(); begin += kSeedChunk) {
    Status g = state.CheckLimits(0);
    if (!g.ok()) {
      trip = std::move(g);
      break;
    }
    if (options.max_results > 0 &&
        result_count() >= static_cast<size_t>(options.max_results)) {
      trip = Status::ResourceExhausted(
          "backtrace reached the result limit of " +
          std::to_string(options.max_results) + " source items");
      reason = TruncationReason::kResultLimit;
      break;
    }
    size_t end = std::min(begin + kSeedChunk, seed.size());
    BacktraceStructure chunk(seed.begin() + begin, seed.begin() + end);
    // Trace into a chunk-local accumulator. Every entry BacktraceFrom
    // lands at a scan is a complete, independently sound derivation (the
    // full answer contains the same item, possibly with more merged
    // paths), so a tripped chunk's partial yield is merged too — the
    // result stays a lower bound of the full answer, and a deadline
    // tighter than one chunk still returns what it managed to derive.
    // Only seed_entries_traced counts whole chunks.
    std::map<int, BacktraceStructure> chunk_sources;
    Status st = BacktraceFrom(store_->sink_oid(), std::move(chunk),
                              &chunk_sources, &state);
    if (!st.ok() && !IsResourceGovernanceError(st.code())) return st;
    for (auto& [oid, structure] : chunk_sources) {
      BacktraceStructure& dest = at_sources[oid];
      for (BacktraceEntry& e : structure) {
        MergeEntry(&dest, std::move(e));
      }
    }
    if (!st.ok()) {
      trip = std::move(st);
      break;
    }
    traced = end;
  }

  if (truncation != nullptr) {
    truncation->visited_nodes = state.visited;
    truncation->seed_entries_traced = traced;
    if (!trip.ok()) {
      truncation->truncated = true;
      truncation->detail = trip.message();
      if (reason == TruncationReason::kNone) {
        switch (trip.code()) {
          case StatusCode::kCancelled:
            reason = TruncationReason::kCancelled;
            break;
          case StatusCode::kDeadlineExceeded:
            reason = TruncationReason::kDeadline;
            break;
          default:
            reason = TruncationReason::kVisitLimit;
            break;
        }
      }
      truncation->reason = reason;
    }
  }

  std::vector<SourceProvenance> out;
  for (auto& [oid, structure] : at_sources) {
    SourceProvenance sp;
    sp.scan_oid = oid;
    if (const OperatorInfo* info = store_->FindInfo(oid)) {
      sp.source_name = info->label;
    }
    sp.items = std::move(structure);
    out.push_back(std::move(sp));
  }
  return out;
}

Status Backtracer::BacktraceFrom(
    int oid, BacktraceStructure structure,
    std::map<int, BacktraceStructure>* at_sources, TraceState* state) const {
  if (structure.empty()) return Status::OK();
  if (state != nullptr) {
    // One check per (operator, structure) recursion level: granular enough
    // to stop a blown-up trace within one level's work.
    PEBBLE_RETURN_NOT_OK(state->CheckLimits(structure.size()));
  }
  const OperatorInfo* info = store_->FindInfo(oid);
  if (info == nullptr) {
    return Status::Internal("no operator info for oid " + std::to_string(oid));
  }
  if (info->type == OpType::kScan) {
    // P' undefined: the recursion ends; accumulate at the source (Alg. 1).
    BacktraceStructure& dest = (*at_sources)[oid];
    for (BacktraceEntry& e : structure) {
      MergeEntry(&dest, std::move(e));
    }
    return Status::OK();
  }
  const OperatorProvenance* prov = store_->Find(oid);
  if (prov == nullptr) {
    return Status::Internal("no captured provenance for operator " +
                            std::to_string(oid));
  }
  switch (info->type) {
    case OpType::kFilter:
    case OpType::kSelect:
      return BacktraceGenericUnary(*prov, structure, at_sources, state);
    case OpType::kMap:
      return BacktraceMap(*prov, structure, at_sources, state);
    case OpType::kFlatten:
      return BacktraceFlatten(*prov, structure, at_sources, state);
    case OpType::kJoin:
    case OpType::kUnion:
      return BacktraceBinary(*prov, structure, at_sources, state);
    case OpType::kGroupAggregate:
      return BacktraceAggregation(*prov, structure, at_sources, state);
    case OpType::kScan:
      break;  // handled above
  }
  return Status::Internal("unhandled operator type in backtracing");
}

// Alg. 3: join B with the id table, undo manipulations, record accesses.
Status Backtracer::BacktraceGenericUnary(
    const OperatorProvenance& prov, const BacktraceStructure& structure,
    std::map<int, BacktraceStructure>* at_sources, TraceState* state) const {
  std::unordered_map<int64_t, int64_t> scratch;
  BacktraceIndex::Lookup<int64_t> lookup =
      index_ != nullptr ? index_->UnaryFor(prov.oid)
                        : BacktraceIndex::Lookup<int64_t>();
  if (!lookup.present()) {
    scratch.reserve(prov.unary_ids.size());
    for (const UnaryIdRow& row : prov.unary_ids) {
      scratch.emplace(row.out, row.in);
    }
    lookup = BacktraceIndex::Lookup<int64_t>(&scratch);
  }
  const std::vector<Path> accessed = ExpandedAccess(prov.inputs[0]);
  auto transform = [&](const BacktraceTree& tree, bool*) {
    BacktraceTree derived = tree;
    derived.ApplyManipulations(prov.manipulations, prov.oid);
    for (const Path& a : accessed) {
      derived.AccessPath(a, prov.oid);
    }
    return derived;
  };
  BacktraceStructure next;
  for (const BacktraceEntry& entry : structure) {
    if (state != nullptr) PEBBLE_RETURN_NOT_OK(state->Poll());
    int64_t in_id = kNoId;
    if (!lookup.Find(entry.id, &in_id)) {
      return Status::Internal("item " + std::to_string(entry.id) +
                              " not found in id table of operator " +
                              std::to_string(prov.oid));
    }
    BacktraceEntry out{in_id, state != nullptr
                                  ? state->Derive(prov.oid, 0, 0, entry.tree,
                                                  nullptr, transform)
                                  : transform(entry.tree, nullptr)};
    MergeEntry(&next, std::move(out));
  }
  return BacktraceFrom(prov.inputs[0].producer_oid, std::move(next),
                       at_sources, state);
}

// Map: no path information was capturable (A = M = ⊥); every attribute of
// the input schema is conservatively marked as manipulated.
Status Backtracer::BacktraceMap(
    const OperatorProvenance& prov, const BacktraceStructure& structure,
    std::map<int, BacktraceStructure>* at_sources, TraceState* state) const {
  std::unordered_map<int64_t, int64_t> scratch;
  BacktraceIndex::Lookup<int64_t> lookup =
      index_ != nullptr ? index_->UnaryFor(prov.oid)
                        : BacktraceIndex::Lookup<int64_t>();
  if (!lookup.present()) {
    scratch.reserve(prov.unary_ids.size());
    for (const UnaryIdRow& row : prov.unary_ids) {
      scratch.emplace(row.out, row.in);
    }
    lookup = BacktraceIndex::Lookup<int64_t>(&scratch);
  }
  // The derived tree is entry-independent (the conservative schema tree),
  // so build it once per operator and copy it per entry.
  BacktraceTree derived = BuildSchemaTree(prov.inputs[0].input_schema);
  derived.MarkAllManipulated(prov.oid);
  BacktraceStructure next;
  for (const BacktraceEntry& entry : structure) {
    if (state != nullptr) PEBBLE_RETURN_NOT_OK(state->Poll());
    int64_t in_id = kNoId;
    if (!lookup.Find(entry.id, &in_id)) {
      return Status::Internal("item " + std::to_string(entry.id) +
                              " not found in id table of map operator " +
                              std::to_string(prov.oid));
    }
    MergeEntry(&next, BacktraceEntry{in_id, derived});
  }
  return BacktraceFrom(prov.inputs[0].producer_oid, std::move(next),
                       at_sources, state);
}

// Alg. 2: undo the flatten per item, substituting the concrete position for
// the [pos] placeholder, then merge trees of the same input item.
Status Backtracer::BacktraceFlatten(
    const OperatorProvenance& prov, const BacktraceStructure& structure,
    std::map<int, BacktraceStructure>* at_sources, TraceState* state) const {
  std::unordered_map<int64_t, BacktraceIndex::FlattenEntry> scratch;
  BacktraceIndex::Lookup<BacktraceIndex::FlattenEntry> lookup =
      index_ != nullptr ? index_->FlattenFor(prov.oid)
                        : BacktraceIndex::Lookup<BacktraceIndex::FlattenEntry>();
  if (!lookup.present()) {
    scratch.reserve(prov.flatten_ids.size());
    for (const FlattenIdRow& row : prov.flatten_ids) {
      scratch.emplace(row.out, BacktraceIndex::FlattenEntry{row.in, row.pos});
    }
    lookup = BacktraceIndex::Lookup<BacktraceIndex::FlattenEntry>(&scratch);
  }
  BacktraceStructure next;
  for (const BacktraceEntry& entry : structure) {
    if (state != nullptr) PEBBLE_RETURN_NOT_OK(state->Poll());
    BacktraceIndex::FlattenEntry fe{kNoId, 0};
    if (!lookup.Find(entry.id, &fe)) {
      return Status::Internal("item " + std::to_string(entry.id) +
                              " not found in id table of flatten operator " +
                              std::to_string(prov.oid));
    }
    const int32_t pos = fe.pos;
    auto transform = [&](const BacktraceTree& tree, bool*) {
      BacktraceTree derived = tree;
      // Substitute the concrete position into the schema-level mappings
      // ("user_mentions[pos]" -> "user_mentions[2]") before transforming.
      std::vector<PathMapping> mappings;
      mappings.reserve(prov.manipulations.size());
      for (const PathMapping& m : prov.manipulations) {
        mappings.push_back(PathMapping{m.in.WithPlaceholderReplaced(pos),
                                       m.out, m.from_grouping});
      }
      derived.ApplyManipulations(mappings, prov.oid);
      if (prov.inputs[0].input_schema != nullptr) {
        for (const Path& a : prov.inputs[0].accessed) {
          Path concrete = a.WithPlaceholderReplaced(pos);
          for (const Path& e :
               ExpandAccessPath(prov.inputs[0].input_schema, concrete)) {
            derived.AccessPath(e, prov.oid);
          }
        }
      }
      return derived;
    };
    BacktraceEntry out{fe.in, state != nullptr
                                  ? state->Derive(prov.oid, 2, pos, entry.tree,
                                                  nullptr, transform)
                                  : transform(entry.tree, nullptr)};
    MergeEntry(&next, std::move(out));  // merge-by-id == Alg. 2 l.2
  }
  return BacktraceFrom(prov.inputs[0].producer_oid, std::move(next),
                       at_sources, state);
}

// Join and union: trace each of the two inputs independently; join trees
// are restricted to the traced side's schema, union entries to the rows
// that originated from the traced side.
Status Backtracer::BacktraceBinary(
    const OperatorProvenance& prov, const BacktraceStructure& structure,
    std::map<int, BacktraceStructure>* at_sources, TraceState* state) const {
  std::unordered_map<int64_t, BacktraceIndex::BinaryEntry> scratch;
  BacktraceIndex::Lookup<BacktraceIndex::BinaryEntry> lookup =
      index_ != nullptr ? index_->BinaryFor(prov.oid)
                        : BacktraceIndex::Lookup<BacktraceIndex::BinaryEntry>();
  if (!lookup.present()) {
    scratch.reserve(prov.binary_ids.size());
    for (const BinaryIdRow& row : prov.binary_ids) {
      scratch.emplace(row.out, BacktraceIndex::BinaryEntry{row.in1, row.in2});
    }
    lookup = BacktraceIndex::Lookup<BacktraceIndex::BinaryEntry>(&scratch);
  }
  for (int side = 0; side < 2; ++side) {
    const InputProvenance& input = prov.inputs[static_cast<size_t>(side)];
    // Side-specific manipulations: identity mappings over this side's
    // top-level attributes (join); none for union.
    std::vector<PathMapping> side_mappings;
    if (prov.type == OpType::kJoin && input.input_schema != nullptr) {
      for (const PathMapping& m : prov.manipulations) {
        if (!m.in.empty() &&
            input.input_schema->FindField(m.in.step(0).attr()) != nullptr) {
          side_mappings.push_back(m);
        }
      }
    }
    const std::vector<Path> accessed = ExpandedAccess(input);
    auto transform = [&](const BacktraceTree& tree, bool*) {
      BacktraceTree derived = tree;
      if (prov.type == OpType::kJoin) {
        derived.ApplyManipulations(side_mappings, prov.oid);
        if (input.input_schema != nullptr) {
          derived.RestrictToSchema(*input.input_schema);
        }
      }
      for (const Path& a : accessed) {
        derived.AccessPath(a, prov.oid);
      }
      return derived;
    };
    BacktraceStructure next;
    for (const BacktraceEntry& entry : structure) {
      if (state != nullptr) PEBBLE_RETURN_NOT_OK(state->Poll());
      BacktraceIndex::BinaryEntry be{kNoId, kNoId};
      if (!lookup.Find(entry.id, &be)) {
        return Status::Internal("item " + std::to_string(entry.id) +
                                " not found in id table of operator " +
                                std::to_string(prov.oid));
      }
      int64_t in_id = side == 0 ? be.in1 : be.in2;
      if (in_id == kNoId) continue;  // union row from the other input
      BacktraceEntry out{in_id,
                         state != nullptr
                             ? state->Derive(prov.oid, 1, side, entry.tree,
                                             nullptr, transform)
                             : transform(entry.tree, nullptr)};
      MergeEntry(&next, std::move(out));
    }
    PEBBLE_RETURN_NOT_OK(
        BacktraceFrom(input.producer_oid, std::move(next), at_sources, state));
  }
  return Status::OK();
}

// Alg. 4: flatten the per-group id collections into (id, position) rows,
// replay the nesting manipulations with concrete positions, and keep only
// the input items that remain in the provenance (inProv).
Status Backtracer::BacktraceAggregation(
    const OperatorProvenance& prov, const BacktraceStructure& structure,
    std::map<int, BacktraceStructure>* at_sources, TraceState* state) const {
  std::unordered_map<int64_t, IdSpan> scratch;
  BacktraceIndex::Lookup<IdSpan> lookup =
      index_ != nullptr ? index_->AggFor(prov.oid)
                        : BacktraceIndex::Lookup<IdSpan>();
  if (!lookup.present()) {
    scratch.reserve(prov.agg_ids.size());
    for (size_t i = 0; i < prov.agg_ids.size(); ++i) {
      scratch.emplace(prov.agg_ids.out_col()[i], prov.agg_ids.ins(i));
    }
    lookup = BacktraceIndex::Lookup<IdSpan>(&scratch);
  }
  const std::vector<Path> accessed = ExpandedAccess(prov.inputs[0]);
  BacktraceStructure next;
  for (const BacktraceEntry& entry : structure) {
    IdSpan row_ins{};
    if (!lookup.Find(entry.id, &row_ins)) {
      return Status::Internal("item " + std::to_string(entry.id) +
                              " not found in id table of aggregation " +
                              std::to_string(prov.oid));
    }
    for (size_t k = 0; k < row_ins.size(); ++k) {
      if (state != nullptr) PEBBLE_RETURN_NOT_OK(state->Poll());
      const int32_t pos = static_cast<int32_t>(k + 1);  // pP (Alg. 4 l.1)
      auto transform = [&](const BacktraceTree& tree, bool* in_prov) {
        BacktraceTree derived = tree;
        *in_prov = false;
        for (const PathMapping& m : prov.manipulations) {
          const bool nesting = m.out.HasPositions();
          Path out_path =
              nesting ? m.out.WithPlaceholderReplaced(pos) : m.out;  // l.6-9
          if (derived.Contains(out_path)) {
            // Grouping-key mappings transform the tree but do not by
            // themselves make the item part of the provenance (Ex. 6.6
            // drops group members whose nested positions are untraced).
            if (!m.from_grouping) *in_prov = true;  // l.10-11
            derived.ManipulatePath(m.in, out_path, prov.oid);  // l.12
          }
          if (nesting) {
            // Drop information about items at other positions (l.13).
            derived.RemoveSubtree(Path::Attr(m.out.step(0).attr()));
          }
        }
        if (*in_prov) {
          for (const Path& a : accessed) {
            derived.AccessPath(a, prov.oid);  // l.14-16
          }
        }
        return derived;
      };
      bool in_prov = false;
      BacktraceTree derived =
          state != nullptr
              ? state->Derive(prov.oid, 3, pos, entry.tree, &in_prov,
                              transform)
              : transform(entry.tree, &in_prov);
      if (!in_prov) continue;  // l.17: sigma_{inProv=true}
      MergeEntry(&next, BacktraceEntry{row_ins[k], std::move(derived)});
    }
  }
  return BacktraceFrom(prov.inputs[0].producer_oid, std::move(next),
                       at_sources, state);
}

}  // namespace pebble
