#include "core/provenance_wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <sstream>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/file_io.h"
#include "core/compactor.h"
#include "core/provenance_io.h"

namespace pebble {

namespace {

void AppendU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t ReadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

std::string SegmentName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "segment-%06llu.wal",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::string SnapshotName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "snapshot-%06llu.pprov",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::string BuildSegmentHeader(uint64_t seq) {
  std::string h;
  h.append(kWalMagic, sizeof(kWalMagic));
  AppendU32(kWalVersion, &h);
  AppendU64(seq, &h);
  AppendU32(Crc32(h.data(), h.size()), &h);
  return h;
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open WAL directory '" + dir +
                           "' for fsync: " + std::strerror(errno));
  }
  int rc = ::fsync(fd);
  int saved = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync of WAL directory '" + dir +
                           "' failed: " + std::strerror(saved));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Manifest: small atomically-replaced text file naming the newest snapshot
// and the highest segment sequence folded into it.
//
//   pebblewal 1
//   covered <seq>
//   snapshot <file|->

struct Manifest {
  uint64_t covered = 0;
  std::string snapshot;  // file name, empty = none
};

std::string SerializeManifest(const Manifest& m) {
  return "pebblewal 1\ncovered " + std::to_string(m.covered) + "\nsnapshot " +
         (m.snapshot.empty() ? "-" : m.snapshot) + "\n";
}

Result<Manifest> ParseManifest(const std::string& text,
                               const std::string& origin) {
  auto corrupt = [&](const std::string& what) {
    return Status::IOError("WAL manifest '" + origin + "': " + what);
  };
  std::istringstream in(text);
  std::string word;
  int version = 0;
  in >> word >> version;
  if (in.fail() || word != "pebblewal") return corrupt("bad header");
  if (version != 1) {
    return corrupt("unsupported manifest version " + std::to_string(version));
  }
  Manifest m;
  in >> word >> m.covered;
  if (in.fail() || word != "covered") return corrupt("bad covered line");
  std::string snapshot;
  in >> word >> snapshot;
  if (in.fail() || word != "snapshot") return corrupt("bad snapshot line");
  if (snapshot != "-") {
    if (snapshot.find('/') != std::string::npos) {
      return corrupt("snapshot name '" + snapshot + "' contains a path");
    }
    m.snapshot = snapshot;
  }
  return m;
}

// ---------------------------------------------------------------------------
// Record payload builders (writer side).

std::string BuildMetaPayload(const ProvenanceStore& store) {
  std::string p = "meta " + std::string(provio::ModeToToken(store.mode())) +
                  " " + std::to_string(store.sink_oid()) + "\n";
  for (int oid : store.AllOids()) {
    provio::AppendTopologyLine(*store.FindInfo(oid), &p);
  }
  return p;
}

std::string BuildPathsPayload(int oid, const OperatorProvenance& prov) {
  std::string p = "paths " + std::to_string(oid) + "\n";
  for (const InputProvenance& input : prov.inputs) {
    provio::AppendInputLine(input,
                            input.input_schema != nullptr
                                ? input.input_schema->ToString()
                                : "-",
                            &p);
  }
  provio::AppendManipLines(prov, &p);
  return p;
}

bool HasSchemaPaths(const OperatorProvenance& prov) {
  return !prov.inputs.empty() || !prov.manipulations.empty() ||
         prov.manip_undefined;
}

// ---------------------------------------------------------------------------
// Record replay (recovery side).

struct ReplayState {
  RecoveredStore* out = nullptr;
  bool meta_seen = false;
  int64_t last_run_next_id = 0;
};

/// Applies one CRC-valid record payload. Failures here are hard corruption
/// (a checksummed record that does not parse is a bug, not a torn write).
Status ApplyWalRecord(const std::string& payload, ReplayState* rs,
                      WalRecoveryInfo* info) {
  ProvenanceStore* store = rs->out->store.get();

  // Split off the first line (record kind) from the body.
  size_t first_end = payload.find('\n');
  if (first_end == std::string::npos) first_end = payload.size();
  std::istringstream head(payload.substr(0, first_end));
  std::string kind;
  head >> kind;

  auto body_lines = [&](const std::function<Status(const std::string& tag,
                                                   std::istringstream& in)>&
                            fn) -> Status {
    size_t start = first_end == payload.size() ? first_end : first_end + 1;
    size_t line_no = 1;
    while (start < payload.size()) {
      size_t end = payload.find('\n', start);
      if (end == std::string::npos) end = payload.size();
      std::string line = payload.substr(start, end - start);
      start = end + 1;
      ++line_no;
      if (line.empty()) continue;
      std::istringstream in(line);
      std::string tag;
      in >> tag;
      Status st = fn(tag, in);
      if (!st.ok()) {
        return st.WithContext("record line " + std::to_string(line_no));
      }
    }
    return Status::OK();
  };

  if (kind == "meta") {
    if (rs->meta_seen || !rs->out->meta_payload.empty() ||
        !store->AllOids().empty()) {
      // Duplicate meta (e.g. a stale segment surviving an interrupted
      // cleanup): must describe the identical pipeline.
      std::string expected = rs->out->meta_payload.empty()
                                 ? BuildMetaPayload(*store)
                                 : rs->out->meta_payload;
      if (payload != expected) {
        return Status::IOError("meta record disagrees with earlier topology");
      }
      rs->meta_seen = true;
      return Status::OK();
    }
    std::string mode_token;
    int sink = -1;
    head >> mode_token >> sink;
    if (head.fail()) return Status::IOError("bad meta record");
    auto mode = provio::TokenToMode(mode_token);
    if (!mode.ok()) return mode.status();
    store->set_mode(*mode);
    store->set_sink_oid(sink);
    PEBBLE_RETURN_NOT_OK(body_lines([&](const std::string& tag,
                                        std::istringstream& in) -> Status {
      if (tag != "o") {
        return Status::IOError("unexpected tag '" + tag +
                               "' in meta record");
      }
      return provio::ParseTopologyRecord(in, store);
    }));
    rs->out->meta_payload = payload;
    rs->meta_seen = true;
    return Status::OK();
  }

  if (kind == "paths") {
    int oid = -1;
    head >> oid;
    if (head.fail()) return Status::IOError("bad paths record");
    if (!rs->meta_seen) return Status::IOError("paths record before meta");
    auto it = rs->out->paths_payloads.find(oid);
    OperatorProvenance* prov = store->Mutable(oid);
    if (it != rs->out->paths_payloads.end() || HasSchemaPaths(*prov)) {
      std::string expected = it != rs->out->paths_payloads.end()
                                 ? it->second
                                 : BuildPathsPayload(oid, *prov);
      if (payload != expected) {
        return Status::IOError("paths record for operator " +
                               std::to_string(oid) +
                               " disagrees with earlier paths");
      }
      return Status::OK();
    }
    PEBBLE_RETURN_NOT_OK(body_lines([&](const std::string& tag,
                                        std::istringstream& in) -> Status {
      if (tag == "i") {
        return provio::ParseInputRecord(in, prov, /*schema_table=*/nullptr);
      }
      if (tag == "m") return provio::ParseManipRecord(in, prov);
      return Status::IOError("unexpected tag '" + tag + "' in paths record");
    }));
    rs->out->paths_payloads[oid] = payload;
    return Status::OK();
  }

  if (kind == "chunk") {
    int oid = -1;
    head >> oid;
    if (head.fail()) return Status::IOError("bad chunk record");
    if (!rs->meta_seen) return Status::IOError("chunk record before meta");
    OperatorProvenance* prov = store->Mutable(oid);
    PEBBLE_RETURN_NOT_OK(body_lines([&](const std::string& tag,
                                        std::istringstream& in) -> Status {
      if (tag == "u" || tag == "b" || tag == "f" || tag == "a") {
        return provio::ParseIdRecord(tag, in, prov);
      }
      return Status::IOError("unexpected tag '" + tag + "' in chunk record");
    }));
    ++info->chunk_records;
    return Status::OK();
  }

  if (kind == "run-begin") {
    ++info->runs_started;
    return Status::OK();
  }

  if (kind == "run-end") {
    uint64_t index = 0;
    int64_t next_id = 0;
    head >> index >> next_id;
    if (head.fail()) return Status::IOError("bad run-end record");
    rs->last_run_next_id = std::max(rs->last_run_next_id, next_id);
    ++info->runs_completed;
    return Status::OK();
  }

  return Status::IOError("unknown WAL record kind '" + kind + "'");
}

int64_t MaxIdInStore(const ProvenanceStore& store) {
  int64_t max_id = 0;
  auto take = [&max_id](int64_t id) { max_id = std::max(max_id, id); };
  for (int oid : store.AllOids()) {
    const OperatorProvenance* p = store.Find(oid);
    if (p == nullptr) continue;
    for (int64_t id : p->unary_ids.in_col()) take(id);
    for (int64_t id : p->unary_ids.out_col()) take(id);
    for (int64_t id : p->binary_ids.in1_col()) take(id);
    for (int64_t id : p->binary_ids.in2_col()) take(id);
    for (int64_t id : p->binary_ids.out_col()) take(id);
    for (int64_t id : p->flatten_ids.in_col()) take(id);
    for (int64_t id : p->flatten_ids.out_col()) take(id);
    for (int64_t id : p->agg_ids.ins_col()) take(id);
    for (int64_t id : p->agg_ids.out_col()) take(id);
  }
  return max_id;
}

}  // namespace

std::string WalSegmentPath(const std::string& dir, uint64_t seq) {
  return JoinPath(dir, SegmentName(seq));
}

std::string WalManifestPath(const std::string& dir) {
  return JoinPath(dir, "MANIFEST");
}

std::string WalSnapshotPath(const std::string& dir, uint64_t seq) {
  return JoinPath(dir, SnapshotName(seq));
}

Result<std::map<uint64_t, std::string>> ListWalSegments(
    const std::string& dir) {
  std::map<uint64_t, std::string> out;
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) return out;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IOError("cannot list WAL directory '" + dir +
                           "': " + ec.message());
  }
  for (const auto& entry : it) {
    std::string name = entry.path().filename().string();
    constexpr std::string_view kPrefix = "segment-";
    constexpr std::string_view kSuffix = ".wal";
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      continue;
    }
    std::string digits = name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
    char* end = nullptr;
    errno = 0;
    unsigned long long seq = std::strtoull(digits.c_str(), &end, 10);
    if (end != digits.c_str() + digits.size() || errno == ERANGE ||
        digits.empty() || seq == 0) {
      continue;  // not one of ours
    }
    out[seq] = entry.path().string();
  }
  return out;
}

Result<RecoveredStore> RecoverStore(const std::string& dir) {
  return RecoverStoreThrough(dir, ~0ull);
}

Result<RecoveredStore> RecoverStoreThrough(const std::string& dir,
                                           uint64_t through) {
  RecoveredStore out;
  out.store = std::make_unique<ProvenanceStore>();
  WalRecoveryInfo& info = out.info;

  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) return out;  // nothing yet: empty

  // 1. Manifest (authoritative for what the snapshot covers).
  Manifest manifest;
  const std::string manifest_path = WalManifestPath(dir);
  if (std::filesystem::exists(manifest_path, ec)) {
    auto text = ReadFileToString(manifest_path);
    if (!text.ok()) return text.status().WithContext("reading WAL manifest");
    PEBBLE_ASSIGN_OR_RETURN(manifest, ParseManifest(*text, manifest_path));
    info.manifest_found = true;
    info.covered_seq = manifest.covered;
  }

  // 2. Snapshot named by the manifest (orphan snapshots from interrupted
  // compactions are ignored — the manifest is the commit point).
  ReplayState rs;
  rs.out = &out;
  if (!manifest.snapshot.empty()) {
    auto loaded = LoadProvenanceStore(JoinPath(dir, manifest.snapshot));
    if (!loaded.ok()) {
      return loaded.status().WithContext("loading WAL snapshot");
    }
    out.store = std::move(loaded).value();
    info.snapshot_loaded = true;
    rs.meta_seen = true;
  }

  // 3. Contiguous segment tail with sequence > covered.
  PEBBLE_ASSIGN_OR_RETURN(auto segments, ListWalSegments(dir));
  const uint64_t max_present =
      segments.empty() ? 0 : segments.rbegin()->first;
  info.max_segment_seq = std::max(info.covered_seq, max_present);

  uint64_t expected = info.covered_seq + 1;
  for (const auto& [seq, path] : segments) {
    if (seq <= info.covered_seq) continue;  // stale: already folded
    if (seq > through) break;
    if (seq != expected) {
      return Status::IOError("WAL segment gap in '" + dir + "': expected " +
                             SegmentName(expected) + ", found " +
                             SegmentName(seq));
    }
    ++expected;
    const bool newest = seq == max_present;
    auto data_or = ReadFileToString(path);
    if (!data_or.ok()) {
      return data_or.status().WithContext("reading WAL segment");
    }
    const std::string& data = *data_or;

    auto torn = [&](uint64_t offset) {
      info.torn_tail = true;
      info.torn_segment_seq = seq;
      info.torn_offset = offset;
    };
    auto corrupt = [&](uint64_t offset, const std::string& what) {
      return Status::IOError("WAL segment '" + path + "' at byte " +
                             std::to_string(offset) + ": " + what +
                             " (sealed segment: not a torn tail)");
    };

    // Header.
    if (data.size() < kWalSegmentHeaderBytes ||
        std::memcmp(data.data(), kWalMagic, sizeof(kWalMagic)) != 0 ||
        ReadU32(data.data() + 20) != Crc32(data.data(), 20)) {
      if (newest) {
        torn(0);
        break;
      }
      return corrupt(0, "bad segment header");
    }
    if (ReadU32(data.data() + 8) != kWalVersion) {
      return corrupt(8, "unsupported WAL version " +
                            std::to_string(ReadU32(data.data() + 8)));
    }
    if (ReadU64(data.data() + 12) != seq) {
      return corrupt(12, "header sequence " +
                             std::to_string(ReadU64(data.data() + 12)) +
                             " disagrees with file name");
    }

    // Records.
    size_t offset = kWalSegmentHeaderBytes;
    bool stop = false;
    while (offset < data.size()) {
      size_t remaining = data.size() - offset;
      if (remaining < kWalRecordHeaderBytes) {
        if (newest) {
          torn(offset);
          stop = true;
          break;
        }
        return corrupt(offset, "truncated record header");
      }
      uint32_t len = ReadU32(data.data() + offset);
      uint32_t crc = ReadU32(data.data() + offset + 4);
      if (len > remaining - kWalRecordHeaderBytes) {
        if (newest) {
          torn(offset);
          stop = true;
          break;
        }
        return corrupt(offset, "record length " + std::to_string(len) +
                                   " exceeds segment");
      }
      std::string payload =
          data.substr(offset + kWalRecordHeaderBytes, len);
      if (Crc32(payload.data(), payload.size()) != crc) {
        if (newest) {
          torn(offset);
          stop = true;
          break;
        }
        return corrupt(offset, "record checksum mismatch");
      }
      Status applied = ApplyWalRecord(payload, &rs, &info);
      if (!applied.ok()) {
        // A CRC-valid record that does not apply is corruption everywhere,
        // including the newest segment: a torn write cannot survive the
        // checksum, so this is a real defect.
        return Status::FromCode(
            StatusCode::kIOError,
            "WAL segment '" + path + "' record at byte " +
                std::to_string(offset) + ": " + applied.message());
      }
      ++info.records_replayed;
      offset += kWalRecordHeaderBytes + len;
    }
    ++info.segments_replayed;
    if (stop || info.torn_tail) break;
  }

  // 4. Validation gate: never hand back a store that would poison queries.
  Status valid = out.store->Validate();
  if (!valid.ok()) {
    return Status::FromCode(StatusCode::kIOError,
                            "recovered WAL store from '" + dir +
                                "' failed validation: " + valid.message());
  }

  info.next_item_id =
      std::max<int64_t>({rs.last_run_next_id, MaxIdInStore(*out.store) + 1,
                         1});
  return out;
}

// ---------------------------------------------------------------------------
// WalWriter.

WalWriter::WalWriter(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(options) {}

WalWriter::~WalWriter() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    if (broken_.ok() && !closed_) {
      (void)FlushLocked();
    }
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& dir,
                                                   const WalOptions& options,
                                                   RecoveredStore* recovered) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create WAL directory '" + dir +
                           "': " + ec.message());
  }

  auto rec_or = RecoverStore(dir);
  if (!rec_or.ok()) {
    return rec_or.status().WithContext("opening WAL at '" + dir + "'");
  }
  RecoveredStore rec = std::move(rec_or).value();

  std::unique_ptr<WalWriter> writer(new WalWriter(dir, options));
  writer->covered_seq_ = rec.info.covered_seq;
  writer->record_ordinal_ = rec.info.records_replayed;
  writer->records_appended_ = rec.info.records_replayed;
  writer->records_durable_ = rec.info.records_replayed;
  writer->next_run_index_ = rec.info.runs_started + 1;

  // Writer-resume state: the topology and paths already in the log (either
  // as replayed payloads or folded into the snapshot).
  writer->meta_payload_ = std::move(rec.meta_payload);
  writer->paths_payloads_ = rec.paths_payloads;
  if (writer->meta_payload_.empty() && !rec.store->AllOids().empty()) {
    writer->meta_payload_ = BuildMetaPayload(*rec.store);
  }
  for (int oid : rec.store->AllOids()) {
    const OperatorProvenance* prov = rec.store->Find(oid);
    if (prov != nullptr && HasSchemaPaths(*prov) &&
        writer->paths_payloads_.count(oid) == 0) {
      writer->paths_payloads_[oid] = BuildPathsPayload(oid, *prov);
    }
  }
  rec.meta_payload = writer->meta_payload_;
  rec.paths_payloads = writer->paths_payloads_;

  // Repair a torn tail physically: truncate at the first bad byte so the
  // segment — about to become non-newest — is clean for every later
  // recovery. A segment whose header itself is torn is removed and its
  // sequence number reused.
  uint64_t new_seq = rec.info.max_segment_seq + 1;
  if (rec.info.torn_tail) {
    const std::string torn_path =
        WalSegmentPath(dir, rec.info.torn_segment_seq);
    if (rec.info.torn_offset >= kWalSegmentHeaderBytes) {
      int fd = ::open(torn_path.c_str(), O_WRONLY | O_CLOEXEC);
      if (fd < 0) {
        return Status::IOError("cannot open torn WAL segment '" + torn_path +
                               "' for repair: " + std::strerror(errno));
      }
      int rc = ::ftruncate(fd, static_cast<off_t>(rec.info.torn_offset));
      if (rc == 0 && options.sync) rc = ::fsync(fd);
      int saved = errno;
      ::close(fd);
      if (rc != 0) {
        return Status::IOError("cannot truncate torn WAL segment '" +
                               torn_path + "': " + std::strerror(saved));
      }
    } else {
      std::filesystem::remove(torn_path, ec);
      if (ec) {
        return Status::IOError("cannot remove torn WAL segment '" +
                               torn_path + "': " + ec.message());
      }
      new_seq = rec.info.torn_segment_seq;
    }
  }

  // Account already-sealed segments for the compaction trigger.
  PEBBLE_ASSIGN_OR_RETURN(auto segments, ListWalSegments(dir));
  for (const auto& [seq, path] : segments) {
    if (seq <= writer->covered_seq_ || seq >= new_seq) continue;
    uint64_t bytes = std::filesystem::file_size(path, ec);
    if (ec) bytes = 0;
    writer->sealed_.push_back({seq, bytes});
    writer->sealed_bytes_ += bytes;
  }

  {
    std::lock_guard<std::mutex> lock(writer->mu_);
    PEBBLE_RETURN_NOT_OK(writer->OpenSegmentLocked(new_seq));
  }
  if (recovered != nullptr) *recovered = std::move(rec);
  return writer;
}

Status WalWriter::BrokenLocked() const {
  if (!broken_.ok()) return broken_;
  if (closed_) {
    return Status::InvalidArgument("provenance WAL at '" + dir_ +
                                   "' is closed");
  }
  return Status::OK();
}

Status WalWriter::OpenSegmentLocked(uint64_t seq) {
  const std::string path = WalSegmentPath(dir_, seq);
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    broken_ = Status::IOError("cannot create WAL segment '" + path +
                              "': " + std::strerror(errno));
    return broken_;
  }
  fd_ = fd;
  active_seq_ = seq;
  active_bytes_ = 0;
  const std::string header = BuildSegmentHeader(seq);
  Status st = WriteRawLocked(header.data(), header.size());
  if (!st.ok()) {
    broken_ = st;
    return broken_;
  }
  active_bytes_ = header.size();
  // The header and the directory entry are NOT fsynced here: nothing has
  // been acknowledged yet, so a crash that loses the empty segment loses
  // nothing. The first record flush fsyncs the same fd (covering the
  // header) and syncs the directory before any acknowledgment.
  segment_entry_synced_ = false;
  return Status::OK();
}

Status WalWriter::WriteRawLocked(const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd_, p + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write to WAL segment " +
                             SegmentName(active_seq_) + " failed after " +
                             std::to_string(written) + "/" +
                             std::to_string(size) + " bytes: " +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WalWriter::AppendRecordLocked(const std::string& payload) {
  const uint64_t key = record_ordinal_;
  std::string frame;
  frame.reserve(kWalRecordHeaderBytes + payload.size());
  AppendU32(static_cast<uint32_t>(payload.size()), &frame);
  AppendU32(Crc32Finalize(
                Crc32Update(kCrc32Init, payload.data(), payload.size())),
            &frame);
  frame += payload;

  Status injected =
      FailpointRegistry::Global().Evaluate(failpoints::kWalAppend, key);
  if (!injected.ok()) {
    // Simulated crash mid-append: whatever was buffered plus a strict
    // prefix of this frame reaches the file; nothing after it ever will.
    (void)WriteRawLocked(pending_.data(), pending_.size());
    active_bytes_ += pending_.size();
    pending_.clear();
    records_pending_ = 0;
    size_t cut = static_cast<size_t>((key * 7919 + 3) % frame.size());
    (void)WriteRawLocked(frame.data(), cut);
    active_bytes_ += cut;
    broken_ = injected.WithContext("provenance WAL append (record " +
                                   std::to_string(key) + ")");
    return broken_;
  }
  ++record_ordinal_;
  pending_ += frame;
  ++records_appended_;
  ++records_pending_;
  return Status::OK();
}

Status WalWriter::FlushLocked() {
  if (fd_ < 0) {
    return Status::Internal("provenance WAL flush with no active segment");
  }
  if (pending_.empty() && records_durable_ == records_appended_) {
    return Status::OK();
  }
  if (!pending_.empty()) {
    Status st = WriteRawLocked(pending_.data(), pending_.size());
    if (!st.ok()) {
      broken_ = st;
      return broken_;
    }
    active_bytes_ += pending_.size();
    pending_.clear();
    records_pending_ = 0;
  }
  if (options_.sync) {
    const uint64_t key = flush_ordinal_++;
    Status injected =
        FailpointRegistry::Global().Evaluate(failpoints::kWalSync, key);
    if (!injected.ok()) {
      // Data reached the OS but durability was not confirmed: same poison
      // rule as a real fsync failure.
      broken_ = injected.WithContext("provenance WAL fsync (flush " +
                                     std::to_string(key) + ")");
      return broken_;
    }
    if (::fsync(fd_) != 0) {
      broken_ = Status::IOError("fsync of WAL segment " +
                                SegmentName(active_seq_) +
                                " failed: " + std::strerror(errno));
      return broken_;
    }
    if (!segment_entry_synced_) {
      Status dsync = SyncDir(dir_);
      if (!dsync.ok()) {
        broken_ = dsync;
        return broken_;
      }
      segment_entry_synced_ = true;
    }
  }
  records_durable_ = records_appended_;
  return Status::OK();
}

Status WalWriter::RotateLocked() {
  PEBBLE_RETURN_NOT_OK(FlushLocked());
  if (::close(fd_) != 0) {
    fd_ = -1;
    broken_ = Status::IOError("close of WAL segment " +
                              SegmentName(active_seq_) +
                              " failed: " + std::strerror(errno));
    return broken_;
  }
  fd_ = -1;
  sealed_.push_back({active_seq_, active_bytes_});
  sealed_bytes_ += active_bytes_;

  const uint64_t next_seq = active_seq_ + 1;
  Status injected =
      FailpointRegistry::Global().Evaluate(failpoints::kWalRotate, next_seq);
  if (!injected.ok()) {
    // Crash between seal and successor creation: recovery sees only sealed
    // segments, which is fine; the writer must not continue.
    broken_ = injected.WithContext("provenance WAL rotate (to segment " +
                                   std::to_string(next_seq) + ")");
    return broken_;
  }
  return OpenSegmentLocked(next_seq);
}

Status WalWriter::OnRunBegin(const ProvenanceStore& store,
                             int64_t first_item_id) {
  std::lock_guard<std::mutex> lock(mu_);
  PEBBLE_RETURN_NOT_OK(BrokenLocked());

  if (store.mode() == CaptureMode::kFullModel) {
    // Chunk records carry id rows and schema-level paths only; streaming
    // per-item provenance would silently drop it on recovery.
    return Status::InvalidArgument(
        "full-model capture cannot be streamed to a provenance WAL "
        "(per-item provenance is not chunked); use kStructural or kLineage");
  }

  std::string meta = BuildMetaPayload(store);
  if (meta_payload_.empty()) {
    PEBBLE_RETURN_NOT_OK(AppendRecordLocked(meta));
    meta_payload_ = std::move(meta);
  } else if (meta != meta_payload_) {
    return Status::InvalidArgument(
        "provenance WAL at '" + dir_ +
        "' already holds a different pipeline topology; one WAL logs one "
        "pipeline shape");
  }

  // Each executor run starts from an empty store: nothing of the new run's
  // tables has been logged yet.
  cursors_.clear();

  PEBBLE_RETURN_NOT_OK(AppendRecordLocked(
      "run-begin " + std::to_string(next_run_index_) + " " +
      std::to_string(first_item_id) + "\n"));
  ++next_run_index_;

  if (options_.group_commit_bytes == 0 ||
      pending_.size() >= options_.group_commit_bytes) {
    PEBBLE_RETURN_NOT_OK(FlushLocked());
  }
  if (active_bytes_ + pending_.size() >= options_.segment_bytes) {
    PEBBLE_RETURN_NOT_OK(RotateLocked());
  }
  return Status::OK();
}

Status WalWriter::OnOperatorCommit(const ProvenanceStore& store, int oid) {
  std::lock_guard<std::mutex> lock(mu_);
  PEBBLE_RETURN_NOT_OK(BrokenLocked());

  const OperatorProvenance* prov = store.Find(oid);
  if (prov == nullptr) return Status::OK();  // nothing captured (e.g. scan)

  if (HasSchemaPaths(*prov)) {
    std::string paths = BuildPathsPayload(oid, *prov);
    auto it = paths_payloads_.find(oid);
    if (it == paths_payloads_.end()) {
      PEBBLE_RETURN_NOT_OK(AppendRecordLocked(paths));
      paths_payloads_[oid] = std::move(paths);
    } else if (paths != it->second) {
      return Status::InvalidArgument(
          "provenance WAL at '" + dir_ + "': operator " +
          std::to_string(oid) +
          " committed different schema-level paths than previously logged");
    }
  }

  provio::IdTableCursor& cursor = cursors_[oid];
  if (provio::HasRowsAfter(*prov, cursor)) {
    std::string chunk = "chunk " + std::to_string(oid) + "\n";
    provio::AppendIdRowLinesFrom(*prov, &cursor, &chunk);
    PEBBLE_RETURN_NOT_OK(AppendRecordLocked(chunk));
  }

  if (options_.group_commit_bytes == 0 ||
      pending_.size() >= options_.group_commit_bytes) {
    PEBBLE_RETURN_NOT_OK(FlushLocked());
  }
  if (active_bytes_ + pending_.size() >= options_.segment_bytes) {
    PEBBLE_RETURN_NOT_OK(RotateLocked());
  }
  return Status::OK();
}

Status WalWriter::OnRunEnd(const ProvenanceStore& store,
                           int64_t next_item_id) {
  (void)store;
  std::lock_guard<std::mutex> lock(mu_);
  PEBBLE_RETURN_NOT_OK(BrokenLocked());
  PEBBLE_RETURN_NOT_OK(AppendRecordLocked(
      "run-end " + std::to_string(next_run_index_ - 1) + " " +
      std::to_string(next_item_id) + "\n"));
  // A run boundary is always a durability point, group commit or not.
  PEBBLE_RETURN_NOT_OK(FlushLocked());
  if (active_bytes_ >= options_.segment_bytes) {
    PEBBLE_RETURN_NOT_OK(RotateLocked());
  }
  return Status::OK();
}

Status WalWriter::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  PEBBLE_RETURN_NOT_OK(BrokenLocked());
  return FlushLocked();
}

Status WalWriter::Rotate() {
  std::lock_guard<std::mutex> lock(mu_);
  PEBBLE_RETURN_NOT_OK(BrokenLocked());
  return RotateLocked();
}

Status WalWriter::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!broken_.ok()) return broken_;
  if (closed_) return Status::OK();
  PEBBLE_RETURN_NOT_OK(FlushLocked());
  if (fd_ >= 0) {
    if (::close(fd_) != 0) {
      fd_ = -1;
      broken_ = Status::IOError("close of WAL segment " +
                                SegmentName(active_seq_) +
                                " failed: " + std::strerror(errno));
      return broken_;
    }
    fd_ = -1;
  }
  closed_ = true;
  return Status::OK();
}

Status WalWriter::CompactLocked() {
  PEBBLE_RETURN_NOT_OK(BrokenLocked());
  // Seal the active segment first when it holds records, so every record
  // written so far is foldable.
  if (active_bytes_ > kWalSegmentHeaderBytes || !pending_.empty()) {
    PEBBLE_RETURN_NOT_OK(RotateLocked());
  }
  const uint64_t through = active_seq_ - 1;
  if (through <= covered_seq_) return Status::OK();  // nothing sealed

  auto stats = internal::FoldWalSegments(dir_, through, options_.sync);
  if (!stats.ok()) {
    // The log is untouched by a failed fold; the writer stays healthy.
    return stats.status().WithContext("provenance WAL compaction");
  }
  if (stats->performed) {
    covered_seq_ = stats->covered_seq;
    sealed_.erase(std::remove_if(sealed_.begin(), sealed_.end(),
                                 [&](const SealedSegment& s) {
                                   return s.seq <= covered_seq_;
                                 }),
                  sealed_.end());
    sealed_bytes_ = 0;
    for (const SealedSegment& s : sealed_) sealed_bytes_ += s.bytes;
    ++compactions_;
  }
  return Status::OK();
}

Status WalWriter::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  return CompactLocked();
}

uint64_t WalWriter::sealed_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_bytes_;
}

uint64_t WalWriter::records_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_appended_;
}

uint64_t WalWriter::records_durable() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_durable_;
}

uint64_t WalWriter::active_segment_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_seq_;
}

uint64_t WalWriter::compactions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return compactions_;
}

// ---------------------------------------------------------------------------
// Fold core (shared by WalWriter::Compact and the offline CompactWal). Lives
// here for access to the manifest helpers; declared in core/compactor.h.

namespace internal {

Result<WalCompactionStats> FoldWalSegments(const std::string& dir,
                                           uint64_t through, bool sync) {
  WalCompactionStats stats;
  PEBBLE_ASSIGN_OR_RETURN(auto segments, ListWalSegments(dir));

  auto rec_or = RecoverStoreThrough(dir, through);
  if (!rec_or.ok()) {
    return rec_or.status().WithContext("WAL compaction recovery");
  }
  RecoveredStore rec = std::move(rec_or).value();

  const uint64_t old_covered = rec.info.covered_seq;
  uint64_t new_covered = old_covered;
  for (const auto& [seq, path] : segments) {
    if (seq > old_covered && seq <= through) {
      ++stats.segments_folded;
      new_covered = std::max(new_covered, seq);
    }
  }
  stats.covered_seq = old_covered;
  if (stats.segments_folded == 0) return stats;  // nothing new to fold

  // 1. Snapshot first. A crash after this point but before the manifest
  // lands leaves an orphan file that recovery never looks at.
  const std::string snap_path = WalSnapshotPath(dir, new_covered);
  Status saved = SaveProvenanceStore(*rec.store, snap_path);
  if (!saved.ok()) {
    return saved.WithContext("writing WAL compaction snapshot");
  }

  // 2. Manifest rename is the commit point of the compaction.
  PEBBLE_RETURN_NOT_OK(
      FailpointRegistry::Global()
          .Evaluate(failpoints::kWalManifest, new_covered)
          .WithContext("WAL compaction manifest"));
  Manifest manifest;
  manifest.covered = new_covered;
  manifest.snapshot = SnapshotName(new_covered);
  AtomicWriteOptions write_options;
  write_options.sync = sync;
  Status committed = AtomicWriteFile(WalManifestPath(dir),
                                     SerializeManifest(manifest),
                                     write_options);
  if (!committed.ok()) {
    return committed.WithContext("writing WAL manifest");
  }

  // 3. Reclaim folded segments and superseded snapshots, best-effort: a
  // leftover here is invisible to recovery and reclaimed next pass.
  std::error_code ec;
  for (const auto& [seq, path] : segments) {
    if (seq > new_covered) continue;
    if (std::filesystem::remove(path, ec) && !ec) ++stats.segments_removed;
  }
  std::filesystem::directory_iterator it(dir, ec);
  if (!ec) {
    for (const auto& entry : it) {
      std::string name = entry.path().filename().string();
      constexpr std::string_view kPrefix = "snapshot-";
      constexpr std::string_view kSuffix = ".pprov";
      if (name == manifest.snapshot || name.size() <= kPrefix.size() ||
          name.compare(0, kPrefix.size(), kPrefix) != 0 ||
          name.size() < kPrefix.size() + kSuffix.size() ||
          name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                       kSuffix) != 0) {
        continue;
      }
      if (std::filesystem::remove(entry.path(), ec) && !ec) {
        ++stats.snapshots_removed;
      }
    }
  }

  stats.performed = true;
  stats.covered_seq = new_covered;
  stats.snapshot_path = snap_path;
  return stats;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// WalTailApplier: incremental replication-follower replay.

WalTailApplier::WalTailApplier(RecoveredStore recovered)
    : recovered_(std::move(recovered)), info_(recovered_.info) {
  meta_seen_ = info_.snapshot_loaded || !recovered_.meta_payload.empty();
  last_run_next_id_ = info_.next_item_id;
}

Status WalTailApplier::SeedTail(uint64_t seq, uint64_t offset) {
  if (seq_ != 0) {
    return Status::InvalidArgument(
        "WAL tail seed: applier already positioned at segment " +
        std::to_string(seq_));
  }
  if (seq <= info_.covered_seq) {
    return Status::InvalidArgument(
        "WAL tail seed: segment " + std::to_string(seq) +
        " is already folded into the snapshot (covered " +
        std::to_string(info_.covered_seq) + ")");
  }
  if (offset < kWalSegmentHeaderBytes) {
    return Status::InvalidArgument(
        "WAL tail seed: offset " + std::to_string(offset) +
        " splits the segment header");
  }
  seq_ = seq;
  position_ = offset;
  header_checked_ = true;
  info_.max_segment_seq = std::max(info_.max_segment_seq, seq_);
  return Status::OK();
}

Status WalTailApplier::Feed(uint64_t seq, uint64_t offset,
                            std::string_view bytes) {
  auto reject = [&](const std::string& what) {
    return Status::IOError(
        "WAL tail feed for segment " + std::to_string(seq) + " at offset " +
        std::to_string(offset) + ": " + what + " (applier at segment " +
        std::to_string(seq_) + ", position " + std::to_string(position_) +
        ")");
  };
  if (seq_ == 0) {
    // First feed establishes the position (see header contract).
    if (seq <= info_.covered_seq) {
      return reject("sequence already folded into the snapshot");
    }
    if (offset > 0 && offset < kWalSegmentHeaderBytes) {
      return reject("resume offset splits the segment header");
    }
    seq_ = seq;
    position_ = offset;
    header_checked_ = offset >= kWalSegmentHeaderBytes;
    // A resumed segment (offset > 0) was already counted by the local
    // recovery that seeded `info_`; a fresh one was not.
    if (offset == 0) ++info_.segments_replayed;
  } else if (seq == seq_) {
    if (offset != position_) return reject("discontinuous bytes");
  } else if (seq == seq_ + 1) {
    if (offset != 0) return reject("new segment must start at offset 0");
    if (!buffer_.empty()) {
      return reject("previous segment ended inside a record");
    }
    if (!header_checked_) {
      return reject("previous segment ended inside its header");
    }
    seq_ = seq;
    position_ = 0;
    header_checked_ = false;
    ++info_.segments_replayed;
  } else {
    return reject("sequence gap");
  }
  info_.max_segment_seq = std::max(info_.max_segment_seq, seq_);

  buffer_.append(bytes.data(), bytes.size());
  position_ += bytes.size();
  return ApplyBuffered();
}

Status WalTailApplier::ApplyBuffered() {
  auto corrupt = [&](uint64_t at, const std::string& what) {
    return Status::IOError("WAL tail segment " + std::to_string(seq_) +
                           " at byte " + std::to_string(at) + ": " + what);
  };
  if (!header_checked_) {
    if (buffer_.size() < kWalSegmentHeaderBytes) return Status::OK();
    if (std::memcmp(buffer_.data(), kWalMagic, sizeof(kWalMagic)) != 0 ||
        ReadU32(buffer_.data() + 20) != Crc32(buffer_.data(), 20)) {
      return corrupt(0, "bad segment header");
    }
    if (ReadU32(buffer_.data() + 8) != kWalVersion) {
      return corrupt(8, "unsupported WAL version " +
                            std::to_string(ReadU32(buffer_.data() + 8)));
    }
    if (ReadU64(buffer_.data() + 12) != seq_) {
      return corrupt(12, "header sequence " +
                             std::to_string(ReadU64(buffer_.data() + 12)) +
                             " disagrees with the shipped sequence");
    }
    buffer_.erase(0, kWalSegmentHeaderBytes);
    header_checked_ = true;
  }

  while (buffer_.size() >= kWalRecordHeaderBytes) {
    const uint64_t at = applied_position();
    uint32_t len = ReadU32(buffer_.data());
    uint32_t crc = ReadU32(buffer_.data() + 4);
    // A record cannot plausibly exceed the rotation threshold by orders of
    // magnitude; a garbage length would otherwise stall the stream forever
    // waiting for bytes that never come.
    if (len > (256u << 20)) {
      return corrupt(at, "implausible record length " + std::to_string(len));
    }
    if (buffer_.size() - kWalRecordHeaderBytes < len) return Status::OK();
    std::string payload = buffer_.substr(kWalRecordHeaderBytes, len);
    if (Crc32(payload.data(), payload.size()) != crc) {
      // The frame is complete, so this is not an in-flight partial record:
      // the bytes on the primary were torn/garbage. Definitive corruption —
      // the caller resynchronizes.
      return corrupt(at, "record checksum mismatch");
    }
    ReplayState rs;
    rs.out = &recovered_;
    rs.meta_seen = meta_seen_;
    rs.last_run_next_id = last_run_next_id_;
    Status applied = ApplyWalRecord(payload, &rs, &info_);
    if (!applied.ok()) {
      return corrupt(at, applied.message());
    }
    meta_seen_ = rs.meta_seen;
    last_run_next_id_ = rs.last_run_next_id;
    ++info_.records_replayed;
    buffer_.erase(0, kWalRecordHeaderBytes + len);
  }
  return Status::OK();
}

int64_t WalTailApplier::next_item_id() const {
  return std::max<int64_t>(
      {last_run_next_id_, MaxIdInStore(*recovered_.store) + 1, 1});
}

Result<std::unique_ptr<ProvenanceStore>> WalTailApplier::Snapshot() const {
  auto copy = std::make_unique<ProvenanceStore>();
  PEBBLE_RETURN_NOT_OK(copy->AppendFrom(*recovered_.store));
  Status valid = copy->Validate();
  if (!valid.ok()) {
    return Status::FromCode(StatusCode::kIOError,
                            "replicated store snapshot failed validation: " +
                                valid.message());
  }
  return copy;
}

Result<WalShipState> ReadWalShipState(const std::string& dir) {
  WalShipState state;
  std::error_code ec;
  const std::string manifest_path = WalManifestPath(dir);
  if (std::filesystem::exists(manifest_path, ec)) {
    PEBBLE_ASSIGN_OR_RETURN(std::string text, ReadFileToString(manifest_path));
    PEBBLE_ASSIGN_OR_RETURN(Manifest manifest,
                            ParseManifest(text, manifest_path));
    state.manifest_found = true;
    state.covered_seq = manifest.covered;
    state.snapshot_file = manifest.snapshot;
  }
  PEBBLE_ASSIGN_OR_RETURN(state.segments, ListWalSegments(dir));
  return state;
}

Status WriteWalManifest(const std::string& dir, uint64_t covered_seq,
                        const std::string& snapshot_file, bool sync) {
  Manifest manifest;
  manifest.covered = covered_seq;
  manifest.snapshot = snapshot_file;
  AtomicWriteOptions options;
  options.sync = sync;
  return AtomicWriteFile(WalManifestPath(dir), SerializeManifest(manifest),
                         options);
}

Result<uint32_t> Crc32FilePrefix(const std::string& path, uint64_t limit) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  uint32_t crc = kCrc32Init;
  uint64_t remaining = limit;
  char buf[1 << 16];
  while (remaining > 0) {
    size_t want = static_cast<size_t>(
        std::min<uint64_t>(remaining, sizeof(buf)));
    ssize_t n = ::read(fd, buf, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      return Status::IOError("read of '" + path +
                             "' failed: " + std::strerror(saved));
    }
    if (n == 0) {
      ::close(fd);
      return Status::IOError("'" + path + "' is shorter than " +
                             std::to_string(limit) + " bytes");
    }
    crc = Crc32Update(crc, buf, static_cast<size_t>(n));
    remaining -= static_cast<uint64_t>(n);
  }
  ::close(fd);
  return Crc32Finalize(crc);
}

}  // namespace pebble
