// Warm-path answer cache for structural provenance queries (DESIGN.md
// §12). Audits and usage studies ask the same handful of questions against
// a store that changes rarely (between micro-batches) or never (offline
// snapshots), so QueryStructuralProvenance memoizes whole
// ProvenanceQueryResults in a process-wide, size-bounded LRU.
//
// Keying and invalidation: an entry is keyed by the store's identity
// fingerprint (uid plus a monotonic generation bumped on every mutation —
// WAL-backed appends, recovery and compaction included, see
// ProvenanceStore::generation()), an identity fingerprint of the output
// dataset the question is asked on, and the canonical order-normalized
// pattern text (TreePattern::CanonicalText()). Any store mutation changes
// the generation, so stale answers are unreachable rather than purged.
// Canonical keying lets conjunct-reordered patterns share one entry, but
// because rendered answers are child-order-sensitive a hit additionally
// requires the exact pattern text to match — a canonical collision with a
// different exact form is a miss, never a wrong answer.
//
// Only exact answers are cached: governed queries (non-Unlimited options)
// bypass the cache entirely, and truncated results are never inserted —
// a degraded lower bound must not masquerade as the exact answer later.

#ifndef PEBBLE_CORE_QUERY_CACHE_H_
#define PEBBLE_CORE_QUERY_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/query.h"

namespace pebble {

/// Point-in-time counters of the answer cache.
struct QueryCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t bytes = 0;
};

/// Process-wide, thread-safe LRU of provenance query answers. All methods
/// are safe to call concurrently.
class QueryAnswerCache {
 public:
  struct Limits {
    size_t max_entries = 64;
    /// Approximate retained bytes across all cached results.
    size_t max_bytes = 64ull << 20;
  };

  static QueryAnswerCache& Instance();

  /// Cache key for a (store, output, pattern) question; stable across
  /// queries, changed by any store mutation (the generation component).
  static std::string MakeKey(const ProvenanceStore& store,
                             const Dataset& output, const TreePattern& pattern);

  /// Identity fingerprint of an output dataset: partition layout, every row
  /// id, and the value-node addresses of the first rows per partition. Two
  /// physically different datasets that merely render alike fingerprint
  /// differently, so offline queries pairing arbitrary retained outputs
  /// with one store cannot alias each other's answers.
  static uint64_t DatasetFingerprint(const Dataset& output);

  /// Returns true and copies the cached answer when `key` is present AND
  /// the entry's exact pattern text equals `exact_pattern`. The copy's
  /// timing fields (match_ms/backtrace_ms) are those of the original
  /// computation.
  bool Lookup(const std::string& key, const std::string& exact_pattern,
              ProvenanceQueryResult* result);

  /// Inserts (or replaces) the answer for `key`, then evicts LRU entries
  /// until the limits hold again. Callers must only insert exact,
  /// untruncated answers.
  void Insert(const std::string& key, const std::string& exact_pattern,
              const ProvenanceQueryResult& result);

  /// Globally enables/disables the cache (benchmark cold legs, ablations).
  /// Disabled means Lookup always misses without counting and Insert is a
  /// no-op; existing entries are kept.
  void set_enabled(bool enabled);
  /// True when globally enabled and not suppressed on this thread.
  bool enabled() const;

  void Clear();
  void SetLimits(const Limits& limits);
  QueryCacheStats stats() const;
  void ResetStats();

  /// Suppresses the cache on the constructing thread for the scope's
  /// lifetime (nestable). The differential harness wraps its legs in this
  /// so every stage genuinely recomputes; thread-local, so concurrent
  /// cached queries on other threads are unaffected.
  class ScopedDisable {
   public:
    ScopedDisable();
    ~ScopedDisable();
    ScopedDisable(const ScopedDisable&) = delete;
    ScopedDisable& operator=(const ScopedDisable&) = delete;
  };

 private:
  QueryAnswerCache() = default;

  struct Entry {
    std::string key;
    std::string exact_pattern;
    ProvenanceQueryResult result;
    size_t bytes = 0;
  };

  void EvictLockedUntilWithinLimits();

  mutable std::mutex mu_;
  // Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> by_key_;
  Limits limits_;
  size_t bytes_ = 0;
  bool global_enabled_ = true;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t inserts_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace pebble

#endif  // PEBBLE_CORE_QUERY_CACHE_H_
