// Warm-path answer cache for structural provenance queries (DESIGN.md
// §12). Audits and usage studies ask the same handful of questions against
// a store that changes rarely (between micro-batches) or never (offline
// snapshots), so QueryStructuralProvenance memoizes whole
// ProvenanceQueryResults in a process-wide, size-bounded LRU.
//
// Keying and invalidation: an entry is keyed by the store's identity
// fingerprint (uid plus a monotonic generation bumped on every mutation —
// WAL-backed appends, recovery and compaction included, see
// ProvenanceStore::generation()), an identity fingerprint of the output
// dataset the question is asked on, and the canonical order-normalized
// pattern text (TreePattern::CanonicalText()). Any store mutation changes
// the generation, so stale answers are unreachable rather than purged.
// Canonical keying lets conjunct-reordered patterns share one entry, but
// because rendered answers are child-order-sensitive a hit additionally
// requires the exact pattern text to match — a canonical collision with a
// different exact form is a miss, never a wrong answer.
//
// Only exact answers are cached, and count-capped questions never touch
// the cache: a query with max_visited_nodes / max_results set asks for "at
// most N", which a cached full answer would violate, and a truncated
// result must never masquerade as the exact answer later. Deadline- or
// cancellation-governed queries without count caps DO consult the cache —
// a cached exact answer strictly dominates anything a deadline-bounded
// recompute could produce — and insert their answer when it finished
// untruncated (an untruncated governed answer is exact). This is what
// makes the cache effective behind the query daemon, where every request
// carries a deadline (DESIGN.md §13).
//
// Multi-tenancy: the LRU budget is partitioned into per-tenant shards so
// one tenant's churn cannot evict another tenant's warm entries. The
// issuing tenant is ambient per thread (ScopedTenant; the query server
// wraps each request in it), defaulting to the "" tenant, whose shard
// gets the full global budget — single-tenant embedders see exactly the
// pre-partitioning behavior. Shards are budgeted by SetTenantQuota /
// SetDefaultTenantQuota and evict only their own entries; a global
// backstop (the configured process-wide limits) additionally evicts from
// whichever shard currently holds the most bytes, so the aggregate stays
// bounded no matter how many tenants appear. Per-tenant hit/miss stats
// are exposed for the server's stats endpoint.

#ifndef PEBBLE_CORE_QUERY_CACHE_H_
#define PEBBLE_CORE_QUERY_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/query.h"

namespace pebble {

/// Point-in-time counters of the answer cache (global or per tenant).
struct QueryCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t bytes = 0;
};

/// Process-wide, thread-safe LRU of provenance query answers. All methods
/// are safe to call concurrently.
class QueryAnswerCache {
 public:
  struct Limits {
    size_t max_entries = 64;
    /// Approximate retained bytes across all cached results.
    size_t max_bytes = 64ull << 20;
  };

  static QueryAnswerCache& Instance();

  /// Cache key for a (store, output, pattern) question; stable across
  /// queries, changed by any store mutation (the generation component).
  static std::string MakeKey(const ProvenanceStore& store,
                             const Dataset& output, const TreePattern& pattern);

  /// Identity fingerprint of an output dataset: partition layout, every row
  /// id, and the value-node addresses of the first rows per partition. Two
  /// physically different datasets that merely render alike fingerprint
  /// differently, so offline queries pairing arbitrary retained outputs
  /// with one store cannot alias each other's answers.
  static uint64_t DatasetFingerprint(const Dataset& output);

  /// Returns true and copies the cached answer when `key` is present in
  /// the current tenant's shard AND the entry's exact pattern text equals
  /// `exact_pattern`. The copy's timing fields (match_ms/backtrace_ms) are
  /// those of the original computation.
  bool Lookup(const std::string& key, const std::string& exact_pattern,
              ProvenanceQueryResult* result);

  /// Inserts (or replaces) the answer for `key` into the current tenant's
  /// shard, then evicts — first within the shard until its quota holds,
  /// then from the largest shard until the global limits hold. Callers
  /// must only insert exact, untruncated answers.
  void Insert(const std::string& key, const std::string& exact_pattern,
              const ProvenanceQueryResult& result);

  /// Globally enables/disables the cache (benchmark cold legs, ablations).
  /// Disabled means Lookup always misses without counting and Insert is a
  /// no-op; existing entries are kept.
  void set_enabled(bool enabled);
  /// True when globally enabled and not suppressed on this thread.
  bool enabled() const;

  void Clear();
  /// Process-wide limits (also the default-tenant shard's quota).
  void SetLimits(const Limits& limits);
  /// Budget for one tenant's shard (overrides the default quota).
  void SetTenantQuota(const std::string& tenant, const Limits& quota);
  /// Budget applied to tenant shards without an explicit quota. Unset,
  /// every shard may grow to the global limits (the pre-partitioning
  /// behavior); the query server sets a fair share at startup.
  void SetDefaultTenantQuota(const Limits& quota);
  /// Drops per-tenant quota configuration (tests).
  void ResetTenantQuotas();

  QueryCacheStats stats() const;
  /// Counters of one tenant's shard (zeros for an unseen tenant).
  QueryCacheStats tenant_stats(const std::string& tenant) const;
  std::map<std::string, QueryCacheStats> all_tenant_stats() const;
  void ResetStats();

  /// Suppresses the cache on the constructing thread for the scope's
  /// lifetime (nestable). The differential harness wraps its legs in this
  /// so every stage genuinely recomputes; thread-local, so concurrent
  /// cached queries on other threads are unaffected.
  class ScopedDisable {
   public:
    ScopedDisable();
    ~ScopedDisable();
    ScopedDisable(const ScopedDisable&) = delete;
    ScopedDisable& operator=(const ScopedDisable&) = delete;
  };

  /// Sets the ambient tenant for cache operations on this thread for the
  /// scope's lifetime (nestable; restores the previous tenant). The query
  /// server wraps request execution in this.
  class ScopedTenant {
   public:
    explicit ScopedTenant(std::string tenant);
    ~ScopedTenant();
    ScopedTenant(const ScopedTenant&) = delete;
    ScopedTenant& operator=(const ScopedTenant&) = delete;

   private:
    std::string previous_;
  };

  /// The ambient tenant of the calling thread ("" by default).
  static const std::string& CurrentTenant();

 private:
  QueryAnswerCache() = default;

  struct Entry {
    std::string key;
    std::string exact_pattern;
    ProvenanceQueryResult result;
    size_t bytes = 0;
  };

  /// One tenant's partition: its own LRU list, key map, byte account,
  /// quota, and counters. Eviction inside a shard touches only that
  /// tenant's entries.
  struct Shard {
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> by_key;
    size_t bytes = 0;
    bool has_quota = false;
    Limits quota;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardForLocked(const std::string& tenant);
  Limits ShardQuotaLocked(const std::string& tenant, const Shard& shard) const;
  void EvictTailLocked(Shard* shard);
  void EvictShardUntilWithinQuotaLocked(const std::string& tenant,
                                        Shard* shard);
  void EvictGlobalBackstopLocked();
  size_t TotalEntriesLocked() const;

  mutable std::mutex mu_;
  std::map<std::string, Shard> shards_;
  Limits limits_;
  bool has_default_tenant_quota_ = false;
  Limits default_tenant_quota_;
  size_t bytes_ = 0;  // across all shards
  bool global_enabled_ = true;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t inserts_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace pebble

#endif  // PEBBLE_CORE_QUERY_CACHE_H_
