#include "common/arena.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <mutex>

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PEBBLE_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define PEBBLE_ASAN 1
#endif

#ifdef PEBBLE_ASAN
#include <sanitizer/asan_interface.h>
#define PEBBLE_POISON(addr, size) ASAN_POISON_MEMORY_REGION(addr, size)
#define PEBBLE_UNPOISON(addr, size) ASAN_UNPOISON_MEMORY_REGION(addr, size)
#else
#define PEBBLE_POISON(addr, size) ((void)(addr), (void)(size))
#define PEBBLE_UNPOISON(addr, size) ((void)(addr), (void)(size))
#endif

namespace pebble {

namespace {

constexpr size_t kMaxAlign = alignof(std::max_align_t);

size_t AlignUp(size_t n, size_t align) { return (n + align - 1) & ~(align - 1); }

thread_local ValueArena* tls_scope_arena = nullptr;

}  // namespace

ValueArena::ValueArena(const Options& options) : options_(options) {
  if (options_.block_bytes < kMaxSlabBytes * 2) {
    options_.block_bytes = kMaxSlabBytes * 2;
  }
}

ValueArena::~ValueArena() {
  for (void* p : heap_allocs_) {
    ::operator delete(p);
  }
  for (Block& b : blocks_) {
    PEBBLE_UNPOISON(b.data, b.size);
    delete[] b.data;
  }
  if (options_.budget != nullptr && charged_ > 0) {
    options_.budget->Release(charged_);
  }
}

void ValueArena::DetachBudget() {
  if (options_.budget != nullptr && charged_ > 0) {
    options_.budget->Release(charged_);
  }
  charged_ = 0;
  options_.budget = nullptr;
}

size_t ValueArena::SlabClass(size_t bytes) {
  size_t cls = 0;
  while (cls < kNumSlabClasses && SlabClassBytes(cls) < bytes) ++cls;
  return cls;
}

void ValueArena::EnsureRoom(size_t bytes) {
  // A fully aligned block start always satisfies any supported alignment,
  // so `bytes` of tail room is enough for an aligned allocation of `bytes`.
  while (cur_ < blocks_.size()) {
    Block& b = blocks_[cur_];
    size_t aligned = AlignUp(b.used, kMaxAlign);
    if (aligned <= b.size && b.size - aligned >= bytes) {
      stats_.padding_bytes += aligned - b.used;
      b.used = aligned;
      return;
    }
    ++cur_;
  }
  size_t size = bytes > options_.block_bytes ? bytes : options_.block_bytes;
  Block b;
  b.data = new char[size];
  b.size = size;
  b.used = 0;
  PEBBLE_POISON(b.data, b.size);
  blocks_.push_back(b);
  cur_ = blocks_.size() - 1;
  stats_.arena_blocks = blocks_.size();
  stats_.bytes_reserved += size;
  if (stats_.bytes_reserved > stats_.peak_bytes_reserved) {
    stats_.peak_bytes_reserved = stats_.bytes_reserved;
  }
  if (options_.budget != nullptr) {
    Status st = options_.budget->TryCharge(size, options_.budget_what);
    if (st.ok()) {
      charged_ += size;
    } else if (exhausted_.ok()) {
      exhausted_ = std::move(st);
    }
  }
}

void* ValueArena::Alloc(size_t bytes, size_t align) {
  assert(align != 0 && (align & (align - 1)) == 0 && align <= kMaxAlign);
  if (options_.legacy_heap) {
    // Pre-arena behavior: one heap allocation per node/payload, charged
    // exactly, freed individually in the destructor.
    size_t size = bytes == 0 ? 1 : bytes;
    void* p = ::operator new(size);
    heap_allocs_.push_back(p);
    stats_.bytes_allocated += bytes;
    stats_.bytes_reserved += size;
    stats_.arena_blocks = heap_allocs_.size();
    if (stats_.bytes_allocated > stats_.peak_bytes_allocated) {
      stats_.peak_bytes_allocated = stats_.bytes_allocated;
    }
    if (stats_.bytes_reserved > stats_.peak_bytes_reserved) {
      stats_.peak_bytes_reserved = stats_.bytes_reserved;
    }
    if (options_.budget != nullptr) {
      Status st = options_.budget->TryCharge(size, options_.budget_what);
      if (st.ok()) {
        charged_ += size;
      } else if (exhausted_.ok()) {
        exhausted_ = std::move(st);
      }
    }
    return p;
  }

  Block* b = cur_ < blocks_.size() ? &blocks_[cur_] : nullptr;
  size_t aligned = b != nullptr ? AlignUp(b->used, align) : 0;
  if (b == nullptr || aligned > b->size || b->size - aligned < bytes) {
    EnsureRoom(bytes == 0 ? 1 : bytes);
    b = &blocks_[cur_];
    aligned = AlignUp(b->used, align);  // block starts kMaxAlign-aligned
  }
  char* p = b->data + aligned;
  stats_.padding_bytes += aligned - b->used;
  b->used = aligned + (bytes == 0 ? 1 : bytes);
  stats_.bytes_allocated += bytes;
  if (stats_.bytes_allocated > stats_.peak_bytes_allocated) {
    stats_.peak_bytes_allocated = stats_.bytes_allocated;
  }
  PEBBLE_UNPOISON(p, bytes == 0 ? 1 : bytes);
  return p;
}

const char* ValueArena::CopyBytes(const char* data, size_t size) {
  char* p = AllocArray<char>(size);
  if (size > 0) std::memcpy(p, data, size);
  return p;
}

void* ValueArena::AllocSlab(size_t bytes, size_t align) {
  size_t cls = SlabClass(bytes);
  if (options_.legacy_heap || cls >= kNumSlabClasses) {
    return Alloc(bytes, align);
  }
  size_t rounded = SlabClassBytes(cls);
  if (slab_free_[cls] != nullptr) {
    void* p = slab_free_[cls];
    PEBBLE_UNPOISON(p, rounded);
    std::memcpy(&slab_free_[cls], p, sizeof(void*));
    stats_.bytes_allocated += bytes;
    if (stats_.bytes_allocated > stats_.peak_bytes_allocated) {
      stats_.peak_bytes_allocated = stats_.bytes_allocated;
    }
    stats_.slab_reuses += 1;
    return p;
  }
  uint64_t peak_before = stats_.peak_bytes_allocated;
  void* p = Alloc(rounded, align < alignof(void*) ? alignof(void*) : align);
  // The class rounding is padding, not demand: rebook the difference, and
  // undo the transient rounded peak Alloc just recorded — the high-water
  // mark tracks demand, never rounding.
  stats_.bytes_allocated -= rounded - bytes;
  stats_.padding_bytes += rounded - bytes;
  if (stats_.peak_bytes_allocated > peak_before) {
    stats_.peak_bytes_allocated =
        std::max(peak_before, stats_.bytes_allocated);
  }
  return p;
}

void ValueArena::RecycleSlab(void* p, size_t bytes) {
  size_t cls = SlabClass(bytes);
  if (options_.legacy_heap || cls >= kNumSlabClasses || p == nullptr) return;
  size_t rounded = SlabClassBytes(cls);
  std::memcpy(p, &slab_free_[cls], sizeof(void*));
  // Keep the freelist word readable; poison the rest of the chunk.
  PEBBLE_POISON(static_cast<char*>(p) + sizeof(void*),
                rounded - sizeof(void*));
  slab_free_[cls] = p;
  stats_.slab_recycles += 1;
}

void ValueArena::Reset() {
  for (void* p : heap_allocs_) {
    ::operator delete(p);
  }
  heap_allocs_.clear();
  if (options_.legacy_heap) {
    stats_.bytes_reserved = 0;
    stats_.arena_blocks = 0;
  }
  for (Block& b : blocks_) {
    if (b.used > 0) {
      PEBBLE_UNPOISON(b.data, b.used);
      // Scribble so stale reads are loud even without ASan; under ASan the
      // poison below turns them into hard faults.
      std::memset(b.data, 0xA5, b.used);
    }
    PEBBLE_POISON(b.data, b.size);
    b.used = 0;
  }
  cur_ = 0;
  for (size_t c = 0; c < kNumSlabClasses; ++c) {
    slab_free_[c] = nullptr;
  }
  if (options_.budget != nullptr && options_.legacy_heap && charged_ > 0) {
    options_.budget->Release(charged_);
    charged_ = 0;
  }
  stats_.bytes_allocated = 0;
  stats_.padding_bytes = 0;
  stats_.resets += 1;
}

ValueArena::Stats ValueArena::stats() const { return stats_; }

ValueArena* ValueArena::Current() {
  ValueArena* a = tls_scope_arena;
  return a != nullptr ? a : ThreadDefault();
}

ValueArena* ValueArena::CurrentScope() { return tls_scope_arena; }

ValueArena* ValueArena::ThreadDefault() {
  thread_local ValueArena* td = nullptr;
  if (td == nullptr) {
    td = new ValueArena(Options{});
    // Register in a process-wide, intentionally never-destroyed registry:
    // ambient values (test fixtures, scan sources, pattern literals) are
    // process-lifetime by contract, and the registry keeps the arenas
    // reachable so LeakSanitizer does not flag them.
    static std::mutex* mu = new std::mutex;
    static std::vector<ValueArena*>* registry = new std::vector<ValueArena*>;
    std::lock_guard<std::mutex> lock(*mu);
    registry->push_back(td);
  }
  return td;
}

ValueArenaScope::ValueArenaScope(ValueArena* arena)
    : arena_(arena), prev_(tls_scope_arena) {
  tls_scope_arena = arena;
}

ValueArenaScope::~ValueArenaScope() {
  assert(tls_scope_arena == arena_ && "ValueArenaScope destroyed out of order");
  tls_scope_arena = prev_;
}

}  // namespace pebble
