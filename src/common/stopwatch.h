// Monotonic wall-clock stopwatch used by the benchmark harnesses.

#ifndef PEBBLE_COMMON_STOPWATCH_H_
#define PEBBLE_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace pebble {

/// Starts running on construction; `ElapsedMillis` / `ElapsedMicros` read the
/// monotonic clock without stopping it.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pebble

#endif  // PEBBLE_COMMON_STOPWATCH_H_
