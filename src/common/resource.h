// Query-wide resource governance primitives: cooperative cancellation,
// wall-clock deadlines, and atomic memory budgets.
//
// These are the building blocks of the governance contract in DESIGN.md §9:
// every long-running entry point (pipeline execution, backtracing, pattern
// matching) periodically polls a CancellationToken / Deadline at batch
// granularity and charges a MemoryBudget at its staging and materialization
// points, so runaway work is shed with a structured error (kCancelled /
// kDeadlineExceeded / kResourceExhausted) instead of pinning a core or
// dying on std::bad_alloc.

#ifndef PEBBLE_COMMON_RESOURCE_H_
#define PEBBLE_COMMON_RESOURCE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

namespace pebble {

namespace internal {

/// Shared cancellation state. A child state is cancelled when either its own
/// flag is set or any ancestor's flag is set (checked by walking `parent`).
struct CancelState {
  std::atomic<bool> cancelled{false};
  std::shared_ptr<const CancelState> parent;  // nullptr at the root

  // Reason and trip time, written once under `mu` when Cancel() fires.
  mutable std::mutex mu;
  std::string reason;
  std::chrono::steady_clock::time_point cancelled_at{};

  /// True if this state or any ancestor has been cancelled.
  bool Tripped() const;
  /// The nearest tripped state on the ancestor chain (self first); nullptr
  /// if none tripped.
  const CancelState* TrippedState() const;
};

}  // namespace internal

/// Read-only handle for observing cancellation. Default-constructed tokens
/// can never be cancelled ("null token"): all checks are O(1) no-ops, so a
/// token can be threaded unconditionally through hot paths.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// False for a default-constructed token (cancellation impossible).
  bool CanBeCancelled() const { return state_ != nullptr; }

  /// True once the owning source (or any ancestor source) called Cancel().
  bool IsCancelled() const;

  /// OK while not cancelled; kCancelled carrying the source's reason
  /// (prefixed with `where` when given) afterwards.
  Status Check(const char* where = nullptr) const;

  /// The reason passed to Cancel(); empty while not cancelled.
  std::string reason() const;

  /// Milliseconds elapsed since Cancel() fired; 0.0 while not cancelled.
  /// Used to report how quickly a cooperative cancellation point reacted.
  double MillisSinceCancel() const;

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const internal::CancelState> s)
      : state_(std::move(s)) {}

  std::shared_ptr<const internal::CancelState> state_;
};

/// Owning side of a cancellation pair. Hierarchical: a source built from a
/// parent token trips when either it or the parent is cancelled, so a
/// per-query source can fan out per-phase children that all stop together.
class CancellationSource {
 public:
  CancellationSource();
  /// Child source: observed as cancelled when either this source or
  /// `parent` is cancelled. A null parent token yields an independent root.
  explicit CancellationSource(const CancellationToken& parent);

  /// Trips the token. Idempotent: the first call wins; later calls (and
  /// later reasons) are ignored.
  void Cancel(std::string reason = "cancelled by caller");

  bool IsCancelled() const;
  CancellationToken token() const { return CancellationToken(state_); }

 private:
  std::shared_ptr<internal::CancelState> state_;
};

/// A wall-clock deadline on the monotonic clock. Default-constructed
/// deadlines never expire; checks against them are O(1) no-ops.
class Deadline {
 public:
  Deadline() = default;

  /// Expires `ms` milliseconds from now. `ms <= 0` expires immediately.
  static Deadline AfterMillis(int64_t ms);
  static Deadline Infinite() { return Deadline(); }

  bool has_deadline() const { return has_; }
  bool Expired() const;

  /// Milliseconds until expiry (negative once expired); a very large value
  /// for the infinite deadline.
  double RemainingMillis() const;

  /// Milliseconds since expiry; 0.0 if not expired (or infinite). Used to
  /// report how late the first cancellation point observed the trip.
  double MillisSinceExpiry() const;

  /// OK while not expired; kDeadlineExceeded (prefixed with `where` when
  /// given) afterwards. The message carries the original budget.
  Status Check(const char* where = nullptr) const;

 private:
  bool has_ = false;
  int64_t budget_ms_ = 0;  // original allowance, for error messages
  std::chrono::steady_clock::time_point at_{};
};

/// Thread-safe byte budget with a high-water mark. `limit_bytes == 0` means
/// unlimited: charges are still tracked (so the high-water mark is usable
/// for telemetry) but never fail.
///
/// Budgets can be chained: a child constructed with a parent charges and
/// releases the parent in lockstep, so a reservation against a per-phase
/// child also holds real bytes from the query-wide budget. The parent must
/// outlive the child.
class MemoryBudget {
 public:
  explicit MemoryBudget(uint64_t limit_bytes = 0,
                        MemoryBudget* parent = nullptr)
      : limit_(limit_bytes), parent_(parent) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  uint64_t limit() const { return limit_; }
  /// True when this budget (or an ancestor) can actually reject charges.
  bool limited() const {
    return limit_ != 0 || (parent_ != nullptr && parent_->limited());
  }

  /// Reserves `bytes`, failing with kResourceExhausted (message tagged with
  /// `what` when given) if the reservation would exceed this budget's limit
  /// or any ancestor's. On failure nothing is held: partial charges up the
  /// chain are rolled back.
  Status TryCharge(uint64_t bytes, const char* what = nullptr);

  /// Returns a reservation. Callers must release exactly what they charged.
  void Release(uint64_t bytes);

  /// Bytes currently reserved.
  uint64_t used() const { return used_.load(std::memory_order_relaxed); }

  /// Largest value `used()` ever reached. Under concurrent failed charges
  /// this can transiently overstate by the rolled-back amount; it never
  /// understates.
  uint64_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  const uint64_t limit_;
  MemoryBudget* const parent_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> high_water_{0};
};

/// True for the status codes produced by governance trips (cancellation,
/// deadline expiry, budget/limit exhaustion) as opposed to real failures.
inline bool IsResourceGovernanceError(StatusCode code) {
  return code == StatusCode::kCancelled ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kResourceExhausted;
}

}  // namespace pebble

#endif  // PEBBLE_COMMON_RESOURCE_H_
