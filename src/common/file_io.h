// Crash-safe file I/O helpers. AtomicWriteFile implements the classic
// temp-file + fsync + rename protocol: the destination path either keeps its
// previous content byte-for-byte or atomically becomes the new content —
// a crash (or injected fault) at any point never leaves a half-written
// destination. Failpoint sites io.write / io.fsync / io.rename are threaded
// through every step so chaos tests can kill a save at any byte offset.

#ifndef PEBBLE_COMMON_FILE_IO_H_
#define PEBBLE_COMMON_FILE_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace pebble {

/// Reads a whole file into a string. IOError (with the path in the message)
/// on open/read failure.
Result<std::string> ReadFileToString(const std::string& path);

struct AtomicWriteOptions {
  /// Data is written in chunks of this size; the io.write failpoint is
  /// evaluated once per chunk (keyed by chunk index), so tests can abort a
  /// write after any prefix of the data has reached the temp file.
  size_t chunk_bytes = 1 << 16;
  /// fsync the temp file before rename and the parent directory after
  /// (durability of the rename itself). Disable only in tests.
  bool sync = true;
};

/// Atomically replaces `path` with `data`: writes `path`.tmp, fsyncs it,
/// renames over `path`, then fsyncs the parent directory. On any failure the
/// temp file is removed (best-effort) and the previous `path` content is
/// untouched. Error Statuses carry the path and the byte offset reached.
Status AtomicWriteFile(const std::string& path, std::string_view data,
                       const AtomicWriteOptions& options = {});

}  // namespace pebble

#endif  // PEBBLE_COMMON_FILE_IO_H_
