// Failpoint framework: named fault-injection sites threaded through the
// engine's execution paths (scan, partition tasks, shuffles, provenance
// commit). Production code evaluates a site with FailpointRegistry::Evaluate;
// tests arm sites with firing rules (every-Nth, seeded probability, delay)
// that inject transient Status errors. All sites are disabled by default and
// evaluation is a single relaxed atomic load when nothing is armed.
//
// Determinism: in probability mode, passing a caller-chosen `key` (e.g. the
// partition-task index and attempt number) makes firing a pure function of
// (seed, site, key), independent of thread interleaving. Without a key the
// per-site evaluation counter is used, which is only deterministic for
// serial call sites.

#ifndef PEBBLE_COMMON_FAILPOINT_H_
#define PEBBLE_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace pebble {

/// Canonical failpoint site names. A site only exists operationally where a
/// production code path evaluates it; this list documents the contract.
namespace failpoints {
/// ScanOp::Execute, once per source partition (keyed by partition index).
inline constexpr char kScanRead[] = "scan.read";
/// The retrying task runner, once per (task, attempt) before the task body
/// runs (keyed deterministically by task index and attempt).
inline constexpr char kTaskPartition[] = "task.partition";
/// Join/group shuffle phases, once per input partition being exchanged.
inline constexpr char kShuffleExchange[] = "shuffle.exchange";
/// Provenance commit: evaluated once per operator immediately before staged
/// id rows are appended to the shared ProvenanceStore.
inline constexpr char kProvenanceAppend[] = "provenance.append";
/// ReadJsonLinesFile, once per file open.
inline constexpr char kIoRead[] = "io.read";
/// AtomicWriteFile, once per chunk written to the temp file (keyed by chunk
/// index). Firing simulates a torn write: a prefix of the chunk reaches the
/// file before the fault.
inline constexpr char kIoWrite[] = "io.write";
/// AtomicWriteFile, before fsyncing the temp file (key 0) and before
/// fsyncing the parent directory after the rename (key 1).
inline constexpr char kIoFsync[] = "io.fsync";
/// AtomicWriteFile, immediately before the atomic rename over the
/// destination.
inline constexpr char kIoRename[] = "io.rename";
/// LoadProvenanceStore, once per load before the snapshot file is opened.
inline constexpr char kIoLoad[] = "io.load";
/// WalWriter, once per record appended to the provenance WAL (keyed by the
/// writer's record ordinal). Firing simulates a crash mid-append: a prefix
/// of the framed record reaches the segment file, then the writer poisons
/// itself (no further appends can land after the torn bytes).
inline constexpr char kWalAppend[] = "wal.append";
/// WalWriter, before each fsync of the active segment (keyed by a running
/// flush ordinal). Firing leaves buffered bytes written but not durable and
/// poisons the writer.
inline constexpr char kWalSync[] = "wal.sync";
/// WalWriter, after sealing the active segment and before creating its
/// successor (keyed by the new segment's sequence number).
inline constexpr char kWalRotate[] = "wal.rotate";
/// Compaction, immediately before the manifest file is atomically
/// rewritten to advance the covered sequence number.
inline constexpr char kWalManifest[] = "wal.manifest";
/// Server accept loop, once per accepted connection (keyed by the
/// connection ordinal). Firing tears the connection down before any frame
/// is read — the client sees a closed socket, the server counts a reaped
/// accept and stays up.
inline constexpr char kNetAccept[] = "net.accept";
/// net::ReadFull, once per full-read call (keyed by the caller's key,
/// typically a connection id). Firing simulates a torn/failed socket read.
inline constexpr char kNetRead[] = "net.read";
/// net::WriteFull, once per full-write call (keyed like net.read). Firing
/// simulates a peer that vanished mid-response.
inline constexpr char kNetWrite[] = "net.write";
/// PebbleServer, immediately before a decoded request is pushed onto the
/// admission queue (keyed by the request ordinal). Firing sheds the
/// request with a structured error, as if the queue had rejected it.
inline constexpr char kServerEnqueue[] = "server.enqueue";
/// Replication source (primary), once per chunk read from a WAL segment or
/// snapshot file for shipping (keyed by the ship-frame ordinal of the
/// connection). Firing simulates an unreadable file; the primary drops the
/// follower connection and the follower resubscribes.
inline constexpr char kShipRead[] = "ship.read";
/// Replication source, once per ship frame immediately before it is
/// written to the follower socket (keyed like ship.read). Firing tears the
/// replication connection mid-stream.
inline constexpr char kShipWrite[] = "ship.write";
/// Replica, once per ship frame before its bytes are written to the local
/// WAL copy and fed to the tail applier (keyed by the frame ordinal of the
/// session). Firing aborts the session; the replica resyncs from its local
/// files and resubscribes.
inline constexpr char kReplicaApply[] = "replica.apply";
/// Replica, immediately before a freshly applied store is swapped into the
/// serving catalog (keyed by the publish ordinal). Firing skips this
/// publish; queries keep the previous generation until the next one.
inline constexpr char kReplicaSwap[] = "replica.swap";
}  // namespace failpoints

/// Firing rule for one armed site. Exactly one of `every_nth` /
/// `probability` selects the mode; `delay_ms` composes with either (and with
/// neither: delay-only sites sleep but never fail).
struct FailpointSpec {
  /// > 0: fire on every Nth evaluation of the site (1 = always).
  uint64_t every_nth = 0;
  /// In (0, 1]: fire pseudo-randomly with this probability, seeded.
  double probability = 0.0;
  /// Seed for probability mode (see class comment on determinism).
  uint64_t seed = 0;
  /// Sleep this long on every evaluation before applying the firing rule
  /// (injects slowness; used to exercise task timeouts).
  int delay_ms = 0;
  /// Stop firing after this many fires; < 0 means unlimited.
  int max_fires = -1;
  /// Status code of the injected error.
  StatusCode code = StatusCode::kUnavailable;
  /// Custom message; empty uses "injected fault at <site>".
  std::string message;
};

/// Thread-safe registry of armed failpoints. One process-wide instance
/// (Global()); tests arm/disarm sites around the code under test.
class FailpointRegistry {
 public:
  /// Sentinel for "no caller-provided key": use the evaluation counter.
  static constexpr uint64_t kNoKey = ~0ull;

  static FailpointRegistry& Global();

  FailpointRegistry() = default;
  FailpointRegistry(const FailpointRegistry&) = delete;
  FailpointRegistry& operator=(const FailpointRegistry&) = delete;

  /// Arms `site` with `spec`, replacing any previous spec and resetting its
  /// counters.
  void Enable(const std::string& site, FailpointSpec spec);

  /// Disarms one site / all sites. Counters are discarded.
  void Disable(const std::string& site);
  void DisableAll();

  /// Evaluates a site: returns the injected error if the site is armed and
  /// its rule fires, OK otherwise. Near-free when nothing is armed.
  Status Evaluate(const char* site, uint64_t key = kNoKey);

  /// Counters for assertions: evaluations / fires since Enable.
  uint64_t evaluations(const std::string& site) const;
  uint64_t fires(const std::string& site) const;
  uint64_t TotalFires() const;

 private:
  struct Site {
    FailpointSpec spec;
    uint64_t evaluations = 0;
    uint64_t fires = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Site> sites_;
  std::atomic<int> armed_count_{0};
};

/// Evaluates a site on the global registry and propagates an injected error.
#define PEBBLE_FAILPOINT(site) \
  PEBBLE_RETURN_NOT_OK(::pebble::FailpointRegistry::Global().Evaluate(site))

/// Same, with a caller-chosen determinism key (see class comment).
#define PEBBLE_FAILPOINT_KEYED(site, key) \
  PEBBLE_RETURN_NOT_OK(                   \
      ::pebble::FailpointRegistry::Global().Evaluate(site, (key)))

}  // namespace pebble

#endif  // PEBBLE_COMMON_FAILPOINT_H_
