#include "common/status.h"

#include <cstdio>
#include <ostream>

namespace pebble {

namespace {
const std::string kEmptyString;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kKeyError:
      return "KeyError";
    case StatusCode::kIndexError:
      return "IndexError";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

const std::string& Status::message() const {
  return ok() ? kEmptyString : state_->msg;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {
void DieOnBadResult(const std::string& message) {
  std::fprintf(stderr, "Result::ValueOrDie on error: %s\n", message.c_str());
  std::abort();
}
}  // namespace internal

}  // namespace pebble
