// Bump-pointer arena for the nested value model (DESIGN.md §15).
//
// A ValueArena owns a chain of fixed-size blocks and hands out
// trivially-destructible allocations by bumping a pointer; the whole arena is
// freed wholesale on destruction (or recycled with Reset()). This replaces
// per-node shared_ptr/heap allocation for Value trees: one cache-friendly
// allocation stream per task, exact byte accounting against the run's
// MemoryBudget (whole blocks are charged as they are acquired — no
// estimates), and O(blocks) dataset teardown instead of a pointer chase over
// millions of nodes.
//
// Ownership / lifetime contract (the "ValuePtr migration contract"):
//  - Every Value node and its payload arrays live in exactly one arena (or
//    in a registered per-thread default arena for ambient construction).
//    ValuePtr is a non-owning `const Value*`; a value must not be
//    dereferenced after its arena is destroyed or Reset().
//  - Factories allocate from ValueArena::Current(): the innermost active
//    ValueArenaScope on this thread, else the thread's default arena. The
//    engine installs a per-task-attempt scope around every partition task
//    and a driver-side scope around the run; committed task arenas transfer
//    to the run's output Dataset, so results keep their values alive.
//  - Values may reference values from *other* live arenas (operators share
//    subtrees across datasets); the caller is responsible for keeping every
//    referenced arena alive, which the executor does by pooling all task
//    arenas of a run and retaining the pool on the produced datasets.
//
// Concurrency contract (single-writer / multi-reader):
//  - Alloc/Reset/stats/governance_status must be called by one thread at a
//    time (the owner; for task arenas, the worker running the attempt).
//  - Values allocated from the arena may be read by any number of threads
//    once publication is synchronized (the executor synchronizes via
//    ParallelFor's thread join). The arena never mutates published memory.
//
// Under AddressSanitizer, Reset() poisons the recycled block payloads (and
// fresh block tails are poisoned until allocated), so a stale ValuePtr into
// a reset arena faults immediately instead of reading recycled bytes. All
// builds additionally scribble 0xA5 over reset payloads.

#ifndef PEBBLE_COMMON_ARENA_H_
#define PEBBLE_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <vector>

#include "common/resource.h"
#include "common/status.h"

namespace pebble {

class ValueArena {
 public:
  struct Options {
    /// Payload bytes per block. Allocations larger than this get a
    /// dedicated block of exactly their (aligned) size.
    size_t block_bytes = 64 * 1024;
    /// Exact accounting: every acquired block is charged against this
    /// budget (and released on destruction / Reset). A failed charge does
    /// NOT fail the allocation — factories stay infallible — it is recorded
    /// and surfaced through governance_status() so the engine can abort
    /// cooperatively at the next cancellation point (overshoot is bounded
    /// by the blocks acquired before that point). May be nullptr.
    MemoryBudget* budget = nullptr;
    /// Tag for kResourceExhausted messages from failed block charges.
    const char* budget_what = "value arena";
    /// Test-only legacy mode: every allocation is an individual heap
    /// allocation, freed one by one (pointer-chase destruction), exactly
    /// like the pre-arena value model. Used by the arena-vs-heap
    /// differential stage and the allocator benchmarks. Slab classes are
    /// disabled in this mode.
    bool legacy_heap = false;
  };

  /// Exact allocation statistics. All byte counters are maintained
  /// incrementally; arena_test.cc pins them against a hand-summed oracle.
  struct Stats {
    /// Requested bytes handed out since the last Reset() (slab reuse
    /// counts again — this is the "demand" the arena served this cycle).
    uint64_t bytes_allocated = 0;
    /// Block bytes currently acquired from the system. This is exactly
    /// what has been charged to the budget (minus failed charges).
    uint64_t bytes_reserved = 0;
    /// Current number of blocks (legacy mode: live heap allocations).
    uint64_t arena_blocks = 0;
    /// High-water marks across Reset() cycles.
    uint64_t peak_bytes_allocated = 0;
    uint64_t peak_bytes_reserved = 0;
    /// Alignment + slab-class rounding overhead since the last Reset().
    uint64_t padding_bytes = 0;
    /// Slab-class chunks served from a freelist / returned to one.
    uint64_t slab_reuses = 0;
    uint64_t slab_recycles = 0;
    /// Reset() calls over the arena's lifetime.
    uint64_t resets = 0;

    /// Reserved-but-unrequested bytes this cycle: block tails, alignment
    /// padding and recycled slabs. 0 exactly when every reserved byte was
    /// handed out (slab reuse can push bytes_allocated past reserved, in
    /// which case waste clamps to 0).
    uint64_t bytes_wasted() const {
      return bytes_reserved > bytes_allocated
                 ? bytes_reserved - bytes_allocated
                 : 0;
    }

    void Add(const Stats& o) {
      bytes_allocated += o.bytes_allocated;
      bytes_reserved += o.bytes_reserved;
      arena_blocks += o.arena_blocks;
      peak_bytes_allocated += o.peak_bytes_allocated;
      peak_bytes_reserved += o.peak_bytes_reserved;
      padding_bytes += o.padding_bytes;
      slab_reuses += o.slab_reuses;
      slab_recycles += o.slab_recycles;
      resets += o.resets;
    }
  };

  ValueArena() : ValueArena(Options{}) {}
  explicit ValueArena(const Options& options);
  ~ValueArena();

  ValueArena(const ValueArena&) = delete;
  ValueArena& operator=(const ValueArena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (a power of two <=
  /// alignof(std::max_align_t)). Never returns nullptr; never throws short
  /// of a real OOM. Zero-byte requests return a unique valid pointer.
  void* Alloc(size_t bytes, size_t align);

  /// Typed array allocation. T must be trivially destructible (the arena
  /// never runs destructors).
  template <typename T>
  T* AllocArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is freed without running destructors");
    return static_cast<T*>(Alloc(n * sizeof(T), alignof(T)));
  }

  /// Copies `size` bytes into the arena; returns the stable copy.
  const char* CopyBytes(const char* data, size_t size);

  /// Slab-class allocation for small element/field arrays: `bytes` is
  /// rounded up to a slab class (<= kMaxSlabBytes) and served from that
  /// class's freelist when one is available. Larger requests fall through
  /// to Alloc. `align` as for Alloc.
  void* AllocSlab(size_t bytes, size_t align);

  /// Returns a chunk obtained from AllocSlab(bytes, ...) to its class
  /// freelist for reuse. Only meaningful for slab-class sizes; larger
  /// chunks are ignored (bump memory is reclaimed wholesale). The caller
  /// must not touch the chunk afterwards.
  void RecycleSlab(void* p, size_t bytes);

  /// Recycles every block: bump pointers rewind, slab freelists clear,
  /// payloads are scribbled (0xA5) and — under ASan — poisoned, so stale
  /// reads fault. Block memory and its budget charge are retained for
  /// reuse; use destruction to give the bytes back.
  void Reset();

  /// Closes the arena's budget scope: releases every charged byte back to
  /// the budget and stops charging. The executor calls this when a run's
  /// arenas transfer to its output datasets — they outlive the run-scoped
  /// MemoryBudget, whose accounting closes with the run. Owner-thread call,
  /// like Alloc. No-op without a budget.
  void DetachBudget();

  /// OK until a block charge against options().budget fails; the first
  /// kResourceExhausted afterwards. Owner-thread read, like Alloc.
  const Status& governance_status() const { return exhausted_; }

  /// Bytes successfully charged to the budget and not yet released.
  uint64_t budget_charged_bytes() const { return charged_; }

  const Options& options() const { return options_; }
  Stats stats() const;

  // --- thread-local arena scoping -----------------------------------------

  /// The arena Value factories allocate from on this thread: the innermost
  /// active ValueArenaScope, else the thread's registered default arena.
  static ValueArena* Current();

  /// The innermost active scope on this thread, or nullptr when ambient
  /// construction would fall back to the thread default. The engine's
  /// governance checks poll this.
  static ValueArena* CurrentScope();

  /// This thread's default arena. Created on first use and registered in a
  /// process-wide registry (never freed: values built outside any scope —
  /// test fixtures, scan sources, pattern literals — are process-lifetime,
  /// and the registry keeps the arenas reachable so leak checkers stay
  /// quiet). Never budget-charged, never Reset.
  static ValueArena* ThreadDefault();

  /// Largest slab-class chunk, in bytes.
  static constexpr size_t kMaxSlabBytes = 512;

  /// Bytes AllocSlab actually carves for a request of `bytes` (the slab
  /// class size, or `bytes` itself past kMaxSlabBytes).
  static size_t SlabAllocatedBytes(size_t bytes) {
    size_t cls = SlabClass(bytes);
    return cls >= kNumSlabClasses ? bytes : SlabClassBytes(cls);
  }

 private:
  struct Block {
    char* data = nullptr;
    size_t size = 0;
    size_t used = 0;
  };

  static constexpr size_t kNumSlabClasses = 5;  // 32, 64, 128, 256, 512

  /// Index of the slab class that fits `bytes`, or kNumSlabClasses when
  /// bytes > kMaxSlabBytes.
  static size_t SlabClass(size_t bytes);
  static size_t SlabClassBytes(size_t cls) { return size_t{32} << cls; }

  /// Makes at least `bytes` of tail room available, acquiring (or reusing a
  /// reset) block and charging the budget for fresh acquisitions.
  void EnsureRoom(size_t bytes);

  Options options_;
  std::vector<Block> blocks_;
  size_t cur_ = 0;  // blocks_[cur_] is the active bump block
  // Intrusive freelists: a recycled chunk's first word points to the next.
  void* slab_free_[kNumSlabClasses] = {};
  std::vector<void*> heap_allocs_;  // legacy mode: individual allocations
  Stats stats_;
  uint64_t charged_ = 0;  // successful budget charges not yet released
  Status exhausted_;      // first failed block charge
};

/// RAII scope directing Value factories on this thread into `arena`.
/// Scopes nest; the innermost wins. Must be destroyed on the thread that
/// created it, in LIFO order (enforced in debug builds).
class ValueArenaScope {
 public:
  explicit ValueArenaScope(ValueArena* arena);
  ~ValueArenaScope();

  ValueArenaScope(const ValueArenaScope&) = delete;
  ValueArenaScope& operator=(const ValueArenaScope&) = delete;

 private:
  ValueArena* arena_;
  ValueArena* prev_;
};

}  // namespace pebble

#endif  // PEBBLE_COMMON_ARENA_H_
