#include "common/failpoint.h"

#include <chrono>
#include <thread>

namespace pebble {

namespace {

/// SplitMix64 finalizer: mixes a 64-bit value into a well-distributed one.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashString(const char* s) {
  // FNV-1a.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

void FailpointRegistry::Enable(const std::string& site, FailpointSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = sites_[site];
  s.spec = std::move(spec);
  s.evaluations = 0;
  s.fires = 0;
  armed_count_.store(static_cast<int>(sites_.size()),
                     std::memory_order_release);
}

void FailpointRegistry::Disable(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.erase(site);
  armed_count_.store(static_cast<int>(sites_.size()),
                     std::memory_order_release);
}

void FailpointRegistry::DisableAll() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armed_count_.store(0, std::memory_order_release);
}

Status FailpointRegistry::Evaluate(const char* site, uint64_t key) {
  if (armed_count_.load(std::memory_order_acquire) == 0) {
    return Status::OK();
  }
  int delay_ms = 0;
  Status injected;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return Status::OK();
    Site& s = it->second;
    uint64_t eval_index = s.evaluations++;
    delay_ms = s.spec.delay_ms;

    bool fire = false;
    if (s.spec.every_nth > 0) {
      fire = (eval_index + 1) % s.spec.every_nth == 0;
    } else if (s.spec.probability > 0.0) {
      uint64_t k = key == kNoKey ? eval_index : key;
      uint64_t h = Mix64(s.spec.seed ^ Mix64(HashString(site) ^ Mix64(k)));
      // Top 53 bits -> uniform double in [0, 1).
      double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      fire = u < s.spec.probability;
    }
    if (fire && s.spec.max_fires >= 0 &&
        s.fires >= static_cast<uint64_t>(s.spec.max_fires)) {
      fire = false;
    }
    if (fire) {
      ++s.fires;
      std::string msg = s.spec.message.empty()
                            ? "injected fault at " + std::string(site)
                            : s.spec.message;
      injected = Status::FromCode(s.spec.code, std::move(msg));
    }
  }
  // Sleep outside the lock so a delayed site never serializes other sites.
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return injected;
}

uint64_t FailpointRegistry::evaluations(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.evaluations;
}

uint64_t FailpointRegistry::fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

uint64_t FailpointRegistry::TotalFires() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, s] : sites_) {
    total += s.fires;
  }
  return total;
}

}  // namespace pebble
