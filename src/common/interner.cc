#include "common/interner.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace pebble {

Interner::Interner() { Intern(""); }

Interner::~Interner() {
  for (std::atomic<Chunk*>& slot : chunks_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

Interner& Interner::Global() {
  // Leaked on purpose: symbols live in long-lived structures (paths inside
  // provenance stores) that may be destroyed after static teardown begins.
  static Interner* global = new Interner();
  return *global;
}

int32_t Interner::Intern(std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;

  uint32_t symbol = next_;
  uint32_t chunk_index = symbol >> kChunkBits;
  if (chunk_index >= kMaxChunks) {
    std::fprintf(stderr, "Interner: symbol space exhausted (%u)\n", symbol);
    std::abort();
  }
  Chunk* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    chunks_[chunk_index].store(chunk, std::memory_order_release);
  }
  std::string& stored = chunk->strings[symbol & kChunkMask];
  stored.assign(name);
  index_.emplace(std::string_view(stored), static_cast<int32_t>(symbol));
  ++next_;
  return static_cast<int32_t>(symbol);
}

size_t Interner::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return next_;
}

}  // namespace pebble
