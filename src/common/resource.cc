#include "common/resource.h"

#include <limits>

namespace pebble {

namespace internal {

bool CancelState::Tripped() const { return TrippedState() != nullptr; }

const CancelState* CancelState::TrippedState() const {
  for (const CancelState* s = this; s != nullptr; s = s->parent.get()) {
    if (s->cancelled.load(std::memory_order_acquire)) return s;
  }
  return nullptr;
}

}  // namespace internal

bool CancellationToken::IsCancelled() const {
  return state_ != nullptr && state_->Tripped();
}

Status CancellationToken::Check(const char* where) const {
  if (state_ == nullptr) return Status::OK();
  const internal::CancelState* tripped = state_->TrippedState();
  if (tripped == nullptr) return Status::OK();
  std::string reason;
  {
    std::lock_guard<std::mutex> lock(tripped->mu);
    reason = tripped->reason;
  }
  Status st = Status::Cancelled("operation cancelled: " + reason);
  return where != nullptr ? st.WithContext(where) : st;
}

std::string CancellationToken::reason() const {
  if (state_ == nullptr) return "";
  const internal::CancelState* tripped = state_->TrippedState();
  if (tripped == nullptr) return "";
  std::lock_guard<std::mutex> lock(tripped->mu);
  return tripped->reason;
}

double CancellationToken::MillisSinceCancel() const {
  if (state_ == nullptr) return 0.0;
  const internal::CancelState* tripped = state_->TrippedState();
  if (tripped == nullptr) return 0.0;
  std::chrono::steady_clock::time_point at;
  {
    std::lock_guard<std::mutex> lock(tripped->mu);
    at = tripped->cancelled_at;
  }
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - at)
      .count();
}

CancellationSource::CancellationSource()
    : state_(std::make_shared<internal::CancelState>()) {}

CancellationSource::CancellationSource(const CancellationToken& parent)
    : state_(std::make_shared<internal::CancelState>()) {
  state_->parent = parent.state_;
}

void CancellationSource::Cancel(std::string reason) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->cancelled.load(std::memory_order_relaxed)) return;
    state_->reason = std::move(reason);
    state_->cancelled_at = std::chrono::steady_clock::now();
  }
  state_->cancelled.store(true, std::memory_order_release);
}

bool CancellationSource::IsCancelled() const { return state_->Tripped(); }

Deadline Deadline::AfterMillis(int64_t ms) {
  Deadline d;
  d.has_ = true;
  d.budget_ms_ = ms;
  d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  return d;
}

bool Deadline::Expired() const {
  return has_ && std::chrono::steady_clock::now() >= at_;
}

double Deadline::RemainingMillis() const {
  if (!has_) return std::numeric_limits<double>::max();
  return std::chrono::duration<double, std::milli>(
             at_ - std::chrono::steady_clock::now())
      .count();
}

double Deadline::MillisSinceExpiry() const {
  if (!has_) return 0.0;
  double over = -RemainingMillis();
  return over > 0.0 ? over : 0.0;
}

Status Deadline::Check(const char* where) const {
  if (!Expired()) return Status::OK();
  Status st = Status::DeadlineExceeded("deadline of " +
                                       std::to_string(budget_ms_) +
                                       " ms exceeded");
  return where != nullptr ? st.WithContext(where) : st;
}

Status MemoryBudget::TryCharge(uint64_t bytes, const char* what) {
  uint64_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limit_ != 0 && now > limit_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    std::string msg = "memory budget exhausted: charge of " +
                      std::to_string(bytes) + " bytes would raise usage to " +
                      std::to_string(now) + " of " + std::to_string(limit_) +
                      " byte limit";
    Status st = Status::ResourceExhausted(std::move(msg));
    return what != nullptr ? st.WithContext(what) : st;
  }
  uint64_t hw = high_water_.load(std::memory_order_relaxed);
  while (now > hw &&
         !high_water_.compare_exchange_weak(hw, now,
                                            std::memory_order_relaxed)) {
  }
  if (parent_ != nullptr) {
    Status st = parent_->TryCharge(bytes, what);
    if (!st.ok()) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return st;
    }
  }
  return Status::OK();
}

void MemoryBudget::Release(uint64_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
  if (parent_ != nullptr) parent_->Release(bytes);
}

}  // namespace pebble
