// CRC32 (IEEE 802.3, polynomial 0xEDB88320), table-driven, incremental.
// Used by the durable provenance snapshot format to detect torn writes and
// bit rot: every segment carries a CRC32 footer that the loader verifies
// before trusting the payload. Stable across platforms and endianness.

#ifndef PEBBLE_COMMON_CRC32_H_
#define PEBBLE_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pebble {

/// Incremental update: feed chunks in order, starting from kCrc32Init, and
/// finalize with Crc32Finalize. Internally keeps the ones-complement
/// running state.
inline constexpr uint32_t kCrc32Init = 0xFFFFFFFFu;

uint32_t Crc32Update(uint32_t state, const void* data, size_t size);

inline uint32_t Crc32Finalize(uint32_t state) { return state ^ 0xFFFFFFFFu; }

/// One-shot CRC32 of a buffer.
inline uint32_t Crc32(const void* data, size_t size) {
  return Crc32Finalize(Crc32Update(kCrc32Init, data, size));
}

inline uint32_t Crc32(std::string_view data) {
  return Crc32(data.data(), data.size());
}

}  // namespace pebble

#endif  // PEBBLE_COMMON_CRC32_H_
