#include "common/crc32.h"

#include <array>

namespace pebble {

namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t state, const void* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    state = kTable[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

}  // namespace pebble
