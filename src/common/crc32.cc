#include "common/crc32.h"

#include <array>

namespace pebble {

namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

// Slicing-by-8 (Intel's technique): table[0] is the classic byte-at-a-time
// table; table[s][b] advances the CRC of byte b through s additional zero
// bytes. Eight bytes are then folded per iteration with eight independent
// table lookups instead of eight serial ones — identical output to the
// byte-at-a-time loop (the remainder path below), ~5x the throughput.
// Snapshot save/load CRCs whole segments and the WAL CRCs every record,
// so this is directly on the durability hot paths.
std::array<std::array<uint32_t, 256>, 8> BuildTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (int s = 1; s < 8; ++s) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[s][i] = c;
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32Update(uint32_t state, const void* data, size_t size) {
  static const std::array<std::array<uint32_t, 256>, 8> kTables =
      BuildTables();
  const auto* p = static_cast<const unsigned char*>(data);
  while (size >= 8) {
    const uint32_t lo = (static_cast<uint32_t>(p[0]) |
                         (static_cast<uint32_t>(p[1]) << 8) |
                         (static_cast<uint32_t>(p[2]) << 16) |
                         (static_cast<uint32_t>(p[3]) << 24)) ^
                        state;
    const uint32_t hi = static_cast<uint32_t>(p[4]) |
                        (static_cast<uint32_t>(p[5]) << 8) |
                        (static_cast<uint32_t>(p[6]) << 16) |
                        (static_cast<uint32_t>(p[7]) << 24);
    state = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
            kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
            kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
            kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  for (size_t i = 0; i < size; ++i) {
    state = kTables[0][(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

}  // namespace pebble
