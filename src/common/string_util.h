// Small string helpers shared across modules.

#ifndef PEBBLE_COMMON_STRING_UTIL_H_
#define PEBBLE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace pebble {

/// Joins `parts` with `sep` ("a", "b" -> "a.b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on the single character `sep`; keeps empty segments.
std::vector<std::string> Split(std::string_view s, char sep);

/// True if `haystack` contains `needle`.
bool Contains(std::string_view haystack, std::string_view needle);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a byte count as a human-readable string ("1.5 MB").
std::string HumanBytes(uint64_t bytes);

}  // namespace pebble

#endif  // PEBBLE_COMMON_STRING_UTIL_H_
