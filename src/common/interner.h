// Per-process attribute-name interner: maps strings to dense int32 symbols
// so hot-path structures (PathStep) can store and compare a word instead of
// a heap string.
//
// Concurrency contract:
//  - Intern() may be called from any thread; first-wins under a mutex, a
//    shared-lock fast path serves the common already-interned case.
//  - ToString() is lock-free: symbols index into chunked storage whose
//    chunks are published with release stores and never move, so the
//    returned reference is stable for the process lifetime.
//  - Symbols are assigned densely in first-intern order; interning the same
//    sequence of names always yields the same symbols (stability tested in
//    interner_test.cc). Symbol 0 is always the empty string.

#ifndef PEBBLE_COMMON_INTERNER_H_
#define PEBBLE_COMMON_INTERNER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pebble {

class Interner {
 public:
  Interner();
  ~Interner();

  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// The process-wide interner used by PathStep.
  static Interner& Global();

  /// Returns the symbol for `name`, interning it on first sight. Symbols
  /// are dense, starting at 0 (the empty string).
  int32_t Intern(std::string_view name);

  /// Resolves a symbol back to its string. The reference is stable for the
  /// lifetime of the interner. Lock-free.
  const std::string& ToString(int32_t symbol) const {
    Chunk* chunk =
        chunks_[static_cast<uint32_t>(symbol) >> kChunkBits].load(
            std::memory_order_acquire);
    return chunk->strings[static_cast<uint32_t>(symbol) & kChunkMask];
  }

  /// Number of distinct strings interned so far (including "").
  size_t size() const;

 private:
  static constexpr uint32_t kChunkBits = 12;  // 4096 strings per chunk
  static constexpr uint32_t kChunkSize = 1u << kChunkBits;
  static constexpr uint32_t kChunkMask = kChunkSize - 1;
  static constexpr uint32_t kMaxChunks = 1u << 9;  // ~2M symbols total

  struct Chunk {
    std::string strings[kChunkSize];
  };

  mutable std::shared_mutex mutex_;
  // Keys are views into the chunk-stored strings (stable addresses).
  std::unordered_map<std::string_view, int32_t> index_;
  std::atomic<Chunk*> chunks_[kMaxChunks] = {};
  uint32_t next_ = 0;
};

}  // namespace pebble

#endif  // PEBBLE_COMMON_INTERNER_H_
