// Status and Result<T>: exception-free error propagation, in the style of
// Arrow / RocksDB. All fallible public APIs in pebble return one of these.

#ifndef PEBBLE_COMMON_STATUS_H_
#define PEBBLE_COMMON_STATUS_H_

#include <cstdlib>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace pebble {

/// Error category of a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kTypeError,
  kKeyError,
  kIndexError,
  kIOError,
  kNotImplemented,
  kInternal,
  /// Transient failure (injected fault, timeout, lost task): the operation
  /// may succeed if retried. The default retryable code of RetryPolicy.
  kUnavailable,
  /// The caller cancelled the operation via a CancellationToken; cooperative
  /// cancellation points return this (common/resource.h).
  kCancelled,
  /// A query-wide wall-clock deadline expired before the operation finished.
  kDeadlineExceeded,
  /// A resource budget (memory bytes, visited-node limit) was exhausted; the
  /// operation was shed rather than allowed to grow unboundedly.
  kResourceExhausted,
};

/// Returns a short human-readable name ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation that can fail. Cheap to copy when OK (no
/// allocation); failures carry a code and a message.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status IndexError(std::string msg) {
    return Status(StatusCode::kIndexError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// Builds a failure with a runtime-chosen code (`code` must not be kOk;
  /// kOk is mapped to an Internal error rather than a silent success).
  static Status FromCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) {
      return Status(StatusCode::kInternal,
                    "Status::FromCode(kOk): " + std::move(msg));
    }
    return Status(code, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const;

  /// Returns this status with `context` prefixed to the message ("context:
  /// message"), preserving the code. OK stays OK. Use when relaying an
  /// error across a boundary that knows more (file path, segment, offset).
  Status WithContext(const std::string& context) const;

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  Status(StatusCode code, std::string msg)
      : state_(std::make_shared<State>(State{code, std::move(msg)})) {}

  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<const State> state_;  // nullptr == OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or a failure Status. Use `ok()` / `status()`
/// before dereferencing with `value()` / `operator*`.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intended implicit wrapping.
  Result(T value) : payload_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor): intended implicit wrapping.
  Result(Status status) : payload_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(payload_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(payload_);
  }

  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  /// Returns the contained value or aborts with the error (for use in tests
  /// and examples where failure is a bug).
  T ValueOrDie() && {
    if (!ok()) {
      AbortWith(status());
    }
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  [[noreturn]] static void AbortWith(const Status& status);

  std::variant<Status, T> payload_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const std::string& message);
}  // namespace internal

template <typename T>
void Result<T>::AbortWith(const Status& status) {
  internal::DieOnBadResult(status.ToString());
}

/// Propagates a failing Status from the current function.
#define PEBBLE_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::pebble::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (false)

#define PEBBLE_CONCAT_IMPL(x, y) x##y
#define PEBBLE_CONCAT(x, y) PEBBLE_CONCAT_IMPL(x, y)

/// Assigns the value of a Result expression to `lhs`, propagating failure.
#define PEBBLE_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  PEBBLE_ASSIGN_OR_RETURN_IMPL(PEBBLE_CONCAT(_result_, __LINE__), lhs, rexpr)

#define PEBBLE_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                 \
  if (!result_name.ok()) return result_name.status();         \
  lhs = std::move(result_name).value()

}  // namespace pebble

#endif  // PEBBLE_COMMON_STATUS_H_
