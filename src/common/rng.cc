#include "common/rng.h"

#include <cmath>

namespace pebble {

uint64_t Rng::Next() {
  // SplitMix64 (Steele et al.), public domain reference constants.
  state_ += 0x9E3779B97f4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Debiased multiply-shift (Lemire). bound > 0 assumed.
  while (true) {
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low >= bound || low >= static_cast<uint64_t>(-bound) % bound) {
      return static_cast<uint64_t>(m >> 64);
    }
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

int64_t Rng::NextSkewed(int64_t lo, int64_t hi) {
  int64_t v = lo;
  while (v < hi && NextBool(0.45)) {
    ++v;
  }
  return v;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  if (n <= 1) return 0;
  // Inverse-CDF on the continuous approximation of the Zipf distribution;
  // adequate for workload skew, exactly reproducible.
  double u = NextDouble();
  if (s == 1.0) s = 1.0000001;
  double t = std::pow(static_cast<double>(n), 1.0 - s);
  double x = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
  uint64_t idx = static_cast<uint64_t>(x) - 1;
  return idx >= n ? n - 1 : idx;
}

std::string Rng::NextString(size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + NextBounded(26)));
  }
  return out;
}

}  // namespace pebble
