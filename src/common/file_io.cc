#include "common/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"

namespace pebble {

namespace {

std::string ErrnoText() { return std::strerror(errno); }

/// Directory part of `path` ("." when the path has no separator).
std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// RAII fd that closes on scope exit unless released.
class ScopedFd {
 public:
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() {
    if (fd_ >= 0) ::close(fd_);
  }
  int get() const { return fd_; }
  /// Closes eagerly; returns false on close error.
  bool Close() {
    int fd = fd_;
    fd_ = -1;
    return ::close(fd) == 0;
  }

 private:
  int fd_;
};

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read failure on '" + path + "'");
  }
  return buffer.str();
}

Status AtomicWriteFile(const std::string& path, std::string_view data,
                       const AtomicWriteOptions& options) {
  const std::string tmp_path = path + ".tmp";
  const size_t chunk = options.chunk_bytes == 0 ? size_t{1} << 16
                                                : options.chunk_bytes;

  // Any failure after this point removes the temp file (best-effort; a real
  // crash would leave it, which a later save simply overwrites) and leaves
  // the destination untouched.
  auto fail = [&](Status st) {
    std::remove(tmp_path.c_str());
    return st;
  };

  ScopedFd fd(::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644));
  if (fd.get() < 0) {
    return Status::IOError("cannot open temp file '" + tmp_path +
                           "' for writing: " + ErrnoText());
  }

  size_t offset = 0;
  uint64_t chunk_index = 0;
  while (offset < data.size()) {
    size_t n = std::min(chunk, data.size() - offset);
    Status injected = FailpointRegistry::Global().Evaluate(
        failpoints::kIoWrite, chunk_index);
    if (!injected.ok()) {
      // Simulate a torn write: half the chunk reaches the disk before the
      // fault, so the temp file holds a mid-record prefix.
      ssize_t torn = ::write(fd.get(), data.data() + offset, n / 2);
      (void)torn;
      return fail(injected.WithContext("write of '" + tmp_path +
                                       "' failed at byte " +
                                       std::to_string(offset)));
    }
    ssize_t written = ::write(fd.get(), data.data() + offset, n);
    if (written < 0 || static_cast<size_t>(written) != n) {
      return fail(Status::IOError("short write to '" + tmp_path +
                                  "' at byte " + std::to_string(offset) +
                                  ": " + ErrnoText()));
    }
    offset += n;
    ++chunk_index;
  }

  if (options.sync) {
    Status injected =
        FailpointRegistry::Global().Evaluate(failpoints::kIoFsync, 0);
    if (!injected.ok()) {
      return fail(injected.WithContext("fsync of '" + tmp_path + "' failed"));
    }
    if (::fsync(fd.get()) != 0) {
      return fail(Status::IOError("fsync of '" + tmp_path +
                                  "' failed: " + ErrnoText()));
    }
  }
  if (!fd.Close()) {
    return fail(Status::IOError("close of '" + tmp_path +
                                "' failed: " + ErrnoText()));
  }

  Status injected =
      FailpointRegistry::Global().Evaluate(failpoints::kIoRename, 0);
  if (!injected.ok()) {
    return fail(injected.WithContext("rename of '" + tmp_path + "' to '" +
                                     path + "' failed"));
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return fail(Status::IOError("rename of '" + tmp_path + "' to '" + path +
                                "' failed: " + ErrnoText()));
  }

  if (options.sync) {
    // Make the rename itself durable. Failure here is reported, but the
    // destination already holds the complete new content.
    Status dir_injected =
        FailpointRegistry::Global().Evaluate(failpoints::kIoFsync, 1);
    if (!dir_injected.ok()) {
      return dir_injected.WithContext("fsync of directory '" +
                                      ParentDir(path) + "' failed");
    }
    ScopedFd dir(::open(ParentDir(path).c_str(), O_RDONLY | O_DIRECTORY));
    if (dir.get() >= 0 && ::fsync(dir.get()) != 0) {
      return Status::IOError("fsync of directory '" + ParentDir(path) +
                             "' failed: " + ErrnoText());
    }
  }
  return Status::OK();
}

}  // namespace pebble
