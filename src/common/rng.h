// Deterministic pseudo-random number generation for workload synthesis.
// All generators in pebble are seeded explicitly so that datasets, pipelines
// and benchmarks are exactly reproducible across runs and platforms.

#ifndef PEBBLE_COMMON_RNG_H_
#define PEBBLE_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pebble {

/// SplitMix64-based deterministic RNG. Not cryptographic; stable across
/// platforms (unlike std::mt19937 distributions, whose output is
/// implementation-defined for e.g. std::uniform_int_distribution).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  /// Geometric-ish skewed count in [lo, hi]: small values are much more
  /// likely than large ones. Used for e.g. mentions-per-tweet.
  int64_t NextSkewed(int64_t lo, int64_t hi);

  /// Zipf-distributed index in [0, n) with exponent `s` (s > 0).
  /// Approximated via inverse CDF over precomputed weights for small n,
  /// rejection-free.
  uint64_t NextZipf(uint64_t n, double s);

  /// Lowercase ASCII string of the given length.
  std::string NextString(size_t length);

  /// Uniformly picks one element of `pool` (must be non-empty).
  template <typename T>
  const T& Pick(const std::vector<T>& pool) {
    return pool[NextBounded(pool.size())];
  }

 private:
  uint64_t state_;
};

}  // namespace pebble

#endif  // PEBBLE_COMMON_RNG_H_
