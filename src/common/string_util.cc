#include "common/string_util.h"

#include <cinttypes>
#include <cstdio>

namespace pebble {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string HumanBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f GB",
                  static_cast<double>(bytes) / (1024.0 * 1024 * 1024));
  } else if (bytes >= 1024ull * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f MB",
                  static_cast<double>(bytes) / (1024.0 * 1024));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f KB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " B", bytes);
  }
  return buf;
}

}  // namespace pebble
