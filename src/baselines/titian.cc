#include "baselines/titian.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

namespace pebble {

namespace {

/// Recursive backward id walk: ids refer to the output of operator `oid`.
Status TraceFrom(const ProvenanceStore& store, int oid,
                 const std::unordered_set<int64_t>& ids,
                 std::map<int, std::set<int64_t>>* at_sources) {
  if (ids.empty()) return Status::OK();
  const OperatorInfo* info = store.FindInfo(oid);
  if (info == nullptr) {
    return Status::Internal("no operator info for oid " + std::to_string(oid));
  }
  if (info->type == OpType::kScan) {
    (*at_sources)[oid].insert(ids.begin(), ids.end());
    return Status::OK();
  }
  const OperatorProvenance* prov = store.Find(oid);
  if (prov == nullptr) {
    return Status::Internal("no captured provenance for operator " +
                            std::to_string(oid));
  }
  switch (info->type) {
    case OpType::kFilter:
    case OpType::kSelect:
    case OpType::kMap: {
      std::unordered_set<int64_t> in_ids;
      for (const UnaryIdRow& row : prov->unary_ids) {
        if (ids.count(row.out) > 0) in_ids.insert(row.in);
      }
      return TraceFrom(store, prov->inputs[0].producer_oid, in_ids,
                       at_sources);
    }
    case OpType::kFlatten: {
      std::unordered_set<int64_t> in_ids;
      for (const FlattenIdRow& row : prov->flatten_ids) {
        if (ids.count(row.out) > 0) in_ids.insert(row.in);
      }
      return TraceFrom(store, prov->inputs[0].producer_oid, in_ids,
                       at_sources);
    }
    case OpType::kJoin:
    case OpType::kUnion: {
      std::unordered_set<int64_t> in1;
      std::unordered_set<int64_t> in2;
      for (const BinaryIdRow& row : prov->binary_ids) {
        if (ids.count(row.out) > 0) {
          if (row.in1 != kNoId) in1.insert(row.in1);
          if (row.in2 != kNoId) in2.insert(row.in2);
        }
      }
      PEBBLE_RETURN_NOT_OK(
          TraceFrom(store, prov->inputs[0].producer_oid, in1, at_sources));
      return TraceFrom(store, prov->inputs[1].producer_oid, in2, at_sources);
    }
    case OpType::kGroupAggregate: {
      std::unordered_set<int64_t> in_ids;
      for (const AggIdRow& row : prov->agg_ids) {
        if (ids.count(row.out) > 0) {
          in_ids.insert(row.ins.begin(), row.ins.end());
        }
      }
      return TraceFrom(store, prov->inputs[0].producer_oid, in_ids,
                       at_sources);
    }
    case OpType::kScan:
      break;  // handled above
  }
  return Status::Internal("unhandled operator type in lineage tracing");
}

}  // namespace

Result<std::vector<SourceLineage>> LineageTracer::Trace(
    const std::vector<int64_t>& output_ids) const {
  if (store_ == nullptr) {
    return Status::InvalidArgument("no provenance store (capture was off?)");
  }
  std::map<int, std::set<int64_t>> at_sources;
  std::unordered_set<int64_t> ids(output_ids.begin(), output_ids.end());
  PEBBLE_RETURN_NOT_OK(
      TraceFrom(*store_, store_->sink_oid(), ids, &at_sources));
  std::vector<SourceLineage> out;
  for (auto& [oid, id_set] : at_sources) {
    SourceLineage sl;
    sl.scan_oid = oid;
    if (const OperatorInfo* info = store_->FindInfo(oid)) {
      sl.source_name = info->label;
    }
    sl.ids.assign(id_set.begin(), id_set.end());
    out.push_back(std::move(sl));
  }
  return out;
}

}  // namespace pebble
