// Titian-style lineage tracing (Interlandi et al., PVLDB 2015): backward
// tracing over top-level item id associations only. This is the baseline
// the paper compares capture overhead and provenance precision against
// (Secs. 2, 7.3.4): it returns whole input items — no attribute-level or
// nested-item information.

#ifndef PEBBLE_BASELINES_TITIAN_H_
#define PEBBLE_BASELINES_TITIAN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/provenance_store.h"

namespace pebble {

/// Lineage arriving at one source dataset: the contributing top-level input
/// item ids (why-provenance), nothing more.
struct SourceLineage {
  int scan_oid = -1;
  std::string source_name;
  std::vector<int64_t> ids;  // ascending, deduplicated
};

/// Walks only the id association tables (what Titian/RAMP/Newt capture).
/// Works on stores captured in kLineage or any richer mode.
class LineageTracer {
 public:
  explicit LineageTracer(const ProvenanceStore* store) : store_(store) {}

  /// Traces the given output item ids back to every source dataset.
  Result<std::vector<SourceLineage>> Trace(
      const std::vector<int64_t>& output_ids) const;

 private:
  const ProvenanceStore* store_;
};

}  // namespace pebble

#endif  // PEBBLE_BASELINES_TITIAN_H_
