#include "baselines/polynomial.h"

namespace pebble {

namespace {

class PolynomialBuilder {
 public:
  PolynomialBuilder(const ProvenanceStore& store, size_t max_terms)
      : store_(store), max_terms_(max_terms) {}

  Result<std::string> Render(int oid, int64_t out_id) {
    const OperatorInfo* info = store_.FindInfo(oid);
    if (info == nullptr) {
      return Status::Internal("no operator info for oid " +
                              std::to_string(oid));
    }
    if (info->type == OpType::kScan) {
      return "p" + std::to_string(out_id);
    }
    const OperatorProvenance* prov = store_.Find(oid);
    if (prov == nullptr) {
      return Status::Internal("no captured provenance for operator " +
                              std::to_string(oid));
    }
    switch (info->type) {
      case OpType::kFilter:
      case OpType::kSelect:
      case OpType::kMap: {
        // Transparent: the polynomial of the single input item.
        for (const UnaryIdRow& row : prov->unary_ids) {
          if (row.out == out_id) {
            return Render(prov->inputs[0].producer_oid, row.in);
          }
        }
        break;
      }
      case OpType::kJoin: {
        for (const BinaryIdRow& row : prov->binary_ids) {
          if (row.out == out_id) {
            PEBBLE_ASSIGN_OR_RETURN(
                std::string left,
                Render(prov->inputs[0].producer_oid, row.in1));
            PEBBLE_ASSIGN_OR_RETURN(
                std::string right,
                Render(prov->inputs[1].producer_oid, row.in2));
            return "(" + left + "·" + right + ")";
          }
        }
        break;
      }
      case OpType::kUnion: {
        for (const BinaryIdRow& row : prov->binary_ids) {
          if (row.out == out_id) {
            int side = row.in1 != kNoId ? 0 : 1;
            return Render(prov->inputs[static_cast<size_t>(side)]
                              .producer_oid,
                          side == 0 ? row.in1 : row.in2);
          }
        }
        break;
      }
      case OpType::kFlatten: {
        for (const FlattenIdRow& row : prov->flatten_ids) {
          if (row.out == out_id) {
            PEBBLE_ASSIGN_OR_RETURN(
                std::string inner,
                Render(prov->inputs[0].producer_oid, row.in));
            return "P_flatten(" + inner + "·[" +
                   std::to_string(row.pos) + "])";
          }
        }
        break;
      }
      case OpType::kGroupAggregate: {
        for (const AggIdRow& row : prov->agg_ids) {
          if (row.out != out_id) continue;
          std::string sum;
          size_t rendered = 0;
          for (int64_t in : row.ins) {
            if (rendered >= max_terms_) {
              sum += "+...";
              break;
            }
            PEBBLE_ASSIGN_OR_RETURN(
                std::string member,
                Render(prov->inputs[0].producer_oid, in));
            if (!sum.empty()) sum += "+";
            sum += member;
            ++rendered;
          }
          return "P_cl(" + sum + ")";
        }
        break;
      }
      case OpType::kScan:
        break;  // handled above
    }
    return Status::Internal("result item " + std::to_string(out_id) +
                            " not found in id table of operator " +
                            std::to_string(oid));
  }

 private:
  const ProvenanceStore& store_;
  size_t max_terms_;
};

}  // namespace

Result<std::string> ProvenancePolynomial(const ProvenanceStore& store,
                                         int64_t out_id, size_t max_terms) {
  return PolynomialBuilder(store, max_terms).Render(store.sink_oid(), out_id);
}

}  // namespace pebble
