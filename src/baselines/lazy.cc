#include "baselines/lazy.h"

#include "common/stopwatch.h"

namespace pebble {

Result<LazyQueryResult> LazyQueryStructuralProvenance(
    const Pipeline& pipeline, const ExecOptions& base_options,
    const TreePattern& pattern) {
  ExecOptions options = base_options;
  options.capture = CaptureMode::kStructural;
  Executor executor(options);

  // Determine the input datasets (scans). A lazy tracer answers the
  // provenance question per input dataset: each input requires its own
  // capture-enabled re-execution and trace (the paper's two reasons why
  // lazy querying loses: per-input reruns and per-input deep traces).
  std::vector<int> scan_oids;
  for (const auto& op : pipeline.operators()) {
    if (op->type() == OpType::kScan) scan_oids.push_back(op->oid());
  }
  if (scan_oids.empty()) {
    return Status::InvalidArgument("pipeline has no input datasets");
  }

  LazyQueryResult result;
  for (int scan_oid : scan_oids) {
    Stopwatch rerun_watch;
    PEBBLE_ASSIGN_OR_RETURN(ExecutionResult run, executor.Run(pipeline));
    result.rerun_ms += rerun_watch.ElapsedMillis();

    Stopwatch trace_watch;
    PEBBLE_ASSIGN_OR_RETURN(
        BacktraceStructure matched,
        pattern.Match(run.output, options.num_threads));
    Backtracer tracer(run.provenance.get());
    PEBBLE_ASSIGN_OR_RETURN(std::vector<SourceProvenance> sources,
                            tracer.Backtrace(matched));
    result.trace_ms += trace_watch.ElapsedMillis();

    for (SourceProvenance& sp : sources) {
      if (sp.scan_oid == scan_oid) {
        result.sources.push_back(std::move(sp));
      }
    }
  }
  return result;
}

}  // namespace pebble
