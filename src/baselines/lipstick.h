// Lipstick-style annotation accounting (Amsterdamer et al., PVLDB 2011).
// Lipstick annotates *every* value — nested items and attribute values —
// rather than only top-level items (35 vs 5 annotations in the paper's
// Tab. 1). This module quantifies that density, and pairs with the
// engine's CaptureMode::kFullModel to measure the runtime cost of
// materializing per-item provenance eagerly.

#ifndef PEBBLE_BASELINES_LIPSTICK_H_
#define PEBBLE_BASELINES_LIPSTICK_H_

#include <cstdint>

#include "engine/dataset.h"

namespace pebble {

/// Annotation counts for one dataset.
struct AnnotationStats {
  /// Annotations a per-value scheme (Lipstick) needs: one per constant,
  /// data item, and collection, at every nesting level.
  uint64_t per_value_annotations = 0;
  /// Annotations Pebble needs: one per top-level item.
  uint64_t top_level_annotations = 0;
  /// Approximate bytes for per-value annotation ids (8 bytes each).
  uint64_t per_value_bytes() const { return per_value_annotations * 8; }
  uint64_t top_level_bytes() const { return top_level_annotations * 8; }
  double density_ratio() const {
    return top_level_annotations == 0
               ? 0
               : static_cast<double>(per_value_annotations) /
                     static_cast<double>(top_level_annotations);
  }
};

/// Counts annotations required for `dataset` under both schemes.
AnnotationStats ComputeAnnotationStats(const Dataset& dataset);

/// Counts annotatable values inside one value (itself included).
uint64_t CountAnnotatableValues(const Value& value);

}  // namespace pebble

#endif  // PEBBLE_BASELINES_LIPSTICK_H_
