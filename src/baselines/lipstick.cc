#include "baselines/lipstick.h"

namespace pebble {

uint64_t CountAnnotatableValues(const Value& value) {
  uint64_t count = 1;  // the value itself
  switch (value.kind()) {
    case ValueKind::kStruct:
      for (const FieldRef& f : value.fields()) {
        count += CountAnnotatableValues(*f.value);
      }
      break;
    case ValueKind::kBag:
    case ValueKind::kSet:
      for (const ValuePtr& e : value.elements()) {
        count += CountAnnotatableValues(*e);
      }
      break;
    default:
      break;
  }
  return count;
}

AnnotationStats ComputeAnnotationStats(const Dataset& dataset) {
  AnnotationStats stats;
  for (const Partition& part : dataset.partitions()) {
    for (const Row& row : part) {
      stats.top_level_annotations += 1;
      stats.per_value_annotations += CountAnnotatableValues(*row.value);
    }
  }
  return stats;
}

}  // namespace pebble
