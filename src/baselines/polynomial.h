// How-provenance polynomials in the style of PROVision extended with a
// list-collection UDF (paper Sec. 2). The paper renders the polynomial for
// result item 102 to show that tuple-based how-provenance is verbose yet
// imprecise for nested data. This module reconstructs such polynomials from
// the captured id tables:
//
//   union        -> sum (+)
//   join         -> product (·)
//   flatten      -> P_flatten(p · [pos])
//   aggregation  -> P_cl(member_1 + member_2 + ...)
//   filter/select/map -> transparent
//
// Source items render as p<id>.

#ifndef PEBBLE_BASELINES_POLYNOMIAL_H_
#define PEBBLE_BASELINES_POLYNOMIAL_H_

#include <string>

#include "common/status.h"
#include "core/provenance_store.h"

namespace pebble {

/// Renders the how-provenance polynomial of the result item `out_id` of the
/// sink operator. `max_terms` caps the rendering (aggregations over big
/// groups explode combinatorially — which is the point the paper makes);
/// when the cap is hit the remainder is elided as "+ ...".
Result<std::string> ProvenancePolynomial(const ProvenanceStore& store,
                                         int64_t out_id,
                                         size_t max_terms = 64);

}  // namespace pebble

#endif  // PEBBLE_BASELINES_POLYNOMIAL_H_
