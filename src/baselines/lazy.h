// PROVision-style fully lazy provenance querying (Zheng et al., ICDE 2019,
// as extended in the paper's Sec. 7.3.3): nothing is captured during the
// original execution; at query time the pipeline is re-executed with
// capture, and the result items are traced back *for each input dataset
// independently* — the cost structure the paper's "lazy" bars measure.

#ifndef PEBBLE_BASELINES_LAZY_H_
#define PEBBLE_BASELINES_LAZY_H_

#include "core/query.h"
#include "engine/pipeline.h"

namespace pebble {

/// Outcome of a lazy provenance query.
struct LazyQueryResult {
  /// Per-source provenance, identical in content to the eager path.
  std::vector<SourceProvenance> sources;
  /// Total time spent re-executing the pipeline with capture (one rerun per
  /// input dataset, as a lazy per-input tracer incurs).
  double rerun_ms = 0;
  /// Total time spent matching and backtracing.
  double trace_ms = 0;

  double total_ms() const { return rerun_ms + trace_ms; }
};

/// Answers `pattern` over `pipeline`'s result without any previously
/// captured provenance: re-runs with structural capture and traces each
/// input dataset independently.
Result<LazyQueryResult> LazyQueryStructuralProvenance(
    const Pipeline& pipeline, const ExecOptions& base_options,
    const TreePattern& pattern);

}  // namespace pebble

#endif  // PEBBLE_BASELINES_LAZY_H_
