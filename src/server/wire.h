// Request/response message grammar of the provenance query protocol
// (DESIGN.md §13). A message is the payload of one net/frame.h frame; the
// frame layer guarantees integrity (length + CRC32), this layer guarantees
// meaning: fixed-width little-endian scalars, u32-length-prefixed strings,
// a leading message-kind byte, and a version field so old clients keep
// working against newer servers. Decoding is fully bounds-checked and
// never trusts a declared length beyond the payload — a malformed message
// is a structured kInvalidArgument, never a crash or over-read.

#ifndef PEBBLE_SERVER_WIRE_H_
#define PEBBLE_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace pebble::server {

/// Protocol version spoken by this build. Servers accept any version up to
/// their own and answer in kind; a newer client version is rejected with a
/// structured error (not a dropped connection).
inline constexpr uint32_t kWireVersion = 1;

/// Leading message-kind byte of every payload.
inline constexpr uint8_t kMsgRequest = 1;
inline constexpr uint8_t kMsgResponse = 2;

/// What the client asks the server to do.
enum class RequestOp : uint8_t {
  /// Liveness probe; answered from the worker pool like any request, so a
  /// ping latency reflects real queueing.
  kPing = 0,
  /// Structural provenance query: match `pattern` against the dataset
  /// registered under `target` and backtrace the matches.
  kQuery = 1,
  /// Server + per-tenant statistics, rendered as text in `answer`.
  kStats = 2,
  /// Sleeps `sleep_ms` (bounded by the request deadline) and returns OK.
  /// A calibrated unit of synthetic work for soak tests and benchmarks —
  /// the serving equivalent of YCSB's think-time knob.
  kSleep = 3,
};

/// One client->server request.
struct QueryRequest {
  uint32_t version = kWireVersion;
  /// Admission-control identity. Empty = the default tenant.
  std::string tenant;
  RequestOp op = RequestOp::kPing;
  /// Name of the served dataset to query (RegisterDataset name).
  std::string target;
  /// Tree-pattern text (TreePattern::Parse syntax).
  std::string pattern;
  /// Per-request governance, mapped onto BacktraceOptions (DESIGN.md §9):
  /// deadline_ms bounds queue wait + execution (0 = server default);
  /// max_visited_nodes / max_results cap tracing work (0 = server
  /// default); memory_budget_bytes is translated into a visited-node cap
  /// (each visited structure entry is charged a fixed estimate).
  uint32_t deadline_ms = 0;
  uint64_t max_visited_nodes = 0;
  uint64_t max_results = 0;
  uint64_t memory_budget_bytes = 0;
  /// kSleep only: synthetic work duration.
  uint32_t sleep_ms = 0;
};

/// One server->client response. `code` is the outcome: kOk (possibly with
/// `truncated` when governance degraded the answer to a lower bound),
/// kResourceExhausted (shed: admission denied or queue full — retry after
/// `retry_after_ms`), kDeadlineExceeded, kInvalidArgument (bad request),
/// kUnavailable (draining), or any error the query itself produced.
struct QueryResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  /// Shed responses: suggested client backoff before retrying.
  uint32_t retry_after_ms = 0;
  /// Admission-queue depth observed when the response was formed (shed
  /// responses carry the depth that caused the shed).
  uint32_t queue_depth = 0;
  /// Governance degradation of an otherwise-OK answer (DESIGN.md §9).
  bool truncated = false;
  std::string truncation_detail;
  /// kQuery: matched result items; rendered provenance in `answer`.
  uint64_t matched = 0;
  std::string answer;
  /// Timings: pattern match, backtrace, and total in-server time.
  uint64_t match_us = 0;
  uint64_t backtrace_us = 0;
  uint64_t server_us = 0;

  /// The response's outcome as a Status (OK for kOk).
  Status ToStatus() const {
    if (code == StatusCode::kOk) return Status::OK();
    return Status::FromCode(code, message);
  }
};

std::string EncodeRequest(const QueryRequest& request);
std::string EncodeResponse(const QueryResponse& response);

/// Decode a payload previously framed by the peer. Rejects wrong leading
/// kind bytes, unknown enum values, lengths past the payload end, and
/// trailing garbage — all as kInvalidArgument with the byte offset.
Status DecodeRequest(std::string_view payload, QueryRequest* request);
Status DecodeResponse(std::string_view payload, QueryResponse* response);

}  // namespace pebble::server

#endif  // PEBBLE_SERVER_WIRE_H_
