// Request/response message grammar of the provenance query protocol
// (DESIGN.md §13). A message is the payload of one net/frame.h frame; the
// frame layer guarantees integrity (length + CRC32), this layer guarantees
// meaning: fixed-width little-endian scalars, u32-length-prefixed strings,
// a leading message-kind byte, and a version field so old clients keep
// working against newer servers. Decoding is fully bounds-checked and
// never trusts a declared length beyond the payload — a malformed message
// is a structured kInvalidArgument, never a crash or over-read.

#ifndef PEBBLE_SERVER_WIRE_H_
#define PEBBLE_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace pebble::server {

/// Protocol version spoken by this build. Servers accept any version up to
/// their own and answer in kind: EncodeResponse takes the version the
/// request declared and emits only the fields that version defines, so a
/// v1 client never sees bytes it cannot parse. A newer client version is
/// rejected with a structured error (not a dropped connection). Version 2
/// added the replication message kinds (subscribe/ship/ack, DESIGN.md §14)
/// and the staleness/generation tail of the response; DecodeResponse
/// accepts responses with or without that tail, so a v2 client also
/// interoperates with a v1 server.
inline constexpr uint32_t kWireVersion = 2;

/// Leading message-kind byte of every payload.
inline constexpr uint8_t kMsgRequest = 1;
inline constexpr uint8_t kMsgResponse = 2;
inline constexpr uint8_t kMsgReplSubscribe = 3;
inline constexpr uint8_t kMsgReplShip = 4;
inline constexpr uint8_t kMsgReplAck = 5;

/// What the client asks the server to do.
enum class RequestOp : uint8_t {
  /// Liveness probe; answered from the worker pool like any request, so a
  /// ping latency reflects real queueing.
  kPing = 0,
  /// Structural provenance query: match `pattern` against the dataset
  /// registered under `target` and backtrace the matches.
  kQuery = 1,
  /// Server + per-tenant statistics, rendered as text in `answer`.
  kStats = 2,
  /// Sleeps `sleep_ms` (bounded by the request deadline) and returns OK.
  /// A calibrated unit of synthetic work for soak tests and benchmarks —
  /// the serving equivalent of YCSB's think-time knob.
  kSleep = 3,
};

/// One client->server request.
struct QueryRequest {
  uint32_t version = kWireVersion;
  /// Admission-control identity. Empty = the default tenant.
  std::string tenant;
  RequestOp op = RequestOp::kPing;
  /// Name of the served dataset to query (RegisterDataset name).
  std::string target;
  /// Tree-pattern text (TreePattern::Parse syntax).
  std::string pattern;
  /// Per-request governance, mapped onto BacktraceOptions (DESIGN.md §9):
  /// deadline_ms bounds queue wait + execution (0 = server default);
  /// max_visited_nodes / max_results cap tracing work (0 = server
  /// default); memory_budget_bytes is translated into a visited-node cap
  /// (each visited structure entry is charged a fixed estimate).
  uint32_t deadline_ms = 0;
  uint64_t max_visited_nodes = 0;
  uint64_t max_results = 0;
  uint64_t memory_budget_bytes = 0;
  /// kSleep only: synthetic work duration.
  uint32_t sleep_ms = 0;
};

/// One server->client response. `code` is the outcome: kOk (possibly with
/// `truncated` when governance degraded the answer to a lower bound),
/// kResourceExhausted (shed: admission denied or queue full — retry after
/// `retry_after_ms`), kDeadlineExceeded, kInvalidArgument (bad request),
/// kUnavailable (draining), or any error the query itself produced.
struct QueryResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  /// Shed responses: suggested client backoff before retrying.
  uint32_t retry_after_ms = 0;
  /// Admission-queue depth observed when the response was formed (shed
  /// responses carry the depth that caused the shed).
  uint32_t queue_depth = 0;
  /// Governance degradation of an otherwise-OK answer (DESIGN.md §9).
  bool truncated = false;
  std::string truncation_detail;
  /// kQuery: matched result items; rendered provenance in `answer`.
  uint64_t matched = 0;
  std::string answer;
  /// Timings: pattern match, backtrace, and total in-server time.
  uint64_t match_us = 0;
  uint64_t backtrace_us = 0;
  uint64_t server_us = 0;
  // --- version >= 2 tail (encoded only for v2 peers; a v1 response
  // leaves every field below at its default) -------------------------------
  /// Catalog generation of the served entry that answered (0 = the answer
  /// did not come from a catalog entry, e.g. ping/stats). Monotonic across
  /// register/swap, so a client can order answers by store version.
  uint64_t store_generation = 0;
  /// True when a replication follower answered: `staleness_ms` is then the
  /// upper bound on how far behind the primary the served store may be,
  /// and applied_seq/applied_offset name the WAL position it reflects —
  /// `applied_offset` bytes of segment `applied_seq`, or, when the store
  /// came purely from a snapshot (no tail segment yet), the snapshot's
  /// covered sequence with offset 0. A primary answers with
  /// from_replica == false and all three fields zero.
  bool from_replica = false;
  uint32_t staleness_ms = 0;
  uint64_t applied_seq = 0;
  uint64_t applied_offset = 0;

  /// The response's outcome as a Status (OK for kOk).
  Status ToStatus() const {
    if (code == StatusCode::kOk) return Status::OK();
    return Status::FromCode(code, message);
  }
};

// ---------------------------------------------------------------------------
// Replication messages (DESIGN.md §14). A follower opens a plain framed
// connection and sends one ReplSubscribe naming its local WAL position;
// the primary then drives a strict lockstep of ReplShip frames, each
// acknowledged by one ReplAck before the next is sent (the lockstep IS the
// slow-follower backpressure: a follower that cannot keep up simply delays
// the primary's per-session shipping thread, never its query path).

/// Follower -> primary: the exact local WAL position to resume from.
/// (covered_seq, seq, offset) describe the follower's local copy after its
/// own recovery: manifest-covered prefix, tail segment held, and how many
/// bytes of it (post torn-tail truncation, so `offset` is a record
/// boundary). `prefix_crc` is the CRC32 of those `offset` bytes; the
/// primary compares it against its own file to detect divergence (e.g. a
/// shipped-then-truncated torn tail, or a restart-reused sequence number)
/// without shipping anything.
struct ReplSubscribe {
  uint32_t version = kWireVersion;
  /// WAL stream identity; must match the primary's served stream.
  std::string stream;
  uint64_t covered_seq = 0;
  uint64_t seq = 0;
  uint64_t offset = 0;
  uint32_t prefix_crc = 0;
};

/// What one primary -> follower ship frame carries.
enum class ShipKind : uint8_t {
  /// `bytes` of segment `seq` at byte `offset`; `sealed` marks the chunk
  /// that reaches the final size of a sealed segment.
  kData = 0,
  /// Caught up: no new bytes, refreshes the follower's freshness clock.
  kHeartbeat = 1,
  /// The follower's position is unusable (compacted away, diverged, or
  /// past the primary's file): discard the local WAL copy entirely and
  /// resubscribe from scratch. `note` says why.
  kReset = 2,
  /// Snapshot bootstrap for a fresh follower whose needed segments were
  /// folded: `seq` is the covered sequence, `primary_size` the snapshot
  /// byte size; kSnapshotChunk frames follow, then kSnapshotCommit.
  kSnapshotBegin = 3,
  /// `bytes` of the snapshot file at `offset`.
  kSnapshotChunk = 4,
  /// Snapshot fully shipped: the follower atomically installs it (file +
  /// manifest) and recovers from it; segment data for seq+1.. follows.
  kSnapshotCommit = 5,
  /// This server ships no WAL (or rejected the subscribe); terminal for
  /// the session. `note` says why.
  kDenied = 6,
};

struct ReplShip {
  uint32_t version = kWireVersion;
  ShipKind kind = ShipKind::kHeartbeat;
  uint64_t seq = 0;
  uint64_t offset = 0;
  bool sealed = false;
  std::string bytes;
  /// Primary tail position (newest segment and its byte size) at send
  /// time, so the follower can compute and expose replication lag.
  uint64_t primary_seq = 0;
  uint64_t primary_size = 0;
  std::string note;
};

/// Follower -> primary: acknowledges one ship frame. (seq, offset) is the
/// follower's position after applying; ok == false aborts the session with
/// `note` as the reason (the follower then repairs locally and
/// resubscribes).
struct ReplAck {
  uint32_t version = kWireVersion;
  uint64_t seq = 0;
  uint64_t offset = 0;
  bool ok = true;
  std::string note;
};

std::string EncodeRequest(const QueryRequest& request);
/// `version` is the peer's negotiated protocol version (the one its
/// request declared): fields newer than it are omitted so the peer can
/// parse the bytes. Defaults to this build's own version.
std::string EncodeResponse(const QueryResponse& response,
                           uint32_t version = kWireVersion);
std::string EncodeReplSubscribe(const ReplSubscribe& subscribe);
std::string EncodeReplShip(const ReplShip& ship);
std::string EncodeReplAck(const ReplAck& ack);

/// Decode a payload previously framed by the peer. Rejects wrong leading
/// kind bytes, unknown enum values, lengths past the payload end, and
/// trailing garbage — all as kInvalidArgument with the byte offset.
Status DecodeRequest(std::string_view payload, QueryRequest* request);
/// Accepts both response layouts: a payload ending after `server_us` is a
/// v1 response (the v2 tail fields keep their defaults).
Status DecodeResponse(std::string_view payload, QueryResponse* response);
Status DecodeReplSubscribe(std::string_view payload,
                           ReplSubscribe* subscribe);
Status DecodeReplShip(std::string_view payload, ReplShip* ship);
Status DecodeReplAck(std::string_view payload, ReplAck* ack);

}  // namespace pebble::server

#endif  // PEBBLE_SERVER_WIRE_H_
