// Client library for the provenance query daemon (DESIGN.md §13). One
// PebbleClient owns one keep-alive connection and offers two calling
// styles:
//
//   Call          — one attempt over the current connection (reconnecting
//                   first if needed); any failure is returned as-is.
//   CallWithRetry — production style: transport failures (kIOError,
//                   kUnavailable) and structured sheds (kResourceExhausted)
//                   are retried with exponential backoff plus seeded
//                   jitter, honoring the server's retry_after_ms hint when
//                   one is present. kInvalidArgument (a bad request stays
//                   bad) and query-semantic errors are never retried.
//
// The client is deliberately single-threaded per instance (one in-flight
// request per connection, matching the protocol); drivers wanting
// concurrency hold one client per thread.

#ifndef PEBBLE_SERVER_CLIENT_H_
#define PEBBLE_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "net/net.h"
#include "server/wire.h"

namespace pebble::server {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connect_timeout_ms = 2000;
  /// Per-IO budgets; the read budget bounds a whole response frame, so it
  /// must cover server queueing + execution for the slowest call.
  int write_timeout_ms = 5000;
  int read_timeout_ms = 15000;
  /// CallWithRetry policy.
  int max_attempts = 5;
  int backoff_initial_ms = 10;
  int backoff_max_ms = 1000;
  /// Seed for backoff jitter (deterministic per client).
  uint64_t jitter_seed = 1;
};

/// Deterministic part of CallWithRetry's backoff (exported for unit
/// tests; the caller adds full jitter on top). A structured shed carries
/// the server's retry_after_ms hint plus the admission-queue depth that
/// caused it; the hint alone reflects the token-bucket refill rate but
/// not how much queued work sits in front of a retry, so the base wait is
/// the hint scaled by depth — 1x at an empty queue, +1x per 16 queued
/// requests, capped at 8x. Without a hint (transport failures), the
/// client-side exponential `backoff_ms` is used unchanged.
uint64_t RetryBaseDelayMs(uint32_t hinted_ms, uint32_t queue_depth,
                          int backoff_ms);

/// Counters of one client's lifetime (CallWithRetry bookkeeping).
struct ClientStats {
  uint64_t calls = 0;
  uint64_t retries = 0;
  uint64_t reconnects = 0;
  uint64_t sheds_seen = 0;  // kResourceExhausted responses observed
};

class PebbleClient {
 public:
  explicit PebbleClient(ClientOptions options);

  PebbleClient(const PebbleClient&) = delete;
  PebbleClient& operator=(const PebbleClient&) = delete;

  /// One attempt: connect if disconnected, send, await the response frame.
  /// Transport failures close the connection (the next call reconnects).
  /// A structured non-OK response is returned in `*response` with an OK
  /// transport Status — inspect response->code / ToStatus().
  Status Call(const QueryRequest& request, QueryResponse* response);

  /// Retrying variant per the header comment. Returns the last transport
  /// error after exhausting attempts, or OK with the final response (which
  /// may still carry a non-retryable error code).
  Status CallWithRetry(const QueryRequest& request, QueryResponse* response);

  /// Convenience: ping the server once (one attempt).
  Status Ping();

  void Disconnect();
  bool connected() const { return fd_.valid(); }
  const ClientStats& stats() const { return stats_; }

 private:
  Status EnsureConnected();

  const ClientOptions options_;
  net::UniqueFd fd_;
  Rng jitter_;
  ClientStats stats_;
};

}  // namespace pebble::server

#endif  // PEBBLE_SERVER_CLIENT_H_
