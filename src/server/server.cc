#include "server/server.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/query_cache.h"
#include "net/frame.h"

namespace pebble::server {

namespace {

QueryResponse ErrorResponse(StatusCode code, std::string message) {
  QueryResponse resp;
  resp.code = code;
  resp.message = std::move(message);
  return resp;
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

PebbleServer::PebbleServer(ServerOptions options)
    : options_(options),
      admission_(options.default_tenant_quota),
      queue_(options.queue_capacity),
      pending_conns_(options.conn_backlog) {}

PebbleServer::~PebbleServer() { Shutdown(); }

Status PebbleServer::RegisterDataset(const std::string& name,
                                     ServedDataset dataset) {
  if (started_) {
    return Status::InvalidArgument(
        "RegisterDataset after Start(): the catalog is frozen");
  }
  if (dataset.store == nullptr) {
    return Status::InvalidArgument("ServedDataset '" + name +
                                   "' has no provenance store");
  }
  if (!catalog_.emplace(name, std::move(dataset)).second) {
    return Status::InvalidArgument("dataset '" + name +
                                   "' is already registered");
  }
  return Status::OK();
}

void PebbleServer::SetTenantQuota(const std::string& tenant,
                                  TenantQuota quota) {
  admission_.SetQuota(tenant, quota);
}

Status PebbleServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  PEBBLE_ASSIGN_OR_RETURN(listen_fd_, net::ListenTcp(options_.port));
  PEBBLE_ASSIGN_OR_RETURN(port_, net::LocalPort(listen_fd_.get()));
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  handler_threads_.reserve(options_.handlers);
  for (int i = 0; i < options_.handlers; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  worker_threads_.reserve(options_.workers);
  for (int i = 0; i < options_.workers; ++i) {
    worker_threads_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void PebbleServer::BeginDrain() {
  draining_.store(true, std::memory_order_relaxed);
  stop_io_.store(true, std::memory_order_relaxed);
}

void PebbleServer::Shutdown(int grace_ms) {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (!started_ || joined_) return;
  BeginDrain();

  // After the grace period a stuck governed query is hard-cancelled so it
  // degrades to a partial answer and its worker can exit.
  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog([&] {
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(grace_ms);
    while (!watchdog_stop.load(std::memory_order_relaxed)) {
      if (std::chrono::steady_clock::now() >= give_up) {
        hard_cancel_.Cancel("server shutdown grace period expired");
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  if (accept_thread_.joinable()) accept_thread_.join();
  // Handlers drain remaining accepted connections (each gets a prompt
  // drain shed because draining_ is set), then exit on queue close.
  pending_conns_.Close();
  for (std::thread& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  // Workers finish every admitted job (Pop drains after Close) so every
  // promise a handler is waiting on is fulfilled before workers exit.
  queue_.Close();
  for (std::thread& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  watchdog_stop.store(true, std::memory_order_relaxed);
  if (watchdog.joinable()) watchdog.join();
  listen_fd_.reset();
  joined_ = true;
}

void PebbleServer::AcceptLoop() {
  uint64_t accept_seq = 0;
  while (!stop_io_.load(std::memory_order_relaxed)) {
    Result<net::UniqueFd> accepted =
        net::AcceptTimeout(listen_fd_.get(), /*timeout_ms=*/50, ++accept_seq);
    if (!accepted.ok()) {
      counters_.accept_faults.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    net::UniqueFd fd = std::move(accepted).ValueOrDie();
    if (!fd.valid()) continue;  // timeout tick; re-check the stop flag
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    size_t depth = 0;
    if (!pending_conns_.TryPush(std::move(fd), &depth)) {
      // fd was not consumed by the failed push; shed the connection with a
      // structured response rather than a silent close.
      counters_.connections_shed_overcap.fetch_add(1,
                                                   std::memory_order_relaxed);
      QueryResponse shed = ErrorResponse(
          StatusCode::kResourceExhausted,
          "connection capacity reached (" + std::to_string(depth) +
              " connections pending)");
      shed.retry_after_ms = 50;
      // Best effort with a short budget: a peer that cannot take the shed
      // response promptly is not worth an accept-loop stall.
      net::WriteFrame(fd.get(), EncodeResponse(shed), /*timeout_ms=*/250)
          .ok();
    }
  }
}

void PebbleServer::HandlerLoop() {
  net::UniqueFd fd;
  while (pending_conns_.Pop(&fd)) {
    ServeConnection(std::move(fd),
                    next_conn_id_.fetch_add(1, std::memory_order_relaxed));
  }
}

void PebbleServer::ServeConnection(net::UniqueFd fd, uint64_t conn_id) {
  // Keep-alive: one connection carries many request/response exchanges.
  while (!stop_io_.load(std::memory_order_relaxed)) {
    std::string payload;
    const int frame_budget_ms =
        std::max(options_.idle_timeout_ms, options_.read_timeout_ms);
    Status read = net::ReadFrame(fd.get(), &payload, frame_budget_ms,
                                 &stop_io_, conn_id);
    if (!read.ok()) {
      switch (read.code()) {
        case StatusCode::kUnavailable:
          // Clean close between frames, or drain interrupted the idle
          // wait: the normal end of a connection.
          return;
        case StatusCode::kDeadlineExceeded:
          counters_.connections_reaped_idle.fetch_add(
              1, std::memory_order_relaxed);
          return;
        case StatusCode::kInvalidArgument: {
          // Protocol violation (oversized frame). Answer, then hang up:
          // the stream is not re-synchronizable.
          counters_.requests_received.fetch_add(1, std::memory_order_relaxed);
          counters_.bad_request.fetch_add(1, std::memory_order_relaxed);
          QueryResponse bad =
              ErrorResponse(StatusCode::kInvalidArgument, read.message());
          net::WriteFrame(fd.get(), EncodeResponse(bad),
                          options_.write_timeout_ms, nullptr, conn_id)
              .ok();
          return;
        }
        default:
          counters_.connections_torn.fetch_add(1, std::memory_order_relaxed);
          return;
      }
    }

    counters_.requests_received.fetch_add(1, std::memory_order_relaxed);
    QueryRequest request;
    QueryResponse response;
    Status decoded = DecodeRequest(payload, &request);
    if (!decoded.ok()) {
      counters_.bad_request.fetch_add(1, std::memory_order_relaxed);
      response = ErrorResponse(StatusCode::kInvalidArgument,
                               decoded.message());
    } else {
      response = Dispatch(std::move(request));
    }

    // Responses are never interrupted by drain: an admitted request's
    // answer is delivered even while shutting down.
    Status written =
        net::WriteFrame(fd.get(), EncodeResponse(response),
                        options_.write_timeout_ms, nullptr, conn_id);
    if (!written.ok()) {
      counters_.responses_write_failed.fetch_add(1,
                                                 std::memory_order_relaxed);
      counters_.connections_torn.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

QueryResponse PebbleServer::Dispatch(QueryRequest request) {
  const auto received_at = std::chrono::steady_clock::now();
  if (draining_.load(std::memory_order_relaxed)) {
    counters_.shed_draining.fetch_add(1, std::memory_order_relaxed);
    QueryResponse resp = ErrorResponse(StatusCode::kUnavailable,
                                       "server is draining; retry elsewhere");
    resp.retry_after_ms = 100;
    return resp;
  }
  if (request.version == 0 || request.version > kWireVersion) {
    counters_.bad_request.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(StatusCode::kInvalidArgument,
                         "unsupported protocol version " +
                             std::to_string(request.version));
  }

  uint32_t retry_after_ms = 0;
  Status admit = admission_.Admit(request.tenant, &retry_after_ms);
  if (!admit.ok()) {
    counters_.shed_rate_limit.fetch_add(1, std::memory_order_relaxed);
    QueryResponse resp = ErrorResponse(admit.code(), admit.message());
    resp.retry_after_ms = retry_after_ms;
    resp.queue_depth = static_cast<uint32_t>(queue_.depth());
    return resp;
  }

  const uint64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  Status enqueue_fault =
      FailpointRegistry::Global().Evaluate(failpoints::kServerEnqueue, id);
  if (!enqueue_fault.ok()) {
    counters_.shed_enqueue_fault.fetch_add(1, std::memory_order_relaxed);
    QueryResponse resp =
        ErrorResponse(enqueue_fault.code(), enqueue_fault.message());
    resp.retry_after_ms = 20;
    resp.queue_depth = static_cast<uint32_t>(queue_.depth());
    return resp;
  }

  uint32_t deadline_ms = request.deadline_ms == 0
                             ? options_.default_deadline_ms
                             : request.deadline_ms;
  deadline_ms = std::min(deadline_ms, options_.max_deadline_ms);

  auto job = std::make_unique<Job>();
  job->request = std::move(request);
  job->enqueued_at = received_at;
  job->deadline = received_at + std::chrono::milliseconds(deadline_ms);
  job->id = id;
  std::future<QueryResponse> answer = job->promise.get_future();

  size_t depth = 0;
  if (!queue_.TryPush(std::move(job), &depth)) {
    if (draining_.load(std::memory_order_relaxed)) {
      counters_.shed_draining.fetch_add(1, std::memory_order_relaxed);
      QueryResponse resp = ErrorResponse(StatusCode::kUnavailable,
                                         "server is draining");
      resp.retry_after_ms = 100;
      resp.queue_depth = static_cast<uint32_t>(depth);
      return resp;
    }
    counters_.shed_queue_full.fetch_add(1, std::memory_order_relaxed);
    QueryResponse resp = ErrorResponse(
        StatusCode::kResourceExhausted,
        "admission queue full at depth " + std::to_string(depth) + "/" +
            std::to_string(queue_.capacity()));
    resp.retry_after_ms = 20;
    resp.queue_depth = static_cast<uint32_t>(depth);
    return resp;
  }
  counters_.admitted.fetch_add(1, std::memory_order_relaxed);

  // The worker pool fulfills every pushed job's promise (Pop drains after
  // Close), so this wait always finishes.
  return answer.get();
}

void PebbleServer::WorkerLoop() {
  std::unique_ptr<Job> job;
  while (queue_.Pop(&job)) {
    QueryResponse response = Execute(*job);
    response.server_us = ElapsedUs(job->enqueued_at);
    response.queue_depth = static_cast<uint32_t>(queue_.depth());
    job->promise.set_value(std::move(response));
    job.reset();
  }
}

QueryResponse PebbleServer::Execute(const Job& job) {
  const auto now = std::chrono::steady_clock::now();
  if (now >= job.deadline) {
    counters_.deadline_before_start.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(StatusCode::kDeadlineExceeded,
                         "deadline expired while queued");
  }

  // Per-request governance mapped onto BacktraceOptions: the remaining
  // deadline budget, the server's hard-cancel token (trips on shutdown
  // grace expiry), and count caps from the request or server defaults.
  // A memory budget is translated into a visited-node cap at a fixed
  // per-entry charge.
  BacktraceOptions options;
  const int64_t remaining_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(job.deadline -
                                                            now)
          .count();
  options.deadline = Deadline::AfterMillis(remaining_ms);
  options.cancel = hard_cancel_.token();
  uint64_t max_visited = job.request.max_visited_nodes != 0
                             ? job.request.max_visited_nodes
                             : options_.default_max_visited_nodes;
  if (job.request.memory_budget_bytes != 0) {
    const uint64_t budget_cap = std::max<uint64_t>(
        1, job.request.memory_budget_bytes / options_.bytes_per_visited_node);
    max_visited = max_visited == 0 ? budget_cap
                                   : std::min(max_visited, budget_cap);
  }
  options.max_visited_nodes = static_cast<int64_t>(max_visited);
  options.max_results = static_cast<int64_t>(job.request.max_results);

  QueryResponse response;
  switch (job.request.op) {
    case RequestOp::kPing:
      response.answer = "pong";
      break;
    case RequestOp::kStats:
      response.answer =
          RenderServerStats(stats(), tenant_admission_stats());
      break;
    case RequestOp::kSleep: {
      // Synthetic work: sleep in short slices so deadline expiry and the
      // shutdown hard-cancel are observed promptly.
      const auto sleep_until =
          now + std::chrono::milliseconds(job.request.sleep_ms);
      bool cut_short = false;
      while (std::chrono::steady_clock::now() < sleep_until) {
        if (hard_cancel_.IsCancelled()) {
          response = ErrorResponse(StatusCode::kCancelled,
                                   "synthetic work cancelled: " +
                                       hard_cancel_.token().reason());
          break;
        }
        if (std::chrono::steady_clock::now() >= job.deadline) {
          cut_short = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      if (response.code == StatusCode::kOk && cut_short) {
        response.truncated = true;
        response.truncation_detail = "sleep cut short by deadline";
      }
      break;
    }
    case RequestOp::kQuery: {
      // The tenant is ambient for the duration of execution so the answer
      // cache charges (and serves) this tenant's shard.
      QueryAnswerCache::ScopedTenant tenant_scope(job.request.tenant);
      response = ExecuteQuery(job, options);
      break;
    }
  }

  if (response.code == StatusCode::kOk) {
    counters_.completed_ok.fetch_add(1, std::memory_order_relaxed);
    if (response.truncated) {
      counters_.completed_truncated.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    counters_.completed_error.fetch_add(1, std::memory_order_relaxed);
  }
  return response;
}

QueryResponse PebbleServer::ExecuteQuery(const Job& job,
                                         const BacktraceOptions& options) {
  auto it = catalog_.find(job.request.target);
  if (it == catalog_.end()) {
    return ErrorResponse(StatusCode::kKeyError,
                         "no dataset '" + job.request.target +
                             "' is served (register it before Start)");
  }
  Result<TreePattern> pattern = TreePattern::Parse(job.request.pattern);
  if (!pattern.ok()) {
    return ErrorResponse(pattern.status().code(),
                         pattern.status().message());
  }

  const ServedDataset& served = it->second;
  Result<ProvenanceQueryResult> outcome = QueryStructuralProvenanceOffline(
      served.output, *served.store, *pattern, options,
      options_.match_threads, served.index.get());
  if (!outcome.ok()) {
    return ErrorResponse(outcome.status().code(), outcome.status().message());
  }

  const ProvenanceQueryResult& result = *outcome;
  QueryResponse response;
  response.matched = result.matched.size();
  response.truncated = result.truncation.truncated;
  if (result.truncation.truncated) {
    response.truncation_detail =
        std::string(TruncationReasonToString(result.truncation.reason)) +
        ": " + result.truncation.detail + " (visited " +
        std::to_string(result.truncation.visited_nodes) + ", traced " +
        std::to_string(result.truncation.seed_entries_traced) + "/" +
        std::to_string(result.truncation.seed_entries_total) + " seeds)";
  }
  response.match_us = static_cast<uint64_t>(result.match_ms * 1000.0);
  response.backtrace_us =
      static_cast<uint64_t>(result.backtrace_ms * 1000.0);

  std::string answer;
  for (const SourceProvenance& source : result.sources) {
    if (answer.size() >= options_.max_answer_bytes) {
      answer += "... [answer truncated at " +
                std::to_string(options_.max_answer_bytes) + " bytes]\n";
      break;
    }
    answer += SourceProvenanceToString(source);
  }
  if (answer.size() > options_.max_answer_bytes) {
    answer.resize(options_.max_answer_bytes);
    answer += "\n... [answer truncated at " +
              std::to_string(options_.max_answer_bytes) + " bytes]\n";
  }
  response.answer = std::move(answer);
  return response;
}

ServerStats PebbleServer::stats() const {
  ServerStats s;
  s.connections_accepted =
      counters_.connections_accepted.load(std::memory_order_relaxed);
  s.connections_shed_overcap =
      counters_.connections_shed_overcap.load(std::memory_order_relaxed);
  s.connections_reaped_idle =
      counters_.connections_reaped_idle.load(std::memory_order_relaxed);
  s.connections_torn =
      counters_.connections_torn.load(std::memory_order_relaxed);
  s.accept_faults = counters_.accept_faults.load(std::memory_order_relaxed);
  s.requests_received =
      counters_.requests_received.load(std::memory_order_relaxed);
  s.bad_request = counters_.bad_request.load(std::memory_order_relaxed);
  s.admitted = counters_.admitted.load(std::memory_order_relaxed);
  s.shed_rate_limit =
      counters_.shed_rate_limit.load(std::memory_order_relaxed);
  s.shed_queue_full =
      counters_.shed_queue_full.load(std::memory_order_relaxed);
  s.shed_enqueue_fault =
      counters_.shed_enqueue_fault.load(std::memory_order_relaxed);
  s.shed_draining = counters_.shed_draining.load(std::memory_order_relaxed);
  s.completed_ok = counters_.completed_ok.load(std::memory_order_relaxed);
  s.completed_truncated =
      counters_.completed_truncated.load(std::memory_order_relaxed);
  s.completed_error =
      counters_.completed_error.load(std::memory_order_relaxed);
  s.deadline_before_start =
      counters_.deadline_before_start.load(std::memory_order_relaxed);
  s.responses_write_failed =
      counters_.responses_write_failed.load(std::memory_order_relaxed);
  s.queue_max_depth = queue_.max_depth();
  s.queue_capacity = queue_.capacity();
  return s;
}

std::string RenderServerStats(
    const ServerStats& stats,
    const std::map<std::string, TenantAdmissionStats>& tenants) {
  std::ostringstream out;
  out << "server:\n"
      << "  connections_accepted=" << stats.connections_accepted
      << " shed_overcap=" << stats.connections_shed_overcap
      << " reaped_idle=" << stats.connections_reaped_idle
      << " torn=" << stats.connections_torn
      << " accept_faults=" << stats.accept_faults << "\n"
      << "  requests_received=" << stats.requests_received
      << " bad_request=" << stats.bad_request
      << " admitted=" << stats.admitted << "\n"
      << "  shed: rate_limit=" << stats.shed_rate_limit
      << " queue_full=" << stats.shed_queue_full
      << " enqueue_fault=" << stats.shed_enqueue_fault
      << " draining=" << stats.shed_draining << "\n"
      << "  completed: ok=" << stats.completed_ok
      << " truncated=" << stats.completed_truncated
      << " error=" << stats.completed_error
      << " deadline_before_start=" << stats.deadline_before_start << "\n"
      << "  responses_write_failed=" << stats.responses_write_failed
      << " queue_max_depth=" << stats.queue_max_depth << "/"
      << stats.queue_capacity << "\n";
  out << "tenants:\n";
  for (const auto& [tenant, t] : tenants) {
    out << "  '" << (tenant.empty() ? "<default>" : tenant)
        << "': admitted=" << t.admitted << " shed=" << t.shed;
    const QueryCacheStats cache =
        QueryAnswerCache::Instance().tenant_stats(tenant);
    out << " cache_hits=" << cache.hits << " cache_misses=" << cache.misses
        << " cache_bytes=" << cache.bytes << "\n";
  }
  return out.str();
}

}  // namespace pebble::server
