#include "server/server.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "core/provenance_wal.h"
#include "core/query_cache.h"
#include "net/frame.h"

namespace pebble::server {

namespace {

QueryResponse ErrorResponse(StatusCode code, std::string message) {
  QueryResponse resp;
  resp.code = code;
  resp.message = std::move(message);
  return resp;
}

/// Reads [offset, offset + max_len) of `path` into `out` (short at EOF).
/// The shipper reads sealed-segment bytes and the live tail with this; a
/// concurrent appender only ever grows the file, so a short read is a
/// consistent prefix.
Status ReadFileRange(const std::string& path, uint64_t offset,
                     size_t max_len, std::string* out) {
  out->clear();
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  out->resize(max_len);
  size_t got = 0;
  while (got < max_len) {
    ssize_t n = ::pread(fd, out->data() + got, max_len - got,
                        static_cast<off_t>(offset + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      return Status::IOError("read of '" + path +
                             "' failed: " + std::strerror(saved));
    }
    if (n == 0) break;  // EOF
    got += static_cast<size_t>(n);
  }
  ::close(fd);
  out->resize(got);
  return Status::OK();
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

uint32_t ReplicaFreshness::StalenessMs() const {
  const int64_t fresh_at = fresh_at_ms.load(std::memory_order_acquire);
  if (fresh_at == 0) return ~0u;  // never fresh
  const int64_t now =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  const int64_t age = now - fresh_at;
  if (age <= 0) return 0;
  if (age >= static_cast<int64_t>(~0u)) return ~0u;
  return static_cast<uint32_t>(age);
}

PebbleServer::PebbleServer(ServerOptions options)
    : options_(options),
      catalog_(std::make_shared<const Catalog>()),
      admission_(options.default_tenant_quota),
      queue_(options.queue_capacity),
      pending_conns_(options.conn_backlog) {}

PebbleServer::~PebbleServer() { Shutdown(); }

std::shared_ptr<const PebbleServer::Catalog> PebbleServer::SnapshotCatalog()
    const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  return catalog_;
}

Status PebbleServer::MutateCatalog(
    const std::function<Status(Catalog*)>& mutate) {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  // Copy-on-write: readers holding the old root (and the entries it pins)
  // are unaffected; the swap below is their only synchronization point.
  auto next = std::make_shared<Catalog>(*catalog_);
  PEBBLE_RETURN_NOT_OK(mutate(next.get()));
  catalog_ = std::move(next);
  return Status::OK();
}

Status PebbleServer::RegisterDataset(const std::string& name,
                                     ServedDataset dataset) {
  if (dataset.store == nullptr) {
    return Status::InvalidArgument("ServedDataset '" + name +
                                   "' has no provenance store");
  }
  auto entry = std::make_shared<ServedEntry>();
  entry->dataset = std::move(dataset);
  entry->generation =
      catalog_generation_.fetch_add(1, std::memory_order_relaxed) + 1;
  return MutateCatalog([&](Catalog* catalog) -> Status {
    if (!catalog->emplace(name, std::move(entry)).second) {
      return Status::InvalidArgument("dataset '" + name +
                                     "' is already registered");
    }
    return Status::OK();
  });
}

Status PebbleServer::SwapDataset(
    const std::string& name, ServedDataset dataset,
    std::shared_ptr<const ReplicaFreshness> freshness) {
  if (dataset.store == nullptr) {
    return Status::InvalidArgument("ServedDataset '" + name +
                                   "' has no provenance store");
  }
  auto entry = std::make_shared<ServedEntry>();
  entry->dataset = std::move(dataset);
  entry->generation =
      catalog_generation_.fetch_add(1, std::memory_order_relaxed) + 1;
  entry->freshness = std::move(freshness);
  Status swapped = MutateCatalog([&](Catalog* catalog) -> Status {
    (*catalog)[name] = std::move(entry);
    return Status::OK();
  });
  if (swapped.ok()) {
    counters_.catalog_swaps.fetch_add(1, std::memory_order_relaxed);
  }
  return swapped;
}

Status PebbleServer::UnregisterDataset(const std::string& name) {
  return MutateCatalog([&](Catalog* catalog) -> Status {
    if (catalog->erase(name) == 0) {
      return Status::KeyError("dataset '" + name + "' is not registered");
    }
    return Status::OK();
  });
}

uint64_t PebbleServer::DatasetGeneration(const std::string& name) const {
  auto catalog = SnapshotCatalog();
  auto it = catalog->find(name);
  return it == catalog->end() ? 0 : it->second->generation;
}

void PebbleServer::SetStatsExtension(
    std::function<std::string()> extension) {
  std::lock_guard<std::mutex> lock(stats_extension_mu_);
  stats_extension_ = std::move(extension);
}

void PebbleServer::SetTenantQuota(const std::string& tenant,
                                  TenantQuota quota) {
  admission_.SetQuota(tenant, quota);
}

Status PebbleServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  PEBBLE_ASSIGN_OR_RETURN(listen_fd_, net::ListenTcp(options_.port));
  PEBBLE_ASSIGN_OR_RETURN(port_, net::LocalPort(listen_fd_.get()));
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  handler_threads_.reserve(options_.handlers);
  for (int i = 0; i < options_.handlers; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  worker_threads_.reserve(options_.workers);
  for (int i = 0; i < options_.workers; ++i) {
    worker_threads_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void PebbleServer::BeginDrain() {
  draining_.store(true, std::memory_order_relaxed);
  stop_io_.store(true, std::memory_order_relaxed);
}

void PebbleServer::Shutdown(int grace_ms) {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (!started_ || joined_) return;
  BeginDrain();

  // After the grace period a stuck governed query is hard-cancelled so it
  // degrades to a partial answer and its worker can exit.
  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog([&] {
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(grace_ms);
    while (!watchdog_stop.load(std::memory_order_relaxed)) {
      if (std::chrono::steady_clock::now() >= give_up) {
        hard_cancel_.Cancel("server shutdown grace period expired");
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  if (accept_thread_.joinable()) accept_thread_.join();
  // Handlers drain remaining accepted connections (each gets a prompt
  // drain shed because draining_ is set), then exit on queue close.
  pending_conns_.Close();
  for (std::thread& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  // Workers finish every admitted job (Pop drains after Close) so every
  // promise a handler is waiting on is fulfilled before workers exit.
  queue_.Close();
  for (std::thread& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  watchdog_stop.store(true, std::memory_order_relaxed);
  if (watchdog.joinable()) watchdog.join();
  listen_fd_.reset();
  joined_ = true;
}

void PebbleServer::AcceptLoop() {
  uint64_t accept_seq = 0;
  while (!stop_io_.load(std::memory_order_relaxed)) {
    Result<net::UniqueFd> accepted =
        net::AcceptTimeout(listen_fd_.get(), /*timeout_ms=*/50, ++accept_seq);
    if (!accepted.ok()) {
      counters_.accept_faults.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    net::UniqueFd fd = std::move(accepted).ValueOrDie();
    if (!fd.valid()) continue;  // timeout tick; re-check the stop flag
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    size_t depth = 0;
    if (!pending_conns_.TryPush(std::move(fd), &depth)) {
      // fd was not consumed by the failed push; shed the connection with a
      // structured response rather than a silent close.
      counters_.connections_shed_overcap.fetch_add(1,
                                                   std::memory_order_relaxed);
      QueryResponse shed = ErrorResponse(
          StatusCode::kResourceExhausted,
          "connection capacity reached (" + std::to_string(depth) +
              " connections pending)");
      shed.retry_after_ms = 50;
      // Best effort with a short budget: a peer that cannot take the shed
      // response promptly is not worth an accept-loop stall. The peer's
      // version is unknown (no request was read), so answer in the oldest
      // layout — every version parses it.
      net::WriteFrame(fd.get(), EncodeResponse(shed, /*version=*/1),
                      /*timeout_ms=*/250)
          .ok();
    }
  }
}

void PebbleServer::HandlerLoop() {
  net::UniqueFd fd;
  while (pending_conns_.Pop(&fd)) {
    ServeConnection(std::move(fd),
                    next_conn_id_.fetch_add(1, std::memory_order_relaxed));
  }
}

void PebbleServer::ServeConnection(net::UniqueFd fd, uint64_t conn_id) {
  // The peer's protocol version, learned from its requests: responses are
  // encoded in this version so an older client can parse them ("answer in
  // kind"). Until a request decodes, assume the oldest layout — newer
  // clients tolerate it, older ones require it.
  uint32_t peer_version = 1;
  // Keep-alive: one connection carries many request/response exchanges.
  while (!stop_io_.load(std::memory_order_relaxed)) {
    std::string payload;
    const int frame_budget_ms =
        std::max(options_.idle_timeout_ms, options_.read_timeout_ms);
    Status read = net::ReadFrame(fd.get(), &payload, frame_budget_ms,
                                 &stop_io_, conn_id);
    if (!read.ok()) {
      switch (read.code()) {
        case StatusCode::kUnavailable:
          // Clean close between frames, or drain interrupted the idle
          // wait: the normal end of a connection.
          return;
        case StatusCode::kDeadlineExceeded:
          counters_.connections_reaped_idle.fetch_add(
              1, std::memory_order_relaxed);
          return;
        case StatusCode::kInvalidArgument: {
          // Protocol violation (oversized frame). Answer, then hang up:
          // the stream is not re-synchronizable.
          counters_.requests_received.fetch_add(1, std::memory_order_relaxed);
          counters_.bad_request.fetch_add(1, std::memory_order_relaxed);
          QueryResponse bad =
              ErrorResponse(StatusCode::kInvalidArgument, read.message());
          net::WriteFrame(fd.get(), EncodeResponse(bad, peer_version),
                          options_.write_timeout_ms, nullptr, conn_id)
              .ok();
          return;
        }
        default:
          counters_.connections_torn.fetch_add(1, std::memory_order_relaxed);
          return;
      }
    }

    // A replication subscribe hands the whole connection to the shipping
    // loop; it is a session, not a request (conservation counters see
    // nothing).
    if (!payload.empty() &&
        static_cast<uint8_t>(payload[0]) == kMsgReplSubscribe) {
      ServeReplication(fd.get(), payload, conn_id);
      return;
    }

    counters_.requests_received.fetch_add(1, std::memory_order_relaxed);
    QueryRequest request;
    QueryResponse response;
    Status decoded = DecodeRequest(payload, &request);
    if (!decoded.ok()) {
      counters_.bad_request.fetch_add(1, std::memory_order_relaxed);
      response = ErrorResponse(StatusCode::kInvalidArgument,
                               decoded.message());
    } else {
      peer_version = request.version;  // decode capped it at kWireVersion
      response = Dispatch(std::move(request));
    }

    // Responses are never interrupted by drain: an admitted request's
    // answer is delivered even while shutting down.
    Status written =
        net::WriteFrame(fd.get(), EncodeResponse(response, peer_version),
                        options_.write_timeout_ms, nullptr, conn_id);
    if (!written.ok()) {
      counters_.responses_write_failed.fetch_add(1,
                                                 std::memory_order_relaxed);
      counters_.connections_torn.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

void PebbleServer::ServeReplication(int fd,
                                    const std::string& subscribe_payload,
                                    uint64_t conn_id) {
  auto torn = [&] {
    counters_.repl_sessions_torn.fetch_add(1, std::memory_order_relaxed);
  };

  // Lockstep helper: one ship frame out, one ack frame back. The ack wait
  // is the backpressure: a slow follower stalls only this session's
  // handler thread. ship.write tears the connection mid-stream when
  // armed (keyed by the session's frame ordinal).
  uint64_t frame_ordinal = 0;
  auto ship_and_ack = [&](const ReplShip& ship) -> Status {
    const uint64_t key = frame_ordinal++;
    Status fault = FailpointRegistry::Global().Evaluate(
        failpoints::kShipWrite, key);
    if (!fault.ok()) {
      counters_.repl_ship_faults.fetch_add(1, std::memory_order_relaxed);
      return fault;
    }
    PEBBLE_RETURN_NOT_OK(net::WriteFrame(fd, EncodeReplShip(ship),
                                         options_.write_timeout_ms,
                                         &stop_io_, conn_id));
    counters_.repl_frames_shipped.fetch_add(1, std::memory_order_relaxed);
    counters_.repl_bytes_shipped.fetch_add(ship.bytes.size(),
                                           std::memory_order_relaxed);
    std::string payload;
    // The follower may do real work before acking (snapshot install,
    // store publish), so the ack budget is the idle timeout, not the
    // per-read one.
    const int ack_budget_ms =
        std::max(options_.read_timeout_ms, options_.idle_timeout_ms);
    PEBBLE_RETURN_NOT_OK(
        net::ReadFrame(fd, &payload, ack_budget_ms, &stop_io_, conn_id));
    ReplAck ack;
    PEBBLE_RETURN_NOT_OK(DecodeReplAck(payload, &ack));
    if (!ack.ok) {
      return Status::IOError("follower aborted the session: " + ack.note);
    }
    return Status::OK();
  };

  auto send_reset = [&](const std::string& why) {
    counters_.repl_resets.fetch_add(1, std::memory_order_relaxed);
    ReplShip reset;
    reset.kind = ShipKind::kReset;
    reset.note = why;
    // The session ends after a reset either way; the ack is best-effort
    // confirmation the follower saw it before we hang up.
    (void)ship_and_ack(reset);
  };

  ReplSubscribe sub;
  Status decoded = DecodeReplSubscribe(subscribe_payload, &sub);
  std::string deny_reason;
  if (!decoded.ok()) {
    deny_reason = "bad subscribe: " + decoded.message();
  } else if (options_.ship_wal_dir.empty()) {
    deny_reason = "this server ships no WAL";
  } else if (sub.stream != options_.ship_stream) {
    deny_reason = "unknown WAL stream '" + sub.stream + "' (this server ships '" +
                  options_.ship_stream + "')";
  }
  if (!deny_reason.empty()) {
    counters_.repl_denied.fetch_add(1, std::memory_order_relaxed);
    ReplShip denied;
    denied.kind = ShipKind::kDenied;
    denied.note = deny_reason;
    (void)net::WriteFrame(fd, EncodeReplShip(denied),
                          options_.write_timeout_ms, &stop_io_, conn_id);
    return;
  }
  counters_.repl_subscriptions.fetch_add(1, std::memory_order_relaxed);

  const std::string& dir = options_.ship_wal_dir;
  auto in_dir = [&](const std::string& name) {
    if (dir.empty() || dir.back() == '/') return dir + name;
    return dir + "/" + name;
  };

  auto state_or = ReadWalShipState(dir);
  if (!state_or.ok()) {
    torn();
    return;  // transient local trouble; the follower resubscribes
  }
  WalShipState state = std::move(state_or).value();

  // Validate the follower's claimed position and pick the resume point.
  uint64_t seq = 0;
  uint64_t offset = 0;
  bool bootstrap = false;
  if (sub.seq == 0) {
    if (sub.covered_seq == 0) {
      // Fresh follower: bootstrap from the snapshot when history below
      // covered_seq no longer exists as segments.
      if (state.covered_seq > 0) {
        bootstrap = true;
      } else {
        seq = 1;
      }
    } else if (sub.covered_seq == state.covered_seq) {
      seq = sub.covered_seq + 1;  // snapshot-only follower, tail segments next
    } else {
      send_reset("snapshot coverage diverged: follower covered " +
                 std::to_string(sub.covered_seq) + ", primary covered " +
                 std::to_string(state.covered_seq));
      return;
    }
  } else {
    if (sub.seq <= state.covered_seq) {
      send_reset("follower position segment " + std::to_string(sub.seq) +
                 " was compacted away (primary covered " +
                 std::to_string(state.covered_seq) + ")");
      return;
    }
    auto it = state.segments.find(sub.seq);
    if (it == state.segments.end()) {
      send_reset("segment " + std::to_string(sub.seq) +
                 " does not exist on the primary");
      return;
    }
    std::error_code ec;
    const uint64_t size = std::filesystem::file_size(it->second, ec);
    if (ec) {
      torn();
      return;
    }
    if (sub.offset > size) {
      // The classic torn-tail shipping case: the follower holds bytes the
      // primary truncated on restart. Structural degradation: full resync.
      send_reset("follower holds " + std::to_string(sub.offset) +
                 " bytes of segment " + std::to_string(sub.seq) +
                 " but the primary truncated it to " + std::to_string(size));
      return;
    }
    if (sub.offset > 0) {
      // Same-length prefixes can still diverge (header-torn segments get
      // their sequence number reused by a restarting primary).
      auto crc_or = Crc32FilePrefix(it->second, sub.offset);
      if (!crc_or.ok()) {
        torn();
        return;
      }
      if (*crc_or != sub.prefix_crc) {
        send_reset("segment " + std::to_string(sub.seq) +
                   " content diverged in the first " +
                   std::to_string(sub.offset) + " bytes");
        return;
      }
    }
    seq = sub.seq;
    offset = sub.offset;
  }

  // Snapshot bootstrap: ship the manifest-named snapshot file, then
  // continue with segments above its coverage.
  if (bootstrap) {
    if (state.snapshot_file.empty()) {
      send_reset("primary manifest covers " +
                 std::to_string(state.covered_seq) + " but names no snapshot");
      return;
    }
    const std::string snap_path = in_dir(state.snapshot_file);
    std::error_code ec;
    const uint64_t snap_size = std::filesystem::file_size(snap_path, ec);
    if (ec) {
      torn();  // compaction may have replaced it; follower retries
      return;
    }
    ReplShip begin;
    begin.kind = ShipKind::kSnapshotBegin;
    begin.seq = state.covered_seq;
    begin.primary_size = snap_size;
    begin.note = state.snapshot_file;
    if (!ship_and_ack(begin).ok()) {
      torn();
      return;
    }
    uint64_t snap_off = 0;
    while (snap_off < snap_size) {
      if (stop_io_.load(std::memory_order_relaxed)) return;
      const size_t want = static_cast<size_t>(std::min<uint64_t>(
          options_.ship_chunk_bytes, snap_size - snap_off));
      Status fault = FailpointRegistry::Global().Evaluate(
          failpoints::kShipRead, frame_ordinal);
      if (!fault.ok()) {
        counters_.repl_ship_faults.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      ReplShip chunk;
      chunk.kind = ShipKind::kSnapshotChunk;
      chunk.seq = state.covered_seq;
      chunk.offset = snap_off;
      if (!ReadFileRange(snap_path, snap_off, want, &chunk.bytes).ok() ||
          chunk.bytes.size() != want) {
        torn();
        return;
      }
      if (!ship_and_ack(chunk).ok()) {
        torn();
        return;
      }
      counters_.repl_snapshot_chunks.fetch_add(1, std::memory_order_relaxed);
      snap_off += want;
    }
    ReplShip commit;
    commit.kind = ShipKind::kSnapshotCommit;
    commit.seq = state.covered_seq;
    if (!ship_and_ack(commit).ok()) {
      torn();
      return;
    }
    seq = state.covered_seq + 1;
    offset = 0;
  }

  // Main shipping loop: stream segment bytes in file order, heartbeat
  // while caught up. State is re-read every iteration so concurrent
  // writer rotation and compaction are observed promptly.
  auto last_heartbeat = std::chrono::steady_clock::now() -
                        std::chrono::milliseconds(options_.ship_heartbeat_ms);
  while (!stop_io_.load(std::memory_order_relaxed)) {
    state_or = ReadWalShipState(dir);
    if (!state_or.ok()) {
      torn();
      return;
    }
    state = std::move(state_or).value();
    if (seq <= state.covered_seq) {
      // Compaction folded the segment we were shipping; its file is gone.
      send_reset("segment " + std::to_string(seq) +
                 " was compacted mid-session");
      return;
    }
    const uint64_t max_present =
        state.segments.empty() ? 0 : state.segments.rbegin()->first;

    auto it = state.segments.find(seq);
    bool caught_up = false;
    if (it == state.segments.end()) {
      // The next segment does not exist yet (idle primary or a crash
      // between seal and successor creation): we are at the tail.
      caught_up = true;
    } else {
      std::error_code ec;
      const uint64_t size = std::filesystem::file_size(it->second, ec);
      if (ec) {
        torn();  // vanished between listing and stat (compaction race)
        return;
      }
      if (offset > size) {
        send_reset("segment " + std::to_string(seq) +
                   " shrank under the session");
        return;
      }
      if (offset < size) {
        const size_t want = static_cast<size_t>(
            std::min<uint64_t>(options_.ship_chunk_bytes, size - offset));
        Status fault = FailpointRegistry::Global().Evaluate(
            failpoints::kShipRead, frame_ordinal);
        if (!fault.ok()) {
          counters_.repl_ship_faults.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        ReplShip data;
        data.kind = ShipKind::kData;
        data.seq = seq;
        data.offset = offset;
        if (!ReadFileRange(it->second, offset, want, &data.bytes).ok() ||
            data.bytes.size() != want) {
          torn();
          return;
        }
        data.sealed = seq < max_present && offset + want == size;
        data.primary_seq = max_present;
        if (seq == max_present) {
          data.primary_size = size;
        } else {
          std::error_code tail_ec;
          data.primary_size = std::filesystem::file_size(
              state.segments.rbegin()->second, tail_ec);
          if (tail_ec) data.primary_size = 0;
        }
        if (!ship_and_ack(data).ok()) {
          torn();
          return;
        }
        offset += want;
        continue;
      }
      // offset == size: this segment is fully shipped.
      if (seq < max_present) {
        ++seq;
        offset = 0;
        continue;
      }
      caught_up = true;
    }

    if (caught_up) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_heartbeat >=
          std::chrono::milliseconds(options_.ship_heartbeat_ms)) {
        ReplShip hb;
        hb.kind = ShipKind::kHeartbeat;
        hb.seq = seq;
        hb.offset = offset;
        // Caught up means "the shipped position IS the primary tail".
        hb.primary_seq = seq;
        hb.primary_size = offset;
        if (!ship_and_ack(hb).ok()) {
          torn();
          return;
        }
        last_heartbeat = now;
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.ship_poll_ms));
    }
  }
}

QueryResponse PebbleServer::Dispatch(QueryRequest request) {
  const auto received_at = std::chrono::steady_clock::now();
  if (draining_.load(std::memory_order_relaxed)) {
    counters_.shed_draining.fetch_add(1, std::memory_order_relaxed);
    QueryResponse resp = ErrorResponse(StatusCode::kUnavailable,
                                       "server is draining; retry elsewhere");
    resp.retry_after_ms = 100;
    return resp;
  }
  if (request.version == 0 || request.version > kWireVersion) {
    counters_.bad_request.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(StatusCode::kInvalidArgument,
                         "unsupported protocol version " +
                             std::to_string(request.version));
  }

  uint32_t retry_after_ms = 0;
  Status admit = admission_.Admit(request.tenant, &retry_after_ms);
  if (!admit.ok()) {
    counters_.shed_rate_limit.fetch_add(1, std::memory_order_relaxed);
    QueryResponse resp = ErrorResponse(admit.code(), admit.message());
    resp.retry_after_ms = retry_after_ms;
    resp.queue_depth = static_cast<uint32_t>(queue_.depth());
    return resp;
  }

  const uint64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  Status enqueue_fault =
      FailpointRegistry::Global().Evaluate(failpoints::kServerEnqueue, id);
  if (!enqueue_fault.ok()) {
    counters_.shed_enqueue_fault.fetch_add(1, std::memory_order_relaxed);
    QueryResponse resp =
        ErrorResponse(enqueue_fault.code(), enqueue_fault.message());
    resp.retry_after_ms = 20;
    resp.queue_depth = static_cast<uint32_t>(queue_.depth());
    return resp;
  }

  uint32_t deadline_ms = request.deadline_ms == 0
                             ? options_.default_deadline_ms
                             : request.deadline_ms;
  deadline_ms = std::min(deadline_ms, options_.max_deadline_ms);

  auto job = std::make_unique<Job>();
  job->request = std::move(request);
  job->enqueued_at = received_at;
  job->deadline = received_at + std::chrono::milliseconds(deadline_ms);
  job->id = id;
  std::future<QueryResponse> answer = job->promise.get_future();

  size_t depth = 0;
  if (!queue_.TryPush(std::move(job), &depth)) {
    if (draining_.load(std::memory_order_relaxed)) {
      counters_.shed_draining.fetch_add(1, std::memory_order_relaxed);
      QueryResponse resp = ErrorResponse(StatusCode::kUnavailable,
                                         "server is draining");
      resp.retry_after_ms = 100;
      resp.queue_depth = static_cast<uint32_t>(depth);
      return resp;
    }
    counters_.shed_queue_full.fetch_add(1, std::memory_order_relaxed);
    QueryResponse resp = ErrorResponse(
        StatusCode::kResourceExhausted,
        "admission queue full at depth " + std::to_string(depth) + "/" +
            std::to_string(queue_.capacity()));
    resp.retry_after_ms = 20;
    resp.queue_depth = static_cast<uint32_t>(depth);
    return resp;
  }
  counters_.admitted.fetch_add(1, std::memory_order_relaxed);

  // The worker pool fulfills every pushed job's promise (Pop drains after
  // Close), so this wait always finishes.
  return answer.get();
}

void PebbleServer::WorkerLoop() {
  std::unique_ptr<Job> job;
  while (queue_.Pop(&job)) {
    QueryResponse response = Execute(*job);
    response.server_us = ElapsedUs(job->enqueued_at);
    response.queue_depth = static_cast<uint32_t>(queue_.depth());
    job->promise.set_value(std::move(response));
    job.reset();
  }
}

QueryResponse PebbleServer::Execute(const Job& job) {
  const auto now = std::chrono::steady_clock::now();
  if (now >= job.deadline) {
    counters_.deadline_before_start.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(StatusCode::kDeadlineExceeded,
                         "deadline expired while queued");
  }

  // Per-request governance mapped onto BacktraceOptions: the remaining
  // deadline budget, the server's hard-cancel token (trips on shutdown
  // grace expiry), and count caps from the request or server defaults.
  // A memory budget is translated into a visited-node cap at a fixed
  // per-entry charge.
  BacktraceOptions options;
  const int64_t remaining_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(job.deadline -
                                                            now)
          .count();
  options.deadline = Deadline::AfterMillis(remaining_ms);
  options.cancel = hard_cancel_.token();
  uint64_t max_visited = job.request.max_visited_nodes != 0
                             ? job.request.max_visited_nodes
                             : options_.default_max_visited_nodes;
  if (job.request.memory_budget_bytes != 0) {
    const uint64_t budget_cap = std::max<uint64_t>(
        1, job.request.memory_budget_bytes / options_.bytes_per_visited_node);
    max_visited = max_visited == 0 ? budget_cap
                                   : std::min(max_visited, budget_cap);
  }
  options.max_visited_nodes = static_cast<int64_t>(max_visited);
  options.max_results = static_cast<int64_t>(job.request.max_results);

  QueryResponse response;
  switch (job.request.op) {
    case RequestOp::kPing:
      response.answer = "pong";
      break;
    case RequestOp::kStats: {
      response.answer =
          RenderServerStats(stats(), tenant_admission_stats());
      std::function<std::string()> extension;
      {
        std::lock_guard<std::mutex> lock(stats_extension_mu_);
        extension = stats_extension_;
      }
      if (extension) response.answer += extension();
      break;
    }
    case RequestOp::kSleep: {
      // Synthetic work: sleep in short slices so deadline expiry and the
      // shutdown hard-cancel are observed promptly.
      const auto sleep_until =
          now + std::chrono::milliseconds(job.request.sleep_ms);
      bool cut_short = false;
      while (std::chrono::steady_clock::now() < sleep_until) {
        if (hard_cancel_.IsCancelled()) {
          response = ErrorResponse(StatusCode::kCancelled,
                                   "synthetic work cancelled: " +
                                       hard_cancel_.token().reason());
          break;
        }
        if (std::chrono::steady_clock::now() >= job.deadline) {
          cut_short = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      if (response.code == StatusCode::kOk && cut_short) {
        response.truncated = true;
        response.truncation_detail = "sleep cut short by deadline";
      }
      break;
    }
    case RequestOp::kQuery: {
      // The tenant is ambient for the duration of execution so the answer
      // cache charges (and serves) this tenant's shard.
      QueryAnswerCache::ScopedTenant tenant_scope(job.request.tenant);
      response = ExecuteQuery(job, options);
      break;
    }
  }

  if (response.code == StatusCode::kOk) {
    counters_.completed_ok.fetch_add(1, std::memory_order_relaxed);
    if (response.truncated) {
      counters_.completed_truncated.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    counters_.completed_error.fetch_add(1, std::memory_order_relaxed);
  }
  return response;
}

QueryResponse PebbleServer::ExecuteQuery(const Job& job,
                                         const BacktraceOptions& options) {
  // Pin the entry for the whole query: a concurrent swap/unregister
  // replaces the catalog root, but this shared_ptr keeps the store,
  // output and index alive and internally consistent until we return.
  std::shared_ptr<const ServedEntry> entry;
  {
    auto catalog = SnapshotCatalog();
    auto it = catalog->find(job.request.target);
    if (it == catalog->end()) {
      return ErrorResponse(StatusCode::kKeyError,
                           "no dataset '" + job.request.target +
                               "' is served");
    }
    entry = it->second;
  }

  // Bounded-staleness gate for replica-published entries: never answer
  // from a store that is not synced or has aged past its bound — shed
  // structurally instead so the client retries (here or on the primary).
  uint32_t staleness_ms = 0;
  if (entry->freshness != nullptr) {
    const ReplicaFreshness& fresh = *entry->freshness;
    const uint32_t bound =
        fresh.max_staleness_ms.load(std::memory_order_relaxed);
    staleness_ms = fresh.StalenessMs();
    if (!fresh.synced.load(std::memory_order_acquire)) {
      counters_.stale_reads_shed.fetch_add(1, std::memory_order_relaxed);
      QueryResponse resp = ErrorResponse(
          StatusCode::kUnavailable,
          "replica for '" + job.request.target +
              "' has not caught up with its primary yet");
      resp.retry_after_ms = 100;
      resp.from_replica = true;
      return resp;
    }
    if (staleness_ms > bound) {
      counters_.stale_reads_shed.fetch_add(1, std::memory_order_relaxed);
      QueryResponse resp = ErrorResponse(
          StatusCode::kUnavailable,
          "replica for '" + job.request.target + "' is " +
              std::to_string(staleness_ms) + "ms stale (bound " +
              std::to_string(bound) + "ms); primary likely unreachable");
      resp.retry_after_ms = std::max(100u, bound / 2);
      resp.from_replica = true;
      resp.staleness_ms = staleness_ms;
      return resp;
    }
  }

  Result<TreePattern> pattern = TreePattern::Parse(job.request.pattern);
  if (!pattern.ok()) {
    return ErrorResponse(pattern.status().code(),
                         pattern.status().message());
  }

  const ServedDataset& served = entry->dataset;
  Result<ProvenanceQueryResult> outcome = QueryStructuralProvenanceOffline(
      served.output, *served.store, *pattern, options,
      options_.match_threads, served.index.get());
  if (!outcome.ok()) {
    return ErrorResponse(outcome.status().code(), outcome.status().message());
  }

  const ProvenanceQueryResult& result = *outcome;
  QueryResponse response;
  response.matched = result.matched.size();
  response.truncated = result.truncation.truncated;
  if (result.truncation.truncated) {
    response.truncation_detail =
        std::string(TruncationReasonToString(result.truncation.reason)) +
        ": " + result.truncation.detail + " (visited " +
        std::to_string(result.truncation.visited_nodes) + ", traced " +
        std::to_string(result.truncation.seed_entries_traced) + "/" +
        std::to_string(result.truncation.seed_entries_total) + " seeds)";
  }
  response.match_us = static_cast<uint64_t>(result.match_ms * 1000.0);
  response.backtrace_us =
      static_cast<uint64_t>(result.backtrace_ms * 1000.0);

  std::string answer;
  for (const SourceProvenance& source : result.sources) {
    if (answer.size() >= options_.max_answer_bytes) {
      answer += "... [answer truncated at " +
                std::to_string(options_.max_answer_bytes) + " bytes]\n";
      break;
    }
    answer += SourceProvenanceToString(source);
  }
  if (answer.size() > options_.max_answer_bytes) {
    answer.resize(options_.max_answer_bytes);
    answer += "\n... [answer truncated at " +
              std::to_string(options_.max_answer_bytes) + " bytes]\n";
  }
  response.answer = std::move(answer);
  response.store_generation = entry->generation;
  if (entry->freshness != nullptr) {
    response.from_replica = true;
    response.staleness_ms = staleness_ms;
    // From the pinned entry, not the shared freshness atomics: a publish
    // racing this query must not stamp the answer with a position the
    // pinned store does not reflect.
    response.applied_seq = entry->dataset.applied_seq;
    response.applied_offset = entry->dataset.applied_offset;
  }
  return response;
}

ServerStats PebbleServer::stats() const {
  ServerStats s;
  s.connections_accepted =
      counters_.connections_accepted.load(std::memory_order_relaxed);
  s.connections_shed_overcap =
      counters_.connections_shed_overcap.load(std::memory_order_relaxed);
  s.connections_reaped_idle =
      counters_.connections_reaped_idle.load(std::memory_order_relaxed);
  s.connections_torn =
      counters_.connections_torn.load(std::memory_order_relaxed);
  s.accept_faults = counters_.accept_faults.load(std::memory_order_relaxed);
  s.requests_received =
      counters_.requests_received.load(std::memory_order_relaxed);
  s.bad_request = counters_.bad_request.load(std::memory_order_relaxed);
  s.admitted = counters_.admitted.load(std::memory_order_relaxed);
  s.shed_rate_limit =
      counters_.shed_rate_limit.load(std::memory_order_relaxed);
  s.shed_queue_full =
      counters_.shed_queue_full.load(std::memory_order_relaxed);
  s.shed_enqueue_fault =
      counters_.shed_enqueue_fault.load(std::memory_order_relaxed);
  s.shed_draining = counters_.shed_draining.load(std::memory_order_relaxed);
  s.completed_ok = counters_.completed_ok.load(std::memory_order_relaxed);
  s.completed_truncated =
      counters_.completed_truncated.load(std::memory_order_relaxed);
  s.completed_error =
      counters_.completed_error.load(std::memory_order_relaxed);
  s.deadline_before_start =
      counters_.deadline_before_start.load(std::memory_order_relaxed);
  s.responses_write_failed =
      counters_.responses_write_failed.load(std::memory_order_relaxed);
  s.queue_max_depth = queue_.max_depth();
  s.queue_capacity = queue_.capacity();
  s.repl_subscriptions =
      counters_.repl_subscriptions.load(std::memory_order_relaxed);
  s.repl_frames_shipped =
      counters_.repl_frames_shipped.load(std::memory_order_relaxed);
  s.repl_bytes_shipped =
      counters_.repl_bytes_shipped.load(std::memory_order_relaxed);
  s.repl_snapshot_chunks =
      counters_.repl_snapshot_chunks.load(std::memory_order_relaxed);
  s.repl_resets = counters_.repl_resets.load(std::memory_order_relaxed);
  s.repl_denied = counters_.repl_denied.load(std::memory_order_relaxed);
  s.repl_ship_faults =
      counters_.repl_ship_faults.load(std::memory_order_relaxed);
  s.repl_sessions_torn =
      counters_.repl_sessions_torn.load(std::memory_order_relaxed);
  s.catalog_swaps = counters_.catalog_swaps.load(std::memory_order_relaxed);
  s.stale_reads_shed =
      counters_.stale_reads_shed.load(std::memory_order_relaxed);
  return s;
}

std::string RenderServerStats(
    const ServerStats& stats,
    const std::map<std::string, TenantAdmissionStats>& tenants) {
  std::ostringstream out;
  out << "server:\n"
      << "  connections_accepted=" << stats.connections_accepted
      << " shed_overcap=" << stats.connections_shed_overcap
      << " reaped_idle=" << stats.connections_reaped_idle
      << " torn=" << stats.connections_torn
      << " accept_faults=" << stats.accept_faults << "\n"
      << "  requests_received=" << stats.requests_received
      << " bad_request=" << stats.bad_request
      << " admitted=" << stats.admitted << "\n"
      << "  shed: rate_limit=" << stats.shed_rate_limit
      << " queue_full=" << stats.shed_queue_full
      << " enqueue_fault=" << stats.shed_enqueue_fault
      << " draining=" << stats.shed_draining << "\n"
      << "  completed: ok=" << stats.completed_ok
      << " truncated=" << stats.completed_truncated
      << " error=" << stats.completed_error
      << " deadline_before_start=" << stats.deadline_before_start << "\n"
      << "  responses_write_failed=" << stats.responses_write_failed
      << " queue_max_depth=" << stats.queue_max_depth << "/"
      << stats.queue_capacity << "\n"
      << "  replication: subscriptions=" << stats.repl_subscriptions
      << " frames_shipped=" << stats.repl_frames_shipped
      << " bytes_shipped=" << stats.repl_bytes_shipped
      << " snapshot_chunks=" << stats.repl_snapshot_chunks << "\n"
      << "    resets=" << stats.repl_resets
      << " denied=" << stats.repl_denied
      << " ship_faults=" << stats.repl_ship_faults
      << " sessions_torn=" << stats.repl_sessions_torn << "\n"
      << "  catalog_swaps=" << stats.catalog_swaps
      << " stale_reads_shed=" << stats.stale_reads_shed << "\n";
  out << "tenants:\n";
  for (const auto& [tenant, t] : tenants) {
    out << "  '" << (tenant.empty() ? "<default>" : tenant)
        << "': admitted=" << t.admitted << " shed=" << t.shed;
    const QueryCacheStats cache =
        QueryAnswerCache::Instance().tenant_stats(tenant);
    out << " cache_hits=" << cache.hits << " cache_misses=" << cache.misses
        << " cache_bytes=" << cache.bytes << "\n";
  }
  return out.str();
}

}  // namespace pebble::server
