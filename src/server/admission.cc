#include "server/admission.h"

#include <algorithm>
#include <cmath>

namespace pebble::server {

void AdmissionController::SetQuota(const std::string& tenant,
                                   TenantQuota quota) {
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& bucket = buckets_[tenant];
  bucket.quota = quota;
  bucket.tokens = std::max(1.0, quota.burst);
  bucket.refilled_at = std::chrono::steady_clock::now();
}

Status AdmissionController::Admit(const std::string& tenant,
                                  uint32_t* retry_after_ms) {
  *retry_after_ms = 0;
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    Bucket fresh;
    fresh.quota = default_quota_;
    fresh.tokens = std::max(1.0, fresh.quota.burst);
    fresh.refilled_at = now;
    it = buckets_.emplace(tenant, std::move(fresh)).first;
  }
  Bucket& bucket = it->second;
  if (bucket.quota.rate_per_sec <= 0) {
    ++bucket.stats.admitted;
    return Status::OK();
  }
  const double burst = std::max(1.0, bucket.quota.burst);
  const double elapsed_sec =
      std::chrono::duration<double>(now - bucket.refilled_at).count();
  bucket.tokens = std::min(
      burst, bucket.tokens + elapsed_sec * bucket.quota.rate_per_sec);
  bucket.refilled_at = now;
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    ++bucket.stats.admitted;
    return Status::OK();
  }
  ++bucket.stats.shed;
  const double deficit = 1.0 - bucket.tokens;
  const double wait_ms = deficit / bucket.quota.rate_per_sec * 1000.0;
  *retry_after_ms =
      static_cast<uint32_t>(std::max(1.0, std::ceil(wait_ms)));
  return Status::ResourceExhausted(
      "tenant '" + (tenant.empty() ? std::string("<default>") : tenant) +
      "' over admission rate (" +
      std::to_string(bucket.quota.rate_per_sec) + "/s, burst " +
      std::to_string(burst) + "); retry in " +
      std::to_string(*retry_after_ms) + " ms");
}

std::map<std::string, TenantAdmissionStats> AdmissionController::TenantStats()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, TenantAdmissionStats> out;
  for (const auto& [tenant, bucket] : buckets_) {
    out[tenant] = bucket.stats;
  }
  return out;
}

}  // namespace pebble::server
