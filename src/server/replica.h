// Replication follower daemon (DESIGN.md §14): maintains a live local copy
// of a primary pebbled's provenance WAL by subscribing over the framed
// socket protocol, tail-applies shipped bytes into a live store
// (WalTailApplier), and serves bounded-staleness reads through its own
// embedded PebbleServer.
//
// Lifecycle of one follower:
//
//   Start() ──> local RecoverStore (torn-tail repair, wipe-and-retry)
//          ──> register <dataset_name> gated by a ReplicaFreshness
//          ──> replication thread: connect -> subscribe -> apply loop
//                          │ disconnect / reset / deny
//                          v
//              reconnect with exponential backoff + jitter
//
// Every shipped byte lands in the follower's local WAL file *before* it is
// applied, so the follower's own crash-and-restart runs the exact recovery
// code path a primary does: truncate the torn tail, replay, resubscribe
// from the surviving position. A kReset from the primary (divergence,
// compaction) drops the freshness gate to unsynced *before* wiping the
// local copy and resubscribing from scratch — reads are shed from that
// instant until the rebuilt store provably reaches the primary's tail
// again, so a resync degrades reads structurally (kUnavailable +
// retry-after), never silently to a wrong answer from the wiped or
// regressed store. The wipe-and-retry recovery path (an unreadable local
// copy) drops the gate the same way.
//
// Publishing: the live applier store is deep-copied (Snapshot) and
// hot-swapped into the serving catalog at run boundaries, on catching up
// to the primary's tail, and on heartbeats that find unpublished progress.
// Freshness (synced + fresh_at) is marked only when the *published* store
// provably equals the primary's tail — the lockstep protocol makes a
// received heartbeat exactly that proof.

#ifndef PEBBLE_SERVER_REPLICA_H_
#define PEBBLE_SERVER_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/rng.h"
#include "common/status.h"
#include "engine/dataset.h"
#include "server/server.h"

namespace pebble {
class WalTailApplier;
}

namespace pebble::server {

struct ReplicaOptions {
  /// Primary pebbled to subscribe to.
  std::string primary_host = "127.0.0.1";
  uint16_t primary_port = 0;
  /// WAL stream identity (must match the primary's ship_stream).
  std::string stream = "default";
  /// Directory of the follower's local WAL copy (created if missing).
  std::string wal_dir;
  /// Catalog name the replicated store is served under.
  std::string dataset_name;
  /// Retained output dataset to serve alongside the store. The WAL carries
  /// provenance only; outputs travel out-of-band (the deterministic
  /// pipeline re-run, an object store, ...).
  Dataset output;
  /// Serving bound: reads staler than this are shed (ReplicaFreshness).
  uint32_t max_staleness_ms = 5000;
  /// Conservatism subtracted from the freshness clock whenever tail
  /// equality is proven: the primary sampled its tail up to one
  /// ship_poll_ms plus one lockstep round-trip before the proof arrived
  /// here, so the advertised staleness must absorb that slack to stay a
  /// true upper bound. Set to at least the primary's ship_poll_ms plus a
  /// round-trip.
  uint32_t freshness_slack_ms = 50;
  /// The follower's own serving endpoint.
  ServerOptions server;
  /// Replication-session IO budgets and reconnect policy.
  int connect_timeout_ms = 2000;
  int io_timeout_ms = 5000;
  int reconnect_initial_ms = 20;
  int reconnect_max_ms = 1000;
  /// Seed for reconnect jitter (deterministic per daemon).
  uint64_t jitter_seed = 1;
  /// fsync the local WAL copy at seal/commit points. A crash then loses at
  /// most the active segment's OS-buffered tail, which recovery treats as
  /// a torn tail and the next session re-ships.
  bool sync = true;
};

/// Monotonic counters of one follower's lifetime.
struct ReplicaStats {
  uint64_t connects = 0;
  uint64_t connect_failures = 0;
  uint64_t sessions_torn = 0;  // IO/decode/apply failures mid-session
  uint64_t denied = 0;         // kDenied frames received
  uint64_t resets = 0;         // kReset frames honored (local wipe)
  uint64_t frames_applied = 0;
  uint64_t bytes_applied = 0;
  uint64_t snapshots_bootstrapped = 0;
  uint64_t publishes = 0;       // successful hot swaps into the catalog
  uint64_t publish_skips = 0;   // replica.swap failpoint fires
  uint64_t apply_faults = 0;    // replica.apply failpoint fires
};

class ReplicaDaemon {
 public:
  explicit ReplicaDaemon(ReplicaOptions options);
  ~ReplicaDaemon();

  ReplicaDaemon(const ReplicaDaemon&) = delete;
  ReplicaDaemon& operator=(const ReplicaDaemon&) = delete;

  /// Recovers the local WAL copy, registers the (gated) dataset, starts
  /// the embedded server and the replication thread.
  Status Start();

  /// Stops the replication thread and shuts the embedded server down.
  /// Idempotent; the local WAL copy stays on disk for the next Start.
  void Shutdown();

  /// Blocks until the published store is synced with the primary's tail
  /// (first heartbeat after catch-up) or `timeout_ms` elapses.
  bool WaitUntilSynced(int timeout_ms);

  /// The follower's serving port (valid after Start()).
  uint16_t port() const { return server_ ? server_->port() : 0; }
  /// The embedded server (valid after Start()), e.g. for stats.
  PebbleServer& server() { return *server_; }
  /// The freshness gate shared with the serving catalog entry.
  const ReplicaFreshness& freshness() const { return *freshness_; }

  ReplicaStats stats() const;

 private:
  struct SessionResult {
    bool connected = false;  // the subscribe reached a primary
    bool progressed = false; // at least one frame was applied/heartbeat
    bool denied = false;     // terminal refusal; back off long
    bool reset = false;      // local wipe done; resubscribe immediately
  };

  void ReplicationLoop();
  SessionResult RunSession();
  /// Deep-copies the applier's live store and hot-swaps it into the
  /// catalog (replica.swap failpoint = skip, delaying freshness only).
  Status Publish(WalTailApplier& applier);
  /// Marks the published store as potentially wrong (not merely stale):
  /// the gate sheds every read until tail equality is re-proven. Must run
  /// before any action that regresses the local copy (wipe, reset).
  void MarkUnsynced();
  /// Stamps the freshness clock "fresh as of slack ago" and sets synced.
  void MarkFresh();

  const ReplicaOptions options_;
  std::shared_ptr<ReplicaFreshness> freshness_;
  std::unique_ptr<PebbleServer> server_;

  std::thread repl_thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  // Identity (uid, generation) of the live store state last published, so
  // publish triggers are idempotent across heartbeats.
  uint64_t published_uid_ = 0;
  uint64_t published_generation_ = 0;
  bool published_any_ = false;
  uint64_t publish_ordinal_ = 0;  // replica.swap failpoint key
  uint64_t frame_ordinal_ = 0;    // replica.apply failpoint key
  Rng jitter_;

  mutable std::mutex stats_mu_;
  ReplicaStats stats_;
};

}  // namespace pebble::server

#endif  // PEBBLE_SERVER_REPLICA_H_
