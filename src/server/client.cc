#include "server/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "net/frame.h"

namespace pebble::server {

uint64_t RetryBaseDelayMs(uint32_t hinted_ms, uint32_t queue_depth,
                          int backoff_ms) {
  if (hinted_ms == 0) {
    return static_cast<uint64_t>(std::max(0, backoff_ms));
  }
  const uint64_t depth_factor =
      std::min<uint64_t>(8, 1 + queue_depth / 16);
  return static_cast<uint64_t>(hinted_ms) * depth_factor;
}

PebbleClient::PebbleClient(ClientOptions options)
    : options_(std::move(options)), jitter_(options_.jitter_seed) {}

Status PebbleClient::EnsureConnected() {
  if (fd_.valid()) return Status::OK();
  PEBBLE_ASSIGN_OR_RETURN(
      fd_, net::ConnectTcp(options_.host, options_.port,
                           options_.connect_timeout_ms));
  ++stats_.reconnects;
  return Status::OK();
}

void PebbleClient::Disconnect() { fd_.reset(); }

Status PebbleClient::Call(const QueryRequest& request,
                          QueryResponse* response) {
  ++stats_.calls;
  PEBBLE_RETURN_NOT_OK(EnsureConnected());
  Status sent = net::WriteFrame(fd_.get(), EncodeRequest(request),
                                options_.write_timeout_ms);
  if (!sent.ok()) {
    Disconnect();
    return sent.WithContext("sending request");
  }
  std::string payload;
  Status received =
      net::ReadFrame(fd_.get(), &payload, options_.read_timeout_ms);
  if (!received.ok()) {
    Disconnect();
    return received.WithContext("awaiting response");
  }
  Status decoded = DecodeResponse(payload, response);
  if (!decoded.ok()) {
    // The stream is desynchronized if we cannot parse what arrived.
    Disconnect();
    return decoded.WithContext("decoding response");
  }
  return Status::OK();
}

Status PebbleClient::CallWithRetry(const QueryRequest& request,
                                   QueryResponse* response) {
  const int max_attempts = std::max(1, options_.max_attempts);
  Status last = Status::OK();
  int backoff_ms = options_.backoff_initial_ms;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    uint32_t hinted_ms = 0;
    uint32_t queue_depth = 0;
    Status transport = Call(request, response);
    if (transport.ok()) {
      if (response->code != StatusCode::kResourceExhausted &&
          response->code != StatusCode::kUnavailable) {
        return Status::OK();  // delivered (possibly a semantic error)
      }
      // A structured shed carries a backoff hint from the server.
      ++stats_.sheds_seen;
      hinted_ms = response->retry_after_ms;
      queue_depth = response->queue_depth;
      last = response->ToStatus();
    } else if (transport.code() == StatusCode::kIOError ||
               transport.code() == StatusCode::kUnavailable ||
               transport.code() == StatusCode::kDeadlineExceeded) {
      last = transport;
    } else {
      return transport;  // non-retryable (e.g. kInvalidArgument)
    }
    if (attempt + 1 >= max_attempts) break;
    ++stats_.retries;
    // Exponential backoff with full jitter; when the server hinted a
    // retry-after it overrides the exponential schedule (the server knows
    // its refill rate better than we do), scaled by the observed queue
    // depth (RetryBaseDelayMs), plus jitter to decorrelate a thundering
    // herd of shed clients.
    const uint64_t base_ms =
        RetryBaseDelayMs(hinted_ms, queue_depth, backoff_ms);
    const uint64_t wait_ms = hinted_ms != 0
                                 ? base_ms + jitter_.NextBounded(base_ms + 1)
                                 : 1 + jitter_.NextBounded(base_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
    backoff_ms = std::min(backoff_ms * 2, options_.backoff_max_ms);
  }
  return last.ok()
             ? Status::Unavailable("retries exhausted")
             : last.WithContext("after " + std::to_string(max_attempts) +
                                " attempts");
}

Status PebbleClient::Ping() {
  QueryRequest request;
  request.op = RequestOp::kPing;
  QueryResponse response;
  PEBBLE_RETURN_NOT_OK(Call(request, &response));
  return response.ToStatus();
}

}  // namespace pebble::server
