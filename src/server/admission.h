// Per-tenant admission control and the bounded admission queue of the
// provenance query daemon (DESIGN.md §13).
//
// Two gates stand between a decoded request and a worker:
//
//   1. AdmissionController — a token bucket per tenant. Tokens refill at
//      `rate_per_sec` up to `burst`; a request takes one token or is shed
//      with kResourceExhausted carrying a retry-after hint computed from
//      the refill rate (the client library honors it). Rate 0 = unlimited.
//
//   2. BoundedQueue — a fixed-capacity FIFO feeding the worker pool. A
//      full queue sheds the request immediately with the observed depth;
//      it never blocks the connection thread, so a saturated server stays
//      responsive and its memory stays bounded.
//
// Shedding is always a structured response, never a dropped connection:
// overload is a first-class, observable server state.

#ifndef PEBBLE_SERVER_ADMISSION_H_
#define PEBBLE_SERVER_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace pebble::server {

/// Rate policy of one tenant. rate_per_sec == 0 disables rate limiting
/// (the bucket always admits).
struct TenantQuota {
  double rate_per_sec = 0;
  double burst = 1;
};

/// Admission counters of one tenant.
struct TenantAdmissionStats {
  uint64_t admitted = 0;
  uint64_t shed = 0;
};

/// Thread-safe per-tenant token buckets. Unknown tenants get the default
/// quota on first sight.
class AdmissionController {
 public:
  explicit AdmissionController(TenantQuota default_quota = {})
      : default_quota_(default_quota) {}

  /// Overrides the quota for one tenant (resets its bucket to full burst).
  void SetQuota(const std::string& tenant, TenantQuota quota);

  /// Takes one token for `tenant`. On shed returns kResourceExhausted
  /// naming the tenant, and sets `*retry_after_ms` to the time until a
  /// token will be available (>= 1).
  Status Admit(const std::string& tenant, uint32_t* retry_after_ms);

  std::map<std::string, TenantAdmissionStats> TenantStats() const;

 private:
  struct Bucket {
    TenantQuota quota;
    double tokens = 0;
    std::chrono::steady_clock::time_point refilled_at{};
    TenantAdmissionStats stats;
  };

  mutable std::mutex mu_;
  TenantQuota default_quota_;
  std::map<std::string, Bucket> buckets_;
};

/// Fixed-capacity MPMC FIFO with shed-on-full semantics and a high-water
/// mark. Close() stops new pushes; Pop drains remaining items and then
/// returns false, so a draining server finishes every admitted request.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// Enqueues, or returns false when full/closed. `*depth_out` reports the
  /// depth that caused a shed (== capacity) or the depth after the push.
  bool TryPush(T&& item, size_t* depth_out) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) {
      *depth_out = items_.size();
      return false;
    }
    items_.push_back(std::move(item));
    *depth_out = items_.size();
    if (items_.size() > max_depth_) max_depth_ = items_.size();
    lock.unlock();
    cv_.notify_one();
    return true;
  }

  /// Blocks for the next item. False when closed and drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Largest depth ever observed; bounded by capacity by construction.
  size_t max_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_depth_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  size_t max_depth_ = 0;
  bool closed_ = false;
};

}  // namespace pebble::server

#endif  // PEBBLE_SERVER_ADMISSION_H_
