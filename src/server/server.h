// pebbled — the long-lived concurrent provenance query server (DESIGN.md
// §13, ROADMAP item 1). Holds read-only provenance stores plus their
// retained output datasets and answers many concurrent backtrace /
// tree-pattern queries over the framed socket protocol (net/frame.h,
// server/wire.h).
//
// Robustness architecture:
//
//   accept thread ──> connection-fd queue ──> handler threads (fixed pool)
//                                                  │ decode + admit
//                                                  v
//                                   bounded admission queue (shed on full)
//                                                  │
//                                                  v
//                                      worker threads (fixed pool)
//
// Every stage is bounded: connections beyond the handler pool's backlog
// are *answered* with a structured kResourceExhausted frame and closed
// (never silently dropped); requests beyond a tenant's token-bucket rate
// or past the queue capacity are shed the same way, with a retry-after
// hint and the queue depth that caused the shed. Per-request governance
// (deadline, visited-node cap, result cap, memory budget) maps onto
// BacktraceOptions, so a saturated query degrades to the pinned
// partial-lower-bound answer instead of pinning a worker. Slow or stalled
// peers are bounded by read/write/idle timeouts; a torn connection costs
// the server one handler iteration, nothing more.
//
// Shutdown: BeginDrain() stops accepting and sheds *new* requests with
// kUnavailable while queued and in-flight requests finish and their
// responses are delivered; Shutdown() drains, then joins every thread and
// closes every socket. Stats survive Shutdown for post-mortem assertions.

#ifndef PEBBLE_SERVER_SERVER_H_
#define PEBBLE_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/resource.h"
#include "core/backtrace.h"
#include "core/query.h"
#include "engine/dataset.h"
#include "net/net.h"
#include "server/admission.h"
#include "server/wire.h"

namespace pebble::server {

/// One queryable unit: a retained output dataset plus the provenance
/// store captured when it was produced (the decoupled run-then-serve
/// workflow), optionally with a prebuilt backtrace index. All three are
/// immutable while served; queries against them are concurrency-safe.
struct ServedDataset {
  Dataset output;
  std::shared_ptr<const ProvenanceStore> store;
  std::shared_ptr<const BacktraceIndex> index;  // may be null
};

struct ServerOptions {
  /// 127.0.0.1 port; 0 = ephemeral (read back via port()).
  uint16_t port = 0;
  /// Query worker threads (the execution parallelism).
  int workers = 4;
  /// Connection handler threads (concurrent in-flight connections).
  int handlers = 8;
  /// Admission queue capacity; beyond it requests are shed.
  size_t queue_capacity = 64;
  /// Accepted connections waiting for a free handler; beyond it the
  /// connection gets an immediate shed response and is closed.
  size_t conn_backlog = 16;
  /// Per-IO-call timeouts and the keep-alive idle bound between frames.
  int read_timeout_ms = 5000;
  int write_timeout_ms = 5000;
  int idle_timeout_ms = 30000;
  /// Governance defaults applied when a request leaves them 0.
  uint32_t default_deadline_ms = 10000;
  /// Hard ceiling on any request's deadline.
  uint32_t max_deadline_ms = 60000;
  uint64_t default_max_visited_nodes = 0;  // 0 = unlimited
  /// Bytes charged per visited structure entry when translating a
  /// request's memory_budget_bytes into a visited-node cap.
  uint64_t bytes_per_visited_node = 256;
  /// Default token-bucket quota for tenants without an explicit one
  /// (rate 0 = unlimited).
  TenantQuota default_tenant_quota;
  /// Pattern-match threads per query; workers are the serving
  /// parallelism, so 1 keeps a query on its worker.
  int match_threads = 1;
  /// Cap on a rendered answer; longer answers are truncated with a note.
  size_t max_answer_bytes = 4u << 20;
};

/// Monotonic counters of one server's lifetime. Conservation invariants
/// (checked by the soak tests):
///   requests_received == admitted + shed_rate_limit + shed_queue_full +
///                        shed_enqueue_fault + shed_draining + bad_request
///   admitted          == completed_ok + completed_error +
///                        deadline_before_start
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_shed_overcap = 0;
  uint64_t connections_reaped_idle = 0;
  uint64_t connections_torn = 0;  // read/write failures incl. injected
  uint64_t accept_faults = 0;     // net.accept failpoint fires
  uint64_t requests_received = 0;
  uint64_t bad_request = 0;        // undecodable/oversized/bad version
  uint64_t admitted = 0;
  uint64_t shed_rate_limit = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_enqueue_fault = 0;  // server.enqueue failpoint fires
  uint64_t shed_draining = 0;
  uint64_t completed_ok = 0;         // includes truncated-degraded answers
  uint64_t completed_truncated = 0;  // subset of completed_ok
  uint64_t completed_error = 0;      // query produced an error status
  uint64_t deadline_before_start = 0;  // expired while queued
  uint64_t responses_write_failed = 0;
  size_t queue_max_depth = 0;
  size_t queue_capacity = 0;
};

class PebbleServer {
 public:
  explicit PebbleServer(ServerOptions options);
  ~PebbleServer();

  PebbleServer(const PebbleServer&) = delete;
  PebbleServer& operator=(const PebbleServer&) = delete;

  /// Registers a dataset before Start(); names are unique. The catalog is
  /// frozen once the server starts (lock-free concurrent reads).
  Status RegisterDataset(const std::string& name, ServedDataset dataset);

  /// Overrides one tenant's admission quota (callable any time).
  void SetTenantQuota(const std::string& tenant, TenantQuota quota);

  /// Binds, listens, and spawns the accept/handler/worker threads.
  Status Start();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Stops accepting and sheds new requests; already-admitted requests
  /// keep running and their responses are delivered. Idempotent.
  void BeginDrain();

  /// BeginDrain() + wait for in-flight work + join all threads. After
  /// `grace_ms` the hard-cancel token trips, so a stuck governed query
  /// degrades and returns promptly. Idempotent.
  void Shutdown(int grace_ms = 10000);

  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  ServerStats stats() const;
  std::map<std::string, TenantAdmissionStats> tenant_admission_stats() const {
    return admission_.TenantStats();
  }

 private:
  struct Job {
    QueryRequest request;
    std::chrono::steady_clock::time_point enqueued_at;
    std::chrono::steady_clock::time_point deadline;
    uint64_t id = 0;
    std::promise<QueryResponse> promise;
  };

  void AcceptLoop();
  void HandlerLoop();
  void WorkerLoop();
  /// Serves one connection until close/idle/error/drain.
  void ServeConnection(net::UniqueFd fd, uint64_t conn_id);
  /// Admission + enqueue; returns the response to send (either the
  /// worker's, or an immediate shed/bad-request response).
  QueryResponse Dispatch(QueryRequest request);
  /// Executes one admitted job on a worker thread.
  QueryResponse Execute(const Job& job);
  QueryResponse ExecuteQuery(const Job& job, const BacktraceOptions& options);

  const ServerOptions options_;
  std::map<std::string, ServedDataset> catalog_;
  bool started_ = false;
  uint16_t port_ = 0;

  net::UniqueFd listen_fd_;
  AdmissionController admission_;
  BoundedQueue<std::unique_ptr<Job>> queue_;
  BoundedQueue<net::UniqueFd> pending_conns_;
  CancellationSource hard_cancel_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_io_{false};  // interrupts blocked reads/writes
  std::atomic<uint64_t> next_conn_id_{0};
  std::atomic<uint64_t> next_request_id_{0};

  std::thread accept_thread_;
  std::vector<std::thread> handler_threads_;
  std::vector<std::thread> worker_threads_;
  bool joined_ = false;
  std::mutex shutdown_mu_;

  // Stats as atomics (written from many threads, snapshot in stats()).
  struct AtomicStats {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_shed_overcap{0};
    std::atomic<uint64_t> connections_reaped_idle{0};
    std::atomic<uint64_t> connections_torn{0};
    std::atomic<uint64_t> accept_faults{0};
    std::atomic<uint64_t> requests_received{0};
    std::atomic<uint64_t> bad_request{0};
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> shed_rate_limit{0};
    std::atomic<uint64_t> shed_queue_full{0};
    std::atomic<uint64_t> shed_enqueue_fault{0};
    std::atomic<uint64_t> shed_draining{0};
    std::atomic<uint64_t> completed_ok{0};
    std::atomic<uint64_t> completed_truncated{0};
    std::atomic<uint64_t> completed_error{0};
    std::atomic<uint64_t> deadline_before_start{0};
    std::atomic<uint64_t> responses_write_failed{0};
  } counters_;
};

/// Renders server + tenant stats as the kStats response text.
std::string RenderServerStats(const ServerStats& stats,
                              const std::map<std::string,
                                             TenantAdmissionStats>& tenants);

}  // namespace pebble::server

#endif  // PEBBLE_SERVER_SERVER_H_
