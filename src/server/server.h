// pebbled — the long-lived concurrent provenance query server (DESIGN.md
// §13, ROADMAP item 1). Holds read-only provenance stores plus their
// retained output datasets and answers many concurrent backtrace /
// tree-pattern queries over the framed socket protocol (net/frame.h,
// server/wire.h).
//
// Robustness architecture:
//
//   accept thread ──> connection-fd queue ──> handler threads (fixed pool)
//                                                  │ decode + admit
//                                                  v
//                                   bounded admission queue (shed on full)
//                                                  │
//                                                  v
//                                      worker threads (fixed pool)
//
// Every stage is bounded: connections beyond the handler pool's backlog
// are *answered* with a structured kResourceExhausted frame and closed
// (never silently dropped); requests beyond a tenant's token-bucket rate
// or past the queue capacity are shed the same way, with a retry-after
// hint and the queue depth that caused the shed. Per-request governance
// (deadline, visited-node cap, result cap, memory budget) maps onto
// BacktraceOptions, so a saturated query degrades to the pinned
// partial-lower-bound answer instead of pinning a worker. Slow or stalled
// peers are bounded by read/write/idle timeouts; a torn connection costs
// the server one handler iteration, nothing more.
//
// Shutdown: BeginDrain() stops accepting and sheds *new* requests with
// kUnavailable while queued and in-flight requests finish and their
// responses are delivered; Shutdown() drains, then joins every thread and
// closes every socket. Stats survive Shutdown for post-mortem assertions.

#ifndef PEBBLE_SERVER_SERVER_H_
#define PEBBLE_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/resource.h"
#include "core/backtrace.h"
#include "core/query.h"
#include "engine/dataset.h"
#include "net/net.h"
#include "server/admission.h"
#include "server/wire.h"

namespace pebble::server {

/// One queryable unit: a retained output dataset plus the provenance
/// store captured when it was produced (the decoupled run-then-serve
/// workflow), optionally with a prebuilt backtrace index. All three are
/// immutable while served; queries against them are concurrency-safe.
struct ServedDataset {
  Dataset output;
  std::shared_ptr<const ProvenanceStore> store;
  std::shared_ptr<const BacktraceIndex> index;  // may be null
  /// WAL position this store reflects, stamped by the replication
  /// publisher before the swap (0/0 for primary-registered entries).
  /// Captured per entry — not read from the shared freshness — so an
  /// answer always names the position of the store that produced it,
  /// even while the publisher is mid-swap.
  uint64_t applied_seq = 0;
  uint64_t applied_offset = 0;
};

/// Shared freshness state of a replication follower's served entry,
/// written by the replica's apply thread and read lock-free by the query
/// path. Queries against an entry carrying one of these are gated: not yet
/// synced, or staler than `max_staleness_ms` => shed with kUnavailable +
/// retry-after; otherwise the answer is stamped with the staleness bound
/// and the applied WAL position. A primary-registered entry has no
/// freshness and always answers from_replica == false.
struct ReplicaFreshness {
  /// False until the served store first reflected the primary's tail.
  std::atomic<bool> synced{false};
  /// Steady-clock ms of the last instant the *published* store was known
  /// to equal the primary's tail (heartbeat or caught-up publish),
  /// conservatively backdated by the follower's freshness_slack_ms to
  /// absorb the primary's tail-sample age (poll interval + round-trip).
  std::atomic<int64_t> fresh_at_ms{0};
  /// WAL position the published store reflects.
  std::atomic<uint64_t> applied_seq{0};
  std::atomic<uint64_t> applied_offset{0};
  /// Primary tail position last observed (lag = primary - applied).
  std::atomic<uint64_t> primary_seq{0};
  std::atomic<uint64_t> primary_size{0};
  /// Serving bound: answers whose staleness would exceed this are shed.
  std::atomic<uint32_t> max_staleness_ms{5000};

  /// Staleness bound right now (ms since fresh_at); ~0 when never fresh.
  uint32_t StalenessMs() const;
};

struct ServerOptions {
  /// 127.0.0.1 port; 0 = ephemeral (read back via port()).
  uint16_t port = 0;
  /// Query worker threads (the execution parallelism).
  int workers = 4;
  /// Connection handler threads (concurrent in-flight connections).
  int handlers = 8;
  /// Admission queue capacity; beyond it requests are shed.
  size_t queue_capacity = 64;
  /// Accepted connections waiting for a free handler; beyond it the
  /// connection gets an immediate shed response and is closed.
  size_t conn_backlog = 16;
  /// Per-IO-call timeouts and the keep-alive idle bound between frames.
  int read_timeout_ms = 5000;
  int write_timeout_ms = 5000;
  int idle_timeout_ms = 30000;
  /// Governance defaults applied when a request leaves them 0.
  uint32_t default_deadline_ms = 10000;
  /// Hard ceiling on any request's deadline.
  uint32_t max_deadline_ms = 60000;
  uint64_t default_max_visited_nodes = 0;  // 0 = unlimited
  /// Bytes charged per visited structure entry when translating a
  /// request's memory_budget_bytes into a visited-node cap.
  uint64_t bytes_per_visited_node = 256;
  /// Default token-bucket quota for tenants without an explicit one
  /// (rate 0 = unlimited).
  TenantQuota default_tenant_quota;
  /// Pattern-match threads per query; workers are the serving
  /// parallelism, so 1 keeps a query on its worker.
  int match_threads = 1;
  /// Cap on a rendered answer; longer answers are truncated with a note.
  size_t max_answer_bytes = 4u << 20;
  /// Replication source: directory of the provenance WAL shipped to
  /// follower subscriptions (empty = subscriptions are denied). Each
  /// active subscription occupies one handler thread for its lifetime, so
  /// `handlers` bounds followers + queries together.
  std::string ship_wal_dir;
  /// WAL stream identity a subscribe must name (defense against wiring a
  /// follower to the wrong primary).
  std::string ship_stream = "default";
  /// Max payload bytes per ship frame.
  size_t ship_chunk_bytes = 64u << 10;
  /// Poll interval for new primary bytes while a follower is caught up.
  int ship_poll_ms = 20;
  /// Heartbeat cadence while caught up (refreshes follower freshness).
  int ship_heartbeat_ms = 200;
};

/// Monotonic counters of one server's lifetime. Conservation invariants
/// (checked by the soak tests):
///   requests_received == admitted + shed_rate_limit + shed_queue_full +
///                        shed_enqueue_fault + shed_draining + bad_request
///   admitted          == completed_ok + completed_error +
///                        deadline_before_start
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_shed_overcap = 0;
  uint64_t connections_reaped_idle = 0;
  uint64_t connections_torn = 0;  // read/write failures incl. injected
  uint64_t accept_faults = 0;     // net.accept failpoint fires
  uint64_t requests_received = 0;
  uint64_t bad_request = 0;        // undecodable/oversized/bad version
  uint64_t admitted = 0;
  uint64_t shed_rate_limit = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_enqueue_fault = 0;  // server.enqueue failpoint fires
  uint64_t shed_draining = 0;
  uint64_t completed_ok = 0;         // includes truncated-degraded answers
  uint64_t completed_truncated = 0;  // subset of completed_ok
  uint64_t completed_error = 0;      // query produced an error status
  uint64_t deadline_before_start = 0;  // expired while queued
  uint64_t responses_write_failed = 0;
  size_t queue_max_depth = 0;
  size_t queue_capacity = 0;
  /// Replication-source counters. Subscriptions are NOT requests: they do
  /// not enter requests_received or the conservation equations above.
  uint64_t repl_subscriptions = 0;
  uint64_t repl_frames_shipped = 0;
  uint64_t repl_bytes_shipped = 0;
  uint64_t repl_snapshot_chunks = 0;
  uint64_t repl_resets = 0;
  uint64_t repl_denied = 0;
  uint64_t repl_ship_faults = 0;    // ship.read / ship.write fires
  uint64_t repl_sessions_torn = 0;  // net errors / bad acks mid-session
  /// Catalog mutation counters (runtime register/unregister/swap).
  uint64_t catalog_swaps = 0;
  /// Queries shed because a replica entry was unsynced or out of its
  /// staleness bound (subset of completed_error).
  uint64_t stale_reads_shed = 0;
};

class PebbleServer {
 public:
  explicit PebbleServer(ServerOptions options);
  ~PebbleServer();

  PebbleServer(const PebbleServer&) = delete;
  PebbleServer& operator=(const PebbleServer&) = delete;

  /// Registers a dataset under a new name, before or after Start(). The
  /// catalog is a read-copy-update snapshot: queries pin the entry they
  /// found for their whole execution, so registration (and swap /
  /// unregister) never tears an in-flight answer. Fails if the name is
  /// taken (use SwapDataset to replace).
  Status RegisterDataset(const std::string& name, ServedDataset dataset);

  /// Replaces (or inserts) the entry under `name` with a fresh dataset —
  /// the hot-swap path a replication follower publishes through. The new
  /// entry gets the next catalog generation (monotonic across all
  /// mutations; answers carry it as store_generation). In-flight queries
  /// keep the entry they pinned; new queries see the new one. An entry
  /// carrying `freshness` is staleness-gated (see ReplicaFreshness).
  Status SwapDataset(const std::string& name, ServedDataset dataset,
                     std::shared_ptr<const ReplicaFreshness> freshness =
                         nullptr);

  /// Removes the entry; later queries for it get kKeyError. In-flight
  /// queries against the removed entry finish normally.
  Status UnregisterDataset(const std::string& name);

  /// Current generation of the entry under `name` (0 = not registered).
  uint64_t DatasetGeneration(const std::string& name) const;

  /// Extra text appended to the kStats answer (e.g. replication state).
  /// The callback must be thread-safe; it runs on worker threads.
  void SetStatsExtension(std::function<std::string()> extension);

  /// Overrides one tenant's admission quota (callable any time).
  void SetTenantQuota(const std::string& tenant, TenantQuota quota);

  /// Binds, listens, and spawns the accept/handler/worker threads.
  Status Start();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Stops accepting and sheds new requests; already-admitted requests
  /// keep running and their responses are delivered. Idempotent.
  void BeginDrain();

  /// BeginDrain() + wait for in-flight work + join all threads. After
  /// `grace_ms` the hard-cancel token trips, so a stuck governed query
  /// degrades and returns promptly. Idempotent.
  void Shutdown(int grace_ms = 10000);

  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  ServerStats stats() const;
  std::map<std::string, TenantAdmissionStats> tenant_admission_stats() const {
    return admission_.TenantStats();
  }

 private:
  struct Job {
    QueryRequest request;
    std::chrono::steady_clock::time_point enqueued_at;
    std::chrono::steady_clock::time_point deadline;
    uint64_t id = 0;
    std::promise<QueryResponse> promise;
  };

  /// One catalog entry: the served dataset plus its generation stamp and
  /// (for replica-published entries) the freshness gate. Entries are
  /// immutable once published; mutation = building a new Catalog map that
  /// shares unchanged entries and swapping the root pointer.
  struct ServedEntry {
    ServedDataset dataset;
    uint64_t generation = 0;
    std::shared_ptr<const ReplicaFreshness> freshness;  // null = primary
  };
  using Catalog = std::map<std::string, std::shared_ptr<const ServedEntry>>;

  void AcceptLoop();
  void HandlerLoop();
  void WorkerLoop();
  /// Serves one connection until close/idle/error/drain.
  void ServeConnection(net::UniqueFd fd, uint64_t conn_id);
  /// Takes over a connection whose first frame was a replication
  /// subscribe; runs the ship/ack lockstep until error or shutdown.
  void ServeReplication(int fd, const std::string& subscribe_payload,
                        uint64_t conn_id);
  /// Admission + enqueue; returns the response to send (either the
  /// worker's, or an immediate shed/bad-request response).
  QueryResponse Dispatch(QueryRequest request);
  /// Executes one admitted job on a worker thread.
  QueryResponse Execute(const Job& job);
  QueryResponse ExecuteQuery(const Job& job, const BacktraceOptions& options);

  /// The current catalog root (callers iterate/lookup on the snapshot).
  std::shared_ptr<const Catalog> SnapshotCatalog() const;
  /// Installs `mutate`'s result as the new catalog root.
  Status MutateCatalog(
      const std::function<Status(Catalog*)>& mutate);

  const ServerOptions options_;
  mutable std::mutex catalog_mu_;
  std::shared_ptr<const Catalog> catalog_;
  std::atomic<uint64_t> catalog_generation_{0};
  std::mutex stats_extension_mu_;
  std::function<std::string()> stats_extension_;
  bool started_ = false;
  uint16_t port_ = 0;

  net::UniqueFd listen_fd_;
  AdmissionController admission_;
  BoundedQueue<std::unique_ptr<Job>> queue_;
  BoundedQueue<net::UniqueFd> pending_conns_;
  CancellationSource hard_cancel_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_io_{false};  // interrupts blocked reads/writes
  std::atomic<uint64_t> next_conn_id_{0};
  std::atomic<uint64_t> next_request_id_{0};

  std::thread accept_thread_;
  std::vector<std::thread> handler_threads_;
  std::vector<std::thread> worker_threads_;
  bool joined_ = false;
  std::mutex shutdown_mu_;

  // Stats as atomics (written from many threads, snapshot in stats()).
  struct AtomicStats {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_shed_overcap{0};
    std::atomic<uint64_t> connections_reaped_idle{0};
    std::atomic<uint64_t> connections_torn{0};
    std::atomic<uint64_t> accept_faults{0};
    std::atomic<uint64_t> requests_received{0};
    std::atomic<uint64_t> bad_request{0};
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> shed_rate_limit{0};
    std::atomic<uint64_t> shed_queue_full{0};
    std::atomic<uint64_t> shed_enqueue_fault{0};
    std::atomic<uint64_t> shed_draining{0};
    std::atomic<uint64_t> completed_ok{0};
    std::atomic<uint64_t> completed_truncated{0};
    std::atomic<uint64_t> completed_error{0};
    std::atomic<uint64_t> deadline_before_start{0};
    std::atomic<uint64_t> responses_write_failed{0};
    std::atomic<uint64_t> repl_subscriptions{0};
    std::atomic<uint64_t> repl_frames_shipped{0};
    std::atomic<uint64_t> repl_bytes_shipped{0};
    std::atomic<uint64_t> repl_snapshot_chunks{0};
    std::atomic<uint64_t> repl_resets{0};
    std::atomic<uint64_t> repl_denied{0};
    std::atomic<uint64_t> repl_ship_faults{0};
    std::atomic<uint64_t> repl_sessions_torn{0};
    std::atomic<uint64_t> catalog_swaps{0};
    std::atomic<uint64_t> stale_reads_shed{0};
  } counters_;
};

/// Renders server + tenant stats as the kStats response text.
std::string RenderServerStats(const ServerStats& stats,
                              const std::map<std::string,
                                             TenantAdmissionStats>& tenants);

}  // namespace pebble::server

#endif  // PEBBLE_SERVER_SERVER_H_
