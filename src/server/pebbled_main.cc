// pebbled — standalone provenance query daemon (DESIGN.md §13, §14).
// Three deployment shapes:
//
//   pebbled                      serve the generated stress scenario
//   pebbled --wal DIR            serve the WAL-backed stress scenario: an
//                                empty WAL is seeded by capturing the run
//                                through it, an existing one is recovered
//                                and served, and either way the WAL ships
//                                to replication subscribers
//   pebbled --follow HOST:PORT --wal DIR
//                                replication follower: mirror the primary's
//                                WAL into DIR and serve bounded-staleness
//                                reads of the replicated store
//
// SIGTERM/SIGINT triggers a graceful drain (in-flight requests finish, new
// ones are shed with kUnavailable). Exit prints the lifetime stats.
//
// Usage:
//   pebbled [--port N] [--workers N] [--handlers N] [--queue N]
//           [--tweets N] [--rate-per-sec R] [--burst B]
//           [--wal DIR] [--follow HOST:PORT] [--staleness-ms N]
//           [--staleness-slack-ms N]

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include "core/provenance_wal.h"
#include "server/replica.h"
#include "server/server.h"
#include "workload/serving_driver.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStop(int) { g_stop = 1; }

bool ParseFlag(int argc, char** argv, int* i, const char* name, long* out) {
  if (std::strcmp(argv[*i], name) != 0) return false;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "%s needs a value\n", name);
    std::exit(2);
  }
  *out = std::strtol(argv[++*i], nullptr, 10);
  return true;
}

bool ParseStrFlag(int argc, char** argv, int* i, const char* name,
                  std::string* out) {
  if (std::strcmp(argv[*i], name) != 0) return false;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "%s needs a value\n", name);
    std::exit(2);
  }
  *out = argv[++*i];
  return true;
}

/// Renders the startup recovery facts; the same text is appended to every
/// kStats answer so an operator can read them without grepping logs.
std::string RenderRecoveryInfo(const pebble::WalRecoveryInfo& info) {
  std::ostringstream os;
  os << "wal_recovery:\n"
     << "  manifest_found=" << (info.manifest_found ? 1 : 0)
     << " snapshot_loaded=" << (info.snapshot_loaded ? 1 : 0)
     << " covered_seq=" << info.covered_seq << "\n"
     << "  segments_replayed=" << info.segments_replayed
     << " records_replayed=" << info.records_replayed
     << " runs_completed=" << info.runs_completed << "\n"
     << "  torn_tail=" << (info.torn_tail ? 1 : 0)
     << " torn_segment_seq=" << info.torn_segment_seq
     << " torn_offset=" << info.torn_offset << "\n"
     << "  next_item_id=" << info.next_item_id << "\n";
  return os.str();
}

std::string RenderFreshness(const pebble::server::ReplicaFreshness& f) {
  const uint64_t applied_seq = f.applied_seq.load();
  const uint64_t applied_off = f.applied_offset.load();
  const uint64_t primary_seq = f.primary_seq.load();
  const uint64_t primary_size = f.primary_size.load();
  std::ostringstream os;
  os << "replication:\n"
     << "  synced=" << (f.synced.load() ? 1 : 0)
     << " staleness_ms=" << f.StalenessMs() << "\n"
     << "  applied=" << applied_seq << "@" << applied_off
     << " primary=" << primary_seq << "@" << primary_size;
  if (primary_seq == applied_seq && primary_size >= applied_off) {
    os << " lag_bytes=" << (primary_size - applied_off);
  }
  os << "\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  long port = 7437;
  long workers = 4;
  long handlers = 8;
  long queue = 64;
  long tweets = 2000;
  long rate = 0;
  long burst = 8;
  long staleness_ms = 5000;
  long staleness_slack_ms = 50;
  std::string wal_dir;
  std::string follow;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argc, argv, &i, "--port", &port)) continue;
    if (ParseFlag(argc, argv, &i, "--workers", &workers)) continue;
    if (ParseFlag(argc, argv, &i, "--handlers", &handlers)) continue;
    if (ParseFlag(argc, argv, &i, "--queue", &queue)) continue;
    if (ParseFlag(argc, argv, &i, "--tweets", &tweets)) continue;
    if (ParseFlag(argc, argv, &i, "--rate-per-sec", &rate)) continue;
    if (ParseFlag(argc, argv, &i, "--burst", &burst)) continue;
    if (ParseFlag(argc, argv, &i, "--staleness-ms", &staleness_ms)) continue;
    if (ParseFlag(argc, argv, &i, "--staleness-slack-ms", &staleness_slack_ms))
      continue;
    if (ParseStrFlag(argc, argv, &i, "--wal", &wal_dir)) continue;
    if (ParseStrFlag(argc, argv, &i, "--follow", &follow)) continue;
    std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
    return 2;
  }

  std::fprintf(stderr, "pebbled: building stress scenario (%ld tweets)...\n",
               tweets);
  // A primary with --wal serves the WAL-recovered store (seeding an empty
  // WAL by capturing the scenario through it), so followers of that
  // directory converge to the exact bytes being served. The follower shape
  // and the WAL-less daemon only need the scenario's output dataset.
  pebble::WalRecoveryInfo recovery_info;
  auto served =
      (!wal_dir.empty() && follow.empty())
          ? pebble::MakeWalBackedStressScenario(static_cast<size_t>(tweets),
                                                wal_dir, /*seed=*/42,
                                                &recovery_info)
          : pebble::MakeServedStressScenario(static_cast<size_t>(tweets));
  if (!served.ok()) {
    std::fprintf(stderr, "pebbled: %s\n",
                 served.status().ToString().c_str());
    return 1;
  }

  pebble::server::ServerOptions options;
  options.port = static_cast<uint16_t>(port);
  options.workers = static_cast<int>(workers);
  options.handlers = static_cast<int>(handlers);
  options.queue_capacity = static_cast<size_t>(queue);
  options.default_tenant_quota.rate_per_sec = static_cast<double>(rate);
  options.default_tenant_quota.burst = static_cast<double>(burst);

  struct sigaction action {};
  action.sa_handler = HandleStop;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  if (!follow.empty()) {
    // Replication follower: --wal names the local mirror directory.
    if (wal_dir.empty()) {
      std::fprintf(stderr, "pebbled: --follow requires --wal DIR\n");
      return 2;
    }
    const auto colon = follow.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "pebbled: --follow wants HOST:PORT\n");
      return 2;
    }
    pebble::server::ReplicaOptions replica_options;
    replica_options.primary_host = follow.substr(0, colon);
    replica_options.primary_port = static_cast<uint16_t>(
        std::strtol(follow.c_str() + colon + 1, nullptr, 10));
    replica_options.wal_dir = wal_dir;
    replica_options.dataset_name = "stress";
    replica_options.output = served->dataset.output;
    replica_options.max_staleness_ms = static_cast<uint32_t>(staleness_ms);
    replica_options.freshness_slack_ms =
        static_cast<uint32_t>(staleness_slack_ms);
    replica_options.server = options;

    pebble::server::ReplicaDaemon replica(std::move(replica_options));
    pebble::Status started = replica.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "pebbled: %s\n", started.ToString().c_str());
      return 1;
    }
    const pebble::server::ReplicaFreshness* freshness = &replica.freshness();
    replica.server().SetStatsExtension(
        [freshness] { return RenderFreshness(*freshness); });
    std::fprintf(stderr,
                 "pebbled: following %s, serving 'stress' on 127.0.0.1:%u "
                 "(staleness bound %ld ms)\n",
                 follow.c_str(), replica.port(), staleness_ms);
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::fprintf(stderr, "pebbled: draining...\n");
    pebble::server::ServerStats stats = replica.server().stats();
    auto tenants = replica.server().tenant_admission_stats();
    replica.Shutdown();
    std::fprintf(stderr, "%s",
                 pebble::server::RenderServerStats(stats, tenants).c_str());
    std::fprintf(stderr, "%s", RenderFreshness(*freshness).c_str());
    return 0;
  }

  // Primary (or standalone): recover + log the WAL when one is named, and
  // ship it to subscribers.
  std::string recovery_text;
  if (!wal_dir.empty()) {
    options.ship_wal_dir = wal_dir;
    recovery_text = RenderRecoveryInfo(recovery_info);
    std::fprintf(stderr, "%s", recovery_text.c_str());
  }

  pebble::server::PebbleServer server(options);
  pebble::Status registered =
      server.RegisterDataset("stress", std::move(served->dataset));
  if (!registered.ok()) {
    std::fprintf(stderr, "pebbled: %s\n", registered.ToString().c_str());
    return 1;
  }
  if (!recovery_text.empty()) {
    server.SetStatsExtension([recovery_text] { return recovery_text; });
  }
  pebble::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "pebbled: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "pebbled: serving 'stress' (pattern: %s) on 127.0.0.1:%u%s\n",
               served->pattern_text.c_str(), server.port(),
               wal_dir.empty() ? "" : " [shipping WAL]");

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::fprintf(stderr, "pebbled: draining...\n");
  server.BeginDrain();
  server.Shutdown();
  std::fprintf(
      stderr, "%s",
      pebble::server::RenderServerStats(server.stats(),
                                        server.tenant_admission_stats())
          .c_str());
  return 0;
}
