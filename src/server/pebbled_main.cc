// pebbled — standalone provenance query daemon (DESIGN.md §13). Builds
// the T3-shaped stress scenario with structural capture, serves it on a
// TCP port, and answers concurrent provenance queries until SIGTERM/SIGINT
// triggers a graceful drain (in-flight requests finish, new ones are shed
// with kUnavailable). Exit prints the lifetime stats.
//
// Usage:
//   pebbled [--port N] [--workers N] [--handlers N] [--queue N]
//           [--tweets N] [--rate-per-sec R] [--burst B]

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "server/server.h"
#include "workload/serving_driver.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStop(int) { g_stop = 1; }

bool ParseFlag(int argc, char** argv, int* i, const char* name, long* out) {
  if (std::strcmp(argv[*i], name) != 0) return false;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "%s needs a value\n", name);
    std::exit(2);
  }
  *out = std::strtol(argv[++*i], nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  long port = 7437;
  long workers = 4;
  long handlers = 8;
  long queue = 64;
  long tweets = 2000;
  long rate = 0;
  long burst = 8;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argc, argv, &i, "--port", &port)) continue;
    if (ParseFlag(argc, argv, &i, "--workers", &workers)) continue;
    if (ParseFlag(argc, argv, &i, "--handlers", &handlers)) continue;
    if (ParseFlag(argc, argv, &i, "--queue", &queue)) continue;
    if (ParseFlag(argc, argv, &i, "--tweets", &tweets)) continue;
    if (ParseFlag(argc, argv, &i, "--rate-per-sec", &rate)) continue;
    if (ParseFlag(argc, argv, &i, "--burst", &burst)) continue;
    std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
    return 2;
  }

  std::fprintf(stderr, "pebbled: building stress scenario (%ld tweets)...\n",
               tweets);
  auto served =
      pebble::MakeServedStressScenario(static_cast<size_t>(tweets));
  if (!served.ok()) {
    std::fprintf(stderr, "pebbled: %s\n",
                 served.status().ToString().c_str());
    return 1;
  }

  pebble::server::ServerOptions options;
  options.port = static_cast<uint16_t>(port);
  options.workers = static_cast<int>(workers);
  options.handlers = static_cast<int>(handlers);
  options.queue_capacity = static_cast<size_t>(queue);
  options.default_tenant_quota.rate_per_sec = static_cast<double>(rate);
  options.default_tenant_quota.burst = static_cast<double>(burst);

  pebble::server::PebbleServer server(options);
  pebble::Status registered =
      server.RegisterDataset("stress", std::move(served->dataset));
  if (!registered.ok()) {
    std::fprintf(stderr, "pebbled: %s\n", registered.ToString().c_str());
    return 1;
  }
  pebble::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "pebbled: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "pebbled: serving 'stress' (pattern: %s) on 127.0.0.1:%u\n",
               served->pattern_text.c_str(), server.port());

  struct sigaction action {};
  action.sa_handler = HandleStop;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::fprintf(stderr, "pebbled: draining...\n");
  server.BeginDrain();
  server.Shutdown();
  std::fprintf(
      stderr, "%s",
      pebble::server::RenderServerStats(server.stats(),
                                        server.tenant_admission_stats())
          .c_str());
  return 0;
}
