#include "server/replica.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/failpoint.h"
#include "core/provenance_wal.h"
#include "net/frame.h"
#include "net/net.h"
#include "server/wire.h"

namespace pebble::server {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string InDir(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

/// A shipped file name must be a plain name inside the WAL directory —
/// the primary only ever sends its own snapshot file names, so anything
/// else is a corrupt or hostile frame.
bool SafeFileName(const std::string& name) {
  if (name.empty() || name == "." || name == "..") return false;
  return name.find('/') == std::string::npos &&
         name.find('\\') == std::string::npos;
}

/// Removes every WAL-owned file from `dir` (segments, snapshots, manifest,
/// bootstrap temp). Unrelated files are left alone.
Status WipeLocalWal(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) return Status::OK();
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    const bool owned =
        name == "MANIFEST" || name == "snapshot.tmp" ||
        (name.rfind("segment-", 0) == 0) || (name.rfind("snapshot-", 0) == 0);
    if (!owned) continue;
    std::error_code rm_ec;
    std::filesystem::remove(entry.path(), rm_ec);
    if (rm_ec) {
      return Status::IOError("wiping local WAL copy: cannot remove " + name +
                             ": " + rm_ec.message());
    }
  }
  if (ec) {
    return Status::IOError("wiping local WAL copy: " + ec.message());
  }
  return Status::OK();
}

/// Physically repairs a torn tail found by local recovery, exactly as
/// WalWriter::Open does on the primary: truncate at the first bad byte, or
/// remove the segment entirely when its header itself was torn.
Status RepairTornTail(const std::string& dir, const WalRecoveryInfo& info) {
  if (!info.torn_tail) return Status::OK();
  const std::string path = WalSegmentPath(dir, info.torn_segment_seq);
  if (info.torn_offset < kWalSegmentHeaderBytes) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    if (ec) {
      return Status::IOError("removing header-torn segment " + path + ": " +
                             ec.message());
    }
    return Status::OK();
  }
  if (::truncate(path.c_str(), static_cast<off_t>(info.torn_offset)) != 0) {
    return Status::IOError("truncating torn tail of " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

/// pwrites `bytes` into the local copy of segment `seq` at `offset`,
/// creating the file on first touch. `sync` fsyncs afterwards (used at
/// seal points; mid-segment loss is a torn tail recovery repairs).
Status WriteSegmentBytes(const std::string& dir, uint64_t seq,
                         uint64_t offset, std::string_view bytes,
                         bool sync) {
  const std::string path = WalSegmentPath(dir, seq);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("opening local segment " + path + ": " +
                           std::strerror(errno));
  }
  size_t written = 0;
  Status status = Status::OK();
  while (written < bytes.size()) {
    const ssize_t n =
        ::pwrite(fd, bytes.data() + written, bytes.size() - written,
                 static_cast<off_t>(offset + written));
    if (n < 0) {
      if (errno == EINTR) continue;
      status = Status::IOError("writing local segment " + path + ": " +
                               std::strerror(errno));
      break;
    }
    written += static_cast<size_t>(n);
  }
  if (status.ok() && sync && ::fsync(fd) != 0) {
    status = Status::IOError("syncing local segment " + path + ": " +
                             std::strerror(errno));
  }
  ::close(fd);
  return status;
}

/// Appends `bytes` to `path` (creating it), for staging a shipped
/// snapshot. The temp file needs no durability of its own — the manifest
/// rename at commit is the crash-safety point.
Status AppendFile(const std::string& path, std::string_view bytes) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("opening " + path + ": " + std::strerror(errno));
  }
  size_t written = 0;
  Status status = Status::OK();
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      status =
          Status::IOError("writing " + path + ": " + std::strerror(errno));
      break;
    }
    written += static_cast<size_t>(n);
  }
  ::close(fd);
  return status;
}

}  // namespace

ReplicaDaemon::ReplicaDaemon(ReplicaOptions options)
    : options_(std::move(options)),
      freshness_(std::make_shared<ReplicaFreshness>()),
      jitter_(options_.jitter_seed) {
  freshness_->max_staleness_ms.store(options_.max_staleness_ms,
                                     std::memory_order_relaxed);
}

ReplicaDaemon::~ReplicaDaemon() { Shutdown(); }

Status ReplicaDaemon::Start() {
  if (started_) return Status::InvalidArgument("replica already started");
  if (options_.wal_dir.empty()) {
    return Status::InvalidArgument("ReplicaOptions.wal_dir is required");
  }
  if (options_.dataset_name.empty()) {
    return Status::InvalidArgument("ReplicaOptions.dataset_name is required");
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.wal_dir, ec);
  if (ec) {
    return Status::IOError("creating replica WAL dir " + options_.wal_dir +
                           ": " + ec.message());
  }
  server_ = std::make_unique<PebbleServer>(options_.server);
  // Register the gated entry before serving starts: until the first
  // publish+sync the freshness gate sheds every read with a retry-after,
  // so the placeholder store is never actually queried.
  ServedDataset placeholder;
  placeholder.output = options_.output;
  placeholder.store = std::make_shared<const ProvenanceStore>();
  PEBBLE_RETURN_NOT_OK(server_->SwapDataset(options_.dataset_name,
                                            std::move(placeholder),
                                            freshness_));
  PEBBLE_RETURN_NOT_OK(server_->Start());
  stop_.store(false, std::memory_order_relaxed);
  repl_thread_ = std::thread(&ReplicaDaemon::ReplicationLoop, this);
  started_ = true;
  return Status::OK();
}

void ReplicaDaemon::Shutdown() {
  stop_.store(true, std::memory_order_relaxed);
  if (repl_thread_.joinable()) repl_thread_.join();
  if (server_) server_->Shutdown();
  started_ = false;
}

bool ReplicaDaemon::WaitUntilSynced(int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (freshness_->synced.load(std::memory_order_acquire)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return freshness_->synced.load(std::memory_order_acquire);
}

ReplicaStats ReplicaDaemon::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void ReplicaDaemon::MarkUnsynced() {
  freshness_->synced.store(false, std::memory_order_release);
  freshness_->fresh_at_ms.store(0, std::memory_order_release);
}

void ReplicaDaemon::MarkFresh() {
  // The proof of tail equality is as old as the primary's state sample:
  // up to one poll interval plus one lockstep round-trip before this
  // instant. Backdating by the configured slack keeps the advertised
  // staleness a true upper bound (never 0: that is the never-fresh
  // sentinel).
  freshness_->fresh_at_ms.store(
      std::max<int64_t>(
          1, SteadyNowMs() - static_cast<int64_t>(options_.freshness_slack_ms)),
      std::memory_order_release);
  freshness_->synced.store(true, std::memory_order_release);
}

Status ReplicaDaemon::Publish(WalTailApplier& applier) {
  const uint64_t uid = applier.store().uid();
  const uint64_t generation = applier.store().generation();
  if (published_any_ && uid == published_uid_ &&
      generation == published_generation_) {
    return Status::OK();  // already serving exactly this state
  }
  Status fault = FailpointRegistry::Global().Evaluate(
      failpoints::kReplicaSwap, publish_ordinal_++);
  if (!fault.ok()) {
    // A skipped publish only delays freshness: the catalog keeps serving
    // the previous snapshot, whose staleness bound still governs it.
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.publish_skips;
    return Status::OK();
  }
  auto snapshot_or = applier.Snapshot();
  if (!snapshot_or.ok()) return snapshot_or.status();
  // The position the snapshot reflects. Before any Feed the applier sits
  // where local state put it: the seeded tail segment, or — snapshot-only
  // local copy (fresh bootstrap commit) — the covered sequence at offset 0.
  uint64_t applied_seq = applier.seq();
  uint64_t applied_offset = applier.applied_position();
  if (applied_seq == 0) {
    applied_seq = applier.info().covered_seq;
    applied_offset = 0;
  }
  ServedDataset dataset;
  dataset.output = options_.output;
  dataset.store = std::shared_ptr<const ProvenanceStore>(
      std::move(snapshot_or).value());
  // The position travels inside the swapped entry (queries stamp answers
  // from the entry they pinned); the freshness atomics mirror it for the
  // stats/lag views and are written first so no reader of the new entry
  // can observe the old position.
  dataset.applied_seq = applied_seq;
  dataset.applied_offset = applied_offset;
  freshness_->applied_seq.store(applied_seq, std::memory_order_release);
  freshness_->applied_offset.store(applied_offset,
                                   std::memory_order_release);
  PEBBLE_RETURN_NOT_OK(server_->SwapDataset(options_.dataset_name,
                                            std::move(dataset), freshness_));
  published_uid_ = uid;
  published_generation_ = generation;
  published_any_ = true;
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.publishes;
  return Status::OK();
}

void ReplicaDaemon::ReplicationLoop() {
  int backoff_ms = options_.reconnect_initial_ms;
  while (!stop_.load(std::memory_order_relaxed)) {
    SessionResult result = RunSession();
    if (stop_.load(std::memory_order_relaxed)) break;
    if (result.reset) {
      // The wipe already happened; resubscribing immediately turns the
      // reset into one extra round-trip, not a backoff penalty.
      backoff_ms = options_.reconnect_initial_ms;
      continue;
    }
    if (result.progressed) backoff_ms = options_.reconnect_initial_ms;
    int wait_ms = result.denied
                      ? options_.reconnect_max_ms
                      : backoff_ms + static_cast<int>(jitter_.NextBounded(
                                         static_cast<uint64_t>(backoff_ms)));
    // Sleep in small slices so Shutdown is prompt.
    while (wait_ms > 0 && !stop_.load(std::memory_order_relaxed)) {
      const int slice = std::min(wait_ms, 10);
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      wait_ms -= slice;
    }
    backoff_ms = std::min(backoff_ms * 2, options_.reconnect_max_ms);
  }
}

ReplicaDaemon::SessionResult ReplicaDaemon::RunSession() {
  SessionResult result;
  const std::string& dir = options_.wal_dir;
  auto count_torn = [&] {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.sessions_torn;
  };

  // Local recovery (the same code path as the follower's own crash):
  // repair a torn tail physically, wipe-and-retry on a hard failure.
  auto recovered_or = RecoverStore(dir);
  if (!recovered_or.ok()) {
    // The local copy is unreadable and about to be discarded: whatever is
    // currently published can no longer be proven right, and the store
    // recovered after the wipe regresses behind it. Drop the gate first so
    // no read is answered from either.
    MarkUnsynced();
    if (!WipeLocalWal(dir).ok()) {
      count_torn();
      return result;
    }
    recovered_or = RecoverStore(dir);
    if (!recovered_or.ok()) {
      count_torn();
      return result;
    }
  }
  if (recovered_or->info.torn_tail) {
    if (!RepairTornTail(dir, recovered_or->info).ok()) {
      count_torn();
      return result;
    }
    recovered_or = RecoverStore(dir);
    if (!recovered_or.ok() || recovered_or->info.torn_tail) {
      count_torn();
      return result;
    }
  }
  auto applier =
      std::make_unique<WalTailApplier>(std::move(recovered_or).value());

  // Subscribe position: the newest local segment, its full (post-repair)
  // size, and the CRC of that prefix for the divergence check.
  auto state_or = ReadWalShipState(dir);
  if (!state_or.ok()) {
    count_torn();
    return result;
  }
  ReplSubscribe sub;
  sub.stream = options_.stream;
  sub.covered_seq = state_or->covered_seq;
  if (!state_or->segments.empty()) {
    sub.seq = state_or->segments.rbegin()->first;
    std::error_code ec;
    const uint64_t size =
        std::filesystem::file_size(state_or->segments.rbegin()->second, ec);
    if (ec) {
      count_torn();
      return result;
    }
    sub.offset = size;
    if (size > 0) {
      auto crc_or =
          Crc32FilePrefix(state_or->segments.rbegin()->second, size);
      if (!crc_or.ok()) {
        count_torn();
        return result;
      }
      sub.prefix_crc = *crc_or;
    }
    // The applier starts where the subscription resumes, so published
    // answers name the recovered WAL position even if this session only
    // ever heartbeats. A tail that is not seedable (e.g. a crashed
    // compaction left only already-covered segment files) stays unseeded:
    // the primary adjudicates the position and resets us if needed.
    if (sub.seq > sub.covered_seq &&
        sub.offset >= kWalSegmentHeaderBytes &&
        !applier->SeedTail(sub.seq, sub.offset).ok()) {
      count_torn();
      return result;
    }
  }

  // Serve whatever the local copy already holds (still gated unsynced, so
  // reads stay shed until the primary confirms we are at its tail).
  if (!Publish(*applier).ok()) {
    count_torn();
    return result;
  }

  auto fd_or = net::ConnectTcp(options_.primary_host, options_.primary_port,
                               options_.connect_timeout_ms);
  if (!fd_or.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.connect_failures;
    return result;
  }
  net::UniqueFd fd = std::move(fd_or).value();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.connects;
  }
  if (!net::WriteFrame(fd.get(), EncodeReplSubscribe(sub),
                       options_.io_timeout_ms, &stop_)
           .ok()) {
    count_torn();
    return result;
  }
  result.connected = true;

  auto send_ack = [&](bool ok, const std::string& note) -> bool {
    ReplAck ack;
    ack.seq = applier->seq();
    ack.offset = applier->position();
    ack.ok = ok;
    ack.note = note;
    return net::WriteFrame(fd.get(), EncodeReplAck(ack),
                           options_.io_timeout_ms, &stop_)
        .ok();
  };

  // Snapshot-bootstrap staging state (kSnapshotBegin .. kSnapshotCommit).
  struct SnapState {
    bool active = false;
    uint64_t covered = 0;
    uint64_t size = 0;
    uint64_t received = 0;
    std::string name;
  } snap;
  const std::string snap_tmp = InDir(dir, "snapshot.tmp");

  uint64_t last_runs_completed = applier->info().runs_completed;

  while (!stop_.load(std::memory_order_relaxed)) {
    std::string payload;
    Status read = net::ReadFrame(fd.get(), &payload, options_.io_timeout_ms,
                                 &stop_);
    if (!read.ok()) {
      if (!stop_.load(std::memory_order_relaxed)) count_torn();
      return result;
    }
    ReplShip ship;
    if (!DecodeReplShip(payload, &ship).ok()) {
      count_torn();
      return result;
    }
    // replica.apply: abort the session before touching disk or the store,
    // as an apply-path crash would. The next session recovers locally.
    Status fault = FailpointRegistry::Global().Evaluate(
        failpoints::kReplicaApply, frame_ordinal_++);
    if (!fault.ok()) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.apply_faults;
      }
      count_torn();
      return result;
    }

    switch (ship.kind) {
      case ShipKind::kDenied: {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.denied;
        result.denied = true;
        return result;
      }
      case ShipKind::kReset: {
        (void)send_ack(true, "resetting");
        // The primary just told us our history diverged: the published
        // store may be WRONG, not merely stale, and the next session will
        // publish the freshly wiped (empty) store. Drop the gate before
        // touching disk so neither is ever answered from — the documented
        // "structural degradation, never a wrong answer" invariant.
        MarkUnsynced();
        if (!WipeLocalWal(dir).ok()) {
          count_torn();
          return result;
        }
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.resets;
        result.reset = true;
        return result;
      }
      case ShipKind::kHeartbeat: {
        freshness_->primary_seq.store(ship.primary_seq,
                                      std::memory_order_release);
        freshness_->primary_size.store(ship.primary_size,
                                       std::memory_order_release);
        // Lockstep means every data frame the primary sent before this
        // heartbeat is already applied here, so the heartbeat is proof
        // the live store equals the primary's tail. Publish any
        // unpublished progress, then mark the published store fresh.
        if (!Publish(*applier).ok()) {
          (void)send_ack(false, "publish failed");
          count_torn();
          return result;
        }
        if (published_any_ &&
            published_uid_ == applier->store().uid() &&
            published_generation_ == applier->store().generation()) {
          MarkFresh();
        }
        result.progressed = true;
        if (!send_ack(true, "")) {
          count_torn();
          return result;
        }
        break;
      }
      case ShipKind::kData: {
        // Local durability first: the byte lands in the follower's WAL
        // copy before the store sees it, so a crash at any instant
        // replays to a consistent prefix.
        Status wrote = WriteSegmentBytes(dir, ship.seq, ship.offset,
                                         ship.bytes,
                                         ship.sealed && options_.sync);
        if (!wrote.ok()) {
          (void)send_ack(false, wrote.message());
          count_torn();
          return result;
        }
        Status fed = applier->Feed(ship.seq, ship.offset, ship.bytes);
        if (!fed.ok()) {
          // Bad bytes are on disk at the tail; the next session's local
          // recovery truncates them as a torn tail and resubscribes.
          (void)send_ack(false, fed.message());
          count_torn();
          return result;
        }
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.frames_applied;
          stats_.bytes_applied += ship.bytes.size();
        }
        freshness_->primary_seq.store(ship.primary_seq,
                                      std::memory_order_release);
        freshness_->primary_size.store(ship.primary_size,
                                       std::memory_order_release);
        const bool at_tail =
            ship.seq == ship.primary_seq &&
            ship.offset + ship.bytes.size() == ship.primary_size;
        const bool run_ended =
            applier->info().runs_completed > last_runs_completed;
        if (at_tail || run_ended) {
          last_runs_completed = applier->info().runs_completed;
          if (!Publish(*applier).ok()) {
            (void)send_ack(false, "publish failed");
            count_torn();
            return result;
          }
          if (at_tail && published_any_ &&
              published_uid_ == applier->store().uid() &&
              published_generation_ == applier->store().generation()) {
            MarkFresh();
          }
        }
        result.progressed = true;
        if (!send_ack(true, "")) {
          count_torn();
          return result;
        }
        break;
      }
      case ShipKind::kSnapshotBegin: {
        if (!SafeFileName(ship.note)) {
          (void)send_ack(false, "unsafe snapshot name");
          count_torn();
          return result;
        }
        snap.active = true;
        snap.covered = ship.seq;
        snap.size = ship.primary_size;
        snap.received = 0;
        snap.name = ship.note;
        std::error_code ec;
        std::filesystem::remove(snap_tmp, ec);  // stale partial bootstrap
        if (!send_ack(true, "")) {
          count_torn();
          return result;
        }
        break;
      }
      case ShipKind::kSnapshotChunk: {
        if (!snap.active || ship.offset != snap.received) {
          (void)send_ack(false, "snapshot chunk out of order");
          count_torn();
          return result;
        }
        Status wrote = AppendFile(snap_tmp, ship.bytes);
        if (!wrote.ok()) {
          (void)send_ack(false, wrote.message());
          count_torn();
          return result;
        }
        snap.received += ship.bytes.size();
        result.progressed = true;
        if (!send_ack(true, "")) {
          count_torn();
          return result;
        }
        break;
      }
      case ShipKind::kSnapshotCommit: {
        if (!snap.active || snap.received != snap.size) {
          (void)send_ack(false, "snapshot incomplete at commit");
          count_torn();
          return result;
        }
        // Install: snapshot file first, then the manifest naming it — a
        // crash between the two leaves an orphan file recovery ignores.
        std::error_code ec;
        std::filesystem::rename(snap_tmp, InDir(dir, snap.name), ec);
        if (ec ||
            !WriteWalManifest(dir, snap.covered, snap.name, options_.sync)
                 .ok()) {
          (void)send_ack(false, "snapshot install failed");
          count_torn();
          return result;
        }
        auto rebuilt_or = RecoverStore(dir);
        if (!rebuilt_or.ok()) {
          (void)send_ack(false, "snapshot recovery failed: " +
                                    rebuilt_or.status().message());
          count_torn();
          return result;
        }
        applier =
            std::make_unique<WalTailApplier>(std::move(rebuilt_or).value());
        last_runs_completed = applier->info().runs_completed;
        snap = SnapState{};
        if (!Publish(*applier).ok()) {
          (void)send_ack(false, "publish failed");
          count_torn();
          return result;
        }
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.snapshots_bootstrapped;
        }
        result.progressed = true;
        if (!send_ack(true, "")) {
          count_torn();
          return result;
        }
        break;
      }
    }
  }
  return result;
}

}  // namespace pebble::server
