#include "server/wire.h"

namespace pebble::server {

namespace {

/// Strings inside a message are separately capped (the frame layer caps
/// the whole payload; this bounds any single field).
constexpr uint32_t kMaxStringBytes = 8u << 20;

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutStr(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked forward reader over a payload. Every getter fails with
/// the current offset in the message, so a fuzzer-found reject is
/// reproducible from the error text alone.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  Status GetU8(uint8_t* v) {
    PEBBLE_RETURN_NOT_OK(Need(1, "u8"));
    *v = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status GetU32(uint32_t* v) {
    PEBBLE_RETURN_NOT_OK(Need(4, "u32"));
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_++]))
             << (8 * i);
    }
    *v = out;
    return Status::OK();
  }

  Status GetU64(uint64_t* v) {
    PEBBLE_RETURN_NOT_OK(Need(8, "u64"));
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_++]))
             << (8 * i);
    }
    *v = out;
    return Status::OK();
  }

  Status GetStr(std::string* v) {
    uint32_t len = 0;
    PEBBLE_RETURN_NOT_OK(GetU32(&len));
    if (len > kMaxStringBytes) {
      return Status::InvalidArgument(
          "string field declares " + std::to_string(len) +
          " bytes at offset " + std::to_string(pos_ - 4) + ", limit " +
          std::to_string(kMaxStringBytes));
    }
    PEBBLE_RETURN_NOT_OK(Need(len, "string body"));
    v->assign(data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  Status ExpectEnd() const {
    if (pos_ != data_.size()) {
      return Status::InvalidArgument(
          std::to_string(data_.size() - pos_) +
          " trailing bytes after message at offset " + std::to_string(pos_));
    }
    return Status::OK();
  }

 private:
  Status Need(size_t n, const char* what) const {
    if (data_.size() - pos_ < n) {
      return Status::InvalidArgument(
          std::string("truncated message: need ") + std::to_string(n) +
          " bytes for " + what + " at offset " + std::to_string(pos_) +
          ", have " + std::to_string(data_.size() - pos_));
    }
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

std::string EncodeRequest(const QueryRequest& request) {
  std::string out;
  PutU8(&out, kMsgRequest);
  PutU32(&out, request.version);
  PutStr(&out, request.tenant);
  PutU8(&out, static_cast<uint8_t>(request.op));
  PutStr(&out, request.target);
  PutStr(&out, request.pattern);
  PutU32(&out, request.deadline_ms);
  PutU64(&out, request.max_visited_nodes);
  PutU64(&out, request.max_results);
  PutU64(&out, request.memory_budget_bytes);
  PutU32(&out, request.sleep_ms);
  return out;
}

std::string EncodeResponse(const QueryResponse& response,
                           uint32_t version) {
  std::string out;
  PutU8(&out, kMsgResponse);
  PutU8(&out, static_cast<uint8_t>(response.code));
  PutStr(&out, response.message);
  PutU32(&out, response.retry_after_ms);
  PutU32(&out, response.queue_depth);
  PutU8(&out, response.truncated ? 1 : 0);
  PutStr(&out, response.truncation_detail);
  PutU64(&out, response.matched);
  PutStr(&out, response.answer);
  PutU64(&out, response.match_us);
  PutU64(&out, response.backtrace_us);
  PutU64(&out, response.server_us);
  if (version >= 2) {
    PutU64(&out, response.store_generation);
    PutU8(&out, response.from_replica ? 1 : 0);
    PutU32(&out, response.staleness_ms);
    PutU64(&out, response.applied_seq);
    PutU64(&out, response.applied_offset);
  }
  return out;
}

std::string EncodeReplSubscribe(const ReplSubscribe& subscribe) {
  std::string out;
  PutU8(&out, kMsgReplSubscribe);
  PutU32(&out, subscribe.version);
  PutStr(&out, subscribe.stream);
  PutU64(&out, subscribe.covered_seq);
  PutU64(&out, subscribe.seq);
  PutU64(&out, subscribe.offset);
  PutU32(&out, subscribe.prefix_crc);
  return out;
}

std::string EncodeReplShip(const ReplShip& ship) {
  std::string out;
  PutU8(&out, kMsgReplShip);
  PutU32(&out, ship.version);
  PutU8(&out, static_cast<uint8_t>(ship.kind));
  PutU64(&out, ship.seq);
  PutU64(&out, ship.offset);
  PutU8(&out, ship.sealed ? 1 : 0);
  PutStr(&out, ship.bytes);
  PutU64(&out, ship.primary_seq);
  PutU64(&out, ship.primary_size);
  PutStr(&out, ship.note);
  return out;
}

std::string EncodeReplAck(const ReplAck& ack) {
  std::string out;
  PutU8(&out, kMsgReplAck);
  PutU32(&out, ack.version);
  PutU64(&out, ack.seq);
  PutU64(&out, ack.offset);
  PutU8(&out, ack.ok ? 1 : 0);
  PutStr(&out, ack.note);
  return out;
}

Status DecodeRequest(std::string_view payload, QueryRequest* request) {
  Reader r(payload);
  uint8_t kind = 0;
  PEBBLE_RETURN_NOT_OK(r.GetU8(&kind));
  if (kind != kMsgRequest) {
    return Status::InvalidArgument("expected request message (kind 1), got " +
                                   std::to_string(kind));
  }
  PEBBLE_RETURN_NOT_OK(r.GetU32(&request->version));
  if (request->version == 0 || request->version > kWireVersion) {
    return Status::InvalidArgument(
        "unsupported protocol version " + std::to_string(request->version) +
        " (this server speaks up to " + std::to_string(kWireVersion) + ")");
  }
  PEBBLE_RETURN_NOT_OK(r.GetStr(&request->tenant));
  uint8_t op = 0;
  PEBBLE_RETURN_NOT_OK(r.GetU8(&op));
  if (op > static_cast<uint8_t>(RequestOp::kSleep)) {
    return Status::InvalidArgument("unknown request op " +
                                   std::to_string(op));
  }
  request->op = static_cast<RequestOp>(op);
  PEBBLE_RETURN_NOT_OK(r.GetStr(&request->target));
  PEBBLE_RETURN_NOT_OK(r.GetStr(&request->pattern));
  PEBBLE_RETURN_NOT_OK(r.GetU32(&request->deadline_ms));
  PEBBLE_RETURN_NOT_OK(r.GetU64(&request->max_visited_nodes));
  PEBBLE_RETURN_NOT_OK(r.GetU64(&request->max_results));
  PEBBLE_RETURN_NOT_OK(r.GetU64(&request->memory_budget_bytes));
  PEBBLE_RETURN_NOT_OK(r.GetU32(&request->sleep_ms));
  return r.ExpectEnd();
}

Status DecodeResponse(std::string_view payload, QueryResponse* response) {
  Reader r(payload);
  uint8_t kind = 0;
  PEBBLE_RETURN_NOT_OK(r.GetU8(&kind));
  if (kind != kMsgResponse) {
    return Status::InvalidArgument(
        "expected response message (kind 2), got " + std::to_string(kind));
  }
  uint8_t code = 0;
  PEBBLE_RETURN_NOT_OK(r.GetU8(&code));
  if (code > static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
    return Status::InvalidArgument("unknown status code " +
                                   std::to_string(code));
  }
  response->code = static_cast<StatusCode>(code);
  PEBBLE_RETURN_NOT_OK(r.GetStr(&response->message));
  PEBBLE_RETURN_NOT_OK(r.GetU32(&response->retry_after_ms));
  PEBBLE_RETURN_NOT_OK(r.GetU32(&response->queue_depth));
  uint8_t truncated = 0;
  PEBBLE_RETURN_NOT_OK(r.GetU8(&truncated));
  if (truncated > 1) {
    return Status::InvalidArgument("truncated flag must be 0/1, got " +
                                   std::to_string(truncated));
  }
  response->truncated = truncated != 0;
  PEBBLE_RETURN_NOT_OK(r.GetStr(&response->truncation_detail));
  PEBBLE_RETURN_NOT_OK(r.GetU64(&response->matched));
  PEBBLE_RETURN_NOT_OK(r.GetStr(&response->answer));
  PEBBLE_RETURN_NOT_OK(r.GetU64(&response->match_us));
  PEBBLE_RETURN_NOT_OK(r.GetU64(&response->backtrace_us));
  PEBBLE_RETURN_NOT_OK(r.GetU64(&response->server_us));
  // A payload ending here is a v1 response (from a server predating the
  // replication tail); the tail fields keep their defaults.
  response->store_generation = 0;
  response->from_replica = false;
  response->staleness_ms = 0;
  response->applied_seq = 0;
  response->applied_offset = 0;
  if (r.AtEnd()) return Status::OK();
  PEBBLE_RETURN_NOT_OK(r.GetU64(&response->store_generation));
  uint8_t from_replica = 0;
  PEBBLE_RETURN_NOT_OK(r.GetU8(&from_replica));
  if (from_replica > 1) {
    return Status::InvalidArgument("from_replica flag must be 0/1, got " +
                                   std::to_string(from_replica));
  }
  response->from_replica = from_replica != 0;
  PEBBLE_RETURN_NOT_OK(r.GetU32(&response->staleness_ms));
  PEBBLE_RETURN_NOT_OK(r.GetU64(&response->applied_seq));
  PEBBLE_RETURN_NOT_OK(r.GetU64(&response->applied_offset));
  return r.ExpectEnd();
}

namespace {

Status CheckVersion(uint32_t version) {
  if (version == 0 || version > kWireVersion) {
    return Status::InvalidArgument(
        "unsupported protocol version " + std::to_string(version) +
        " (this build speaks up to " + std::to_string(kWireVersion) + ")");
  }
  return Status::OK();
}

}  // namespace

Status DecodeReplSubscribe(std::string_view payload,
                           ReplSubscribe* subscribe) {
  Reader r(payload);
  uint8_t kind = 0;
  PEBBLE_RETURN_NOT_OK(r.GetU8(&kind));
  if (kind != kMsgReplSubscribe) {
    return Status::InvalidArgument(
        "expected subscribe message (kind 3), got " + std::to_string(kind));
  }
  PEBBLE_RETURN_NOT_OK(r.GetU32(&subscribe->version));
  PEBBLE_RETURN_NOT_OK(CheckVersion(subscribe->version));
  PEBBLE_RETURN_NOT_OK(r.GetStr(&subscribe->stream));
  PEBBLE_RETURN_NOT_OK(r.GetU64(&subscribe->covered_seq));
  PEBBLE_RETURN_NOT_OK(r.GetU64(&subscribe->seq));
  PEBBLE_RETURN_NOT_OK(r.GetU64(&subscribe->offset));
  PEBBLE_RETURN_NOT_OK(r.GetU32(&subscribe->prefix_crc));
  return r.ExpectEnd();
}

Status DecodeReplShip(std::string_view payload, ReplShip* ship) {
  Reader r(payload);
  uint8_t kind = 0;
  PEBBLE_RETURN_NOT_OK(r.GetU8(&kind));
  if (kind != kMsgReplShip) {
    return Status::InvalidArgument("expected ship message (kind 4), got " +
                                   std::to_string(kind));
  }
  PEBBLE_RETURN_NOT_OK(r.GetU32(&ship->version));
  PEBBLE_RETURN_NOT_OK(CheckVersion(ship->version));
  uint8_t ship_kind = 0;
  PEBBLE_RETURN_NOT_OK(r.GetU8(&ship_kind));
  if (ship_kind > static_cast<uint8_t>(ShipKind::kDenied)) {
    return Status::InvalidArgument("unknown ship kind " +
                                   std::to_string(ship_kind));
  }
  ship->kind = static_cast<ShipKind>(ship_kind);
  PEBBLE_RETURN_NOT_OK(r.GetU64(&ship->seq));
  PEBBLE_RETURN_NOT_OK(r.GetU64(&ship->offset));
  uint8_t sealed = 0;
  PEBBLE_RETURN_NOT_OK(r.GetU8(&sealed));
  if (sealed > 1) {
    return Status::InvalidArgument("sealed flag must be 0/1, got " +
                                   std::to_string(sealed));
  }
  ship->sealed = sealed != 0;
  PEBBLE_RETURN_NOT_OK(r.GetStr(&ship->bytes));
  PEBBLE_RETURN_NOT_OK(r.GetU64(&ship->primary_seq));
  PEBBLE_RETURN_NOT_OK(r.GetU64(&ship->primary_size));
  PEBBLE_RETURN_NOT_OK(r.GetStr(&ship->note));
  return r.ExpectEnd();
}

Status DecodeReplAck(std::string_view payload, ReplAck* ack) {
  Reader r(payload);
  uint8_t kind = 0;
  PEBBLE_RETURN_NOT_OK(r.GetU8(&kind));
  if (kind != kMsgReplAck) {
    return Status::InvalidArgument("expected ack message (kind 5), got " +
                                   std::to_string(kind));
  }
  PEBBLE_RETURN_NOT_OK(r.GetU32(&ack->version));
  PEBBLE_RETURN_NOT_OK(CheckVersion(ack->version));
  PEBBLE_RETURN_NOT_OK(r.GetU64(&ack->seq));
  PEBBLE_RETURN_NOT_OK(r.GetU64(&ack->offset));
  uint8_t ok = 0;
  PEBBLE_RETURN_NOT_OK(r.GetU8(&ok));
  if (ok > 1) {
    return Status::InvalidArgument("ok flag must be 0/1, got " +
                                   std::to_string(ok));
  }
  ack->ok = ok != 0;
  PEBBLE_RETURN_NOT_OK(r.GetStr(&ack->note));
  return r.ExpectEnd();
}

}  // namespace pebble::server
