// Immutable nested value model (paper Def. 4.1, Tab. 4).
//
// A value is a constant (bool, int, double, string), a data item (an ordered
// list of uniquely named attribute:value pairs, i.e. a struct), a bag
// (ordered, duplicates allowed) or a set (ordered, duplicates removed at
// construction). Values are shared via std::shared_ptr<const Value>, so
// operators copy substructure in O(1).

#ifndef PEBBLE_NESTED_VALUE_H_
#define PEBBLE_NESTED_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "nested/type.h"

namespace pebble {

class Value;
using ValuePtr = std::shared_ptr<const Value>;

enum class ValueKind {
  kNull,
  kBool,
  kInt,
  kDouble,
  kString,
  kStruct,
  kBag,
  kSet,
};

/// One attribute of a data item.
struct Field {
  std::string name;
  ValuePtr value;
};

/// Immutable nested value. Build through the static factories.
class Value {
 public:
  static ValuePtr Null();
  static ValuePtr Bool(bool v);
  static ValuePtr Int(int64_t v);
  static ValuePtr Double(double v);
  static ValuePtr String(std::string v);
  static ValuePtr Struct(std::vector<Field> fields);
  static ValuePtr Bag(std::vector<ValuePtr> elements);
  /// Removes duplicates (by deep equality), keeping first occurrences.
  static ValuePtr Set(std::vector<ValuePtr> elements);

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }
  bool is_struct() const { return kind_ == ValueKind::kStruct; }
  bool is_collection() const {
    return kind_ == ValueKind::kBag || kind_ == ValueKind::kSet;
  }
  bool is_numeric() const {
    return kind_ == ValueKind::kInt || kind_ == ValueKind::kDouble;
  }

  // Constant accessors; only valid for the matching kind.
  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  double double_value() const { return double_; }
  const std::string& string_value() const { return string_; }

  /// Numeric value as double (int or double kinds).
  double AsDouble() const {
    return kind_ == ValueKind::kInt ? static_cast<double>(int_) : double_;
  }

  // Struct accessors.
  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  /// Field value by name, or nullptr if absent.
  ValuePtr FindField(const std::string& name) const;

  // Collection accessors.
  const std::vector<ValuePtr>& elements() const { return elements_; }
  size_t num_elements() const { return elements_.size(); }

  /// Deep structural equality (NaN != NaN, matching SQL-ish semantics is not
  /// needed here; bitwise double equality is used). Short-circuits on the
  /// memoized structural hash: unequal hashes prove inequality without
  /// walking the trees.
  bool Equals(const Value& other) const;

  /// Structural hash consistent with Equals. Memoized: computed bottom-up at
  /// construction (children are already hashed), so this is O(1).
  size_t Hash() const { return hash_; }

  /// Total order over values of mixed kinds (kind rank first, then value);
  /// used for canonical sorting in tests and set construction.
  int Compare(const Value& other) const;

  /// Infers the type of this value (Tab. 4); empty collections get a kNull
  /// element type.
  TypePtr InferType() const;

  /// JSON-style rendering (stable field order).
  std::string ToString() const;

  /// Approximate in-memory footprint in bytes, counting shared children once
  /// per reference. Used by the provenance-size benchmarks.
  uint64_t ApproxBytes() const;

 private:
  explicit Value(ValueKind kind) : kind_(kind) {}

  /// Computes and stores the structural hash; called once per node by the
  /// factories, after the payload is in place.
  void ComputeHash();

  ValueKind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  size_t hash_ = 0;
  std::string string_;
  std::vector<Field> fields_;
  std::vector<ValuePtr> elements_;
};

bool operator==(const Value& a, const Value& b);

/// Hash functor for ValuePtr keyed containers (deep hash/equality).
struct ValuePtrHash {
  size_t operator()(const ValuePtr& v) const { return v ? v->Hash() : 0; }
};
struct ValuePtrEq {
  bool operator()(const ValuePtr& a, const ValuePtr& b) const {
    if (a == b) return true;
    if (!a || !b) return false;
    return a->Equals(*b);
  }
};

}  // namespace pebble

#endif  // PEBBLE_NESTED_VALUE_H_
