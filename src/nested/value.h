// Immutable nested value model (paper Def. 4.1, Tab. 4).
//
// A value is a constant (bool, int, double, string), a data item (an ordered
// list of uniquely named attribute:value pairs, i.e. a struct), a bag
// (ordered, duplicates allowed) or a set (ordered, duplicates removed at
// construction).
//
// Memory model (DESIGN.md §15): every Value node and its payload (string
// bytes, field array, element array) lives in a ValueArena — the innermost
// ValueArenaScope of the constructing thread, else the thread's registered
// default arena. ValuePtr is a non-owning `const Value*`: operators share
// substructure in O(1) by copying pointers, and whole datasets free in O(1)
// when their arenas die. A value must not outlive its arena; the executor
// enforces this by transferring every committed task arena to the run's
// output dataset. Attribute names are interned process-wide (Interner), so
// field name views never dangle.

#ifndef PEBBLE_NESTED_VALUE_H_
#define PEBBLE_NESTED_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "nested/type.h"

namespace pebble {

class Value;
/// Non-owning handle to an arena-allocated immutable value.
using ValuePtr = const Value*;

enum class ValueKind {
  kNull,
  kBool,
  kInt,
  kDouble,
  kString,
  kStruct,
  kBag,
  kSet,
};

/// One attribute of a data item, builder-side: used to assemble structs
/// before they are frozen into an arena. The stored form is FieldRef.
struct Field {
  std::string name;
  ValuePtr value = nullptr;
};

/// One attribute of a frozen data item. `name` views the process-wide
/// interner (stable for the process lifetime); `value` follows the arena
/// lifetime contract above.
struct FieldRef {
  std::string_view name;
  ValuePtr value = nullptr;
};

/// Minimal read-only array view over arena-stored payloads.
template <typename T>
class Span {
 public:
  Span() = default;
  Span(const T* data, size_t size) : data_(data), size_(size) {}

  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

using FieldSpan = Span<FieldRef>;
using ElementSpan = Span<ValuePtr>;

/// Immutable nested value. Build through the static factories; nodes are
/// trivially destructible and freed wholesale with their arena.
class Value {
 public:
  static ValuePtr Null();
  static ValuePtr Bool(bool v);
  static ValuePtr Int(int64_t v);
  static ValuePtr Double(double v);
  static ValuePtr String(std::string_view v);
  static ValuePtr Struct(const std::vector<Field>& fields);
  /// Struct from already-frozen field refs (names must already be interner
  /// views, e.g. taken from another value's fields()).
  static ValuePtr StructFromRefs(FieldSpan fields);
  /// `base`'s fields plus one appended attribute — the flatten kernel's
  /// shape, without re-copying any name bytes.
  static ValuePtr StructWith(const Value& base, std::string_view name,
                             ValuePtr value);
  /// `left`'s fields followed by `right`'s — the join kernel's shape.
  static ValuePtr StructConcat(const Value& left, const Value& right);
  static ValuePtr Bag(const std::vector<ValuePtr>& elements);
  /// Removes duplicates (by deep equality), keeping first occurrences.
  static ValuePtr Set(const std::vector<ValuePtr>& elements);

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }
  bool is_struct() const { return kind_ == ValueKind::kStruct; }
  bool is_collection() const {
    return kind_ == ValueKind::kBag || kind_ == ValueKind::kSet;
  }
  bool is_numeric() const {
    return kind_ == ValueKind::kInt || kind_ == ValueKind::kDouble;
  }

  // Constant accessors; only valid for the matching kind.
  bool bool_value() const { return u_.b; }
  int64_t int_value() const { return u_.i; }
  double double_value() const { return u_.d; }
  std::string_view string_value() const {
    return std::string_view(u_.s, count_);
  }

  /// Numeric value as double (int or double kinds).
  double AsDouble() const {
    return kind_ == ValueKind::kInt ? static_cast<double>(u_.i) : u_.d;
  }

  // Struct accessors.
  FieldSpan fields() const { return FieldSpan(u_.f, count_); }
  size_t num_fields() const { return count_; }
  /// Field value by name, or nullptr if absent.
  ValuePtr FindField(std::string_view name) const;

  // Collection accessors.
  ElementSpan elements() const { return ElementSpan(u_.e, count_); }
  size_t num_elements() const { return count_; }

  /// Deep structural equality (NaN != NaN, matching SQL-ish semantics is not
  /// needed here; bitwise double equality is used). Short-circuits on the
  /// memoized structural hash: unequal hashes prove inequality without
  /// walking the trees.
  bool Equals(const Value& other) const;

  /// Structural hash consistent with Equals. Memoized: computed bottom-up at
  /// construction (children are already hashed), so this is O(1).
  size_t Hash() const { return hash_; }

  /// Total order over values of mixed kinds (kind rank first, then value);
  /// used for canonical sorting in tests and set construction.
  int Compare(const Value& other) const;

  /// Infers the type of this value (Tab. 4); empty collections get a kNull
  /// element type.
  TypePtr InferType() const;

  /// JSON-style rendering (stable field order).
  std::string ToString() const;

  /// Approximate in-memory footprint in bytes, counting shared children once
  /// per reference. Used by the provenance-size benchmarks.
  uint64_t ApproxBytes() const;

 private:
  explicit Value(ValueKind kind) : kind_(kind) {}

  /// Computes and stores the structural hash; called once per node by the
  /// factories, after the payload is in place. The bit pattern is frozen:
  /// join/group shuffles hash-partition on it, and the golden fingerprints
  /// pin the resulting row orders.
  void ComputeHash();

  ValueKind kind_;
  /// String length / field count / element count.
  uint32_t count_ = 0;
  size_t hash_ = 0;
  union Payload {
    bool b;
    int64_t i;
    double d;
    const char* s;
    const FieldRef* f;
    const ValuePtr* e;
    Payload() : i(0) {}
  } u_;
};

bool operator==(const Value& a, const Value& b);

/// Hash functor for ValuePtr keyed containers (deep hash/equality).
struct ValuePtrHash {
  size_t operator()(const ValuePtr& v) const { return v ? v->Hash() : 0; }
};
struct ValuePtrEq {
  bool operator()(const ValuePtr& a, const ValuePtr& b) const {
    if (a == b) return true;
    if (!a || !b) return false;
    return a->Equals(*b);
  }
};

}  // namespace pebble

#endif  // PEBBLE_NESTED_VALUE_H_
