// Minimal JSON reader for nested datasets. Objects become data items
// (structs, preserving key order), arrays become bags, numbers become Int
// when integral and Double otherwise.

#ifndef PEBBLE_NESTED_JSON_H_
#define PEBBLE_NESTED_JSON_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "nested/value.h"

namespace pebble {

/// Maximum container nesting depth ParseJson accepts. Deeper documents are
/// rejected with an InvalidArgument carrying the byte offset, bounding the
/// parser's recursion on adversarial input (e.g. megabytes of '[').
inline constexpr size_t kMaxJsonDepth = 256;

/// Parses one JSON document. Malformed input yields InvalidArgument with
/// the byte offset of the defect; parsing never crashes or recurses
/// unboundedly.
Result<ValuePtr> ParseJson(std::string_view text);

/// Parses newline-delimited JSON (one document per non-empty line).
Result<std::vector<ValuePtr>> ParseJsonLines(std::string_view text);

/// Serializes values as newline-delimited JSON.
std::string ToJsonLines(const std::vector<ValuePtr>& values);

}  // namespace pebble

#endif  // PEBBLE_NESTED_JSON_H_
