// Minimal JSON reader for nested datasets. Objects become data items
// (structs, preserving key order), arrays become bags, numbers become Int
// when integral and Double otherwise.

#ifndef PEBBLE_NESTED_JSON_H_
#define PEBBLE_NESTED_JSON_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "nested/value.h"

namespace pebble {

/// Parses one JSON document.
Result<ValuePtr> ParseJson(std::string_view text);

/// Parses newline-delimited JSON (one document per non-empty line).
Result<std::vector<ValuePtr>> ParseJsonLines(std::string_view text);

/// Serializes values as newline-delimited JSON.
std::string ToJsonLines(const std::vector<ValuePtr>& values);

}  // namespace pebble

#endif  // PEBBLE_NESTED_JSON_H_
