// Recursive type system for nested datasets (paper Sec. 4.1, Tab. 4).
//
// A type is one of:
//   - a primitive constant type (bool, int, double, string),
//   - a data-item (struct) type: an ordered list of uniquely named fields,
//   - a bag type {{ tau }} (ordered collection, duplicates allowed),
//   - a set type  { tau }  (ordered collection, duplicates removed),
//   - the null type, which acts as an "unknown" wildcard in compatibility
//     checks (e.g. the element type of an empty collection).

#ifndef PEBBLE_NESTED_TYPE_H_
#define PEBBLE_NESTED_TYPE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace pebble {

class DataType;
using TypePtr = std::shared_ptr<const DataType>;

enum class TypeKind {
  kNull,
  kBool,
  kInt,
  kDouble,
  kString,
  kStruct,
  kBag,
  kSet,
};

/// Returns "Int", "Bag", ... for diagnostics.
const char* TypeKindToString(TypeKind kind);

/// A named field of a struct type.
struct FieldType {
  std::string name;
  TypePtr type;
};

/// Immutable recursive data type. Construct through the static factories;
/// instances are shared via TypePtr.
class DataType {
 public:
  static TypePtr Null();
  static TypePtr Bool();
  static TypePtr Int();
  static TypePtr Double();
  static TypePtr String();
  static TypePtr Struct(std::vector<FieldType> fields);
  static TypePtr Bag(TypePtr element);
  static TypePtr Set(TypePtr element);

  TypeKind kind() const { return kind_; }
  bool is_primitive() const {
    return kind_ != TypeKind::kStruct && kind_ != TypeKind::kBag &&
           kind_ != TypeKind::kSet;
  }
  bool is_collection() const {
    return kind_ == TypeKind::kBag || kind_ == TypeKind::kSet;
  }

  /// Struct only: the ordered fields.
  const std::vector<FieldType>& fields() const { return fields_; }

  /// Struct only: field by name, or nullptr if absent.
  const FieldType* FindField(const std::string& name) const;

  /// Struct only: index of a field by name, or -1.
  int FieldIndex(const std::string& name) const;

  /// Bag/Set only: the element type.
  const TypePtr& element() const { return element_; }

  /// Deep structural equality.
  bool Equals(const DataType& other) const;

  /// Like Equals, but kNull on either side matches anything (used for
  /// empty-collection element types).
  bool CompatibleWith(const DataType& other) const;

  /// Human-readable rendering, e.g. "{{<user:<id_str:String>>}}".
  std::string ToString() const;

 private:
  explicit DataType(TypeKind kind) : kind_(kind) {}

  TypeKind kind_;
  std::vector<FieldType> fields_;  // kStruct
  TypePtr element_;                // kBag / kSet
};

bool operator==(const DataType& a, const DataType& b);

/// Parses the rendering produced by DataType::ToString back into a type:
///   Int | Double | String | Bool | Null
///   <a:Int,b:{{<x:String>}}>       struct
///   {{T}}                          bag,   {T}  set
/// Attribute names must not contain the meta characters <>{},: .
Result<TypePtr> ParseDataType(const std::string& text);

}  // namespace pebble

#endif  // PEBBLE_NESTED_TYPE_H_
