#include "nested/io.h"

#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "nested/json.h"

namespace pebble {

Result<std::vector<ValuePtr>> ReadJsonLinesFile(const std::string& path) {
  PEBBLE_FAILPOINT(failpoints::kIoRead);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read failure on '" + path + "'");
  }
  return ParseJsonLines(buffer.str());
}

Status WriteJsonLinesFile(const std::string& path,
                          const std::vector<ValuePtr>& values) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  std::string text = ToJsonLines(values);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) {
    return Status::IOError("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace pebble
