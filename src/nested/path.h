// Access paths over nested values (paper Def. 4.3) plus the schema-level
// variant with positional placeholders used by lightweight capture
// (Def. 5.1).
//
// Syntax:  p := step ('.' step)*    step := attr | attr '[' index ']'
//                                   index := positive integer | 'pos'
// Positions are 1-based, matching the paper (Ex. 4.4: tweets[2].text is the
// *second* element). The special index 'pos' is the placeholder written
// "[pos]" that lightweight capture records instead of a concrete position.

#ifndef PEBBLE_NESTED_PATH_H_
#define PEBBLE_NESTED_PATH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "nested/type.h"
#include "nested/value.h"

namespace pebble {

/// No positional access on this step.
inline constexpr int32_t kNoPos = -1;
/// The "[pos]" placeholder of lightweight capture (Def. 5.1).
inline constexpr int32_t kPosPlaceholder = 0;

/// One step of an access path: an attribute, optionally followed by a
/// 1-based position into that attribute's collection value. The attribute
/// is stored as an interned symbol, so a step is a packed 8 bytes and
/// step/path equality are word compares.
struct PathStep {
  int32_t sym = 0;  // Interner::Global() symbol; 0 is "".
  int32_t pos = kNoPos;

  PathStep() = default;
  PathStep(std::string_view attr, int32_t pos = kNoPos)
      : sym(Interner::Global().Intern(attr)), pos(pos) {}

  /// The attribute name; stable reference into the global interner.
  const std::string& attr() const { return Interner::Global().ToString(sym); }

  bool has_pos() const { return pos != kNoPos; }
  bool is_placeholder() const { return pos == kPosPlaceholder; }
  bool operator==(const PathStep& other) const {
    return sym == other.sym && pos == other.pos;
  }
  std::string ToString() const;
};

/// An access path w.r.t. a context data item.
class Path {
 public:
  Path() = default;
  explicit Path(std::vector<PathStep> steps) : steps_(std::move(steps)) {}

  /// Single-attribute path.
  static Path Attr(std::string name);

  /// Parses "user_mentions[1].id_str" / "tweets.[pos].text" style strings.
  /// Both "a.[pos].b" and "a[pos].b" spellings are accepted.
  static Result<Path> Parse(const std::string& text);

  const std::vector<PathStep>& steps() const { return steps_; }
  size_t size() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }
  const PathStep& step(size_t i) const { return steps_[i]; }
  const PathStep& back() const { return steps_.back(); }

  /// Path with `step` appended.
  Path Child(PathStep step) const;
  /// Path with all of `suffix`'s steps appended.
  Path Concat(const Path& suffix) const;
  /// Path without the last step; empty stays empty.
  Path Parent() const;
  /// True if this path's steps start with all of `prefix`'s steps.
  bool HasPrefix(const Path& prefix) const;
  /// Steps after `prefix` (requires HasPrefix(prefix)).
  Path SuffixAfter(const Path& prefix) const;

  /// True if any step carries a position (concrete or placeholder).
  bool HasPositions() const;

  /// Schema-level rendering of this path: every concrete position is
  /// replaced by the "[pos]" placeholder (Def. 5.1).
  Path WithPosPlaceholders() const;

  /// Replaces the first "[pos]" placeholder with the concrete 1-based
  /// position `pos` (backtracing, Alg. 4 l.7).
  Path WithPlaceholderReplaced(int32_t pos) const;

  /// Drops all positions entirely (pure attribute path).
  Path WithoutPositions() const;

  /// Evaluates this path against a context data item (Def. 4.3). Returns
  /// KeyError/IndexError/TypeError on invalid navigation.
  Result<ValuePtr> Evaluate(const Value& context) const;

  /// True if this path is valid in (navigable through) the given struct
  /// type; positions require the stepped-into attribute to be a collection.
  bool ExistsInType(const DataType& type) const;

  std::string ToString() const;
  /// Word-compare over packed (symbol, pos) steps.
  bool operator==(const Path& other) const { return steps_ == other.steps_; }
  /// Lexicographic by attribute string then position (NOT by symbol), so
  /// ordered output is independent of interning order.
  bool operator<(const Path& other) const;
  size_t Hash() const;

 private:
  std::vector<PathStep> steps_;
};

struct PathHash {
  size_t operator()(const Path& p) const { return p.Hash(); }
};

/// Resolves the type reached by navigating `path` from `root` (a struct
/// type). Positional steps (concrete or placeholder) step into the element
/// type of a collection attribute.
Result<TypePtr> ResolveType(const TypePtr& root, const Path& path);

}  // namespace pebble

#endif  // PEBBLE_NESTED_PATH_H_
