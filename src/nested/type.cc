#include "nested/type.h"

#include <utility>

namespace pebble {

const char* TypeKindToString(TypeKind kind) {
  switch (kind) {
    case TypeKind::kNull:
      return "Null";
    case TypeKind::kBool:
      return "Bool";
    case TypeKind::kInt:
      return "Int";
    case TypeKind::kDouble:
      return "Double";
    case TypeKind::kString:
      return "String";
    case TypeKind::kStruct:
      return "Struct";
    case TypeKind::kBag:
      return "Bag";
    case TypeKind::kSet:
      return "Set";
  }
  return "Unknown";
}

TypePtr DataType::Null() {
  static const TypePtr t(new DataType(TypeKind::kNull));
  return t;
}
TypePtr DataType::Bool() {
  static const TypePtr t(new DataType(TypeKind::kBool));
  return t;
}
TypePtr DataType::Int() {
  static const TypePtr t(new DataType(TypeKind::kInt));
  return t;
}
TypePtr DataType::Double() {
  static const TypePtr t(new DataType(TypeKind::kDouble));
  return t;
}
TypePtr DataType::String() {
  static const TypePtr t(new DataType(TypeKind::kString));
  return t;
}

TypePtr DataType::Struct(std::vector<FieldType> fields) {
  auto* t = new DataType(TypeKind::kStruct);
  t->fields_ = std::move(fields);
  return TypePtr(t);
}

TypePtr DataType::Bag(TypePtr element) {
  auto* t = new DataType(TypeKind::kBag);
  t->element_ = std::move(element);
  return TypePtr(t);
}

TypePtr DataType::Set(TypePtr element) {
  auto* t = new DataType(TypeKind::kSet);
  t->element_ = std::move(element);
  return TypePtr(t);
}

const FieldType* DataType::FindField(const std::string& name) const {
  for (const FieldType& f : fields_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

int DataType::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool DataType::Equals(const DataType& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case TypeKind::kStruct: {
      if (fields_.size() != other.fields_.size()) return false;
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].name != other.fields_[i].name) return false;
        if (!fields_[i].type->Equals(*other.fields_[i].type)) return false;
      }
      return true;
    }
    case TypeKind::kBag:
    case TypeKind::kSet:
      return element_->Equals(*other.element_);
    default:
      return true;
  }
}

bool DataType::CompatibleWith(const DataType& other) const {
  if (kind_ == TypeKind::kNull || other.kind_ == TypeKind::kNull) return true;
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case TypeKind::kStruct: {
      if (fields_.size() != other.fields_.size()) return false;
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].name != other.fields_[i].name) return false;
        if (!fields_[i].type->CompatibleWith(*other.fields_[i].type)) {
          return false;
        }
      }
      return true;
    }
    case TypeKind::kBag:
    case TypeKind::kSet:
      return element_->CompatibleWith(*other.element_);
    default:
      return true;
  }
}

std::string DataType::ToString() const {
  switch (kind_) {
    case TypeKind::kStruct: {
      std::string out = "<";
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) out += ",";
        out += fields_[i].name;
        out += ":";
        out += fields_[i].type->ToString();
      }
      out += ">";
      return out;
    }
    case TypeKind::kBag:
      return "{{" + element_->ToString() + "}}";
    case TypeKind::kSet:
      return "{" + element_->ToString() + "}";
    default:
      return TypeKindToString(kind_);
  }
}

bool operator==(const DataType& a, const DataType& b) { return a.Equals(b); }

namespace {

class TypeParser {
 public:
  explicit TypeParser(const std::string& text) : text_(text) {}

  Result<TypePtr> Parse() {
    PEBBLE_ASSIGN_OR_RETURN(TypePtr t, ParseType());
    if (pos_ != text_.size()) {
      return Err("trailing characters");
    }
    return t;
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("type parse error at offset " +
                                   std::to_string(pos_) + ": " + msg +
                                   " in '" + text_ + "'");
  }

  bool ConsumeWord(const char* word) {
    size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<TypePtr> ParseType() {
    if (pos_ >= text_.size()) return Err("expected type");
    if (ConsumeWord("Null")) return DataType::Null();
    if (ConsumeWord("Bool")) return DataType::Bool();
    if (ConsumeWord("Int")) return DataType::Int();
    if (ConsumeWord("Double")) return DataType::Double();
    if (ConsumeWord("String")) return DataType::String();
    if (ConsumeWord("{{")) {
      PEBBLE_ASSIGN_OR_RETURN(TypePtr element, ParseType());
      if (!ConsumeWord("}}")) return Err("expected '}}'");
      return DataType::Bag(std::move(element));
    }
    if (ConsumeWord("{")) {
      PEBBLE_ASSIGN_OR_RETURN(TypePtr element, ParseType());
      if (!ConsumeWord("}")) return Err("expected '}'");
      return DataType::Set(std::move(element));
    }
    if (ConsumeWord("<")) {
      std::vector<FieldType> fields;
      if (ConsumeWord(">")) return DataType::Struct(std::move(fields));
      while (true) {
        size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != ':') {
          char c = text_[pos_];
          if (c == '<' || c == '>' || c == '{' || c == '}' || c == ',') {
            return Err("bad character in attribute name");
          }
          ++pos_;
        }
        if (pos_ == start) return Err("expected attribute name");
        if (pos_ >= text_.size()) return Err("expected ':'");
        std::string name = text_.substr(start, pos_ - start);
        ++pos_;  // ':'
        PEBBLE_ASSIGN_OR_RETURN(TypePtr t, ParseType());
        fields.push_back({std::move(name), std::move(t)});
        if (ConsumeWord(",")) continue;
        if (ConsumeWord(">")) return DataType::Struct(std::move(fields));
        return Err("expected ',' or '>'");
      }
    }
    return Err("expected type");
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<TypePtr> ParseDataType(const std::string& text) {
  return TypeParser(text).Parse();
}

}  // namespace pebble
